//! Re-implementations of the three state-of-the-art SADP-aware detailed
//! routers the paper compares against (Section IV).
//!
//! The authors also had to re-implement two of them ("the binary codes of
//! \[10\] and \[16\] are currently unavailable"); what matters for the
//! comparative study is each baseline's *decision policy*, which is what
//! these models reproduce:
//!
//! * [`BaselineKind::DuTrim`] — Du et al., DAC'12 \[10\]: trim-process router
//!   with multiple pin candidate locations. Every source×target candidate
//!   pair is routed separately and scored with a **full-layout conflict
//!   recheck**; the cheapest conflict-free pair wins. No rip-up, colors
//!   fixed at route time, no assist-core awareness. The exhaustive
//!   candidate enumeration with whole-layout rechecks is what makes it
//!   three orders of magnitude slower (Table IV).
//! * [`BaselineKind::GaoPanTrim`] — Gao & Pan, ICCAD'12 \[11\]: trim-process
//!   simultaneous routing and decomposition. Greedy coloring at route time
//!   (core unless forced to trim), no color flipping, no assist cores:
//!   every trim-colored wire side not protected by an adjacent core's
//!   spacer is trim-mask defined and counts as overlay.
//! * [`BaselineKind::CutNoMerge`] — the cut-process router of \[16\]: aware
//!   of the cut process but **without the merge technique for odd cycles**
//!   (tip-to-tip pairs are treated as conflicts to route away from) and
//!   with aggressive core/assist-core merging, which produces the severe
//!   side overlays of Fig. 22.
//!
//! # Example
//!
//! ```
//! use sadp_baselines::{BaselineKind, BaselineRouter};
//! use sadp_geom::{DesignRules, GridPoint, Layer};
//! use sadp_grid::{Netlist, RoutingPlane};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut plane = RoutingPlane::new(3, 32, 32, DesignRules::node_10nm())?;
//! let mut nl = Netlist::new();
//! nl.add_two_pin("a", GridPoint::new(Layer(0), 2, 2), GridPoint::new(Layer(0), 12, 8));
//! let mut router = BaselineRouter::new(BaselineKind::GaoPanTrim);
//! let report = router.route_all(&mut plane, &nl);
//! assert_eq!(report.routed_nets, 1);
//! # Ok(())
//! # }
//! ```

pub mod metrics;
pub mod router;

pub use metrics::{cut_merge_exposure, trim_exposure};
pub use router::{BaselineKind, BaselineRouter};
