//! Process-specific overlay metrics for the baseline routers.

use sadp_geom::{DesignRules, Dir, SpatialHash, TrackRect};
use sadp_scenario::Color;

/// A colored fragment list per net, the
/// [`Router::patterns_on_layer`](sadp_core::Router::patterns_on_layer)
/// output format.
pub type LayerPatterns = Vec<(u32, Color, Vec<TrackRect>)>;

/// Builds a spatial hash of all fragments, ids encoding the pattern index.
fn index_of(patterns: &LayerPatterns) -> SpatialHash {
    let mut hash = SpatialHash::new(16);
    for (pi, (_, _, rects)) in patterns.iter().enumerate() {
        for r in rects {
            hash.insert(pi as u64, *r);
        }
    }
    hash
}

/// Cells of one side of a fragment covered by a facing neighbour at track
/// distance `gap` with the given color filter.
fn covered_cells(
    rect: &TrackRect,
    positive_side: bool,
    gap: i32,
    patterns: &LayerPatterns,
    index: &SpatialHash,
    own: usize,
    want: impl Fn(Color) -> bool,
) -> i64 {
    let axis = match rect.orientation() {
        sadp_geom::Orientation::Horizontal | sadp_geom::Orientation::Point => Dir::Horizontal,
        sadp_geom::Orientation::Vertical => Dir::Vertical,
    };
    let probe = match (axis, positive_side) {
        (Dir::Horizontal, true) => TrackRect::new(rect.x0, rect.y1 + gap, rect.x1, rect.y1 + gap),
        (Dir::Horizontal, false) => TrackRect::new(rect.x0, rect.y0 - gap, rect.x1, rect.y0 - gap),
        (Dir::Vertical, true) => TrackRect::new(rect.x1 + gap, rect.y0, rect.x1 + gap, rect.y1),
        (Dir::Vertical, false) => TrackRect::new(rect.x0 - gap, rect.y0, rect.x0 - gap, rect.y1),
    };
    let mut covered = 0i64;
    let mut seen: Vec<(i32, i32)> = Vec::new();
    for (pi, other) in index.query_entries(&probe) {
        if pi as usize == own {
            continue;
        }
        let color = patterns[pi as usize].1;
        if !want(color) {
            continue;
        }
        if let Some(hit) = other.intersection(&probe) {
            for c in hit.cells() {
                if !seen.contains(&c) {
                    seen.push(c);
                    covered += 1;
                }
            }
        }
    }
    covered
}

/// Trim-process physical side overlay, in `w_line` units.
///
/// In the trim process a trim-colored (second) pattern has no protecting
/// spacer of its own: each of its side boundary cells is trim-mask defined
/// — an overlay — unless a core pattern one track away provides its spacer
/// there. Core-colored patterns are spacer-wrapped and contribute nothing.
/// This is the metric under which the no-assist baselines \[10\] and \[11\]
/// accumulate their large overlay lengths (Table III/IV).
#[must_use]
pub fn trim_exposure(patterns: &LayerPatterns, _rules: &DesignRules) -> u64 {
    let index = index_of(patterns);
    let mut overlay = 0i64;
    for (own, (_, color, rects)) in patterns.iter().enumerate() {
        if *color != Color::Second {
            continue;
        }
        for rect in rects {
            let len = i64::from(rect.length_tracks() as u32);
            for positive in [true, false] {
                let covered = covered_cells(rect, positive, 1, patterns, &index, own, |c| {
                    c == Color::Core
                });
                overlay += (len - covered).max(0);
            }
        }
    }
    overlay as u64
}

/// The "severe overlay" of the cut-process baseline \[16\] (Fig. 22): its
/// decomposer merges every assist core that lands within `d_core` of a
/// core pattern, so each second-pattern side facing a core pattern two
/// tracks away is produced by a merged assist whose separating cut defines
/// the facing length of the core pattern. Returns the extra side overlay
/// in `w_line` units.
#[must_use]
pub fn cut_merge_exposure(patterns: &LayerPatterns, _rules: &DesignRules) -> u64 {
    let index = index_of(patterns);
    let mut overlay = 0u64;
    for (own, (_, color, rects)) in patterns.iter().enumerate() {
        if *color != Color::Second {
            continue;
        }
        for rect in rects {
            for positive in [true, false] {
                let covered = covered_cells(rect, positive, 2, patterns, &index, own, |c| {
                    c == Color::Core
                });
                overlay += covered as u64;
            }
        }
    }
    overlay
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules() -> DesignRules {
        DesignRules::node_10nm()
    }

    #[test]
    fn isolated_trim_wire_is_fully_exposed() {
        let pats: LayerPatterns = vec![(0, Color::Second, vec![TrackRect::new(0, 0, 9, 0)])];
        // Both sides exposed: 2 x 10 cells.
        assert_eq!(trim_exposure(&pats, &rules()), 20);
    }

    #[test]
    fn core_wire_contributes_nothing() {
        let pats: LayerPatterns = vec![(0, Color::Core, vec![TrackRect::new(0, 0, 9, 0)])];
        assert_eq!(trim_exposure(&pats, &rules()), 0);
    }

    #[test]
    fn adjacent_core_spacer_protects_one_side() {
        let pats: LayerPatterns = vec![
            (0, Color::Second, vec![TrackRect::new(0, 1, 9, 1)]),
            (1, Color::Core, vec![TrackRect::new(0, 0, 9, 0)]),
        ];
        // The lower side is fully covered by the core's spacer.
        assert_eq!(trim_exposure(&pats, &rules()), 10);
    }

    #[test]
    fn partial_coverage_counts_cells() {
        let pats: LayerPatterns = vec![
            (0, Color::Second, vec![TrackRect::new(0, 1, 9, 1)]),
            (1, Color::Core, vec![TrackRect::new(0, 0, 4, 0)]),
        ];
        // Lower side: 5 of 10 covered -> 5 exposed; upper side: 10.
        assert_eq!(trim_exposure(&pats, &rules()), 15);
    }

    #[test]
    fn merge_exposure_counts_gap_two_cores() {
        let pats: LayerPatterns = vec![
            (0, Color::Second, vec![TrackRect::new(0, 0, 9, 0)]),
            (1, Color::Core, vec![TrackRect::new(0, 2, 9, 2)]),
        ];
        // One side faces a core at gap 2 over the full 10 cells.
        assert_eq!(cut_merge_exposure(&pats, &rules()), 10);
        // With the neighbour colored second instead there is no merge.
        let pats: LayerPatterns = vec![
            (0, Color::Second, vec![TrackRect::new(0, 0, 9, 0)]),
            (1, Color::Second, vec![TrackRect::new(0, 2, 9, 2)]),
        ];
        assert_eq!(cut_merge_exposure(&pats, &rules()), 0);
    }

    #[test]
    fn vertical_fragments_work() {
        let pats: LayerPatterns = vec![
            (0, Color::Second, vec![TrackRect::new(1, 0, 1, 7)]),
            (1, Color::Core, vec![TrackRect::new(0, 0, 0, 7)]),
        ];
        assert_eq!(trim_exposure(&pats, &rules()), 8);
    }
}
