//! The shared baseline routing engine with per-baseline decision policies.

use crate::metrics::{cut_merge_exposure, trim_exposure, LayerPatterns};
use sadp_core::astar::{DirMap, SearchScratch};
use sadp_core::scan::{pack_frag_id, scan_fragments};
use sadp_core::{GuardGrid, PenaltyGrid, RouterConfig, RoutingReport, SearchStage, NO_GUARD};
use sadp_geom::{GridPoint, Layer, SpatialHash, TrackRect};
use sadp_grid::{Net, NetId, Netlist, RoutePath, RoutingPlane};
use sadp_obs::{FailReason, NoopRecorder, Recorder, RouterEvent, SpanClock, Stage};
use sadp_scenario::{Assignment, Color, CostTable, ScenarioKind};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Which baseline policy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Du et al. \[10\]: trim process, multiple pin candidate locations,
    /// exhaustive candidate enumeration with full-layout rechecks, no
    /// rip-up.
    DuTrim,
    /// Gao & Pan \[11\]: trim process, simultaneous routing and greedy
    /// decomposition, no assist cores, no flipping.
    GaoPanTrim,
    /// The cut-process router of \[16\]: no odd-cycle merge technique,
    /// aggressive assist merging, colors fixed at route time.
    CutNoMerge,
}

impl BaselineKind {
    /// Display name used in the result tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::DuTrim => "Du et al. [10] (trim)",
            BaselineKind::GaoPanTrim => "Gao-Pan [11] (trim)",
            BaselineKind::CutNoMerge => "cut w/o merge [16]",
        }
    }

    fn is_trim(self) -> bool {
        matches!(self, BaselineKind::DuTrim | BaselineKind::GaoPanTrim)
    }
}

/// Merged pair constraints recorded per layer.
#[derive(Debug, Default, Clone)]
struct PairStore {
    edges: HashMap<(u32, u32), (CostTable, Vec<ScenarioKind>)>,
}

impl PairStore {
    fn add(&mut self, a: u32, b: u32, kind: ScenarioKind, table: CostTable) {
        let key = if a <= b { (a, b) } else { (b, a) };
        let oriented = if key.0 == a { table } else { table.swapped() };
        let entry = self
            .edges
            .entry(key)
            .or_insert_with(|| (CostTable::zero(), Vec::new()));
        entry.0 = entry.0.merged(&oriented);
        entry.1.push(kind);
    }
}

/// The baseline router. One instance routes one netlist.
#[derive(Debug)]
pub struct BaselineRouter {
    kind: BaselineKind,
    config: RouterConfig,
    /// Wall-clock budget for the whole run; `None` = unlimited. \[10\] blows
    /// through any practical budget on the large benchmarks, exactly as in
    /// Table IV ("> 100000 s"); the harness reports `NA` when exceeded.
    time_budget: Option<Duration>,
    index: Vec<SpatialHash>,
    pairs: Vec<PairStore>,
    colors: Vec<HashMap<u32, Color>>,
    routed: HashMap<NetId, (RoutePath, Vec<(Layer, TrackRect)>)>,
    frag_seq: u32,
    nodes_expanded: u64,
    ripups: u64,
    recheck_pairs: u64,
    timed_out: bool,
}

impl BaselineRouter {
    /// Creates a baseline router with paper-comparable parameters (the
    /// baselines have no γ·T2b term and no flipping).
    #[must_use]
    pub fn new(kind: BaselineKind) -> BaselineRouter {
        let config = RouterConfig {
            gamma: 0.0,
            ..RouterConfig::paper_defaults()
        };
        BaselineRouter {
            kind,
            config,
            time_budget: None,
            index: Vec::new(),
            pairs: Vec::new(),
            colors: Vec::new(),
            routed: HashMap::new(),
            frag_seq: 0,
            nodes_expanded: 0,
            ripups: 0,
            recheck_pairs: 0,
            timed_out: false,
        }
    }

    /// Sets a wall-clock budget; when exceeded the run stops and
    /// [`BaselineRouter::timed_out`] reports true.
    #[must_use]
    pub fn with_time_budget(mut self, budget: Duration) -> BaselineRouter {
        self.time_budget = Some(budget);
        self
    }

    /// The baseline kind.
    #[must_use]
    pub fn kind(&self) -> BaselineKind {
        self.kind
    }

    /// Whether the last run exceeded its time budget.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }

    /// Fragment pairs visited by \[10\]'s full-layout rechecks — a
    /// deterministic proxy for its runtime blow-up.
    #[must_use]
    pub fn recheck_work(&self) -> u64 {
        self.recheck_pairs
    }

    /// The colored patterns of one layer (see
    /// [`Router::patterns_on_layer`](sadp_core::Router::patterns_on_layer)).
    #[must_use]
    pub fn patterns_on_layer(&self, layer: Layer) -> LayerPatterns {
        let mut out = Vec::new();
        let mut ids: Vec<&NetId> = self.routed.keys().collect();
        ids.sort();
        for id in ids {
            let (_, fragments) = &self.routed[id];
            let rects: Vec<TrackRect> = fragments
                .iter()
                .filter(|(l, _)| *l == layer)
                .map(|(_, r)| *r)
                .collect();
            if !rects.is_empty() {
                let color = self.colors[layer.index()]
                    .get(&id.0)
                    .copied()
                    .unwrap_or(Color::Core);
                out.push((id.0, color, rects));
            }
        }
        out
    }

    /// Routes the whole netlist under the baseline's policy.
    pub fn route_all(&mut self, plane: &mut RoutingPlane, netlist: &Netlist) -> RoutingReport {
        self.route_all_with(plane, netlist, &mut NoopRecorder)
    }

    /// [`BaselineRouter::route_all`] with an observability recorder: each
    /// net's pathfinding is timed as one `search` span and emits a
    /// `net_routed`/`net_failed` event. The baselines run serially, so the
    /// stream is trivially deterministic; failures are all reported as
    /// `no_path` (the baseline policies do not distinguish an exhausted
    /// retry budget from an unroutable net).
    pub fn route_all_with(
        &mut self,
        plane: &mut RoutingPlane,
        netlist: &Netlist,
        rec: &mut dyn Recorder,
    ) -> RoutingReport {
        let start = Instant::now();
        let layers = plane.layers();
        self.index = (0..layers).map(|_| SpatialHash::new(16)).collect();
        self.pairs = (0..layers).map(|_| PairStore::default()).collect();
        self.colors = (0..layers).map(|_| HashMap::new()).collect();
        self.routed.clear();
        self.frag_seq = 0;
        self.nodes_expanded = 0;
        self.ripups = 0;
        self.recheck_pairs = 0;
        self.timed_out = false;

        // Pin reservation, as for the main router.
        for net in netlist {
            for pin in [&net.source, &net.target] {
                for &c in pin.candidates() {
                    let _ = plane.occupy(c, net.id);
                }
            }
        }

        // Shared search state: the baselines never place guards and the
        // penalty grid is cleared (O(1)) before each net. The scratch is
        // likewise reused across nets — allocating full-plane vectors per
        // search would itself be superlinear in the netlist size.
        let mut penalties = PenaltyGrid::new(plane, 0);
        let guards = GuardGrid::new(plane, NO_GUARD);
        let dir_map = DirMap::new(plane, None);
        let mut scratch = SearchScratch::new(plane);

        for id in netlist.ids_by_hpwl() {
            if let Some(budget) = self.time_budget {
                if start.elapsed() > budget {
                    self.timed_out = true;
                    break;
                }
            }
            let net = netlist.net(id);
            penalties.clear();
            let clock = SpanClock::start(&*rec);
            let routed = match self.kind {
                BaselineKind::DuTrim => {
                    self.route_du(plane, net, &penalties, &guards, &dir_map, &mut scratch)
                }
                BaselineKind::GaoPanTrim | BaselineKind::CutNoMerge => self.route_sequential(
                    plane,
                    net,
                    &mut penalties,
                    &guards,
                    &dir_map,
                    &mut scratch,
                ),
            };
            clock.stop(rec, Stage::Search);
            if let Some(path) = routed {
                self.commit(plane, net, path);
                if rec.enabled() {
                    rec.event(RouterEvent::NetRouted {
                        net: id.0,
                        attempts: 1,
                        flipped: false,
                    });
                }
            } else if rec.enabled() {
                rec.event(RouterEvent::NetFailed {
                    net: id.0,
                    reason: FailReason::NoPath,
                });
            }
        }

        let mut report = self.build_report(netlist, start);
        if let Some(profile) = rec.profile() {
            report.profile = profile;
        }
        report
    }

    /// Gao-Pan \[11\] and \[16\]: one search (plus 1-b avoidance re-routes for
    /// the kinds that cannot tolerate tip-to-tip pairs).
    fn route_sequential(
        &mut self,
        plane: &mut RoutingPlane,
        net: &Net,
        penalties: &mut PenaltyGrid,
        guards: &GuardGrid,
        dir_map: &DirMap,
        scratch: &mut SearchScratch,
    ) -> Option<RoutePath> {
        let attempts = match self.kind {
            BaselineKind::GaoPanTrim => 2,
            _ => self.config.max_ripup + 1,
        };
        for _ in 0..attempts {
            let (path, stats) = SearchStage {
                plane,
                dir_map,
                guards,
                config: &self.config,
            }
            .search(
                net.id,
                net.source.candidates(),
                net.target.candidates(),
                penalties,
                scratch,
            );
            self.nodes_expanded += stats.expanded;
            let path = path?;
            // Both trim routers and \[16\] must avoid tip-to-tip pairs at
            // minimum spacing: the trim process cannot print the facing
            // line ends, and \[16\] lacks the merge technique.
            let line_ends = self.line_end_rects(plane, net.id.0, &path);
            if line_ends.is_empty() {
                return Some(path);
            }
            for (layer, rect) in line_ends {
                for (x, y) in rect.expanded(1).cells() {
                    let p = GridPoint::new(layer, x, y);
                    if penalties.contains(p) {
                        penalties.update(p, |v| v + self.config.ripup_penalty_cost());
                    }
                }
            }
            self.ripups += 1;
        }
        None
    }

    /// Du et al. \[10\]: route every source×target candidate pair separately
    /// and keep the pair whose route adds the fewest conflicts, verified
    /// with a full-layout recheck per candidate — the faithful source of
    /// its runtime blow-up.
    fn route_du(
        &mut self,
        plane: &mut RoutingPlane,
        net: &Net,
        penalties: &PenaltyGrid,
        guards: &GuardGrid,
        dir_map: &DirMap,
        scratch: &mut SearchScratch,
    ) -> Option<RoutePath> {
        let mut best: Option<(u64, RoutePath)> = None;
        for &s in net.source.candidates() {
            for &t in net.target.candidates() {
                let (path, stats) = SearchStage {
                    plane,
                    dir_map,
                    guards,
                    config: &self.config,
                }
                .search(net.id, &[s], &[t], penalties, scratch);
                self.nodes_expanded += stats.expanded;
                let Some(path) = path else { continue };
                let line_ends = self.line_end_rects(plane, net.id.0, &path);
                if !line_ends.is_empty() {
                    continue; // the trim process cannot decompose this pair
                }
                // Full-layout recheck: re-scan every routed fragment for
                // conflicts given the tentative route (O(F) per candidate).
                let recheck = self.full_recheck_conflicts(plane);
                let cost = path.wirelength()
                    + path.via_count()
                    + recheck * 4
                    + self.tentative_conflicts(plane, net.id.0, &path) * 1000;
                if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                    best = Some((cost, path));
                }
            }
        }
        best.map(|(_, p)| p)
    }

    /// 1-b (tip-to-tip at minimum spacing) fragments of a tentative path.
    fn line_end_rects(
        &self,
        plane: &RoutingPlane,
        net: u32,
        path: &RoutePath,
    ) -> Vec<(Layer, TrackRect)> {
        let mut out = Vec::new();
        for (layer, frags) in per_layer(path) {
            for f in scan_fragments(
                layer,
                net,
                &frags,
                &self.index[layer.index()],
                plane.rules(),
            ) {
                if f.scenario.kind == ScenarioKind::OneB {
                    out.push((layer, f.our_rect));
                }
            }
        }
        out
    }

    /// Number of trim coloring conflicts the tentative route would add.
    fn tentative_conflicts(&self, plane: &RoutingPlane, net: u32, path: &RoutePath) -> u64 {
        let mut conflicts = 0;
        for (layer, frags) in per_layer(path) {
            for f in scan_fragments(
                layer,
                net,
                &frags,
                &self.index[layer.index()],
                plane.rules(),
            ) {
                if f.scenario.kind == ScenarioKind::OneA
                    && f.scenario.table.hard_parity() == Some(true)
                {
                    conflicts += 1;
                }
            }
        }
        conflicts
    }

    /// Re-derives the conflict graph of the entire routed layout — \[10\]'s
    /// per-candidate global verification step: every routed fragment is
    /// re-queried against the spatial index and every dependent pair
    /// re-classified with the current colors. This O(layout) pass per
    /// candidate pair is the faithful source of \[10\]'s runtime blow-up
    /// (Table IV: > 100 000 s on the two largest circuits).
    fn full_recheck_conflicts(&mut self, plane: &RoutingPlane) -> u64 {
        let radius = plane.rules().dependence_radius_tracks();
        let mut conflicts = 0u64;
        let mut work = 0u64;
        for (layer_idx, index) in self.index.iter().enumerate() {
            let colors = &self.colors[layer_idx];
            for (id, (_, fragments)) in &self.routed {
                for (l, rect) in fragments {
                    if l.index() != layer_idx {
                        continue;
                    }
                    let window = rect.expanded(radius);
                    for (fid, other) in index.query_entries(&window) {
                        work += 1;
                        let other_net = sadp_core::scan::net_of_frag_id(fid);
                        if other_net == id.0 {
                            continue;
                        }
                        let Some(s) = sadp_scenario::classify(rect, &other, plane.rules()) else {
                            continue;
                        };
                        match s.kind {
                            ScenarioKind::OneB => conflicts += 1,
                            ScenarioKind::OneA if colors.get(&id.0) == colors.get(&other_net) => {
                                conflicts += 1
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        self.recheck_pairs += work;
        // Each pair is visited from both sides.
        conflicts / 2
    }

    fn commit(&mut self, plane: &mut RoutingPlane, net: &Net, path: RoutePath) {
        let id = net.id;
        for &p in path.points() {
            plane.occupy(p, id).expect("A* walks free or own cells");
        }
        for pin in [&net.source, &net.target] {
            for &c in pin.candidates() {
                if !path.points().contains(&c) {
                    plane.clear_path(&[c], id);
                }
            }
        }
        let fragments: Vec<(Layer, TrackRect)> = path.fragments();
        for (layer, frags) in per_layer(&path) {
            // Record the scenarios against the already-routed layout.
            let found: Vec<_> = scan_fragments(
                layer,
                id.0,
                &frags,
                &self.index[layer.index()],
                plane.rules(),
            );
            for f in &found {
                if f.scenario.is_constraining() {
                    self.pairs[layer.index()].add(
                        id.0,
                        f.other_net,
                        f.scenario.kind,
                        f.scenario.table,
                    );
                }
            }
            // Fixed greedy coloring at route time (no flipping, ever).
            let color = self.greedy_color(layer, id.0);
            self.colors[layer.index()].insert(id.0, color);
        }
        for &(layer, rect) in &fragments {
            self.index[layer.index()].insert(pack_frag_id(id.0, self.frag_seq), rect);
            self.frag_seq += 1;
        }
        self.routed.insert(id, (path, fragments));
    }

    /// Greedy color for a newly routed net: trim baselines prefer core and
    /// switch to trim only under 1-a pressure; \[16\] minimises the local
    /// scenario weight. The color never changes afterwards.
    fn greedy_color(&self, layer: Layer, net: u32) -> Color {
        let store = &self.pairs[layer.index()];
        let colors = &self.colors[layer.index()];
        let mut weight = [0u64; 2];
        for (&(a, b), (table, kinds)) in &store.edges {
            let (other, mine_first) = if a == net {
                (b, true)
            } else if b == net {
                (a, false)
            } else {
                continue;
            };
            let Some(&oc) = colors.get(&other) else {
                continue;
            };
            for (ci, &c) in Color::ALL.iter().enumerate() {
                let asg = if mine_first {
                    Assignment::from_colors(c, oc)
                } else {
                    Assignment::from_colors(oc, c)
                };
                weight[ci] += match self.kind {
                    BaselineKind::CutNoMerge => table.entry(asg).weight(),
                    // Trim: only the coloring rule (1-a) matters.
                    _ => {
                        if kinds.contains(&ScenarioKind::OneA)
                            && table.hard_parity() == Some(true)
                            && asg.is_same_color()
                        {
                            1_000_000
                        } else {
                            0
                        }
                    }
                };
            }
        }
        if weight[1] < weight[0] {
            Color::Second
        } else {
            Color::Core
        }
    }

    fn build_report(&self, netlist: &Netlist, start: Instant) -> RoutingReport {
        let mut report = RoutingReport {
            total_nets: netlist.len(),
            routed_nets: self.routed.len(),
            ripups: self.ripups,
            nodes_expanded: self.nodes_expanded,
            cpu: start.elapsed(),
            ..RoutingReport::default()
        };
        for (path, _) in self.routed.values() {
            report.wirelength += path.wirelength();
            report.vias += path.via_count();
        }
        for (layer_idx, store) in self.pairs.iter().enumerate() {
            let colors = &self.colors[layer_idx];
            for (&(a, b), (table, kinds)) in &store.edges {
                let (Some(&ca), Some(&cb)) = (colors.get(&a), colors.get(&b)) else {
                    continue;
                };
                let asg = Assignment::from_colors(ca, cb);
                let cost = table.entry(asg);
                if self.kind.is_trim() {
                    // Trim conflicts: undecomposable line ends plus violated
                    // coloring rules.
                    if kinds.contains(&ScenarioKind::OneB) {
                        report.cut_conflicts += 1;
                    }
                    if table.hard_parity() == Some(true) && asg.is_same_color() {
                        report.cut_conflicts += 1;
                    }
                } else {
                    match cost.overlay_units() {
                        Some(u) => {
                            report.overlay_units += u64::from(u);
                            if cost.has_cut_risk() {
                                report.cut_conflicts += 1;
                            }
                        }
                        None => {
                            report.hard_overlay_violations += 1;
                            report.cut_conflicts += 1;
                        }
                    }
                }
            }
        }
        // Process-specific physical overlay.
        for layer in 0..self.index.len() {
            let pats = self.patterns_on_layer(Layer(layer as u8));
            if pats.is_empty() {
                continue;
            }
            let rules = sadp_geom::DesignRules::node_10nm();
            report.overlay_units += if self.kind.is_trim() {
                trim_exposure(&pats, &rules)
            } else {
                cut_merge_exposure(&pats, &rules)
            };
        }
        report
    }
}

fn per_layer(path: &RoutePath) -> Vec<(Layer, Vec<TrackRect>)> {
    let mut map: HashMap<Layer, Vec<TrackRect>> = HashMap::new();
    for (layer, rect) in path.fragments() {
        map.entry(layer).or_default().push(rect);
    }
    let mut out: Vec<_> = map.into_iter().collect();
    out.sort_by_key(|(l, _)| *l);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_geom::DesignRules;

    fn plane(w: i32, h: i32) -> RoutingPlane {
        RoutingPlane::new(3, w, h, DesignRules::node_10nm()).expect("valid")
    }

    fn p0(x: i32, y: i32) -> GridPoint {
        GridPoint::new(Layer(0), x, y)
    }

    #[test]
    fn gao_pan_routes_and_colors() {
        let mut plane = plane(32, 32);
        let mut nl = Netlist::new();
        nl.add_two_pin("a", p0(2, 5), p0(20, 5));
        nl.add_two_pin("b", p0(2, 6), p0(20, 6));
        let mut router = BaselineRouter::new(BaselineKind::GaoPanTrim);
        let report = router.route_all(&mut plane, &nl);
        assert_eq!(report.routed_nets, 2);
        // 1-a forces different colors; the second one goes to trim and its
        // exposed sides count as overlay.
        let pats = router.patterns_on_layer(Layer(0));
        let trims = pats.iter().filter(|(_, c, _)| *c == Color::Second).count();
        assert_eq!(trims, 1);
        assert!(report.overlay_units > 0, "trim exposure must show up");
        assert_eq!(report.cut_conflicts, 0);
    }

    #[test]
    fn gao_pan_counts_coloring_conflicts() {
        // Three parallel rails: trim 2-coloring works (alternate), so no
        // conflicts; but a same-color forced pair appears with 4 rails in a
        // sandwich? Use a tighter construction: rails at y=5,6,7 and a
        // 4th wire adjacent to both outer rails cannot exist on a grid, so
        // instead verify the simple case stays conflict-free.
        let mut plane = plane(32, 32);
        let mut nl = Netlist::new();
        for i in 0..3 {
            nl.add_two_pin(format!("r{i}"), p0(2, 5 + i), p0(20, 5 + i));
        }
        let mut router = BaselineRouter::new(BaselineKind::GaoPanTrim);
        let report = router.route_all(&mut plane, &nl);
        assert_eq!(report.routed_nets, 3);
        assert_eq!(report.cut_conflicts, 0);
    }

    #[test]
    fn trim_baseline_avoids_line_ends() {
        // Collinear pins that tempt a tip-to-tip: the baseline re-routes or
        // drops rather than committing an undecomposable pair.
        let mut plane = plane(32, 32);
        let mut nl = Netlist::new();
        nl.add_two_pin("a", p0(2, 5), p0(10, 5));
        nl.add_two_pin("b", p0(12, 5), p0(20, 5));
        let mut router = BaselineRouter::new(BaselineKind::GaoPanTrim);
        let report = router.route_all(&mut plane, &nl);
        // Both routable: the second wire detours around the line end.
        assert_eq!(report.cut_conflicts, 0);
        assert!(report.routed_nets >= 1);
    }

    #[test]
    fn du_uses_candidates() {
        use sadp_grid::Pin;
        let mut plane = plane(32, 32);
        let mut nl = Netlist::new();
        nl.add_net(
            "m",
            Pin::with_candidates(vec![p0(2, 2), p0(2, 8)]),
            Pin::with_candidates(vec![p0(20, 8), p0(20, 2)]),
        );
        let mut router = BaselineRouter::new(BaselineKind::DuTrim);
        let report = router.route_all(&mut plane, &nl);
        assert_eq!(report.routed_nets, 1);
    }

    #[test]
    fn cut_no_merge_reports_cut_metrics() {
        let mut plane = plane(32, 32);
        let mut nl = Netlist::new();
        nl.add_two_pin("a", p0(2, 5), p0(20, 5));
        nl.add_two_pin("b", p0(2, 7), p0(20, 7));
        let mut router = BaselineRouter::new(BaselineKind::CutNoMerge);
        let report = router.route_all(&mut plane, &nl);
        assert_eq!(report.routed_nets, 2);
        // Parallel at gap 2 (2-a): greedy colors them same -> no overlay,
        // or different -> merge exposure; either way the report is defined.
        assert_eq!(report.hard_overlay_violations, 0);
    }

    #[test]
    fn time_budget_short_circuits() {
        let mut plane = plane(48, 48);
        let mut nl = Netlist::new();
        for i in 0..20 {
            nl.add_two_pin(format!("n{i}"), p0(2, 2 + i), p0(40, 2 + i));
        }
        let mut router = BaselineRouter::new(BaselineKind::DuTrim).with_time_budget(Duration::ZERO);
        let report = router.route_all(&mut plane, &nl);
        assert!(router.timed_out());
        assert!(report.routed_nets < 20);
    }

    #[test]
    fn kind_names() {
        assert!(BaselineKind::DuTrim.name().contains("[10]"));
        assert!(BaselineKind::GaoPanTrim.name().contains("[11]"));
        assert!(BaselineKind::CutNoMerge.name().contains("[16]"));
    }
}
