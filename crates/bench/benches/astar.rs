//! Micro-bench: overlay-aware A*-search (eq. (5)) on empty and congested
//! planes.

use sadp_bench::timing::bench;
use sadp_core::astar::{astar_search, AstarRequest, DirMap};
use sadp_core::{GuardGrid, PenaltyGrid, RouterConfig, NO_GUARD};
use sadp_geom::{DesignRules, GridPoint, Layer};
use sadp_grid::{NetId, RoutingPlane};

fn main() {
    let config = RouterConfig::paper_defaults();

    let plane = RoutingPlane::new(3, 128, 128, DesignRules::node_10nm()).unwrap();
    let penalties = PenaltyGrid::new(&plane, 0);
    let guards = GuardGrid::new(&plane, NO_GUARD);
    bench("astar/empty_plane_40_tracks", 200, || {
        let req = AstarRequest {
            net: NetId(0),
            sources: &[GridPoint::new(Layer(0), 10, 60)],
            targets: &[GridPoint::new(Layer(0), 50, 70)],
            penalties: &penalties,
            guards: &guards,
        };
        let (p, _) = astar_search(&plane, &req, &DirMap::new(&plane, None), &config);
        p
    });

    // Congested: a field of parallel blockers forcing detours.
    let mut congested = RoutingPlane::new(3, 128, 128, DesignRules::node_10nm()).unwrap();
    let mut dir_map = DirMap::new(&congested, None);
    for i in 0..20 {
        let y = 10 + i * 5;
        for x in 15..110 {
            let p = GridPoint::new(Layer(0), x, y);
            congested.occupy(p, NetId(999)).unwrap();
            dir_map.set(p, Some(sadp_geom::Dir::Horizontal));
        }
    }
    bench("astar/congested_plane_40_tracks", 100, || {
        let req = AstarRequest {
            net: NetId(0),
            sources: &[GridPoint::new(Layer(0), 10, 60)],
            targets: &[GridPoint::new(Layer(0), 50, 70)],
            penalties: &penalties,
            guards: &guards,
        };
        let (p, _) = astar_search(&congested, &req, &dir_map, &config);
        p
    });
}
