//! Criterion bench: overlay-aware A*-search (eq. (5)) on empty and
//! congested planes.

use criterion::{criterion_group, criterion_main, Criterion};
use sadp_core::astar::{astar_search, AstarRequest, DirMap};
use sadp_core::RouterConfig;
use sadp_geom::{DesignRules, GridPoint, Layer};
use sadp_grid::{NetId, RoutingPlane};
use std::collections::HashMap;

fn bench_astar(c: &mut Criterion) {
    let mut group = c.benchmark_group("astar");
    let config = RouterConfig::paper_defaults();
    let penalties = HashMap::new();
    let guards = HashMap::new();

    let plane = RoutingPlane::new(3, 128, 128, DesignRules::node_10nm()).unwrap();
    group.bench_function("empty_plane_40_tracks", |b| {
        b.iter(|| {
            let req = AstarRequest {
                net: NetId(0),
                sources: &[GridPoint::new(Layer(0), 10, 60)],
                targets: &[GridPoint::new(Layer(0), 50, 70)],
                penalties: &penalties,
                guards: &guards,
            };
            let (p, _) = astar_search(&plane, &req, &DirMap::new(), &config);
            std::hint::black_box(p)
        })
    });

    // Congested: a field of parallel blockers forcing detours.
    let mut congested = RoutingPlane::new(3, 128, 128, DesignRules::node_10nm()).unwrap();
    let mut dir_map = DirMap::new();
    for i in 0..20 {
        let y = 10 + i * 5;
        for x in 15..110 {
            let p = GridPoint::new(Layer(0), x, y);
            congested.occupy(p, NetId(999)).unwrap();
            dir_map.insert(p, sadp_geom::Dir::Horizontal);
        }
    }
    group.bench_function("congested_plane_40_tracks", |b| {
        b.iter(|| {
            let req = AstarRequest {
                net: NetId(0),
                sources: &[GridPoint::new(Layer(0), 10, 60)],
                targets: &[GridPoint::new(Layer(0), 50, 70)],
                penalties: &penalties,
                guards: &guards,
            };
            let (p, _) = astar_search(&congested, &req, &dir_map, &config);
            std::hint::black_box(p)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_astar);
criterion_main!(benches);
