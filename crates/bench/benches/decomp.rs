//! Criterion bench: pixel decomposition simulator (scenario window and a
//! medium multi-net layout).

use criterion::{criterion_group, criterion_main, Criterion};
use sadp_decomp::{ColoredPattern, CutSimulator};
use sadp_geom::{DesignRules, TrackRect};
use sadp_scenario::Color;

fn bench_decomp(c: &mut Criterion) {
    let sim = CutSimulator::new(DesignRules::node_10nm());

    let window = vec![
        ColoredPattern::new(0, Color::Core, vec![TrackRect::new(0, 0, 5, 0)]),
        ColoredPattern::new(1, Color::Second, vec![TrackRect::new(1, 1, 7, 1)]),
    ];
    c.bench_function("decomp_scenario_window", |b| {
        b.iter(|| std::hint::black_box(sim.run(&window)))
    });

    // A 32-wire comb layout with alternating colors.
    let comb: Vec<ColoredPattern> = (0..32)
        .map(|i| {
            let color = if i % 2 == 0 { Color::Core } else { Color::Second };
            ColoredPattern::new(i, color, vec![TrackRect::new(0, i as i32 * 2, 40, i as i32 * 2)])
        })
        .collect();
    c.bench_function("decomp_comb_32_wires", |b| {
        b.iter(|| std::hint::black_box(sim.run(&comb)))
    });
}

criterion_group!(benches, bench_decomp);
criterion_main!(benches);
