//! Micro-bench: pixel decomposition simulator (scenario window and a
//! medium multi-net layout).

use sadp_bench::timing::bench;
use sadp_decomp::{ColoredPattern, CutSimulator};
use sadp_geom::{DesignRules, TrackRect};
use sadp_scenario::Color;

fn main() {
    let sim = CutSimulator::new(DesignRules::node_10nm());

    let window = vec![
        ColoredPattern::new(0, Color::Core, vec![TrackRect::new(0, 0, 5, 0)]),
        ColoredPattern::new(1, Color::Second, vec![TrackRect::new(1, 1, 7, 1)]),
    ];
    bench("decomp_scenario_window", 500, || sim.run(&window));

    // A 32-wire comb layout with alternating colors.
    let comb: Vec<ColoredPattern> = (0..32)
        .map(|i| {
            let color = if i % 2 == 0 {
                Color::Core
            } else {
                Color::Second
            };
            ColoredPattern::new(
                i,
                color,
                vec![TrackRect::new(0, i as i32 * 2, 40, i as i32 * 2)],
            )
        })
        .collect();
    bench("decomp_comb_32_wires", 20, || sim.run(&comb));
}
