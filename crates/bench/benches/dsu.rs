//! Criterion bench: parity union-find (hard-constraint odd-cycle
//! detection).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sadp_graph::ParityDsu;

fn bench_dsu(c: &mut Criterion) {
    let mut group = c.benchmark_group("parity_dsu");
    for &n in &[1_000u32, 100_000] {
        group.bench_with_input(BenchmarkId::new("union_chain", n), &n, |b, &n| {
            b.iter(|| {
                let mut dsu = ParityDsu::new(n as usize);
                for i in 0..n - 1 {
                    dsu.union(i, i + 1, i % 2 == 0).unwrap();
                }
                std::hint::black_box(dsu.relation(0, n - 1))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dsu);
criterion_main!(benches);
