//! Micro-bench: parity union-find (hard-constraint odd-cycle detection).

use sadp_bench::timing::bench;
use sadp_graph::ParityDsu;

fn main() {
    for &n in &[1_000u32, 100_000] {
        let iters = (1_000_000 / n).max(2);
        bench(&format!("parity_dsu/union_chain/{n}"), iters, || {
            let mut dsu = ParityDsu::new(n as usize);
            for i in 0..n - 1 {
                dsu.union(i, i + 1, i % 2 == 0).unwrap();
            }
            dsu.relation(0, n - 1)
        });
    }
}
