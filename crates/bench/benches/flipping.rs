//! Criterion bench: the linear-time color flipping DP (Theorem 4) and the
//! hill-climbing refinement, on chain and grid-shaped constraint graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sadp_graph::{flip, OverlayGraph, ScenarioKind};

fn chain_graph(n: u32) -> OverlayGraph {
    let mut g = OverlayGraph::new();
    let kinds = [
        ScenarioKind::ThreeA,
        ScenarioKind::TwoA,
        ScenarioKind::TwoB,
        ScenarioKind::ThreeB,
    ];
    for i in 0..n - 1 {
        let k = kinds[i as usize % kinds.len()];
        g.add_scenario(i, i + 1, k.table()).unwrap();
    }
    g
}

fn bench_flipping(c: &mut Criterion) {
    let mut group = c.benchmark_group("color_flipping");
    for &n in &[100u32, 1000, 5000] {
        group.bench_with_input(BenchmarkId::new("flip_all_chain", n), &n, |b, &n| {
            let g = chain_graph(n);
            b.iter(|| {
                let mut g = g.clone();
                std::hint::black_box(flip::flip_all(&mut g))
            })
        });
        group.bench_with_input(BenchmarkId::new("greedy_refine_chain", n), &n, |b, &n| {
            let g = chain_graph(n);
            b.iter(|| {
                let mut g = g.clone();
                std::hint::black_box(flip::greedy_refine(&mut g, 2))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flipping);
criterion_main!(benches);
