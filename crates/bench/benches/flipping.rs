//! Micro-bench: the linear-time color flipping DP (Theorem 4) and the
//! hill-climbing refinement, on chain-shaped constraint graphs.

use sadp_bench::timing::bench;
use sadp_graph::{flip, OverlayGraph, ScenarioKind};

fn chain_graph(n: u32) -> OverlayGraph {
    let mut g = OverlayGraph::new();
    let kinds = [
        ScenarioKind::ThreeA,
        ScenarioKind::TwoA,
        ScenarioKind::TwoB,
        ScenarioKind::ThreeB,
    ];
    for i in 0..n - 1 {
        let k = kinds[i as usize % kinds.len()];
        g.add_scenario(i, i + 1, k.table()).unwrap();
    }
    g
}

fn main() {
    for &n in &[100u32, 1000, 5000] {
        let g = chain_graph(n);
        let iters = (200_000 / n).max(5);
        bench(&format!("color_flipping/flip_all_chain/{n}"), iters, || {
            let mut g = g.clone();
            flip::flip_all(&mut g)
        });
        bench(
            &format!("color_flipping/greedy_refine_chain/{n}"),
            iters,
            || {
                let mut g = g.clone();
                flip::greedy_refine(&mut g, 2)
            },
        );
    }
}
