//! Criterion bench: end-to-end routing of a small benchmark (ours vs the
//! baselines), the per-table micro version of Tables III/IV.

use criterion::{criterion_group, criterion_main, Criterion};
use sadp_baselines::{BaselineKind, BaselineRouter};
use sadp_core::{Router, RouterConfig};
use sadp_grid::BenchmarkSpec;

fn bench_router(c: &mut Criterion) {
    let spec = BenchmarkSpec::paper_fixed_suite().remove(0).scaled(0.05);
    let mut group = c.benchmark_group("route_75_nets");
    group.sample_size(10);
    group.bench_function("ours", |b| {
        b.iter(|| {
            let (mut plane, nl) = spec.generate();
            let mut router = Router::new(RouterConfig::paper_defaults());
            std::hint::black_box(router.route_all(&mut plane, &nl))
        })
    });
    for kind in [BaselineKind::GaoPanTrim, BaselineKind::CutNoMerge, BaselineKind::DuTrim] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let (mut plane, nl) = spec.generate();
                let mut router = BaselineRouter::new(kind);
                std::hint::black_box(router.route_all(&mut plane, &nl))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_router);
criterion_main!(benches);
