//! Micro-bench: end-to-end routing of a small benchmark (ours vs the
//! baselines), the per-table micro version of Tables III/IV.

use sadp_baselines::{BaselineKind, BaselineRouter};
use sadp_bench::timing::bench;
use sadp_core::{Router, RouterConfig};
use sadp_grid::BenchmarkSpec;

fn main() {
    let spec = BenchmarkSpec::paper_fixed_suite().remove(0).scaled(0.05);
    bench("route_75_nets/ours", 10, || {
        let (mut plane, nl) = spec.generate();
        let mut router = Router::new(RouterConfig::paper_defaults());
        router.route_all(&mut plane, &nl)
    });
    for kind in [
        BaselineKind::GaoPanTrim,
        BaselineKind::CutNoMerge,
        BaselineKind::DuTrim,
    ] {
        bench(&format!("route_75_nets/{}", kind.name()), 10, || {
            let (mut plane, nl) = spec.generate();
            let mut router = BaselineRouter::new(kind);
            router.route_all(&mut plane, &nl)
        });
    }
}
