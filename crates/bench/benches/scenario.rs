//! Micro-bench: potential-overlay-scenario classification throughput.

use sadp_bench::timing::bench;
use sadp_geom::{DesignRules, TrackRect};
use sadp_scenario::classify;

fn main() {
    let rules = DesignRules::node_10nm();
    let pairs: Vec<(TrackRect, TrackRect)> = (0..64)
        .map(|i| {
            let a = TrackRect::new(0, 0, 5 + i % 7, 0);
            let b = TrackRect::new(i % 9 - 4, 1 + i % 3, i % 9, 1 + i % 3 + i % 5);
            (a, b)
        })
        .collect();
    bench("classify_64_pairs", 10_000, || {
        let mut hits = 0;
        for (a, bb) in &pairs {
            if classify(a, bb, &rules).is_some() {
                hits += 1;
            }
        }
        hits
    });
}
