//! Criterion bench: potential-overlay-scenario classification throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use sadp_geom::{DesignRules, TrackRect};
use sadp_scenario::classify;

fn bench_classify(c: &mut Criterion) {
    let rules = DesignRules::node_10nm();
    let pairs: Vec<(TrackRect, TrackRect)> = (0..64)
        .map(|i| {
            let a = TrackRect::new(0, 0, 5 + i % 7, 0);
            let b = TrackRect::new(i % 9 - 4, 1 + i % 3, i % 9, 1 + i % 3 + i % 5);
            (a, b)
        })
        .collect();
    c.bench_function("classify_64_pairs", |b| {
        b.iter(|| {
            let mut hits = 0;
            for (a, bb) in &pairs {
                if classify(a, bb, &rules).is_some() {
                    hits += 1;
                }
            }
            std::hint::black_box(hits)
        })
    });
}

criterion_group!(benches, bench_classify);
criterion_main!(benches);
