//! Ablation study of the router's design choices (DESIGN.md §4): each row
//! disables one mechanism and reports the damage on a Test1-family
//! instance.
//!
//! Usage: `ablation [--scale X | --full]`
//!
//! | variant | what is removed |
//! |---------|-----------------|
//! | `full router` | nothing (paper configuration) |
//! | `no color flipping` | Section III-C (greedy colors stay fixed) |
//! | `no T2b penalty` | the γ term of eq. (5) |
//! | `no merge technique` | type 1-b decomposition (the \[16\] handicap) |
//! | `no pin guards` | soft keep-out halos around unrouted pins |
//! | `no preferred dirs` | per-layer direction bias |

use sadp_bench::scale_from_args;
use sadp_core::{Router, RouterConfig};
use sadp_grid::BenchmarkSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let spec = BenchmarkSpec::paper_fixed_suite().remove(0).scaled(scale);
    println!(
        "Ablation on {} x{scale} ({} nets)",
        spec.name, spec.net_count
    );
    println!("variant               | Rout.  | overlay  |  #C  | ripups | CPU");
    println!("{}", "-".repeat(72));

    let paper = RouterConfig::paper_defaults();
    let variants: Vec<(&str, RouterConfig)> = vec![
        ("full router", paper.clone()),
        (
            "no color flipping",
            RouterConfig {
                flip_threshold: u64::MAX,
                final_flip: false,
                ..paper.clone()
            },
        ),
        (
            "no T2b penalty",
            RouterConfig {
                gamma: 0.0,
                ..paper.clone()
            },
        ),
        (
            "no merge technique",
            RouterConfig {
                allow_merge: false,
                ..paper.clone()
            },
        ),
        (
            "no pin guards",
            RouterConfig {
                pin_guard: 0.0,
                ..paper.clone()
            },
        ),
        (
            "no preferred dirs",
            RouterConfig {
                wrong_way: 1.0,
                ..paper.clone()
            },
        ),
    ];

    for (name, config) in variants {
        let (mut plane, netlist) = spec.generate();
        let mut router = Router::new(config);
        let report = router.route_all(&mut plane, &netlist);
        println!(
            "{name:21} | {:5.1}% | {:8} | {:4} | {:6} | {:6.2}s",
            report.routability(),
            report.overlay_units,
            report.cut_conflicts,
            report.ripups,
            report.cpu.as_secs_f64()
        );
    }
}
