//! Regenerates Fig. 20: our router's runtime as a function of the net
//! count, with the least-squares power-law exponent (paper: ≈ n^1.42).
//!
//! Usage: `fig20 [--scale X | --full]`.

use sadp_bench::{fit_power_law, paper::FIG20_EXPONENT, run_ours, scale_from_args};
use sadp_grid::BenchmarkSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    println!("Fig. 20: running time vs number of nets (scale {scale})");
    println!("{:>8} | {:>10} | {:>8}", "nets", "cpu (s)", "rout %");

    let mut points = Vec::new();
    for spec in BenchmarkSpec::paper_fixed_suite() {
        let spec = spec.scaled(scale);
        let row = run_ours(&spec);
        let secs = row.report.cpu.as_secs_f64();
        println!(
            "{:>8} | {:>10.3} | {:>8.1}",
            row.nets,
            secs,
            row.report.routability()
        );
        points.push((row.nets as f64, secs));
    }

    let (k, c) = fit_power_law(&points);
    println!("\nleast-squares fit: T(n) = {c:.3e} * n^{k:.2}");
    println!("paper reports n^{FIG20_EXPONENT} on its benchmark suite");
}
