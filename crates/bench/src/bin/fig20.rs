//! Regenerates Fig. 20: our router's runtime as a function of the net
//! count, with the least-squares power-law exponent (paper: ≈ n^1.42).
//!
//! Usage: `fig20 [--scale X | --full] [--check]`.
//!
//! With `--check` the run doubles as the scaling regression gate: it exits
//! nonzero if the fitted exponent exceeds
//! [`sadp_bench::scaling::MAX_EXPONENT`] or any circuit reports a cut
//! conflict, so CI catches superlinear regressions in the routing hot
//! path.

use sadp_bench::scaling::{check_scaling, ScalingPoint};
use sadp_bench::{fit_power_law, paper::FIG20_EXPONENT, run_ours, scale_from_args};
use sadp_grid::BenchmarkSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let check = args.iter().any(|a| a == "--check");
    println!("Fig. 20: running time vs number of nets (scale {scale})");
    println!(
        "{:>8} | {:>10} | {:>8} | {:>8} | {:>4}",
        "nets", "cpu (s)", "rout %", "overlay", "#C"
    );

    let mut points = Vec::new();
    for spec in BenchmarkSpec::paper_fixed_suite() {
        let spec = spec.scaled(scale);
        let row = run_ours(&spec);
        let secs = row.report.cpu.as_secs_f64();
        println!(
            "{:>8} | {:>10.3} | {:>8.1} | {:>8} | {:>4}",
            row.nets,
            secs,
            row.report.routability(),
            row.report.overlay_units,
            row.report.cut_conflicts
        );
        points.push(ScalingPoint {
            nets: row.nets,
            seconds: secs,
            cut_conflicts: row.report.cut_conflicts,
        });
    }

    let xy: Vec<(f64, f64)> = points.iter().map(|p| (p.nets as f64, p.seconds)).collect();
    let (k, c) = fit_power_law(&xy);
    println!("\nleast-squares fit: T(n) = {c:.3e} * n^{k:.2}");
    println!("paper reports n^{FIG20_EXPONENT} on its benchmark suite");

    if check {
        match check_scaling(&points) {
            Ok(summary) => println!("scaling check OK: {summary}"),
            Err(why) => {
                eprintln!("scaling check FAILED: {why}");
                std::process::exit(1);
            }
        }
    }
}
