//! Regenerates Figs. 21 and 22: a partial routing result containing an
//! odd cycle that only the merge-and-cut technique can decompose.
//!
//! Our router merges the collinear pair on the core mask and separates it
//! with a cut (Fig. 21, side overlays ≤ 1 unit); the cut baseline \[16\]
//! lacks the merge technique and must detour or leave conflicts (Fig. 22).

use sadp_baselines::{BaselineKind, BaselineRouter};
use sadp_core::{Router, RouterConfig};
use sadp_decomp::{render_ascii, render_svg, ColoredPattern, CutSimulator};
use sadp_geom::{DesignRules, GridPoint, Layer};
use sadp_grid::{Netlist, RoutingPlane};

fn netlist() -> (RoutingPlane, Netlist) {
    // A single metal layer keeps the whole demonstration on M1, as in the
    // paper's figure.
    let plane = RoutingPlane::new(1, 24, 16, DesignRules::node_10nm()).expect("valid dims");
    let mut nl = Netlist::new();
    let p = |x, y| GridPoint::new(Layer(0), x, y);
    // A and B collinear tip-to-tip at minimum spacing, C alongside both:
    // A-C and B-C must differ (type 1-a), A-B must match (type 1-b) — a
    // cycle only the cut process can decompose, by merging A and B.
    nl.add_two_pin("A", p(2, 5), p(6, 5));
    nl.add_two_pin("B", p(7, 5), p(12, 5));
    nl.add_two_pin("C", p(2, 6), p(12, 6));
    (plane, nl)
}

fn render(
    patterns: Vec<(u32, sadp_scenario::Color, Vec<sadp_geom::TrackRect>)>,
    svg_path: Option<&str>,
) {
    if patterns.is_empty() {
        println!("  (no routed patterns on M1)");
        return;
    }
    let pats: Vec<ColoredPattern> = patterns
        .into_iter()
        .map(|(net, color, rects)| ColoredPattern::new(net, color, rects))
        .collect();
    let sim = CutSimulator::new(DesignRules::node_10nm());
    let decomp = sim.run(&pats);
    println!(
        "  side overlay: {} units, hard runs: {}, cut conflicts: {}",
        decomp.report.side_overlay_units(),
        decomp.report.hard_overlay_runs,
        decomp.report.cut_conflicts
    );
    println!("{}", render_ascii(&decomp, &pats));
    if let Some(path) = svg_path {
        match std::fs::write(path, render_svg(&decomp, &pats)) {
            Ok(()) => println!("  (SVG written to {path})"),
            Err(e) => eprintln!("  (failed to write {path}: {e})"),
        }
    }
}

fn main() {
    // `--svg DIR` additionally writes fig21.svg / fig22.svg into DIR.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let svg_dir = args
        .iter()
        .position(|a| a == "--svg")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let svg = |name: &str| svg_dir.as_ref().map(|d| format!("{d}/{name}"));

    println!("Fig. 21: our router — odd cycle decomposed by merge-and-cut");
    let (mut plane, nl) = netlist();
    let config = RouterConfig {
        pin_guard: 0.0,
        ..RouterConfig::paper_defaults()
    };
    let mut router = Router::new(config);
    let report = router.route_all(&mut plane, &nl);
    println!(
        "  routed {}/{} nets, overlay {} units, {} conflicts",
        report.routed_nets, report.total_nets, report.overlay_units, report.cut_conflicts
    );
    render(
        router.patterns_on_layer(Layer(0)),
        svg("fig21.svg").as_deref(),
    );

    println!("Fig. 22: baseline [16] — no merge technique available");
    let (mut plane, nl) = netlist();
    let mut baseline = BaselineRouter::new(BaselineKind::CutNoMerge);
    let report = baseline.route_all(&mut plane, &nl);
    println!(
        "  routed {}/{} nets, overlay {} units, {} conflicts",
        report.routed_nets, report.total_nets, report.overlay_units, report.cut_conflicts
    );
    render(
        baseline.patterns_on_layer(Layer(0)),
        svg("fig22.svg").as_deref(),
    );
}
