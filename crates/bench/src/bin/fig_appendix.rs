//! Regenerates the appendix Figs. 23–34: every color assignment of every
//! potential overlay scenario, rendered through the pixel decomposition
//! simulator with its measured side overlay.

use sadp_decomp::{render_ascii, window::canonical_window, ColoredPattern, CutSimulator};
use sadp_geom::DesignRules;
use sadp_scenario::{Assignment, ScenarioKind};

fn main() {
    let rules = DesignRules::node_10nm();
    let sim = CutSimulator::new(rules);
    for kind in ScenarioKind::ALL {
        let (a, b) = canonical_window(kind);
        println!("==== {kind} (rule: {}) ====", kind.color_rule());
        for asg in Assignment::ALL {
            let pats = vec![
                ColoredPattern::new(0, asg.color_a(), vec![a]),
                ColoredPattern::new(1, asg.color_b(), vec![b]),
            ];
            let d = sim.run(&pats);
            println!(
                "-- {asg}: side overlay {} units{}{}",
                d.report.side_overlay_units(),
                if d.report.hard_overlay_runs > 0 {
                    " (HARD, forbidden)"
                } else {
                    ""
                },
                if d.report.cut_conflicts > 0 {
                    " (cut conflict)"
                } else {
                    ""
                },
            );
            println!("{}", render_ascii(&d, &pats));
        }
    }
}
