//! Fleet benchmark: routes every committed design at 1/2/4 threads.
//!
//! Instances come from [`sadp_bench::fleet::discover`]: the top-level
//! `.layout` fixtures, the replay corpus, and the imported DSN/DEF
//! suite (DEF files resolve their conventional `.lef` sidecar). Each
//! instance is routed at every thread count; the deterministic
//! projection of the report (CPU time zeroed, stage times dropped) and
//! the failed-net list must be byte-identical across thread counts or
//! the binary panics.
//!
//! The consolidated record (`BENCH_<rev>.json`, schema
//! `sadp-fleet-bench/v4`) carries per-instance routability, stage
//! seconds, wave statistics, per-format instance counts, and an ECO
//! edit-series section on the largest instance. It is self-checked
//! through [`sadp_bench::fleet::validate_record`] before writing, which
//! also enforces the non-vacuity gate: at least one DSN and one DEF
//! instance must each route at least one net.
//!
//! Usage: `fleet [--root PATH] [--out PATH]` (default root: the current
//! directory; default output: `BENCH_<rev>.json`).

use sadp_bench::fleet::{self, Instance, THREADS};
use sadp_core::eco::{EcoEdit, EcoSession};
use sadp_core::{Router, RouterConfig, RoutingReport};
use sadp_grid::{NetId, Netlist, RoutingPlane};
use sadp_obs::{BufferRecorder, RouterEvent, Stage};
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

/// Everything measured about one `(instance, threads)` routing run.
struct RunStats {
    threads: usize,
    wall_s: f64,
    report: RoutingReport,
    failed: Vec<NetId>,
    waves: u64,
    max_wave: u64,
}

fn route(plane: &RoutingPlane, netlist: &Netlist, threads: usize) -> RunStats {
    let mut plane = plane.clone();
    let mut config = RouterConfig::paper_defaults();
    config.threads = threads;
    let mut router = Router::new(config);
    let mut rec = BufferRecorder::with_flags(true, true);
    let start = Instant::now();
    let report = router.route_all_with(&mut plane, netlist, &mut rec);
    let wall_s = start.elapsed().as_secs_f64();

    let (mut waves, mut max_wave) = (0u64, 0u64);
    for ev in rec.take_events() {
        if let RouterEvent::WaveScheduled { nets, .. } = ev {
            waves += 1;
            max_wave = max_wave.max(nets);
        }
    }
    RunStats {
        threads,
        wall_s,
        report,
        failed: router.failed().to_vec(),
        waves,
        max_wave,
    }
}

/// The deterministic projection of a report: CPU time zeroed, stage
/// times dropped (counts kept). Must be equal across thread counts.
fn deterministic(report: &RoutingReport) -> RoutingReport {
    let mut r = report.clone();
    r.cpu = Duration::ZERO;
    r.profile = r.profile.counts_only();
    r
}

/// Nearest-rank percentile of an already-sorted sample, in milliseconds.
fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx].as_secs_f64() * 1e3
}

struct EcoStats {
    instance: String,
    nets: usize,
    edits: usize,
    edit_p50_ms: f64,
    edit_p95_ms: f64,
    invalidated_mean: f64,
    invalidated_max: u64,
}

/// A deterministic remove/re-add edit series over the largest fleet
/// instance, same shape as the scaling benchmark's ECO section.
fn eco_bench(name: &str, plane: &RoutingPlane, netlist: &Netlist, pairs: usize) -> EcoStats {
    let mut eco = EcoSession::create(
        RouterConfig::paper_defaults(),
        plane.clone(),
        netlist.clone(),
        false,
    )
    .expect("eco session builds");
    let targets: Vec<NetId> = {
        let active: Vec<NetId> = eco.active_nets().collect();
        let stride = (active.len() / pairs.max(1)).max(1);
        active.into_iter().step_by(stride).take(pairs).collect()
    };

    let mut edit_lat: Vec<Duration> = Vec::new();
    let mut invalidated: Vec<u64> = Vec::new();
    for id in targets {
        let net = eco.netlist().net(id);
        let (net_name, pins) = (net.name.clone(), net.pins().cloned().collect::<Vec<_>>());
        for edit in [
            EcoEdit::RemoveNet { net: id },
            EcoEdit::AddNet {
                name: net_name,
                pins,
            },
        ] {
            let start = Instant::now();
            let outcome = eco.apply(edit).expect("series edits are valid");
            edit_lat.push(start.elapsed());
            invalidated.push(outcome.invalidated.len() as u64);
        }
    }

    let edits = edit_lat.len();
    edit_lat.sort();
    EcoStats {
        instance: name.to_string(),
        nets: netlist.len(),
        edits,
        edit_p50_ms: percentile_ms(&edit_lat, 0.50),
        edit_p95_ms: percentile_ms(&edit_lat, 0.95),
        invalidated_mean: invalidated.iter().sum::<u64>() as f64 / (edits as f64).max(1.0),
        invalidated_max: invalidated.iter().copied().max().unwrap_or(0),
    }
}

fn json_instance(inst: &Instance, plane: &RoutingPlane, nets: usize, runs: &[RunStats]) -> String {
    let mut out = String::new();
    let serial = &runs[0];
    write!(
        out,
        "    {{\"name\":\"{}\",\"format\":\"{}\",\"nets\":{nets},\
         \"tracks\":[{},{},{}],\"waves\":{},\"max_wave_width\":{},\"runs\":[",
        inst.name,
        inst.format.name(),
        plane.width(),
        plane.height(),
        plane.layers(),
        serial.waves,
        serial.max_wave,
    )
    .expect("write to string");
    for (k, r) in runs.iter().enumerate() {
        let routability = r.report.routed_nets as f64 / (nets as f64).max(1.0);
        write!(
            out,
            "{}\n      {{\"threads\":{},\"wall_s\":{:.6},\"routability\":{routability:.6},\
             \"routed\":{},\"failed\":{},\"stages\":{{",
            if k == 0 { "" } else { "," },
            r.threads,
            r.wall_s,
            r.report.routed_nets,
            r.failed.len(),
        )
        .expect("write to string");
        for (j, stage) in Stage::ALL.iter().enumerate() {
            let s = r.report.profile.stage(*stage);
            write!(
                out,
                "{}\"{}\":{{\"s\":{:.6},\"count\":{}}}",
                if j == 0 { "" } else { "," },
                stage.name(),
                s.time.as_secs_f64(),
                s.count
            )
            .expect("write to string");
        }
        out.push_str("}}");
    }
    out.push_str("\n    ]}");
    out
}

fn json_eco(e: &EcoStats) -> String {
    format!(
        "{{\"instance\":\"{}\",\"nets\":{},\"edits\":{},\
         \"edit_latency_ms\":{{\"p50\":{:.3},\"p95\":{:.3}}},\
         \"invalidated\":{{\"mean\":{:.2},\"max\":{}}}}}",
        e.instance,
        e.nets,
        e.edits,
        e.edit_p50_ms,
        e.edit_p95_ms,
        e.invalidated_mean,
        e.invalidated_max,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let root = flag("--root").unwrap_or_else(|| ".".to_string());
    let rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "local".to_string());
    let out_path = flag("--out").unwrap_or_else(|| format!("BENCH_{rev}.json"));

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let instances = fleet::discover(Path::new(&root));
    assert!(
        !instances.is_empty(),
        "no instances under {root}/fixtures — wrong --root?"
    );
    println!(
        "fleet: {} instances at threads {THREADS:?}",
        instances.len()
    );

    let mut counts = [("layout", 0usize), ("dsn", 0), ("def", 0)];
    let mut instance_json = Vec::new();
    // The largest successfully-loaded instance hosts the ECO section.
    let mut largest: Option<(String, RoutingPlane, Netlist)> = None;
    for inst in &instances {
        let imported = match fleet::load(inst) {
            Ok(imported) => imported,
            Err(e) => panic!("fleet instance failed to ingest: {e}"),
        };
        let (plane, netlist) = (imported.plane, imported.netlist);
        let runs: Vec<RunStats> = THREADS
            .iter()
            .map(|&t| route(&plane, &netlist, t))
            .collect();

        // Identity gate: thread count must not change the result.
        let serial = &runs[0];
        for r in &runs[1..] {
            assert_eq!(
                deterministic(&serial.report),
                deterministic(&r.report),
                "{}: report diverged at threads={}",
                inst.name,
                r.threads
            );
            assert_eq!(
                serial.failed, r.failed,
                "{}: failed nets diverged at threads={}",
                inst.name, r.threads
            );
        }

        println!(
            "  {} ({}): {}/{} routed, {} waves, wall {:.3}s/{:.3}s/{:.3}s",
            inst.name,
            inst.format.name(),
            serial.report.routed_nets,
            netlist.len(),
            serial.waves,
            runs[0].wall_s,
            runs[1].wall_s,
            runs[2].wall_s,
        );

        counts
            .iter_mut()
            .find(|(f, _)| *f == inst.format.name())
            .expect("known format")
            .1 += 1;
        instance_json.push(json_instance(inst, &plane, netlist.len(), &runs));
        if largest
            .as_ref()
            .is_none_or(|(_, _, nl)| netlist.len() > nl.len())
        {
            largest = Some((inst.name.clone(), plane, netlist));
        }
    }

    let (eco_name, eco_plane, eco_netlist) = largest.expect("at least one instance");
    let eco = eco_bench(&eco_name, &eco_plane, &eco_netlist, 8);
    println!(
        "  eco on {}: {} edits, p50 {:.2}ms p95 {:.2}ms, invalidated mean {:.1} max {}",
        eco.instance,
        eco.edits,
        eco.edit_p50_ms,
        eco.edit_p95_ms,
        eco.invalidated_mean,
        eco.invalidated_max
    );

    let json = format!(
        "{{\n  \"schema\":\"{}\",\n  \"rev\":\"{rev}\",\n  \"cores\":{cores},\n  \
         \"threads\":[1,2,4],\n  \
         \"formats\":{{\"layout\":{},\"dsn\":{},\"def\":{}}},\n  \
         \"instances\":[\n{}\n  ],\n  \"eco\":{}\n}}\n",
        fleet::SCHEMA,
        counts[0].1,
        counts[1].1,
        counts[2].1,
        instance_json.join(",\n"),
        json_eco(&eco)
    );
    // Self-check doubles as the vacuity gate: an imported suite that
    // routes nothing fails here, not in a later CI grep.
    if let Err(e) = fleet::validate_record(&json) {
        eprintln!("fleet record failed validation: {e}");
        std::process::exit(1);
    }
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");
}
