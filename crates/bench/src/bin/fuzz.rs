//! Fuzz-oracle throughput benchmark: how fast the nightly gate burns
//! through seeds, per regime.
//!
//! The nightly workflow budgets `--seeds 500` across all five regimes;
//! this bin measures what that costs (instances/s and routed nets/s per
//! regime, serial-oracle path) so the budget can be tuned against CI
//! wall-clock. Usage:
//!
//! ```text
//! cargo run --release -p sadp-bench --bin fuzz [SEEDS]
//! ```

use sadp_fuzz::{check_instance, generate, OracleConfig, Regime};
use std::time::Instant;

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("SEEDS must be a number"))
        .unwrap_or(25);
    // The serial oracle path only: differential re-runs measure the
    // sharding, not the fuzzing cost, and would double-count routing.
    let cfg = OracleConfig {
        differential: false,
        baseline: false,
        ..OracleConfig::default()
    };

    println!("fuzz-oracle throughput, {seeds} seeds per regime");
    println!(
        "{:<12} {:>8} {:>8} {:>9} {:>11} {:>11}",
        "regime", "nets", "routed", "wall s", "inst/s", "nets/s"
    );
    let mut grand_nets = 0usize;
    let mut grand_routed = 0usize;
    let t_all = Instant::now();
    for regime in Regime::ALL {
        let mut nets = 0usize;
        let mut routed = 0usize;
        let t = Instant::now();
        for seed in 0..seeds {
            let inst = generate(regime, seed);
            nets += inst.netlist.len();
            match check_instance(&inst, &cfg) {
                Ok(stats) => routed += stats.routed,
                Err(v) => {
                    eprintln!(
                        "{} seed {seed}: {}: {}",
                        regime.name(),
                        v.invariant.name(),
                        v.detail
                    );
                    std::process::exit(1);
                }
            }
        }
        let dt = t.elapsed().as_secs_f64();
        println!(
            "{:<12} {:>8} {:>8} {:>9.2} {:>11.1} {:>11.0}",
            regime.name(),
            nets,
            routed,
            dt,
            seeds as f64 / dt,
            nets as f64 / dt
        );
        grand_nets += nets;
        grand_routed += routed;
    }
    let dt = t_all.elapsed().as_secs_f64();
    println!(
        "{:<12} {:>8} {:>8} {:>9.2} {:>11.1} {:>11.0}",
        "total",
        grand_nets,
        grand_routed,
        dt,
        (seeds as usize * Regime::ALL.len()) as f64 / dt,
        grand_nets as f64 / dt
    );
}
