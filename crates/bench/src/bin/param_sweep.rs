//! Sensitivity of the router to its user-defined parameters (§III-E /
//! §IV: α = β = 1, γ = 1.5, f_threshold = 10, B = 3). Extension study.
//!
//! Usage: `param_sweep [--scale X]` (default 0.15).

use sadp_bench::scale_from_args;
use sadp_core::{Router, RouterConfig};
use sadp_grid::BenchmarkSpec;

fn run(spec: &BenchmarkSpec, config: RouterConfig) -> (f64, u64, u64, u64) {
    let (mut plane, netlist) = spec.generate();
    let mut router = Router::new(config);
    let r = router.route_all(&mut plane, &netlist);
    (r.routability(), r.overlay_units, r.cut_conflicts, r.ripups)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = {
        let s = scale_from_args(&args);
        if s == 0.2 {
            0.15
        } else {
            s
        }
    };
    let spec = BenchmarkSpec::paper_fixed_suite().remove(0).scaled(scale);
    println!(
        "Parameter sensitivity on {} x{scale} ({} nets); paper values marked *",
        spec.name, spec.net_count
    );

    println!("\nγ (type 2-b penalty):");
    println!("{:>8} | Rout.  | overlay | ripups", "gamma");
    for gamma in [0.0, 0.5, 1.5, 3.0, 6.0] {
        let (rout, overlay, _, ripups) = run(
            &spec,
            RouterConfig {
                gamma,
                ..RouterConfig::paper_defaults()
            },
        );
        let mark = if gamma == 1.5 { "*" } else { " " };
        println!("{gamma:>7}{mark} | {rout:5.1}% | {overlay:7} | {ripups}");
    }

    println!("\nf_threshold (flip trigger):");
    println!("{:>8} | Rout.  | overlay | ripups", "f");
    for f in [0u64, 5, 10, 40, u64::MAX] {
        let (rout, overlay, _, ripups) = run(
            &spec,
            RouterConfig {
                flip_threshold: f,
                ..RouterConfig::paper_defaults()
            },
        );
        let label = if f == u64::MAX {
            "inf".into()
        } else {
            f.to_string()
        };
        let mark = if f == 10 { "*" } else { " " };
        println!("{label:>7}{mark} | {rout:5.1}% | {overlay:7} | {ripups}");
    }

    println!("\nB (max rip-up iterations):");
    println!("{:>8} | Rout.  | overlay | ripups", "B");
    for b in [0u32, 1, 3, 6, 10] {
        let (rout, overlay, _, ripups) = run(
            &spec,
            RouterConfig {
                max_ripup: b,
                ..RouterConfig::paper_defaults()
            },
        );
        let mark = if b == 3 { "*" } else { " " };
        println!("{b:>7}{mark} | {rout:5.1}% | {overlay:7} | {ripups}");
    }
}
