//! Thread-scaling benchmark for the wave-scheduled boundary tail.
//!
//! Routes the fixture suite — Test5 of the paper suite plus a
//! boundary-heavy corpus plane whose nets all straddle a band edge — at
//! 1, 2 and 4 worker threads, asserts the results are identical (modulo
//! wall-clock), and emits a machine-readable `BENCH_<rev>.json`:
//! wall-clock per [`Stage`] from the report's `StageProfile`,
//! routability, wave statistics, and the boundary-tail fraction of the
//! serial run vs the widest parallel run.
//!
//! A second section exercises the `sadp serve` job daemon: a corpus of
//! small independent layouts is submitted to an in-process daemon at 1,
//! 2 and 4 workers, and the record gains jobs/sec plus the p50/p95
//! submit-to-done sojourn ("queue latency") per worker count.
//!
//! A third section measures the incremental ECO engine on the Test5
//! fixture: a deterministic remove/re-add edit series over an
//! [`EcoSession`], recording per-edit latency (p50/p95), the
//! dependence-scoped invalidated-net counts, and undo/redo latency
//! (journal restores, which replay the full commit ledger).
//!
//! The binary exits non-zero if the corpus fixture fails to batch more
//! than one net into some wave — a vacuous run would silently gut the
//! benchmark, so CI treats that as a failure.
//!
//! Usage: `scaling [--scale X | --full] [--out PATH]` (default output:
//! `BENCH_<rev>.json` in the working directory, `rev` from `git
//! rev-parse --short HEAD` or `local`).

use sadp_core::eco::{EcoEdit, EcoSession};
use sadp_core::{Router, RouterConfig, RoutingReport};
use sadp_geom::{DesignRules, GridPoint, Layer};
use sadp_grid::{write_layout, BenchmarkSpec, NetId, Netlist, RoutingPlane};
use sadp_obs::{BufferRecorder, RouterEvent, Stage};
use sadp_serve::{serve, Client, Json, Request, ServeConfig};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const THREADS: [usize; 3] = [1, 2, 4];
const WORKERS: [usize; 3] = [1, 2, 4];

/// Everything measured about one `(fixture, threads)` routing run.
struct RunStats {
    threads: usize,
    wall_s: f64,
    report: RoutingReport,
    failed: Vec<NetId>,
    waves: u64,
    max_wave: u64,
    boundary_nets: u64,
}

fn route(plane: &RoutingPlane, netlist: &Netlist, threads: usize) -> RunStats {
    let mut plane = plane.clone();
    let mut config = RouterConfig::paper_defaults();
    config.threads = threads;
    let mut router = Router::new(config);
    let mut rec = BufferRecorder::with_flags(true, true);
    let start = Instant::now();
    let report = router.route_all_with(&mut plane, netlist, &mut rec);
    let wall_s = start.elapsed().as_secs_f64();

    let (mut waves, mut max_wave, mut boundary_nets) = (0u64, 0u64, 0u64);
    for ev in rec.take_events() {
        if let RouterEvent::WaveScheduled { nets, .. } = ev {
            waves += 1;
            max_wave = max_wave.max(nets);
            boundary_nets += nets;
        }
    }
    RunStats {
        threads,
        wall_s,
        report,
        failed: router.failed().to_vec(),
        waves,
        max_wave,
        boundary_nets,
    }
}

/// The deterministic projection of a report: CPU time zeroed, stage
/// times dropped (counts kept). Must be equal across thread counts.
fn deterministic(report: &RoutingReport) -> RoutingReport {
    let mut r = report.clone();
    r.cpu = Duration::ZERO;
    r.profile = r.profile.counts_only();
    r
}

/// A plane whose nets all straddle the x=200 band edge in interleaving
/// conflict groups — the boundary tail IS the workload, so the wave
/// scheduler's effect is undiluted. Row spacing alternates between
/// footprint-disjoint (batched into one wave) and conflicting (forces a
/// wave cut).
fn boundary_corpus() -> (RoutingPlane, Netlist) {
    let plane = RoutingPlane::new(3, 400, 620, DesignRules::node_10nm()).expect("valid plane");
    let mut nl = Netlist::new();
    let mut y = 10;
    let mut i = 0;
    while y < 610 {
        nl.add_two_pin(
            format!("c{i}"),
            GridPoint::new(Layer(0), 150, y),
            GridPoint::new(Layer(0), 250, y),
        );
        // 60-track gaps are disjoint (bbox + 24 margin + 2 halo per
        // side), 25-track gaps conflict: alternate to force real waves.
        y += if i % 2 == 0 { 60 } else { 25 };
        i += 1;
    }
    (plane, nl)
}

/// Throughput of one daemon configuration on the multi-job corpus.
struct ServeStats {
    workers: usize,
    wall_s: f64,
    jobs_per_s: f64,
    p50_ms: f64,
    p95_ms: f64,
}

/// Nearest-rank percentile of an already-sorted sample, in milliseconds.
fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx].as_secs_f64() * 1e3
}

/// Many small independent jobs, so queueing behaviour dominates and the
/// per-job route is milliseconds. Grows mildly with `--scale`.
fn serve_corpus(scale: f64) -> Vec<String> {
    let jobs = ((8.0 + 32.0 * scale).round() as usize).max(4);
    (0..jobs)
        .map(|i| {
            let spec =
                BenchmarkSpec::new(format!("serve-{i}"), 24, 96, 72).with_seed(40 + i as u64);
            let (plane, netlist) = spec.generate();
            write_layout(&plane, &netlist)
        })
        .collect()
}

/// Submits the whole corpus to a fresh in-process daemon, then lets one
/// subscriber thread per job record its completion. The measured
/// sojourn is submit-to-done, queue wait included.
fn serve_bench(layouts: &[String], workers: usize) -> ServeStats {
    let handle = serve(ServeConfig {
        workers,
        slice_steps: 16,
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let addr = handle.addr().to_string();

    let start = Instant::now();
    let mut client = Client::connect(&addr).expect("client connects");
    let mut submitted: Vec<(u64, Instant)> = Vec::new();
    for layout in layouts {
        let resp = client
            .call(&Request::Submit {
                layout: layout.clone(),
                priority: 100,
                threads: None,
                node_budget: None,
                deadline_ms: None,
            })
            .expect("submit accepted");
        let id = resp.get("job").and_then(Json::as_u64).expect("job id");
        submitted.push((id, Instant::now()));
    }
    let sojourns: Vec<Duration> = std::thread::scope(|s| {
        let handles: Vec<_> = submitted
            .iter()
            .map(|&(id, t_submit)| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut c = Client::connect(&addr).expect("subscriber connects");
                    let done = c
                        .subscribe(id, |_| {})
                        .expect("job reaches a terminal state");
                    assert_eq!(
                        done.get("state").and_then(Json::as_str),
                        Some("done"),
                        "job {id} did not finish cleanly"
                    );
                    t_submit.elapsed()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("subscriber thread"))
            .collect()
    });
    let wall_s = start.elapsed().as_secs_f64();
    handle.shutdown();

    let mut sorted = sojourns;
    sorted.sort();
    ServeStats {
        workers,
        wall_s,
        jobs_per_s: layouts.len() as f64 / wall_s.max(1e-12),
        p50_ms: percentile_ms(&sorted, 0.50),
        p95_ms: percentile_ms(&sorted, 0.95),
    }
}

/// Everything measured about the ECO edit series.
struct EcoStats {
    nets: usize,
    edits: usize,
    edit_p50_ms: f64,
    edit_p95_ms: f64,
    invalidated_mean: f64,
    invalidated_max: u64,
    undo_p50_ms: f64,
    undo_p95_ms: f64,
    redo_p50_ms: f64,
    redo_p95_ms: f64,
}

/// A deterministic edit series: every stride-th net is removed and then
/// re-added with its original pins. Both directions exercise the full
/// pipeline — dependence-radius invalidation, scoped rip-up, re-route,
/// journaling — and the series ends where it started, so the final
/// journal unwind (the undo/redo timing pass) restores the batch result.
fn eco_bench(plane: &RoutingPlane, netlist: &Netlist, pairs: usize) -> EcoStats {
    let mut eco = EcoSession::create(
        RouterConfig::paper_defaults(),
        plane.clone(),
        netlist.clone(),
        false,
    )
    .expect("eco session builds");
    let nets = netlist.len();
    let targets: Vec<NetId> = {
        let active: Vec<NetId> = eco.active_nets().collect();
        let stride = (active.len() / pairs.max(1)).max(1);
        active.into_iter().step_by(stride).take(pairs).collect()
    };

    let mut edit_lat: Vec<Duration> = Vec::new();
    let mut invalidated: Vec<u64> = Vec::new();
    for id in targets {
        let net = eco.netlist().net(id);
        let (name, pins) = (net.name.clone(), net.pins().cloned().collect::<Vec<_>>());
        for edit in [
            EcoEdit::RemoveNet { net: id },
            EcoEdit::AddNet { name, pins },
        ] {
            let start = Instant::now();
            let outcome = eco.apply(edit).expect("series edits are valid");
            edit_lat.push(start.elapsed());
            invalidated.push(outcome.invalidated.len() as u64);
        }
    }

    let mut undo_lat: Vec<Duration> = Vec::new();
    while eco.undo_depth() > 0 {
        let start = Instant::now();
        eco.undo().expect("journal non-empty");
        undo_lat.push(start.elapsed());
    }
    let mut redo_lat: Vec<Duration> = Vec::new();
    while eco.redo_depth() > 0 {
        let start = Instant::now();
        eco.redo().expect("redo available");
        redo_lat.push(start.elapsed());
    }

    let edits = edit_lat.len();
    edit_lat.sort();
    undo_lat.sort();
    redo_lat.sort();
    EcoStats {
        nets,
        edits,
        edit_p50_ms: percentile_ms(&edit_lat, 0.50),
        edit_p95_ms: percentile_ms(&edit_lat, 0.95),
        invalidated_mean: invalidated.iter().sum::<u64>() as f64 / (edits as f64).max(1.0),
        invalidated_max: invalidated.iter().copied().max().unwrap_or(0),
        undo_p50_ms: percentile_ms(&undo_lat, 0.50),
        undo_p95_ms: percentile_ms(&undo_lat, 0.95),
        redo_p50_ms: percentile_ms(&redo_lat, 0.50),
        redo_p95_ms: percentile_ms(&redo_lat, 0.95),
    }
}

fn json_eco(e: &EcoStats) -> String {
    format!(
        "{{\"nets\":{},\"edits\":{},\
         \"edit_latency_ms\":{{\"p50\":{:.3},\"p95\":{:.3}}},\
         \"invalidated\":{{\"mean\":{:.2},\"max\":{}}},\
         \"undo_latency_ms\":{{\"p50\":{:.3},\"p95\":{:.3}}},\
         \"redo_latency_ms\":{{\"p50\":{:.3},\"p95\":{:.3}}}}}",
        e.nets,
        e.edits,
        e.edit_p50_ms,
        e.edit_p95_ms,
        e.invalidated_mean,
        e.invalidated_max,
        e.undo_p50_ms,
        e.undo_p95_ms,
        e.redo_p50_ms,
        e.redo_p95_ms,
    )
}

fn json_serve(jobs: usize, runs: &[ServeStats]) -> String {
    let mut out = String::new();
    write!(out, "{{\"jobs\":{jobs},\"runs\":[").expect("write to string");
    for (k, r) in runs.iter().enumerate() {
        write!(
            out,
            "{}\n    {{\"workers\":{},\"wall_s\":{:.6},\"jobs_per_s\":{:.3},\
             \"queue_latency_ms\":{{\"p50\":{:.3},\"p95\":{:.3}}}}}",
            if k == 0 { "" } else { "," },
            r.workers,
            r.wall_s,
            r.jobs_per_s,
            r.p50_ms,
            r.p95_ms,
        )
        .expect("write to string");
    }
    out.push_str("\n  ]}");
    out
}

fn json_fixture(name: &str, plane: &RoutingPlane, total_nets: usize, runs: &[RunStats]) -> String {
    let mut out = String::new();
    let serial = &runs[0];
    let widest = runs.last().expect("at least one run");
    let frac = |r: &RunStats| {
        r.report.profile.stage(Stage::Boundary).time.as_secs_f64() / r.wall_s.max(1e-12)
    };
    write!(
        out,
        "    {{\"name\":\"{name}\",\"nets\":{total_nets},\"tracks\":[{},{},{}],\
         \"waves\":{},\"max_wave_width\":{},\"boundary_nets\":{},\
         \"boundary_tail_fraction\":{{\"serial\":{:.6},\"parallel\":{:.6}}},\"runs\":[",
        plane.width(),
        plane.height(),
        plane.layers(),
        serial.waves,
        serial.max_wave,
        serial.boundary_nets,
        frac(serial),
        frac(widest),
    )
    .expect("write to string");
    for (k, r) in runs.iter().enumerate() {
        let routability = r.report.routed_nets as f64 / (total_nets as f64).max(1.0);
        write!(
            out,
            "{}\n      {{\"threads\":{},\"wall_s\":{:.6},\"routability\":{routability:.6},\
             \"routed\":{},\"failed\":{},\"boundary_tail_fraction\":{:.6},\"stages\":{{",
            if k == 0 { "" } else { "," },
            r.threads,
            r.wall_s,
            r.report.routed_nets,
            r.failed.len(),
            frac(r),
        )
        .expect("write to string");
        for (j, stage) in Stage::ALL.iter().enumerate() {
            let s = r.report.profile.stage(*stage);
            write!(
                out,
                "{}\"{}\":{{\"s\":{:.6},\"count\":{}}}",
                if j == 0 { "" } else { "," },
                stage.name(),
                s.time.as_secs_f64(),
                s.count
            )
            .expect("write to string");
        }
        out.push_str("}}");
    }
    out.push_str("\n    ]}");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = sadp_bench::scale_from_args(&args);
    let rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "local".to_string());
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("BENCH_{rev}.json"));

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if cores < 2 {
        println!("note: single-core host — identity checks are meaningful, speedups are not");
    }

    let test5 = BenchmarkSpec::paper_fixed_suite()
        .pop()
        .expect("suite is non-empty")
        .scaled(scale);
    let (t5_plane, t5_netlist) = test5.generate();
    let (corpus_plane, corpus_netlist) = boundary_corpus();
    let fixtures: [(&str, &RoutingPlane, &Netlist); 2] = [
        ("test5", &t5_plane, &t5_netlist),
        ("boundary-corpus", &corpus_plane, &corpus_netlist),
    ];

    let mut fixture_json = Vec::new();
    for (name, plane, netlist) in fixtures {
        let runs: Vec<RunStats> = THREADS.iter().map(|&t| route(plane, netlist, t)).collect();

        // Identity gate: the wave scheduler must not change the result.
        let serial = &runs[0];
        for r in &runs[1..] {
            assert_eq!(
                deterministic(&serial.report),
                deterministic(&r.report),
                "{name}: report diverged at threads={}",
                r.threads
            );
            assert_eq!(
                serial.failed, r.failed,
                "{name}: failed nets diverged at threads={}",
                r.threads
            );
        }

        println!(
            "{name}: {} nets, {} waves (max width {}), {} boundary nets",
            netlist.len(),
            serial.waves,
            serial.max_wave,
            serial.boundary_nets
        );
        for r in &runs {
            let boundary_s = r.report.profile.stage(Stage::Boundary).time.as_secs_f64();
            println!(
                "  threads={}: {:7.3}s wall, boundary tail {:6.3}s ({:4.1}%), routed {}/{}",
                r.threads,
                r.wall_s,
                boundary_s,
                100.0 * boundary_s / r.wall_s.max(1e-12),
                r.report.routed_nets,
                netlist.len()
            );
        }
        // Vacuity guard for CI: the corpus fixture exists to exercise
        // wave batching; a max wave of 1 means the benchmark is vacuous.
        if name == "boundary-corpus" {
            assert!(
                serial.waves >= 2 && serial.max_wave > 1,
                "vacuous corpus run: {} waves, max width {}",
                serial.waves,
                serial.max_wave
            );
        }
        fixture_json.push(json_fixture(name, plane, netlist.len(), &runs));
    }

    let eco = eco_bench(&t5_plane, &t5_netlist, 12);
    println!(
        "eco: {} edits on {} nets, edit p50 {:.2}ms p95 {:.2}ms, \
         invalidated mean {:.1} max {}, undo p50 {:.2}ms, redo p50 {:.2}ms",
        eco.edits,
        eco.nets,
        eco.edit_p50_ms,
        eco.edit_p95_ms,
        eco.invalidated_mean,
        eco.invalidated_max,
        eco.undo_p50_ms,
        eco.redo_p50_ms
    );
    // Vacuity guard: an edit series that never invalidates a neighbour
    // never exercises the dependence-scoped re-route path.
    assert!(
        eco.edits > 0 && eco.invalidated_max > 0,
        "vacuous eco run: {} edits, max invalidated {}",
        eco.edits,
        eco.invalidated_max
    );

    let corpus = serve_corpus(scale);
    println!("serve: {} jobs", corpus.len());
    let serve_runs: Vec<ServeStats> = WORKERS.iter().map(|&w| serve_bench(&corpus, w)).collect();
    for r in &serve_runs {
        println!(
            "  workers={}: {:7.3}s wall, {:7.2} jobs/s, queue latency p50 {:7.1}ms p95 {:7.1}ms",
            r.workers, r.wall_s, r.jobs_per_s, r.p50_ms, r.p95_ms
        );
    }

    let json = format!(
        "{{\n  \"schema\":\"sadp-scaling-bench/v3\",\n  \"rev\":\"{rev}\",\n  \
         \"scale\":{scale},\n  \"cores\":{cores},\n  \"threads\":[1,2,4],\n  \
         \"fixtures\":[\n{}\n  ],\n  \"serve\":{},\n  \"eco\":{}\n}}\n",
        fixture_json.join(",\n"),
        json_serve(corpus.len(), &serve_runs),
        json_eco(&eco)
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");
}
