//! Serial vs region-sharded wall-clock on the largest fixture of the
//! paper suite (Test5), plus the byte-identity check that makes the
//! speedup trustworthy: both runs must produce the same report (modulo
//! CPU time), the same per-net colors and the same patterns.
//!
//! Usage: `shard [--scale X | --full] [--threads N]` (threads default:
//! available parallelism, at least 2).

use sadp_core::{Router, RouterConfig};
use sadp_geom::Layer;
use sadp_grid::BenchmarkSpec;
use std::time::Instant;

fn routed(spec: &BenchmarkSpec, threads: usize) -> (sadp_core::RoutingReport, Router, f64) {
    let (mut plane, netlist) = spec.generate();
    let mut config = RouterConfig::paper_defaults();
    config.threads = threads;
    let mut router = Router::new(config);
    let start = Instant::now();
    let report = router.route_all(&mut plane, &netlist);
    (report, router, start.elapsed().as_secs_f64())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = sadp_bench::scale_from_args(&args);
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(2)
                .max(2)
        });

    let spec = BenchmarkSpec::paper_fixed_suite()
        .pop()
        .expect("suite is non-empty")
        .scaled(scale);
    println!(
        "shard bench: {} at scale {scale} — {} nets on {}x{}x{} tracks",
        spec.name, spec.net_count, spec.width_tracks, spec.height_tracks, spec.layers
    );

    let (mut serial_report, serial_router, serial_secs) = routed(&spec, 1);
    let (mut sharded_report, sharded_router, sharded_secs) = routed(&spec, threads);

    // Identity check: everything except the measured CPU time must match.
    serial_report.cpu = std::time::Duration::ZERO;
    sharded_report.cpu = std::time::Duration::ZERO;
    assert_eq!(
        serial_report, sharded_report,
        "sharded report diverged from serial"
    );
    let layers = spec.layers;
    for l in 0..layers {
        assert_eq!(
            serial_router.patterns_on_layer(Layer(l)),
            sharded_router.patterns_on_layer(Layer(l)),
            "sharded patterns diverged on layer {l}"
        );
    }
    assert_eq!(serial_router.failed(), sharded_router.failed());

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!(
        "serial  (threads=1): {serial_secs:8.3}s  routed {} / {}",
        serial_report.routed_nets, serial_report.total_nets
    );
    println!("sharded (threads={threads}): {sharded_secs:8.3}s  identical result");
    println!(
        "speedup: {:.2}x on {cores} core(s)",
        serial_secs / sharded_secs.max(1e-9)
    );
    if cores < 2 {
        println!("note: single-core host — the identity check is meaningful, the speedup is not");
    }
}
