//! Congestion sweep (extension study, not in the paper): routability,
//! overlay and rip-up effort as functions of net density, for our router
//! and the two Table III baselines.
//!
//! Usage: `sweep [--nets N] [--seed S]` — the die area is held at the
//! Test1 aspect while the net count sweeps a density range.

use sadp_baselines::{BaselineKind, BaselineRouter};
use sadp_core::{Router, RouterConfig};
use sadp_grid::BenchmarkSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let base: usize = args
        .iter()
        .position(|a| a == "--nets")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(220);
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2024);

    println!("Density sweep on a 64x64-track 3-layer block (seed {seed})");
    println!(
        "{:>6} | {:>24} | {:>6} | {:>8} | {:>5} | {:>7}",
        "nets", "router", "Rout.", "overlay", "#C", "ripups"
    );
    println!("{}", "-".repeat(72));
    for factor in [50u32, 75, 100, 125, 150] {
        let nets = base * factor as usize / 100;
        let spec = BenchmarkSpec::new(format!("d{factor}"), nets, 64, 64).with_seed(seed);

        let (mut plane, netlist) = spec.generate();
        let mut ours = Router::new(RouterConfig::paper_defaults());
        let r = ours.route_all(&mut plane, &netlist);
        println!(
            "{:>6} | {:>24} | {:5.1}% | {:8} | {:5} | {:7}",
            nets,
            "ours",
            r.routability(),
            r.overlay_units,
            r.cut_conflicts,
            r.ripups
        );
        for kind in [BaselineKind::GaoPanTrim, BaselineKind::CutNoMerge] {
            let (mut plane, netlist) = spec.generate();
            let mut b = BaselineRouter::new(kind);
            let r = b.route_all(&mut plane, &netlist);
            println!(
                "{:>6} | {:>24} | {:5.1}% | {:8} | {:5} | {:7}",
                nets,
                kind.name(),
                r.routability(),
                r.overlay_units,
                r.cut_conflicts,
                r.ripups
            );
        }
        println!("{}", "-".repeat(72));
    }
    println!("expected shape: our routability degrades gracefully with density");
    println!("while the baselines' conflict counts explode.");
}
