//! Regenerates Table I (color-assignment notation) and Table II (the 11
//! potential overlay scenarios with color rules and side-overlay bounds),
//! cross-checked against the pixel decomposition simulator.

use sadp_decomp::replay_all_scenarios;
use sadp_geom::DesignRules;
use sadp_scenario::{scenario_summary, Assignment};

fn main() {
    println!("Table I: color assignment notation");
    println!("  C = core pattern, S = second pattern");
    for asg in Assignment::ALL {
        println!(
            "  {asg}: A is a {} pattern, B is a {} pattern",
            asg.color_a(),
            asg.color_b()
        );
    }

    println!();
    println!("Table II: potential overlay scenarios (units of w_line)");
    println!("type  | color rule               | min SO | max SO | note");
    println!("------+--------------------------+--------+--------+-----------------");
    for row in scenario_summary() {
        println!("{row}");
    }

    println!();
    println!("Cross-check: pixel decomposition simulator, canonical windows");
    println!("type  |   CC |   CS |   SC |   SS   (measured side overlay, units; * = hard)");
    println!("------+------+------+------+------");
    for replay in replay_all_scenarios(&DesignRules::node_10nm()) {
        let cell = |a: Assignment| {
            format!(
                "{:3}{}",
                replay.side_units(a),
                if replay.is_hard(a) { "*" } else { " " }
            )
        };
        println!(
            "{:5} | {} | {} | {} | {}",
            replay.kind.name(),
            cell(Assignment::CC),
            cell(Assignment::CS),
            cell(Assignment::SC),
            cell(Assignment::SS),
        );
    }
}
