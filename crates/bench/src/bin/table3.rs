//! Regenerates Table III: the fixed-pin suite Test1–Test5, our router vs
//! the trim baseline \[11\] (Gao & Pan) and the cut baseline \[16\].
//!
//! Usage: `table3 [--scale X | --full]` (default scale 0.2). Baselines get
//! a per-circuit wall-clock budget scaled with the instance.

use sadp_baselines::BaselineKind;
use sadp_bench::{run_baseline, run_ours, scale_from_args, RunRow};
use sadp_grid::BenchmarkSpec;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    println!("Table III: fixed-pin benchmarks (scale {scale})");
    println!("circuit    nets | router                 | Rout.  | overlay  |  #C  | CPU");
    println!("{}", "-".repeat(84));

    // (router, routability sum, circuits, overlay, conflicts, cpu)
    let mut totals: Vec<(String, f64, u32, u64, u64, f64)> = Vec::new();
    for spec in BenchmarkSpec::paper_fixed_suite() {
        let spec = spec.scaled(scale);
        let ours = run_ours(&spec);
        let budget = Duration::from_secs_f64(60.0 + 600.0 * scale);
        let gp = run_baseline(BaselineKind::GaoPanTrim, &spec, Some(budget));
        let cut = run_baseline(BaselineKind::CutNoMerge, &spec, Some(budget));
        for row in [&ours, &gp, &cut] {
            println!("{}", row.formatted());
            accumulate(&mut totals, row);
        }
        println!("{}", "-".repeat(84));
    }

    println!("\nTotals across the suite:");
    println!("router                 | Rout.  | overlay  |  #C  | CPU");
    for (name, rout_sum, circuits, overlay, conflicts, cpu) in &totals {
        let mean = rout_sum / f64::from((*circuits).max(1));
        println!("{name:22} | {mean:5.1}% | {overlay:8} | {conflicts:4} | {cpu:8.2}s");
    }
    if let (Some(ours), Some(gp)) = (
        totals.iter().find(|t| t.0.starts_with("ours")),
        totals.iter().find(|t| t.0.contains("[11]")),
    ) {
        if ours.3 > 0 {
            println!(
                "\noverlay reduction vs [11]: {:.1}% (paper: >90%), conflicts: {} vs {}",
                100.0 * (1.0 - ours.3 as f64 / gp.3.max(1) as f64),
                ours.4,
                gp.4
            );
        }
    }
}

fn accumulate(totals: &mut Vec<(String, f64, u32, u64, u64, f64)>, row: &RunRow) {
    if row.timed_out {
        return;
    }
    let entry = totals.iter_mut().find(|t| t.0 == row.router);
    let routability = row.report.routability();
    match entry {
        Some(t) => {
            t.1 += routability;
            t.2 += 1;
            t.3 += row.report.overlay_units;
            t.4 += row.report.cut_conflicts;
            t.5 += row.report.cpu.as_secs_f64();
        }
        None => totals.push((
            row.router.clone(),
            routability,
            1,
            row.report.overlay_units,
            row.report.cut_conflicts,
            row.report.cpu.as_secs_f64(),
        )),
    }
}
