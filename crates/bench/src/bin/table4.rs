//! Regenerates Table IV: the multiple-pin-candidate suite Test6–Test10,
//! our router vs baseline \[10\] (Du et al.), with the paper's reference
//! numbers printed alongside.
//!
//! Usage: `table4 [--scale X | --full] [--du-budget SECS]`.

use sadp_baselines::BaselineKind;
use sadp_bench::{run_baseline, run_ours, scale_from_args, PaperRow, TABLE4_DU, TABLE4_OURS};
use sadp_grid::BenchmarkSpec;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let du_budget = args
        .iter()
        .position(|a| a == "--du-budget")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(120.0 + 600.0 * scale);

    println!("Table IV: multiple-pin-candidate benchmarks (scale {scale})");
    println!("circuit    nets | router                 | Rout.  | overlay  |  #C  | CPU");
    println!("{}", "-".repeat(84));

    let mut speedups: Vec<f64> = Vec::new();
    for (i, spec) in BenchmarkSpec::paper_multi_suite().into_iter().enumerate() {
        let spec = spec.scaled(scale);
        let ours = run_ours(&spec);
        let du = run_baseline(
            BaselineKind::DuTrim,
            &spec,
            Some(Duration::from_secs_f64(du_budget)),
        );
        println!("{}", ours.formatted());
        println!("{}", du.formatted());
        if !du.timed_out && ours.report.cpu.as_secs_f64() > 0.0 {
            speedups.push(du.report.cpu.as_secs_f64() / ours.report.cpu.as_secs_f64());
        }
        print_paper_reference(&TABLE4_OURS[i], "paper ours");
        print_paper_reference(&TABLE4_DU[i], "paper [10]");
        println!("{}", "-".repeat(84));
    }
    if !speedups.is_empty() {
        let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
        println!("measured mean speedup vs [10]: {mean:.0}x (paper: 2520x; grows with size)");
    }
}

fn print_paper_reference(row: &PaperRow, label: &str) {
    let fmt_opt_f = |v: Option<f64>| v.map_or("NA".into(), |x| format!("{x:5.1}"));
    let fmt_opt_u = |v: Option<u64>| v.map_or("NA".into(), |x| x.to_string());
    println!(
        "  ({label:10}: Rout {}%, overlay {}, #C {}, CPU {}s)",
        fmt_opt_f(row.routability),
        fmt_opt_u(row.overlay),
        fmt_opt_u(row.conflicts),
        fmt_opt_f(row.cpu_s),
    );
}
