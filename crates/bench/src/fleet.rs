//! Fleet benchmark support: instance discovery over the committed
//! fixture tree and structural validation of the emitted record.
//!
//! The `fleet` binary routes every committed design — native `.layout`
//! fixtures, the replay corpus, and the imported DSN/DEF suite — at
//! 1/2/4 threads, asserts byte-identity of the deterministic report
//! projection per instance, and writes a consolidated
//! `BENCH_<rev>.json` with schema [`SCHEMA`]. CI gates only on the
//! deterministic fields of that record (schema, per-format instance
//! counts, routability), never on wall-clock.

use sadp_ingest::{ingest_text, lef::read_lef, sidecar_lef, Format, Imported};
use sadp_serve::json::{self, Json};
use std::path::{Path, PathBuf};

/// Schema tag of the consolidated fleet record.
pub const SCHEMA: &str = "sadp-fleet-bench/v4";

/// The thread counts every instance is routed at.
pub const THREADS: [usize; 3] = [1, 2, 4];

/// One design file in the fleet.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Stable display name: path relative to `fixtures/`, extension
    /// stripped (e.g. `corpus/odd-cycle-merge-and-cut`).
    pub name: String,
    /// On-disk location.
    pub path: PathBuf,
    /// Format implied by the fixture tree layout; the actual parse
    /// still goes through content sniffing.
    pub format: Format,
}

/// Collects `*.layout` files in a directory as instances named
/// `prefix/<stem>`.
fn collect(dir: &Path, prefix: &str, exts: &[(&str, Format)], out: &mut Vec<Instance>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(ext) = path.extension().and_then(|e| e.to_str()) else {
            continue;
        };
        let Some(&(_, format)) = exts.iter().find(|(e, _)| ext.eq_ignore_ascii_case(e)) else {
            continue;
        };
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        out.push(Instance {
            name: if prefix.is_empty() {
                stem.to_string()
            } else {
                format!("{prefix}/{stem}")
            },
            path,
            format,
        });
    }
}

/// Discovers every routable design under `<root>/fixtures`: top-level
/// and corpus `.layout` files plus the imported `.dsn`/`.def` suite
/// (`.lef` sidecars are libraries, not instances). Sorted by name so
/// the record ordering is deterministic.
#[must_use]
pub fn discover(root: &Path) -> Vec<Instance> {
    let fixtures = root.join("fixtures");
    let mut out = Vec::new();
    collect(&fixtures, "", &[("layout", Format::Layout)], &mut out);
    collect(
        &fixtures.join("corpus"),
        "corpus",
        &[("layout", Format::Layout)],
        &mut out,
    );
    collect(
        &fixtures.join("imported"),
        "imported",
        &[("dsn", Format::Dsn), ("def", Format::Def)],
        &mut out,
    );
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Reads and ingests one instance, resolving the conventional LEF
/// sidecar for DEF files.
///
/// # Errors
///
/// Returns a human-readable message naming the failing file.
pub fn load(instance: &Instance) -> Result<Imported, String> {
    let path = &instance.path;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let lef = match sidecar_lef(path) {
        Some(lef_path) => {
            let lef_text = std::fs::read_to_string(&lef_path)
                .map_err(|e| format!("{}: {e}", lef_path.display()))?;
            Some(read_lef(&lef_text).map_err(|e| format!("{}: lef: {e}", lef_path.display()))?)
        }
        None => None,
    };
    ingest_text(&text, Some(path), lef.as_ref()).map_err(|e| format!("{}: {e}", path.display()))
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn num(v: &Json, key: &str) -> Result<f64, String> {
    match field(v, key)? {
        Json::Num(n) => Ok(*n),
        _ => Err(format!("field `{key}` is not a number")),
    }
}

fn arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    match field(v, key)? {
        Json::Arr(items) => Ok(items),
        _ => Err(format!("field `{key}` is not an array")),
    }
}

/// Structurally validates a fleet record: schema tag, per-format
/// instance counts consistent with the instance list, three runs per
/// instance at [`THREADS`], routability within `[0, 1]`, stage seconds
/// present, and a non-vacuous imported suite (at least one DSN and one
/// DEF instance, each with at least one routed net).
///
/// The `fleet` binary self-checks its output through this before
/// writing; the unit tests pin the rejection messages.
///
/// # Errors
///
/// Returns the first structural problem found.
pub fn validate_record(text: &str) -> Result<(), String> {
    let root = json::parse(text)?;
    let schema = field(&root, "schema")?.as_str().unwrap_or("");
    if schema != SCHEMA {
        return Err(format!("schema is `{schema}`, expected `{SCHEMA}`"));
    }
    if field(&root, "rev")?.as_str().is_none() {
        return Err("field `rev` is not a string".to_string());
    }
    let threads = arr(&root, "threads")?;
    let want: Vec<Json> = THREADS.iter().map(|&t| Json::Num(t as f64)).collect();
    if threads != want {
        return Err(format!("threads is {threads:?}, expected {THREADS:?}"));
    }

    let formats = field(&root, "formats")?;
    let mut declared = 0u64;
    for fmt in ["layout", "dsn", "def"] {
        declared += num(formats, fmt)? as u64;
    }
    let instances = arr(&root, "instances")?;
    if instances.len() as u64 != declared {
        return Err(format!(
            "formats declare {declared} instances, list has {}",
            instances.len()
        ));
    }

    let mut routed_by_format = [("layout", 0u64), ("dsn", 0), ("def", 0)];
    for inst in instances {
        let name = field(inst, "name")?.as_str().unwrap_or("?").to_string();
        let fmt = field(inst, "format")?.as_str().unwrap_or("").to_string();
        let slot = routed_by_format
            .iter_mut()
            .find(|(f, _)| *f == fmt)
            .ok_or_else(|| format!("{name}: unknown format `{fmt}`"))?;
        num(inst, "nets")?;
        num(inst, "waves")?;
        let runs = arr(inst, "runs")?;
        if runs.len() != THREADS.len() {
            return Err(format!("{name}: expected {} runs", THREADS.len()));
        }
        for (run, &t) in runs.iter().zip(THREADS.iter()) {
            if num(run, "threads")? as usize != t {
                return Err(format!("{name}: runs are not ordered {THREADS:?}"));
            }
            let routability = num(run, "routability")?;
            if !(0.0..=1.0).contains(&routability) {
                return Err(format!("{name}: routability {routability} outside [0, 1]"));
            }
            num(run, "wall_s")?;
            let stages = field(run, "stages")?;
            match stages {
                Json::Obj(map) if !map.is_empty() => {
                    for (stage, s) in map {
                        num(s, "s").map_err(|e| format!("{name}: stage `{stage}`: {e}"))?;
                        num(s, "count").map_err(|e| format!("{name}: stage `{stage}`: {e}"))?;
                    }
                }
                _ => return Err(format!("{name}: `stages` is not a non-empty object")),
            }
            slot.1 += num(run, "routed")? as u64;
        }
    }
    for (fmt, routed) in routed_by_format {
        if routed == 0 {
            return Err(format!(
                "vacuous record: no `{fmt}` instance routed any net"
            ));
        }
    }

    let eco = field(&root, "eco")?;
    if num(eco, "edits")? < 1.0 {
        return Err("vacuous record: eco section has no edits".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    #[test]
    fn discovery_finds_all_three_formats_in_the_committed_tree() {
        let instances = discover(&repo_root());
        let count = |f: Format| instances.iter().filter(|i| i.format == f).count();
        assert!(count(Format::Layout) >= 2, "layout fixtures missing");
        assert!(count(Format::Dsn) >= 1, "imported DSN fixture missing");
        assert!(count(Format::Def) >= 1, "imported DEF fixture missing");
        let names: Vec<&str> = instances.iter().map(|i| i.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "instances are not name-sorted");
        assert!(
            !names.iter().any(|n| n.contains("macro-block.lef")),
            "LEF sidecars are libraries, not instances"
        );
    }

    #[test]
    fn committed_imported_fixtures_load_and_carry_nets() {
        for inst in discover(&repo_root()) {
            let imported = load(&inst).expect("committed fixture ingests");
            assert!(
                !imported.netlist.is_empty(),
                "{}: no nets survived import",
                inst.name
            );
            assert_eq!(imported.format, inst.format, "{}", inst.name);
        }
    }

    fn record(schema: &str, def_routed: u64, routability: f64) -> String {
        let inst = |name: &str, fmt: &str, routed: u64| {
            let run = |t: usize| {
                format!(
                    "{{\"threads\":{t},\"wall_s\":0.1,\"routability\":{routability},\
                     \"routed\":{routed},\"failed\":0,\
                     \"stages\":{{\"order\":{{\"s\":0.01,\"count\":3}}}}}}"
                )
            };
            format!(
                "{{\"name\":\"{name}\",\"format\":\"{fmt}\",\"nets\":2,\"waves\":1,\
                 \"runs\":[{},{},{}]}}",
                run(1),
                run(2),
                run(4)
            )
        };
        format!(
            "{{\"schema\":\"{schema}\",\"rev\":\"abc\",\"cores\":4,\"threads\":[1,2,4],\
             \"formats\":{{\"layout\":1,\"dsn\":1,\"def\":1}},\
             \"instances\":[{},{},{}],\"eco\":{{\"edits\":8}}}}",
            inst("odd_cycle", "layout", 2),
            inst("imported/led-matrix", "dsn", 2),
            inst("imported/macro-block", "def", def_routed),
        )
    }

    #[test]
    fn a_well_formed_record_validates() {
        validate_record(&record(SCHEMA, 2, 1.0)).expect("valid record");
    }

    #[test]
    fn the_wrong_schema_tag_is_rejected() {
        let e = validate_record(&record("sadp-fleet-bench/v3", 2, 1.0)).unwrap_err();
        assert!(e.contains("expected `sadp-fleet-bench/v4`"), "{e}");
    }

    #[test]
    fn a_vacuous_imported_suite_is_rejected() {
        let e = validate_record(&record(SCHEMA, 0, 1.0)).unwrap_err();
        assert!(e.contains("no `def` instance routed"), "{e}");
    }

    #[test]
    fn out_of_range_routability_is_rejected() {
        let e = validate_record(&record(SCHEMA, 2, 1.5)).unwrap_err();
        assert!(e.contains("outside [0, 1]"), "{e}");
    }
}
