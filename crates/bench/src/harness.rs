//! Shared benchmark-run plumbing for the table/figure binaries.

use sadp_baselines::{BaselineKind, BaselineRouter};
use sadp_core::{Router, RouterConfig, RoutingReport};
use sadp_grid::BenchmarkSpec;
use sadp_obs::{BufferRecorder, NoopRecorder, Recorder};
use std::time::Duration;

/// One measured table row.
#[derive(Debug, Clone)]
pub struct RunRow {
    /// Circuit name.
    pub circuit: String,
    /// Router label.
    pub router: String,
    /// Nets in the instance.
    pub nets: usize,
    /// The measured report.
    pub report: RoutingReport,
    /// Whether the run hit its time budget (printed as `NA`).
    pub timed_out: bool,
}

impl RunRow {
    /// Formats the row for the tables: name, nets, routability, overlay,
    /// conflicts, cpu.
    #[must_use]
    pub fn formatted(&self) -> String {
        if self.timed_out {
            return format!(
                "{:8} {:>6} | {:22} |     NA |       NA |   NA |       NA",
                self.circuit, self.nets, self.router
            );
        }
        format!(
            "{:8} {:>6} | {:22} | {:5.1}% | {:8} | {:4} | {:8.2}s",
            self.circuit,
            self.nets,
            self.router,
            self.report.routability(),
            self.report.overlay_units,
            self.report.cut_conflicts,
            self.report.cpu.as_secs_f64()
        )
    }
}

/// Worker threads for the bench binaries, from the `SADP_THREADS`
/// environment variable (default: serial). The routed result is identical
/// for any value; only the wall-clock changes.
#[must_use]
pub fn threads_from_env() -> usize {
    std::env::var("SADP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Whether stage profiles should be recorded and appended as JSON lines
/// to the file named by the `SADP_PROFILE_JSON` environment variable
/// (the `EXPERIMENTS.md`-ready record format).
#[must_use]
pub fn profile_json_path() -> Option<String> {
    std::env::var("SADP_PROFILE_JSON")
        .ok()
        .filter(|p| !p.is_empty())
}

/// Appends one profile record for a finished run to the
/// `SADP_PROFILE_JSON` file (no-op when the variable is unset). Each line
/// is a self-contained JSON object keyed by circuit and router label.
fn record_profile(row: &RunRow) {
    let Some(path) = profile_json_path() else {
        return;
    };
    let line = format!(
        "{{\"circuit\":\"{}\",\"router\":\"{}\",\"nets\":{},\"cpu_seconds\":{:.6},\"stages\":{}}}\n",
        row.circuit,
        row.router,
        row.nets,
        row.report.cpu.as_secs_f64(),
        row.report.profile.to_json()
    );
    use std::io::Write;
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = res {
        eprintln!("warning: could not append profile record to {path}: {e}");
    }
}

/// Routes one benchmark with our router and returns the row. When
/// `SADP_PROFILE_JSON` is set, the run is timed per stage and a JSON
/// record is appended to that file.
#[must_use]
pub fn run_ours(spec: &BenchmarkSpec) -> RunRow {
    let (mut plane, netlist) = spec.generate();
    let mut config = RouterConfig::paper_defaults();
    config.threads = threads_from_env();
    let mut router = Router::new(config);
    let profiling = profile_json_path().is_some();
    let mut buffer = BufferRecorder::with_flags(false, true);
    let mut noop = NoopRecorder;
    let rec: &mut dyn Recorder = if profiling { &mut buffer } else { &mut noop };
    let report = router.route_all_with(&mut plane, &netlist, rec);
    let row = RunRow {
        circuit: spec.name.clone(),
        router: "ours (cut, overlay-aware)".into(),
        nets: netlist.len(),
        report,
        timed_out: false,
    };
    if profiling {
        record_profile(&row);
    }
    row
}

/// Routes one benchmark with a baseline and returns the row.
#[must_use]
pub fn run_baseline(kind: BaselineKind, spec: &BenchmarkSpec, budget: Option<Duration>) -> RunRow {
    let (mut plane, netlist) = spec.generate();
    let mut router = BaselineRouter::new(kind);
    if let Some(b) = budget {
        router = router.with_time_budget(b);
    }
    let report = router.route_all(&mut plane, &netlist);
    RunRow {
        circuit: spec.name.clone(),
        router: kind.name().into(),
        nets: netlist.len(),
        report,
        timed_out: router.timed_out(),
    }
}

/// Resolves the benchmark scale from CLI args / environment:
/// `--full` → 1.0, `--scale X` → X, `SADP_SCALE` env var, default 0.2.
#[must_use]
pub fn scale_from_args(args: &[String]) -> f64 {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--full" {
            return 1.0;
        }
        if a == "--scale" {
            if let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) {
                return v;
            }
        }
    }
    std::env::var("SADP_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_resolution_order() {
        let s = |v: &[&str]| scale_from_args(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        assert_eq!(s(&["--full"]), 1.0);
        assert_eq!(s(&["--scale", "0.5"]), 0.5);
        assert_eq!(s(&["--scale"]), 0.2); // malformed falls back
        assert_eq!(s(&[]), 0.2);
    }

    #[test]
    fn rows_run_and_format() {
        let spec = BenchmarkSpec::new("mini", 25, 48, 48).with_seed(3);
        let ours = run_ours(&spec);
        assert_eq!(ours.nets, 25);
        assert!(ours.formatted().contains("mini"));
        let base = run_baseline(BaselineKind::GaoPanTrim, &spec, None);
        assert!(base.formatted().contains("[11]"));
        let na = run_baseline(BaselineKind::DuTrim, &spec, Some(Duration::ZERO));
        assert!(na.timed_out);
        assert!(na.formatted().contains("NA"));
    }
}
