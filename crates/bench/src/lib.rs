//! Harness library for regenerating the paper's evaluation tables and
//! figures (see DESIGN.md §4 for the experiment index).
//!
//! The binaries in `src/bin/` print each table/figure:
//!
//! | Binary | Reproduces |
//! |--------|------------|
//! | `table2` | Table II — scenario color rules, min/max side overlay |
//! | `table3` | Table III — fixed-pin suite vs baselines \[11\] and \[16\] |
//! | `table4` | Table IV — multi-candidate suite vs baseline \[10\] |
//! | `fig20` | Fig. 20 — runtime vs net count, least-squares exponent |
//! | `fig21` | Figs. 21/22 — partial routing result, ours vs \[16\] |
//! | `fig_appendix` | Figs. 23–34 — all scenario color assignments |
//! | `shard` | serial vs region-sharded wall-clock + identity check |
//!
//! Table binaries accept a scale factor (`SADP_SCALE` env var or `--scale
//! 0.2`); the default 0.2 finishes in seconds, `--full` runs the paper's
//! sizes. Measured-vs-paper numbers are recorded in `EXPERIMENTS.md`.

pub mod fleet;
pub mod harness;
pub mod lsq;
pub mod paper;
pub mod scaling;
pub mod timing;

pub use harness::{run_baseline, run_ours, scale_from_args, threads_from_env, RunRow};
pub use lsq::fit_power_law;
pub use paper::{PaperRow, TABLE3_BASELINES, TABLE4_DU, TABLE4_OURS};
