//! Least-squares power-law fitting for the Fig. 20 runtime analysis.

/// Fits `y = c · x^k` by linear regression in log–log space and returns
/// `(k, c)`. Points with non-positive coordinates are skipped.
///
/// # Example
///
/// ```
/// use sadp_bench::fit_power_law;
/// let pts: Vec<(f64, f64)> = (1..=6).map(|i| {
///     let x = 1000.0 * i as f64;
///     (x, 0.01 * x.powf(1.42))
/// }).collect();
/// let (k, _) = fit_power_law(&pts);
/// assert!((k - 1.42).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics if fewer than two valid points are given.
#[must_use]
pub fn fit_power_law(points: &[(f64, f64)]) -> (f64, f64) {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    assert!(logs.len() >= 2, "need at least two positive points");
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|(x, _)| x).sum();
    let sy: f64 = logs.iter().map(|(_, y)| y).sum();
    let sxx: f64 = logs.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = logs.iter().map(|(x, y)| x * y).sum();
    let k = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let c = ((sy - k * sx) / n).exp();
    (k, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_law_recovered() {
        let pts: Vec<(f64, f64)> = (1..=5)
            .map(|i| {
                let x = 100.0 * i as f64;
                (x, 3.0 * x.powf(2.0))
            })
            .collect();
        let (k, c) = fit_power_law(&pts);
        assert!((k - 2.0).abs() < 1e-9);
        assert!((c - 3.0).abs() < 1e-6);
    }

    #[test]
    fn noisy_fit_is_close() {
        let pts = [
            (1500.0, 2.3),
            (2700.0, 5.2),
            (5500.0, 13.0),
            (12000.0, 42.0),
            (28000.0, 140.0),
        ];
        let (k, _) = fit_power_law(&pts);
        assert!(k > 1.0 && k < 2.0, "k = {k}");
    }

    #[test]
    fn skips_invalid_points() {
        let pts = [(0.0, 1.0), (1.0, 0.0), (10.0, 10.0), (100.0, 100.0)];
        let (k, _) = fit_power_law(&pts);
        assert!((k - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "two positive points")]
    fn too_few_points_panics() {
        let _ = fit_power_law(&[(1.0, 1.0)]);
    }
}
