//! Paper-reported reference numbers, printed next to our measurements.
//!
//! Table III of the source text is partially garbled; the values below are
//! the legible entries plus the prose claims of Section IV ("reduces the
//! total length of side overlays by more than 90 %, with zero cut
//! conflicts", "a 2520× speedup and 5 % higher routability" vs \[10\]).

/// One reference row: `(circuit, routability %, overlay length, cpu s,
/// conflicts)`. `None` entries were reported as `NA` in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Circuit name.
    pub circuit: &'static str,
    /// Routability in percent.
    pub routability: Option<f64>,
    /// Total side-overlay length (w_line units).
    pub overlay: Option<u64>,
    /// Runtime in seconds on the authors' 2.93 GHz workstation.
    pub cpu_s: Option<f64>,
    /// Cut/trim conflicts.
    pub conflicts: Option<u64>,
}

/// Table IV, our router (as published).
pub const TABLE4_OURS: [PaperRow; 5] = [
    PaperRow {
        circuit: "Test6",
        routability: Some(96.5),
        overlay: Some(193),
        cpu_s: Some(0.7),
        conflicts: Some(0),
    },
    PaperRow {
        circuit: "Test7",
        routability: Some(97.6),
        overlay: Some(245),
        cpu_s: Some(2.7),
        conflicts: Some(0),
    },
    PaperRow {
        circuit: "Test8",
        routability: Some(97.8),
        overlay: Some(339),
        cpu_s: Some(3.6),
        conflicts: Some(0),
    },
    PaperRow {
        circuit: "Test9",
        routability: Some(98.1),
        overlay: Some(745),
        cpu_s: Some(5.3),
        conflicts: Some(0),
    },
    PaperRow {
        circuit: "Test10",
        routability: Some(98.4),
        overlay: Some(1289),
        cpu_s: Some(50.8),
        conflicts: Some(0),
    },
];

/// Table IV, baseline \[10\] (Du et al.). Test9/10 exceeded 100 000 s.
pub const TABLE4_DU: [PaperRow; 5] = [
    PaperRow {
        circuit: "Test6",
        routability: Some(90.73),
        overlay: Some(2300),
        cpu_s: Some(738.0),
        conflicts: Some(0),
    },
    PaperRow {
        circuit: "Test7",
        routability: Some(93.25),
        overlay: Some(4097),
        cpu_s: Some(2919.0),
        conflicts: Some(0),
    },
    PaperRow {
        circuit: "Test8",
        routability: Some(93.07),
        overlay: Some(7521),
        cpu_s: Some(19019.0),
        conflicts: Some(0),
    },
    PaperRow {
        circuit: "Test9",
        routability: None,
        overlay: None,
        cpu_s: None,
        conflicts: None,
    },
    PaperRow {
        circuit: "Test10",
        routability: None,
        overlay: None,
        cpu_s: None,
        conflicts: None,
    },
];

/// Table III baseline reference (legible entries; the source text of the
/// table is partially garbled, see DESIGN.md §5): `\[11\]` then `\[16\]` for
/// Test1.
pub const TABLE3_BASELINES: [(&str, PaperRow); 2] = [
    (
        "[11]",
        PaperRow {
            circuit: "Test1",
            routability: Some(94.0),
            overlay: Some(3393),
            cpu_s: Some(8.5),
            conflicts: Some(329),
        },
    ),
    (
        "[16]",
        PaperRow {
            circuit: "Test1",
            routability: Some(75.4),
            overlay: Some(1519),
            cpu_s: Some(3.0),
            conflicts: Some(76),
        },
    ),
];

/// The empirical runtime exponent of Fig. 20 (least-squares fit of our
/// router's runtime against the net count).
pub const FIG20_EXPONENT: f64 = 1.42;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_rows_are_consistent() {
        assert_eq!(TABLE4_OURS.len(), TABLE4_DU.len());
        for (a, b) in TABLE4_OURS.iter().zip(&TABLE4_DU) {
            assert_eq!(a.circuit, b.circuit);
            // The paper's headline claims: higher routability, >90% less
            // overlay, large speedup — wherever \[10\] finished at all.
            if let (Some(ra), Some(rb)) = (a.routability, b.routability) {
                assert!(ra > rb);
            }
            if let (Some(oa), Some(ob)) = (a.overlay, b.overlay) {
                assert!((oa as f64) < 0.1 * ob as f64);
            }
            if let (Some(ca), Some(cb)) = (a.cpu_s, b.cpu_s) {
                assert!(cb / ca > 100.0);
            }
        }
    }

    #[test]
    fn our_conflicts_are_zero() {
        assert!(TABLE4_OURS.iter().all(|r| r.conflicts == Some(0)));
    }
}
