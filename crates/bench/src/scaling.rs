//! Scaling regression gate for the Fig. 20 series.
//!
//! The paper reports ≈ n^1.42 runtime growth for the cut-process router
//! (Fig. 20). A superlinear regression in the routing hot path shows up
//! here as a fitted exponent well above that, so CI runs the fig20 binary
//! with `--check` and fails when the exponent crosses [`MAX_EXPONENT`] or
//! any circuit reports a cut conflict.

use crate::fit_power_law;

/// Largest acceptable fitted exponent for `T(n) = c * n^k` on the fig20
/// series. The paper's reference is 1.42; we leave headroom for machine
/// noise at small scales but reject anything approaching quadratic.
pub const MAX_EXPONENT: f64 = 1.6;

/// One circuit's contribution to the scaling fit.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    pub nets: usize,
    pub seconds: f64,
    pub cut_conflicts: u64,
}

/// Fits the power law and validates the exponent and cut-conflict counts.
///
/// Returns a human-readable summary on success and the failure reason
/// otherwise. Requires at least three points so the fit is meaningful.
pub fn check_scaling(points: &[ScalingPoint]) -> Result<String, String> {
    if points.len() < 3 {
        return Err(format!("need at least 3 points, got {}", points.len()));
    }
    for p in points {
        if p.cut_conflicts != 0 {
            return Err(format!(
                "{} cut conflicts on the {}-net circuit (expected 0)",
                p.cut_conflicts, p.nets
            ));
        }
    }
    let xy: Vec<(f64, f64)> = points.iter().map(|p| (p.nets as f64, p.seconds)).collect();
    let (k, _) = fit_power_law(&xy);
    if k > MAX_EXPONENT {
        return Err(format!(
            "fitted exponent n^{k:.2} exceeds the n^{MAX_EXPONENT} gate"
        ));
    }
    Ok(format!(
        "fitted exponent n^{k:.2} <= n^{MAX_EXPONENT}, no cut conflicts"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(k: f64) -> Vec<ScalingPoint> {
        [300usize, 540, 1100, 2400, 5600]
            .iter()
            .map(|&n| ScalingPoint {
                nets: n,
                seconds: 1e-4 * (n as f64).powf(k),
                cut_conflicts: 0,
            })
            .collect()
    }

    #[test]
    fn accepts_paper_like_scaling() {
        assert!(check_scaling(&series(1.42)).is_ok());
    }

    #[test]
    fn rejects_quadratic_scaling() {
        assert!(check_scaling(&series(2.3)).is_err());
    }

    #[test]
    fn rejects_cut_conflicts() {
        let mut pts = series(1.2);
        pts[2].cut_conflicts = 1;
        assert!(check_scaling(&pts).is_err());
    }

    #[test]
    fn rejects_too_few_points() {
        assert!(check_scaling(&series(1.2)[..2]).is_err());
    }
}
