//! Minimal micro-benchmark loop used by the `benches/` entry points.
//!
//! The workspace builds hermetically (no crate registry), so the bench
//! harnesses cannot depend on criterion; this module provides the small
//! subset they need: warmup, a timed batch, and a median-of-runs report.

use std::time::Instant;

/// Times `f` and prints `name: <median> ns/iter (<runs> runs of <iters>)`.
///
/// Runs `iters` warmup iterations, then `runs` timed batches of `iters`
/// iterations each, and reports the median batch. Returns the median
/// nanoseconds per iteration so callers can assert coarse bounds.
pub fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> f64 {
    const RUNS: usize = 5;
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let mut samples: Vec<f64> = (0..RUNS)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            start.elapsed().as_nanos() as f64 / f64::from(iters)
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = samples[RUNS / 2];
    println!("{name:<40} {median:>12.0} ns/iter  ({RUNS} runs of {iters})");
    median
}
