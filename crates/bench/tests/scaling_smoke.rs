//! Sub-quadratic scaling smoke test on a reduced fig20 series.
//!
//! Wall-clock timing is too noisy for a debug-mode CI gate, so this fits
//! the power law on `nodes_expanded` instead — the deterministic search
//! effort that drove the superlinear runtime blow-up. A regression that
//! reintroduces quadratic work in the hot path (per-net component-wide
//! recoloring, degenerate spatial-hash queries, heap churn) shows up as
//! an exponent well above the paper's ≈ n^1.42.

use sadp_bench::fit_power_law;
use sadp_bench::harness::run_ours;
use sadp_grid::BenchmarkSpec;

#[test]
fn nodes_expanded_grows_subquadratically() {
    let rows: Vec<_> = BenchmarkSpec::paper_fixed_suite()
        .iter()
        .map(|spec| run_ours(&spec.clone().scaled(0.1)))
        .collect();
    assert!(rows.len() >= 3, "need enough points for a meaningful fit");

    for row in &rows {
        assert_eq!(
            row.report.cut_conflicts, 0,
            "{}: cut conflicts must stay zero",
            row.circuit
        );
        assert!(
            row.report.nodes_expanded > 0,
            "{}: nothing routed?",
            row.circuit
        );
    }

    let xy: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| (r.nets as f64, r.report.nodes_expanded as f64))
        .collect();
    let (k, _) = fit_power_law(&xy);
    assert!(
        k <= 1.5,
        "nodes_expanded fitted exponent n^{k:.2} exceeds the sub-quadratic gate (points: {xy:?})"
    );
}
