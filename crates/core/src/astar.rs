//! The overlay-aware A\*-search (`OverlayAwareAStarSearch`, Fig. 19
//! line 4).

use crate::config::RouterConfig;
use sadp_geom::{Dir, GridPoint, Step, TrackRect};
use sadp_grid::{NetId, RoutePath, RoutingPlane};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// A single search request: multi-source, multi-target (pin candidate
/// locations route to whichever pair is cheapest).
#[derive(Debug, Clone)]
pub struct AstarRequest<'a> {
    /// The net being routed (its own cells are passable).
    pub net: NetId,
    /// Source candidate points.
    pub sources: &'a [GridPoint],
    /// Target candidate points.
    pub targets: &'a [GridPoint],
    /// Extra per-cell penalties accumulated by rip-up iterations
    /// (scaled cost units).
    pub penalties: &'a HashMap<GridPoint, u64>,
    /// Soft keep-out halos around pins: `(owning net, scaled penalty)` per
    /// cell; charged to every net except the owner, so early nets leave
    /// later pins approachable.
    pub guards: &'a HashMap<GridPoint, (NetId, u64)>,
}

/// Statistics of one search.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes popped from the open list.
    pub expanded: u64,
    /// Whether a path was found.
    pub found: bool,
}

/// Per-cell wire direction hints for the `T2b` term: the planar axis the
/// occupying net runs along at that cell.
pub type DirMap = HashMap<GridPoint, Dir>;

/// Runs the overlay-aware A\*-search of eq. (5).
///
/// The cost of entering grid `j` from `i` is
/// `α·C_wl + β·C_via + γ·T2b(j) + penalty(j)`, where `T2b(j)` is 1 when
/// occupying `j` would create a type 2-b potential overlay scenario with a
/// routed net (a tip of the new wire one track from the side of a routed
/// wire, or vice versa).
///
/// Returns the cheapest path from any source to any target, or `None`.
#[must_use]
pub fn astar_search(
    plane: &RoutingPlane,
    req: &AstarRequest<'_>,
    dir_map: &DirMap,
    config: &RouterConfig,
) -> (Option<RoutePath>, SearchStats) {
    let mut stats = SearchStats::default();
    let targets: HashSet<GridPoint> = req.targets.iter().copied().collect();
    if targets.is_empty() || req.sources.is_empty() {
        return (None, stats);
    }

    // Bound the search window to the pin bounding box plus a margin.
    let window = search_window(req, config, plane);

    let alpha = config.alpha_cost();
    let beta = config.beta_cost();
    let gamma = config.gamma_cost();
    let wrong_way = config.wrong_way_cost();

    let h = |p: GridPoint| -> u64 {
        req.targets
            .iter()
            .map(|t| p.manhattan(t) as u64 * alpha + layer_delta(p, *t) * beta)
            .min()
            .expect("targets non-empty")
    };

    let mut open: BinaryHeap<Reverse<(u64, u64, GridPoint)>> = BinaryHeap::new();
    let mut g: HashMap<GridPoint, u64> = HashMap::new();
    let mut came: HashMap<GridPoint, GridPoint> = HashMap::new();
    for &s in req.sources {
        if passable(plane, s, req.net) {
            g.insert(s, 0);
            open.push(Reverse((h(s), 0, s)));
        }
    }

    while let Some(Reverse((_, gc, p))) = open.pop() {
        if g.get(&p).copied().unwrap_or(u64::MAX) < gc {
            continue; // stale heap entry
        }
        stats.expanded += 1;
        if targets.contains(&p) {
            stats.found = true;
            let mut pts = vec![p];
            let mut cur = p;
            while let Some(&prev) = came.get(&cur) {
                pts.push(prev);
                cur = prev;
            }
            pts.reverse();
            let path = RoutePath::new(pts).expect("A* emits contiguous paths");
            return (Some(path), stats);
        }
        for step in Step::ALL {
            let q = p.offset(step);
            if !in_window(q, &window, plane) || !passable(plane, q, req.net) {
                continue;
            }
            let mut cost = if step.is_planar() {
                if step.axis() == preferred_dir(q.layer) {
                    alpha
                } else {
                    wrong_way
                }
            } else {
                beta
            };
            if step.is_planar() {
                cost += gamma * t2b_count(plane, dir_map, req.net, q, step.axis());
            }
            cost += req.penalties.get(&q).copied().unwrap_or(0);
            if let Some(&(owner, guard)) = req.guards.get(&q) {
                if owner != req.net {
                    cost += guard;
                }
            }
            let ng = gc + cost;
            if ng < g.get(&q).copied().unwrap_or(u64::MAX) {
                g.insert(q, ng);
                came.insert(q, p);
                open.push(Reverse((ng + h(q), ng, q)));
            }
        }
    }
    (None, stats)
}

/// Preferred routing direction per layer: M1 horizontal, M2 vertical, M3
/// horizontal, alternating upward.
#[must_use]
pub fn preferred_dir(layer: sadp_geom::Layer) -> Dir {
    if layer.0.is_multiple_of(2) {
        Dir::Horizontal
    } else {
        Dir::Vertical
    }
}

fn layer_delta(a: GridPoint, b: GridPoint) -> u64 {
    (a.layer.0 as i32 - b.layer.0 as i32).unsigned_abs() as u64
}

fn passable(plane: &RoutingPlane, p: GridPoint, net: NetId) -> bool {
    plane.is_free(p) || plane.occupant(p) == Some(net)
}

fn search_window(
    req: &AstarRequest<'_>,
    config: &RouterConfig,
    plane: &RoutingPlane,
) -> TrackRect {
    let mut rect: Option<TrackRect> = None;
    for p in req.sources.iter().chain(req.targets) {
        let cell = TrackRect::cell(p.x, p.y);
        rect = Some(match rect {
            Some(r) => r.union_bbox(&cell),
            None => cell,
        });
    }
    let r = rect
        .expect("pins exist")
        .expanded(config.search_margin)
        .intersection(&TrackRect::new(0, 0, plane.width() - 1, plane.height() - 1));
    r.unwrap_or_else(|| TrackRect::new(0, 0, plane.width() - 1, plane.height() - 1))
}

fn in_window(p: GridPoint, window: &TrackRect, plane: &RoutingPlane) -> bool {
    p.layer.0 < plane.layers() && window.contains_cell(p.x, p.y)
}

/// Counts the type 2-b scenarios that occupying `q` while running along
/// `axis` would create with routed nets (the `T2b(j)` of eq. (5)):
///
/// * a routed wire one track *ahead* running perpendicular to us — our tip
///   would face its side,
/// * a routed wire one track to the *side* running perpendicular to us —
///   its tip would face our side.
fn t2b_count(
    plane: &RoutingPlane,
    dir_map: &DirMap,
    net: NetId,
    q: GridPoint,
    axis: Dir,
) -> u64 {
    let mut count = 0;
    let neighbors: [(i32, i32); 4] = [(1, 0), (-1, 0), (0, 1), (0, -1)];
    for (dx, dy) in neighbors {
        let n = GridPoint::new(q.layer, q.x + dx, q.y + dy);
        let Some(occ) = plane.occupant(n) else {
            continue;
        };
        if occ == net {
            continue;
        }
        let neighbor_axis = match dir_map.get(&n) {
            Some(&d) => d,
            None => continue,
        };
        let approach = if dx != 0 { Dir::Horizontal } else { Dir::Vertical };
        if approach == axis {
            // The neighbour is ahead of or behind us along our axis: our
            // tip faces it. 2-b if it runs perpendicular to us.
            if neighbor_axis != axis {
                count += 1;
            }
        } else {
            // The neighbour is beside us: 2-b if its wire runs toward us
            // (perpendicular to our axis), i.e. its tip faces our side.
            if neighbor_axis == approach {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_geom::{DesignRules, Layer};

    fn plane(w: i32, h: i32) -> RoutingPlane {
        RoutingPlane::new(3, w, h, DesignRules::node_10nm()).expect("valid")
    }

    fn search(
        plane: &RoutingPlane,
        from: GridPoint,
        to: GridPoint,
    ) -> (Option<RoutePath>, SearchStats) {
        let penalties = HashMap::new();
        let guards = HashMap::new();
        let req = AstarRequest {
            net: NetId(0),
            sources: &[from],
            targets: &[to],
            penalties: &penalties,
            guards: &guards,
        };
        astar_search(plane, &req, &DirMap::new(), &RouterConfig::paper_defaults())
    }

    #[test]
    fn straight_route() {
        let p = plane(32, 32);
        let (path, stats) = search(
            &p,
            GridPoint::new(Layer(0), 2, 5),
            GridPoint::new(Layer(0), 12, 5),
        );
        let path = path.expect("path found");
        assert!(stats.found);
        assert_eq!(path.wirelength(), 10);
        assert_eq!(path.via_count(), 0);
        assert_eq!(path.source(), GridPoint::new(Layer(0), 2, 5));
        assert_eq!(path.target(), GridPoint::new(Layer(0), 12, 5));
    }

    #[test]
    fn detours_around_blockage() {
        let mut p = plane(32, 32);
        p.add_blockage(Layer(0), TrackRect::new(6, 0, 6, 31));
        // Layer 0 is fully walled: the router must via up and back down.
        let (path, _) = search(
            &p,
            GridPoint::new(Layer(0), 2, 5),
            GridPoint::new(Layer(0), 12, 5),
        );
        let path = path.expect("path found");
        assert!(path.via_count() >= 2);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut p = plane(16, 16);
        for l in 0..3 {
            p.add_blockage(Layer(l), TrackRect::new(6, 0, 6, 15));
        }
        let (path, stats) = search(
            &p,
            GridPoint::new(Layer(0), 2, 5),
            GridPoint::new(Layer(0), 12, 5),
        );
        assert!(path.is_none());
        assert!(!stats.found);
        assert!(stats.expanded > 0);
    }

    #[test]
    fn multi_candidate_picks_cheapest_pair() {
        let p = plane(32, 32);
        let penalties = HashMap::new();
        let guards = HashMap::new();
        let req = AstarRequest {
            net: NetId(0),
            sources: &[
                GridPoint::new(Layer(0), 0, 0),
                GridPoint::new(Layer(0), 10, 10),
            ],
            targets: &[
                GridPoint::new(Layer(0), 30, 30),
                GridPoint::new(Layer(0), 12, 10),
            ],
            penalties: &penalties,
            guards: &guards,
        };
        let (path, _) = astar_search(
            &p,
            &req,
            &DirMap::new(),
            &RouterConfig::paper_defaults(),
        );
        let path = path.expect("path found");
        assert_eq!(path.source(), GridPoint::new(Layer(0), 10, 10));
        assert_eq!(path.target(), GridPoint::new(Layer(0), 12, 10));
        assert_eq!(path.wirelength(), 2);
    }

    #[test]
    fn penalties_steer_the_route() {
        let p = plane(32, 32);
        let mut penalties = HashMap::new();
        // Penalise the straight row so the path must leave it.
        for x in 3..12 {
            penalties.insert(GridPoint::new(Layer(0), x, 5), 50_000u64);
        }
        let guards = HashMap::new();
        let req = AstarRequest {
            net: NetId(0),
            sources: &[GridPoint::new(Layer(0), 2, 5)],
            targets: &[GridPoint::new(Layer(0), 12, 5)],
            penalties: &penalties,
            guards: &guards,
        };
        let (path, _) = astar_search(
            &p,
            &req,
            &DirMap::new(),
            &RouterConfig::paper_defaults(),
        );
        let path = path.expect("path found");
        assert!(
            path.wirelength() > 10 || path.via_count() > 0,
            "path should avoid the penalised row: {path}"
        );
    }

    #[test]
    fn t2b_penalty_avoids_tip_to_side() {
        // A routed vertical wire whose tip points at the straight row the
        // new net would take: with the gamma penalty the router prefers a
        // small detour over the 2-b scenario.
        let mut p = plane(32, 32);
        let mut dir_map = DirMap::new();
        for y in 7..12 {
            let c = GridPoint::new(Layer(0), 7, y);
            p.occupy(c, NetId(9)).unwrap();
            dir_map.insert(c, Dir::Vertical);
        }
        // Tip at (7,7); the straight row y=6 passes right under it.
        let penalties = HashMap::new();
        let guards = HashMap::new();
        let req = AstarRequest {
            net: NetId(0),
            sources: &[GridPoint::new(Layer(0), 2, 6)],
            targets: &[GridPoint::new(Layer(0), 12, 6)],
            penalties: &penalties,
            guards: &guards,
        };
        let mut cheap = RouterConfig::paper_defaults();
        cheap.gamma = 0.0;
        let (path_free, _) = astar_search(&p, &req, &dir_map, &cheap);
        let expensive = RouterConfig {
            gamma: 100.0,
            ..RouterConfig::paper_defaults()
        };
        let (path_avoid, _) = astar_search(&p, &req, &dir_map, &expensive);
        let free = path_free.expect("found");
        let avoid = path_avoid.expect("found");
        // Without the penalty the straight row (through the 2-b cell) wins.
        assert_eq!(free.wirelength(), 10);
        // With the penalty the path never *enters* (7,6) horizontally (the
        // move eq. (5) charges for); a vertical entry forms a 1-b
        // (merge-and-cut) relation instead, which is free of side overlay.
        let pts = avoid.points();
        if let Some(i) = pts.iter().position(|&p| p == GridPoint::new(Layer(0), 7, 6)) {
            assert!(i > 0);
            let prev = pts[i - 1];
            assert_eq!(prev.x, 7, "must not enter the 2-b cell sideways");
        }
    }

    #[test]
    fn t2b_count_direct() {
        let mut p = plane(16, 16);
        let mut dm = DirMap::new();
        // Vertical wire tip just north of (5,5).
        for y in 6..9 {
            let c = GridPoint::new(Layer(0), 5, y);
            p.occupy(c, NetId(1)).unwrap();
            dm.insert(c, Dir::Vertical);
        }
        // Moving horizontally through (5,5): its side faces the tip -> 1.
        assert_eq!(
            t2b_count(&p, &dm, NetId(0), GridPoint::new(Layer(0), 5, 5), Dir::Horizontal),
            1
        );
        // Moving vertically through (5,5): tip-to-tip (1-b), not 2-b -> 0.
        assert_eq!(
            t2b_count(&p, &dm, NetId(0), GridPoint::new(Layer(0), 5, 5), Dir::Vertical),
            0
        );
        // A horizontal neighbour beside us while we move horizontally is
        // 1-a (side-side), not 2-b.
        let mut p2 = plane(16, 16);
        let mut dm2 = DirMap::new();
        for x in 3..8 {
            let c = GridPoint::new(Layer(0), x, 6);
            p2.occupy(c, NetId(1)).unwrap();
            dm2.insert(c, Dir::Horizontal);
        }
        assert_eq!(
            t2b_count(&p2, &dm2, NetId(0), GridPoint::new(Layer(0), 5, 5), Dir::Horizontal),
            0
        );
    }
}
