//! The overlay-aware A\*-search (`OverlayAwareAStarSearch`, Fig. 19
//! line 4).
//!
//! Hot-path layout: all per-cell search state (g-costs, came-from links,
//! target membership) lives in generation-stamped dense vectors inside
//! [`SearchScratch`], indexed by the plane's own cell linearisation, and
//! the open list is a monotone [`BucketQueue`] — so one node expansion
//! costs a handful of array reads instead of several hash lookups and a
//! `O(log n)` heap operation. The heuristic is an `O(1)` bounding-box
//! lower bound rather than a min over all target points (branch routing
//! passes entire trunk paths as targets, which made the per-push
//! heuristic itself `O(|path|)` and the whole search superlinear).

use crate::bucket::BucketQueue;
use crate::budget::Budget;
use crate::config::RouterConfig;
use crate::grids::{DirGrid, GuardGrid, PenaltyGrid};
use crate::router::RouterError;
use sadp_geom::{Dir, GridPoint, Layer, Step, TrackRect};
use sadp_grid::{NetId, RoutePath, RoutingPlane};

/// A single search request: multi-source, multi-target (pin candidate
/// locations route to whichever pair is cheapest).
#[derive(Debug, Clone)]
pub struct AstarRequest<'a> {
    /// The net being routed (its own cells are passable).
    pub net: NetId,
    /// Source candidate points.
    pub sources: &'a [GridPoint],
    /// Target candidate points.
    pub targets: &'a [GridPoint],
    /// Extra per-cell penalties accumulated by rip-up iterations
    /// (scaled cost units).
    pub penalties: &'a PenaltyGrid,
    /// Soft keep-out halos around pins: `(owning net, scaled penalty)` per
    /// cell; charged to every net except the owner, so early nets leave
    /// later pins approachable.
    pub guards: &'a GuardGrid,
}

/// Statistics of one search.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes popped from the open list.
    pub expanded: u64,
    /// Whether a path was found.
    pub found: bool,
    /// Whether the search stopped because its [`Budget`] ran out. When
    /// set, `found` is false regardless of whether a path existed.
    pub budget_exceeded: bool,
}

/// Came-from sentinel: the cell is a search source.
const NO_PREV: u32 = u32::MAX;

/// Reusable dense search state sized to one routing plane.
///
/// Construct once (or let [`astar_search`] build a throwaway one) and pass
/// to [`astar_search_in`] for every net; clearing between searches is
/// `O(1)` via generation stamps.
#[derive(Debug)]
pub struct SearchScratch {
    width: i32,
    height: i32,
    layers: u8,
    g: Vec<u64>,
    came: Vec<u32>,
    stamp: Vec<u32>,
    target_stamp: Vec<u32>,
    generation: u32,
    queue: BucketQueue,
}

impl SearchScratch {
    /// Builds scratch state shaped like `plane`.
    ///
    /// # Panics
    ///
    /// Panics if the plane is too large for packed search indices; use
    /// [`SearchScratch::try_new`] to get the error as a value instead.
    #[must_use]
    pub fn new(plane: &RoutingPlane) -> Self {
        SearchScratch::try_new(plane).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checks that a plane's cells fit the packed 32-bit search indices
    /// (the open list and came-from links store cell ids as `u32`).
    ///
    /// # Errors
    ///
    /// Returns [`RouterError::PlaneTooLarge`] when they do not. The check
    /// runs *before* any search state is allocated, so an oversized plane
    /// fails cleanly instead of overflowing the index arithmetic (or
    /// aborting mid-allocation) deep inside a routing run.
    pub fn check_plane(plane: &RoutingPlane) -> Result<usize, RouterError> {
        checked_cell_count(plane.layers(), plane.width(), plane.height())
    }

    /// Builds scratch state shaped like `plane`.
    ///
    /// # Errors
    ///
    /// Returns [`RouterError::PlaneTooLarge`] if the plane has
    /// `u32::MAX` cells or more — the search packs cell indices into 32
    /// bits, and such a plane would need tens of gigabytes of search
    /// state anyway.
    pub fn try_new(plane: &RoutingPlane) -> Result<Self, RouterError> {
        let cells = SearchScratch::check_plane(plane)?;
        Ok(Self {
            width: plane.width(),
            height: plane.height(),
            layers: plane.layers(),
            g: vec![0; cells],
            came: vec![0; cells],
            stamp: vec![0; cells],
            target_stamp: vec![0; cells],
            generation: 0,
            queue: BucketQueue::new(),
        })
    }

    /// True if this scratch matches the plane's dimensions.
    #[must_use]
    pub fn fits(&self, plane: &RoutingPlane) -> bool {
        self.width == plane.width()
            && self.height == plane.height()
            && self.layers == plane.layers()
    }

    /// Starts a fresh search: bumps the generation and empties the queue.
    fn begin(&mut self) {
        self.generation = match self.generation.checked_add(1) {
            Some(g) => g,
            None => {
                self.stamp.fill(0);
                self.target_stamp.fill(0);
                1
            }
        };
        self.queue.clear();
    }

    #[inline]
    fn index(&self, p: GridPoint) -> u32 {
        ((p.layer.index() * self.height as usize + p.y as usize) * self.width as usize
            + p.x as usize) as u32
    }

    #[inline]
    fn point(&self, i: u32) -> GridPoint {
        let i = i as usize;
        let w = self.width as usize;
        let h = self.height as usize;
        GridPoint::new(
            Layer((i / (w * h)) as u8),
            (i % w) as i32,
            (i / w % h) as i32,
        )
    }

    #[inline]
    fn g_of(&self, i: u32) -> u64 {
        if self.stamp[i as usize] == self.generation {
            self.g[i as usize]
        } else {
            u64::MAX
        }
    }

    #[inline]
    fn record(&mut self, i: u32, g: u64, prev: u32) {
        let i = i as usize;
        self.stamp[i] = self.generation;
        self.g[i] = g;
        self.came[i] = prev;
    }

    #[inline]
    fn is_target(&self, i: u32) -> bool {
        self.target_stamp[i as usize] == self.generation
    }
}

/// Per-cell wire direction hints for the `T2b` term: the planar axis the
/// occupying net runs along at that cell (`None` where nothing routed).
pub type DirMap = DirGrid;

/// Runs the overlay-aware A\*-search of eq. (5) with throwaway scratch
/// state (convenience wrapper over [`astar_search_in`]).
#[must_use]
pub fn astar_search(
    plane: &RoutingPlane,
    req: &AstarRequest<'_>,
    dir_map: &DirGrid,
    config: &RouterConfig,
) -> (Option<RoutePath>, SearchStats) {
    let mut scratch = SearchScratch::new(plane);
    astar_search_in(plane, req, dir_map, config, &mut scratch)
}

/// Runs the overlay-aware A\*-search of eq. (5).
///
/// The cost of entering grid `j` from `i` is
/// `α·C_wl + β·C_via + γ·T2b(j) + penalty(j)`, where `T2b(j)` is 1 when
/// occupying `j` would create a type 2-b potential overlay scenario with a
/// routed net (a tip of the new wire one track from the side of a routed
/// wire, or vice versa).
///
/// The heuristic is `h(p) = planar_floor · bbox_dist(p) + β ·
/// layer_range_dist(p)` against the target bounding box, where
/// `planar_floor = min(α, wrong_way)` is the cheapest possible planar
/// step. Every edge cost is at least the matching per-step floor, so `h`
/// is consistent and the popped `f` keys are monotone — which is what
/// allows the radix-heap open list.
///
/// Returns the cheapest path from any source to any target, or `None`.
#[must_use]
pub fn astar_search_in(
    plane: &RoutingPlane,
    req: &AstarRequest<'_>,
    dir_map: &DirGrid,
    config: &RouterConfig,
    scratch: &mut SearchScratch,
) -> (Option<RoutePath>, SearchStats) {
    astar_search_budgeted(
        plane,
        req,
        dir_map,
        config,
        scratch,
        &mut Budget::unlimited(),
    )
}

/// [`astar_search_in`] under a search [`Budget`]: the budget is charged
/// once per expanded node, and an exhausted budget stops the search with
/// `SearchStats::budget_exceeded` set (no path is returned). An
/// unlimited budget costs one predictable branch per node.
#[must_use]
pub fn astar_search_budgeted(
    plane: &RoutingPlane,
    req: &AstarRequest<'_>,
    dir_map: &DirGrid,
    config: &RouterConfig,
    scratch: &mut SearchScratch,
    budget: &mut Budget,
) -> (Option<RoutePath>, SearchStats) {
    let mut stats = SearchStats::default();
    if req.targets.is_empty() || req.sources.is_empty() {
        return (None, stats);
    }
    debug_assert!(scratch.fits(plane), "scratch sized for a different plane");
    scratch.begin();

    // Bound the search window to the pin bounding box plus a margin.
    let window = search_window(req, config, plane);

    let alpha = config.alpha_cost();
    let beta = config.beta_cost();
    let gamma = config.gamma_cost();
    let wrong_way = config.wrong_way_cost();
    let planar_floor = alpha.min(wrong_way);

    // Target bounding box (planar + layer range) for the O(1) heuristic.
    let mut bbox: Option<TrackRect> = None;
    let (mut lmin, mut lmax) = (u8::MAX, 0u8);
    for t in req.targets {
        let cell = TrackRect::cell(t.x, t.y);
        bbox = Some(match bbox {
            Some(b) => b.union_bbox(&cell),
            None => cell,
        });
        lmin = lmin.min(t.layer.0);
        lmax = lmax.max(t.layer.0);
        let ti = scratch.index(*t) as usize;
        scratch.target_stamp[ti] = scratch.generation;
    }
    let bbox = bbox.expect("targets non-empty");
    let h = |p: GridPoint| -> u64 {
        let dx = (bbox.x0 - p.x).max(p.x - bbox.x1).max(0) as u64;
        let dy = (bbox.y0 - p.y).max(p.y - bbox.y1).max(0) as u64;
        let dl = if p.layer.0 < lmin {
            (lmin - p.layer.0) as u64
        } else if p.layer.0 > lmax {
            (p.layer.0 - lmax) as u64
        } else {
            0
        };
        (dx + dy) * planar_floor + dl * beta
    };

    for &s in req.sources {
        if passable(plane, s, req.net) {
            let i = scratch.index(s);
            scratch.record(i, 0, NO_PREV);
            scratch.queue.push(h(s), 0, i);
        }
    }

    while let Some((_, gc, ci)) = scratch.queue.pop() {
        if scratch.g_of(ci) < gc {
            continue; // stale queue entry
        }
        stats.expanded += 1;
        if !budget.charge() {
            stats.budget_exceeded = true;
            return (None, stats);
        }
        if scratch.is_target(ci) {
            stats.found = true;
            let mut pts = Vec::new();
            let mut cur = ci;
            loop {
                pts.push(scratch.point(cur));
                let prev = scratch.came[cur as usize];
                if prev == NO_PREV {
                    break;
                }
                cur = prev;
            }
            pts.reverse();
            let path = RoutePath::new(pts).expect("A* emits contiguous paths");
            return (Some(path), stats);
        }
        let p = scratch.point(ci);
        for step in Step::ALL {
            let q = p.offset(step);
            if !in_window(q, &window, plane) || !passable(plane, q, req.net) {
                continue;
            }
            let mut cost = match step.axis() {
                Some(axis) => {
                    let planar = if axis == preferred_dir(q.layer) {
                        alpha
                    } else {
                        wrong_way
                    };
                    planar + gamma * t2b_count(plane, dir_map, req.net, q, axis)
                }
                None => beta,
            };
            cost += req.penalties.get(q);
            let (owner, guard) = req.guards.get(q);
            if owner != req.net {
                cost += guard;
            }
            let ng = gc + cost;
            let qi = scratch.index(q);
            if ng < scratch.g_of(qi) {
                scratch.record(qi, ng, ci);
                scratch.queue.push(ng + h(q), ng, qi);
            }
        }
    }
    (None, stats)
}

/// Preferred routing direction per layer: M1 horizontal, M2 vertical, M3
/// horizontal, alternating upward.
#[must_use]
pub fn preferred_dir(layer: sadp_geom::Layer) -> Dir {
    if layer.0.is_multiple_of(2) {
        Dir::Horizontal
    } else {
        Dir::Vertical
    }
}

#[inline]
fn passable(plane: &RoutingPlane, p: GridPoint, net: NetId) -> bool {
    // Fast path: `is_free` is a single busy-bitplane word probe; only a
    // busy cell pays the occupant lookup in the full cell array.
    plane.is_free(p) || plane.occupant(p) == Some(net)
}

fn search_window(req: &AstarRequest<'_>, config: &RouterConfig, plane: &RoutingPlane) -> TrackRect {
    let mut rect: Option<TrackRect> = None;
    for p in req.sources.iter().chain(req.targets) {
        let cell = TrackRect::cell(p.x, p.y);
        rect = Some(match rect {
            Some(r) => r.union_bbox(&cell),
            None => cell,
        });
    }
    let r = rect
        .expect("pins exist")
        .expanded(config.search_margin)
        .intersection(&TrackRect::new(0, 0, plane.width() - 1, plane.height() - 1));
    r.unwrap_or_else(|| TrackRect::new(0, 0, plane.width() - 1, plane.height() - 1))
}

fn in_window(p: GridPoint, window: &TrackRect, plane: &RoutingPlane) -> bool {
    p.layer.0 < plane.layers() && window.contains_cell(p.x, p.y)
}

/// Counts the type 2-b scenarios that occupying `q` while running along
/// `axis` would create with routed nets (the `T2b(j)` of eq. (5)):
///
/// * a routed wire one track *ahead* running perpendicular to us — our tip
///   would face its side,
/// * a routed wire one track to the *side* running perpendicular to us —
///   its tip would face our side.
fn t2b_count(plane: &RoutingPlane, dir_map: &DirGrid, net: NetId, q: GridPoint, axis: Dir) -> u64 {
    let mut count = 0;
    let neighbors: [(i32, i32); 4] = [(1, 0), (-1, 0), (0, 1), (0, -1)];
    for (dx, dy) in neighbors {
        let n = GridPoint::new(q.layer, q.x + dx, q.y + dy);
        let Some(occ) = plane.occupant(n) else {
            continue;
        };
        if occ == net {
            continue;
        }
        let Some(neighbor_axis) = dir_map.get(n) else {
            continue;
        };
        let approach = if dx != 0 {
            Dir::Horizontal
        } else {
            Dir::Vertical
        };
        if approach == axis {
            // The neighbour is ahead of or behind us along our axis: our
            // tip faces it. 2-b if it runs perpendicular to us.
            if neighbor_axis != axis {
                count += 1;
            }
        } else {
            // The neighbour is beside us: 2-b if its wire runs toward us
            // (perpendicular to our axis), i.e. its tip faces our side.
            if neighbor_axis == approach {
                count += 1;
            }
        }
    }
    count
}

/// Computes `layers * width * height` and checks it fits the packed
/// 32-bit cell indices. Kept separate from [`SearchScratch::try_new`] so
/// the limit is testable from raw dimensions without allocating tens of
/// gigabytes of scratch state. The product is taken in `u128`:
/// `RoutingPlane` itself admits planes of up to 2^33 cells, which would
/// already overflow a 32-bit (and on some targets a pathological
/// intermediate) multiply.
fn checked_cell_count(layers: u8, width: i32, height: i32) -> Result<usize, RouterError> {
    let cells = layers as u128 * width as u128 * height as u128;
    if cells >= u32::MAX as u128 {
        return Err(RouterError::PlaneTooLarge { cells });
    }
    Ok(cells as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_geom::{DesignRules, Layer};

    fn plane(w: i32, h: i32) -> RoutingPlane {
        RoutingPlane::new(3, w, h, DesignRules::node_10nm()).expect("valid")
    }

    fn search(
        plane: &RoutingPlane,
        from: GridPoint,
        to: GridPoint,
    ) -> (Option<RoutePath>, SearchStats) {
        let penalties = PenaltyGrid::new(plane, 0);
        let guards = GuardGrid::new(plane, crate::grids::NO_GUARD);
        let req = AstarRequest {
            net: NetId(0),
            sources: &[from],
            targets: &[to],
            penalties: &penalties,
            guards: &guards,
        };
        let dir_map = DirGrid::new(plane, None);
        astar_search(plane, &req, &dir_map, &RouterConfig::paper_defaults())
    }

    #[test]
    fn straight_route() {
        let p = plane(32, 32);
        let (path, stats) = search(
            &p,
            GridPoint::new(Layer(0), 2, 5),
            GridPoint::new(Layer(0), 12, 5),
        );
        let path = path.expect("path found");
        assert!(stats.found);
        assert_eq!(path.wirelength(), 10);
        assert_eq!(path.via_count(), 0);
        assert_eq!(path.source(), GridPoint::new(Layer(0), 2, 5));
        assert_eq!(path.target(), GridPoint::new(Layer(0), 12, 5));
    }

    #[test]
    fn detours_around_blockage() {
        let mut p = plane(32, 32);
        p.add_blockage(Layer(0), TrackRect::new(6, 0, 6, 31));
        // Layer 0 is fully walled: the router must via up and back down.
        let (path, _) = search(
            &p,
            GridPoint::new(Layer(0), 2, 5),
            GridPoint::new(Layer(0), 12, 5),
        );
        let path = path.expect("path found");
        assert!(path.via_count() >= 2);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut p = plane(16, 16);
        for l in 0..3 {
            p.add_blockage(Layer(l), TrackRect::new(6, 0, 6, 15));
        }
        let (path, stats) = search(
            &p,
            GridPoint::new(Layer(0), 2, 5),
            GridPoint::new(Layer(0), 12, 5),
        );
        assert!(path.is_none());
        assert!(!stats.found);
        assert!(stats.expanded > 0);
    }

    #[test]
    fn multi_candidate_picks_cheapest_pair() {
        let p = plane(32, 32);
        let penalties = PenaltyGrid::new(&p, 0);
        let guards = GuardGrid::new(&p, crate::grids::NO_GUARD);
        let req = AstarRequest {
            net: NetId(0),
            sources: &[
                GridPoint::new(Layer(0), 0, 0),
                GridPoint::new(Layer(0), 10, 10),
            ],
            targets: &[
                GridPoint::new(Layer(0), 30, 30),
                GridPoint::new(Layer(0), 12, 10),
            ],
            penalties: &penalties,
            guards: &guards,
        };
        let (path, _) = astar_search(
            &p,
            &req,
            &DirGrid::new(&p, None),
            &RouterConfig::paper_defaults(),
        );
        let path = path.expect("path found");
        assert_eq!(path.source(), GridPoint::new(Layer(0), 10, 10));
        assert_eq!(path.target(), GridPoint::new(Layer(0), 12, 10));
        assert_eq!(path.wirelength(), 2);
    }

    #[test]
    fn penalties_steer_the_route() {
        let p = plane(32, 32);
        let mut penalties = PenaltyGrid::new(&p, 0);
        // Penalise the straight row so the path must leave it.
        for x in 3..12 {
            penalties.set(GridPoint::new(Layer(0), x, 5), 50_000u64);
        }
        let guards = GuardGrid::new(&p, crate::grids::NO_GUARD);
        let req = AstarRequest {
            net: NetId(0),
            sources: &[GridPoint::new(Layer(0), 2, 5)],
            targets: &[GridPoint::new(Layer(0), 12, 5)],
            penalties: &penalties,
            guards: &guards,
        };
        let (path, _) = astar_search(
            &p,
            &req,
            &DirGrid::new(&p, None),
            &RouterConfig::paper_defaults(),
        );
        let path = path.expect("path found");
        assert!(
            path.wirelength() > 10 || path.via_count() > 0,
            "path should avoid the penalised row: {path}"
        );
    }

    #[test]
    fn t2b_penalty_avoids_tip_to_side() {
        // A routed vertical wire whose tip points at the straight row the
        // new net would take: with the gamma penalty the router prefers a
        // small detour over the 2-b scenario.
        let mut p = plane(32, 32);
        let mut dir_map = DirGrid::new(&p, None);
        for y in 7..12 {
            let c = GridPoint::new(Layer(0), 7, y);
            p.occupy(c, NetId(9)).unwrap();
            dir_map.set(c, Some(Dir::Vertical));
        }
        // Tip at (7,7); the straight row y=6 passes right under it.
        let penalties = PenaltyGrid::new(&p, 0);
        let guards = GuardGrid::new(&p, crate::grids::NO_GUARD);
        let req = AstarRequest {
            net: NetId(0),
            sources: &[GridPoint::new(Layer(0), 2, 6)],
            targets: &[GridPoint::new(Layer(0), 12, 6)],
            penalties: &penalties,
            guards: &guards,
        };
        let mut cheap = RouterConfig::paper_defaults();
        cheap.gamma = 0.0;
        let (path_free, _) = astar_search(&p, &req, &dir_map, &cheap);
        let expensive = RouterConfig {
            gamma: 100.0,
            ..RouterConfig::paper_defaults()
        };
        let (path_avoid, _) = astar_search(&p, &req, &dir_map, &expensive);
        let free = path_free.expect("found");
        let avoid = path_avoid.expect("found");
        // Without the penalty the straight row (through the 2-b cell) wins.
        assert_eq!(free.wirelength(), 10);
        // With the penalty the path never *enters* (7,6) horizontally (the
        // move eq. (5) charges for); a vertical entry forms a 1-b
        // (merge-and-cut) relation instead, which is free of side overlay.
        let pts = avoid.points();
        if let Some(i) = pts
            .iter()
            .position(|&p| p == GridPoint::new(Layer(0), 7, 6))
        {
            assert!(i > 0);
            let prev = pts[i - 1];
            assert_eq!(prev.x, 7, "must not enter the 2-b cell sideways");
        }
    }

    #[test]
    fn t2b_count_direct() {
        let mut p = plane(16, 16);
        let mut dm = DirGrid::new(&p, None);
        // Vertical wire tip just north of (5,5).
        for y in 6..9 {
            let c = GridPoint::new(Layer(0), 5, y);
            p.occupy(c, NetId(1)).unwrap();
            dm.set(c, Some(Dir::Vertical));
        }
        // Moving horizontally through (5,5): its side faces the tip -> 1.
        assert_eq!(
            t2b_count(
                &p,
                &dm,
                NetId(0),
                GridPoint::new(Layer(0), 5, 5),
                Dir::Horizontal
            ),
            1
        );
        // Moving vertically through (5,5): tip-to-tip (1-b), not 2-b -> 0.
        assert_eq!(
            t2b_count(
                &p,
                &dm,
                NetId(0),
                GridPoint::new(Layer(0), 5, 5),
                Dir::Vertical
            ),
            0
        );
        // A horizontal neighbour beside us while we move horizontally is
        // 1-a (side-side), not 2-b.
        let mut p2 = plane(16, 16);
        let mut dm2 = DirGrid::new(&p2, None);
        for x in 3..8 {
            let c = GridPoint::new(Layer(0), x, 6);
            p2.occupy(c, NetId(1)).unwrap();
            dm2.set(c, Some(Dir::Horizontal));
        }
        assert_eq!(
            t2b_count(
                &p2,
                &dm2,
                NetId(0),
                GridPoint::new(Layer(0), 5, 5),
                Dir::Horizontal
            ),
            0
        );
    }

    #[test]
    fn scratch_reuse_matches_fresh_search() {
        // The same scratch across several searches must give identical
        // results to throwaway scratch (generation stamping correctness).
        let mut p = plane(24, 24);
        p.add_blockage(Layer(0), TrackRect::new(10, 0, 10, 20));
        let penalties = PenaltyGrid::new(&p, 0);
        let guards = GuardGrid::new(&p, crate::grids::NO_GUARD);
        let dm = DirGrid::new(&p, None);
        let cfg = RouterConfig::paper_defaults();
        let mut scratch = SearchScratch::new(&p);
        for i in 0..6 {
            let from = GridPoint::new(Layer(0), 2, 2 + i);
            let to = GridPoint::new(Layer(0), 20, 3 + i);
            let req = AstarRequest {
                net: NetId(i as u32),
                sources: &[from],
                targets: &[to],
                penalties: &penalties,
                guards: &guards,
            };
            let (fresh, fs) = astar_search(&p, &req, &dm, &cfg);
            let (reused, rs) = astar_search_in(&p, &req, &dm, &cfg, &mut scratch);
            let fresh = fresh.expect("found");
            let reused = reused.expect("found");
            assert_eq!(fresh.wirelength(), reused.wirelength());
            assert_eq!(fresh.via_count(), reused.via_count());
            assert_eq!(fs.expanded, rs.expanded);
        }
    }

    #[test]
    fn bbox_heuristic_expands_no_more_than_needed_on_open_grid() {
        // On an empty grid the consistent heuristic should drive the
        // search almost straight to the target: the expansion count must
        // stay near the path length, not the window area.
        let p = plane(64, 64);
        let (path, stats) = search(
            &p,
            GridPoint::new(Layer(0), 2, 30),
            GridPoint::new(Layer(0), 60, 30),
        );
        let path = path.expect("found");
        assert_eq!(path.wirelength(), 58);
        assert!(
            stats.expanded <= 4 * 58 + 16,
            "expanded {} nodes for a 58-step straight route",
            stats.expanded
        );
    }

    #[test]
    fn exhausted_budget_stops_the_search() {
        let p = plane(64, 64);
        let penalties = PenaltyGrid::new(&p, 0);
        let guards = GuardGrid::new(&p, crate::grids::NO_GUARD);
        let req = AstarRequest {
            net: NetId(0),
            sources: &[GridPoint::new(Layer(0), 2, 30)],
            targets: &[GridPoint::new(Layer(0), 60, 30)],
            penalties: &penalties,
            guards: &guards,
        };
        let dm = DirGrid::new(&p, None);
        let cfg = RouterConfig::paper_defaults();
        let mut scratch = SearchScratch::new(&p);
        let mut limited = RouterConfig::paper_defaults();
        limited.net_node_budget = 3;
        let mut budget = Budget::for_net(&limited);
        let (path, stats) = astar_search_budgeted(&p, &req, &dm, &cfg, &mut scratch, &mut budget);
        assert!(path.is_none());
        assert!(stats.budget_exceeded);
        assert!(!stats.found);
        assert!(stats.expanded <= 4);
        // The same search with an unlimited budget still succeeds on the
        // reused scratch (the aborted search left no stale state behind).
        let (path, stats) = astar_search_in(&p, &req, &dm, &cfg, &mut scratch);
        assert!(path.is_some());
        assert!(!stats.budget_exceeded);
    }

    #[test]
    fn cell_count_within_packed_index_limit_is_ok() {
        assert_eq!(checked_cell_count(3, 64, 64), Ok(3 * 64 * 64));
        // Just under the limit: (2^32 - 2) cells.
        assert_eq!(
            checked_cell_count(2, i32::MAX, 1),
            Ok(2 * (i32::MAX as usize))
        );
    }

    #[test]
    fn cell_count_at_or_above_packed_index_limit_errors() {
        // Exactly u32::MAX cells: the NO_PREV sentinel needs that value.
        let err = checked_cell_count(1, 65_537, 65_535).expect_err("at limit");
        assert_eq!(
            err,
            RouterError::PlaneTooLarge {
                cells: u32::MAX as u128
            }
        );
        // Far above: the product must not wrap.
        let err = checked_cell_count(255, i32::MAX, i32::MAX).expect_err("huge");
        let RouterError::PlaneTooLarge { cells } = err else {
            panic!("wrong error: {err}");
        };
        assert_eq!(cells, 255u128 * i32::MAX as u128 * i32::MAX as u128);
        let msg = err.to_string();
        assert!(
            msg.contains("packed"),
            "error should explain the limit: {msg}"
        );
    }
}
