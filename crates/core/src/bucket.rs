//! Monotone bucket queue (radix heap) for the A\* open list.
//!
//! The eq. (5) search cost is a sum of non-negative integer milli-unit
//! terms, so the keys popped from the open list are monotonically
//! non-decreasing. That lets us replace the `BinaryHeap` — whose `O(log
//! n)` push/pop and tuple comparisons dominated the per-node cost on
//! large circuits — with a radix heap: 65 buckets indexed by the highest
//! bit in which a key differs from the last popped key. Push and pop are
//! `O(1)` amortised (each entry is redistributed at most 64 times over
//! its lifetime, in practice once or twice).
//!
//! The monotonicity requirement is met because the heuristic used by the
//! search is consistent (every grid step costs at least `alpha` and the
//! heuristic is a lower bound built from those same per-step costs). As a
//! belt-and-braces guard, [`BucketQueue::push`] clamps keys below the
//! last popped key up to it — that keeps the structure valid even if a
//! caller supplies an inconsistent heuristic, at the cost of expanding
//! such nodes slightly out of order (A\* then behaves like the standard
//! re-expansion variant and still terminates with a valid route).

/// One open-list entry: `(f, g, cell)` where `cell` is the packed plane
/// index of the grid node.
type Entry = (u64, u64, u32);

/// Monotone priority queue keyed on the `f` cost.
#[derive(Debug)]
pub struct BucketQueue {
    /// `buckets[0]` holds keys equal to `last`; `buckets[b]` (b ≥ 1)
    /// holds keys whose highest differing bit from `last` is `b - 1`.
    buckets: Vec<Vec<Entry>>,
    /// Last key handed out by [`pop`](Self::pop); the floor for pushes.
    last: u64,
    len: usize,
}

impl Default for BucketQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl BucketQueue {
    pub fn new() -> Self {
        Self {
            buckets: (0..65).map(|_| Vec::new()).collect(),
            last: 0,
            len: 0,
        }
    }

    /// Removes all entries but keeps the allocated bucket storage, so a
    /// queue can be reused across nets without churning the allocator.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.last = 0;
        self.len = 0;
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_of(&self, key: u64) -> usize {
        if key == self.last {
            0
        } else {
            64 - (key ^ self.last).leading_zeros() as usize
        }
    }

    /// Pushes an entry. Keys below the last popped key are clamped up to
    /// it (see the module docs for why that is safe).
    pub fn push(&mut self, f: u64, g: u64, cell: u32) {
        debug_assert!(
            f >= self.last,
            "bucket queue key {f} below last popped {} (inconsistent heuristic?)",
            self.last
        );
        let f = f.max(self.last);
        let b = self.bucket_of(f);
        self.buckets[b].push((f, g, cell));
        self.len += 1;
    }

    /// Pops an entry with the minimum `f`. Among equal-`f` entries the
    /// one with the largest `g` is preferred (deeper nodes first), which
    /// matches the tie-break the `BinaryHeap` implementation used via
    /// `Reverse<(f, g, ...)>` closely enough for route quality.
    pub fn pop(&mut self) -> Option<Entry> {
        if self.len == 0 {
            return None;
        }
        if self.buckets[0].is_empty() {
            // Find the first non-empty bucket, advance `last` to its
            // minimum key, and redistribute it into lower buckets.
            let b = self.buckets.iter().position(|v| !v.is_empty())?;
            let moved = std::mem::take(&mut self.buckets[b]);
            self.last = moved.iter().map(|e| e.0).min().expect("bucket non-empty");
            for e in moved {
                let nb = self.bucket_of(e.0);
                debug_assert!(nb < b || (nb == 0 && b == 0));
                self.buckets[nb].push(e);
            }
        }
        self.len -= 1;
        self.buckets[0].pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_nondecreasing_key_order() {
        let mut q = BucketQueue::new();
        let keys = [5u64, 1, 9, 3, 3, 1 << 40, 7, 0, 2, 1 << 20];
        for (i, &k) in keys.iter().enumerate() {
            q.push(k, 0, i as u32);
        }
        let mut popped = Vec::new();
        while let Some((f, _, _)) = q.pop() {
            popped.push(f);
        }
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn interleaved_push_pop_stays_monotone() {
        // Simulates a consistent-heuristic search: every push is >= the
        // last popped key.
        let mut q = BucketQueue::new();
        q.push(10, 0, 0);
        let mut last = 0;
        let mut seeded = 1u64;
        for _ in 0..1000 {
            let (f, _, _) = q.pop().unwrap();
            assert!(f >= last);
            last = f;
            // Deterministic pseudo-random offsets.
            seeded = seeded.wrapping_mul(6364136223846793005).wrapping_add(1);
            q.push(f + (seeded >> 59), 0, 1);
            seeded = seeded.wrapping_mul(6364136223846793005).wrapping_add(1);
            q.push(f + (seeded >> 57), 0, 2);
        }
    }

    #[test]
    fn equal_keys_prefer_depth_last_in() {
        let mut q = BucketQueue::new();
        q.push(4, 1, 10);
        q.push(4, 9, 11);
        // Same f: the queue may serve either, but both must come out
        // before any larger key.
        q.push(5, 0, 12);
        let (f1, _, _) = q.pop().unwrap();
        let (f2, _, _) = q.pop().unwrap();
        let (f3, _, c3) = q.pop().unwrap();
        assert_eq!((f1, f2, f3, c3), (4, 4, 5, 12));
    }

    #[test]
    fn clear_resets_for_reuse() {
        let mut q = BucketQueue::new();
        q.push(1 << 30, 0, 0);
        q.pop();
        q.clear();
        assert!(q.is_empty());
        // After clear the floor is back at 0.
        q.push(3, 0, 1);
        assert_eq!(q.pop(), Some((3, 0, 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn clamps_below_floor_keys() {
        let mut q = BucketQueue::new();
        q.push(100, 0, 0);
        assert_eq!(q.pop().unwrap().0, 100);
        // Key below the floor: clamped to 100 rather than corrupting
        // bucket 0 ordering. (debug_assert fires in debug builds; this
        // test exercises the release-mode clamp path.)
        if cfg!(not(debug_assertions)) {
            q.push(40, 0, 1);
            assert_eq!(q.pop().unwrap().0, 100);
        }
    }
}
