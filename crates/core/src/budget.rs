//! Search budgets with graceful degradation.
//!
//! A pathological net can burn unbounded wall-clock inside A*; a
//! production run needs a way to give up on one net — or on the whole
//! run — without aborting or corrupting committed work. Two budget
//! scopes exist:
//!
//! * [`Budget`] — per-net. Created once per net (covering every rip-up
//!   attempt and branch search) and charged once per expanded node
//!   inside the A* pop loop. Node limits are a plain counter compare;
//!   deadlines are checked only every `DEADLINE_STRIDE` nodes so the
//!   hot loop never pays an `Instant::now()` per node.
//! * [`RunBudget`] — whole-run. Shared across band workers through
//!   atomics; each net checks it *once* before searching and adds its
//!   expansion count after, so the per-node cost is zero. Once tripped,
//!   every remaining net fails fast with
//!   [`FailReason::BudgetExceeded`](sadp_obs::FailReason) and the run
//!   finalizes whatever is committed.
//!
//! Determinism: per-net *node* budgets are a pure function of the search
//! and therefore byte-deterministic across thread counts. Deadlines and
//! the shared run budget trade that for liveness — which nets observe
//! the trip depends on wall-clock and on cross-thread interleaving. The
//! determinism test suite and the fuzz oracle only ever set per-net node
//! budgets.

use crate::config::RouterConfig;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How many nodes are expanded between deadline checks. A stride of
/// 1024 bounds the overshoot to microseconds while keeping the common
/// path to one increment and compare.
const DEADLINE_STRIDE: u64 = 1024;

/// A per-net search budget, charged once per expanded A* node.
#[derive(Debug, Clone)]
pub struct Budget {
    /// Nodes still available; `u64::MAX` means unlimited.
    nodes_left: u64,
    /// Wall-clock cutoff, checked every [`DEADLINE_STRIDE`] nodes.
    deadline: Option<Instant>,
    /// Countdown to the next deadline check.
    stride_left: u64,
    /// Set once a limit is hit; later charges keep failing.
    exhausted: bool,
}

impl Budget {
    /// A budget that never runs out.
    #[must_use]
    pub fn unlimited() -> Budget {
        Budget {
            nodes_left: u64::MAX,
            deadline: None,
            stride_left: DEADLINE_STRIDE,
            exhausted: false,
        }
    }

    /// The per-net budget configured in `config` (`0` fields mean
    /// unlimited). Call once per net so the budget spans all rip-up
    /// attempts and branch searches of that net.
    #[must_use]
    pub fn for_net(config: &RouterConfig) -> Budget {
        let mut b = Budget::unlimited();
        if config.net_node_budget > 0 {
            b.nodes_left = config.net_node_budget;
        }
        if config.net_deadline_ms > 0 {
            b.deadline = Some(Instant::now() + Duration::from_millis(config.net_deadline_ms));
        }
        b
    }

    /// Whether any limit is actually set. When `false` the search loop
    /// pays one predictable branch per node and nothing else.
    #[must_use]
    pub fn is_limited(&self) -> bool {
        self.nodes_left != u64::MAX || self.deadline.is_some()
    }

    /// Charges one expanded node. Returns `false` once the budget is
    /// exhausted; the caller must stop the search and report
    /// `BudgetExceeded`.
    #[inline]
    pub fn charge(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        if self.nodes_left != u64::MAX {
            if self.nodes_left == 0 {
                self.exhausted = true;
                return false;
            }
            self.nodes_left -= 1;
        }
        if let Some(deadline) = self.deadline {
            self.stride_left -= 1;
            if self.stride_left == 0 {
                self.stride_left = DEADLINE_STRIDE;
                if Instant::now() >= deadline {
                    self.exhausted = true;
                    return false;
                }
            }
        }
        true
    }

    /// Whether a limit was hit.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

/// The whole-run budget, shared across band workers.
///
/// Nets poll [`RunBudget::tripped`] once before searching and report
/// their expansion count after, so enforcement costs nothing per node.
/// The trip is sticky: once over budget, the run stays over budget.
#[derive(Debug)]
pub struct RunBudget {
    /// Total nodes expanded so far, summed across all workers.
    nodes: AtomicU64,
    /// Sticky over-budget flag.
    tripped: AtomicBool,
    /// Node ceiling; `u64::MAX` means unlimited.
    node_limit: u64,
    /// Wall-clock cutoff for the whole run.
    deadline: Option<Instant>,
}

impl RunBudget {
    /// A run budget that never trips.
    #[must_use]
    pub fn unlimited() -> RunBudget {
        RunBudget {
            nodes: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
            node_limit: u64::MAX,
            deadline: None,
        }
    }

    /// Arms the budget from `config` at the start of a run (`0` fields
    /// mean unlimited). The deadline clock starts now.
    #[must_use]
    pub fn from_config(config: &RouterConfig) -> RunBudget {
        let mut b = RunBudget::unlimited();
        if config.run_node_budget > 0 {
            b.node_limit = config.run_node_budget;
        }
        if config.run_deadline_ms > 0 {
            b.deadline = Some(Instant::now() + Duration::from_millis(config.run_deadline_ms));
        }
        b
    }

    /// Whether any limit is set; when `false`, [`RunBudget::tripped`]
    /// and [`RunBudget::add_nodes`] are branch-predictable no-ops.
    #[must_use]
    pub fn is_limited(&self) -> bool {
        self.node_limit != u64::MAX || self.deadline.is_some()
    }

    /// Whether the run is over budget. Checked once per net; this is the
    /// only place the deadline reads the clock.
    pub fn tripped(&self) -> bool {
        if !self.is_limited() {
            return false;
        }
        if self.tripped.load(Ordering::Relaxed) {
            return true;
        }
        let over_nodes = self.nodes.load(Ordering::Relaxed) >= self.node_limit;
        let over_time = self.deadline.is_some_and(|d| Instant::now() >= d);
        if over_nodes || over_time {
            self.tripped.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Adds a finished search's expansion count to the shared total.
    pub fn add_nodes(&self, n: u64) {
        if self.is_limited() {
            self.nodes.fetch_add(n, Ordering::Relaxed);
        }
    }
}

impl Default for RunBudget {
    fn default() -> RunBudget {
        RunBudget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let mut b = Budget::unlimited();
        assert!(!b.is_limited());
        for _ in 0..100_000 {
            assert!(b.charge());
        }
        assert!(!b.exhausted());
    }

    #[test]
    fn node_limit_is_exact() {
        let mut config = RouterConfig::paper_defaults();
        config.net_node_budget = 5;
        let mut b = Budget::for_net(&config);
        assert!(b.is_limited());
        for _ in 0..5 {
            assert!(b.charge());
        }
        assert!(!b.charge(), "sixth node must exceed a budget of 5");
        assert!(b.exhausted());
        assert!(!b.charge(), "exhaustion is sticky");
    }

    #[test]
    fn expired_deadline_trips_within_one_stride() {
        let mut b = Budget::unlimited();
        b.deadline = Some(Instant::now() - Duration::from_millis(1));
        let mut charged = 0u64;
        while b.charge() {
            charged += 1;
            assert!(charged <= DEADLINE_STRIDE, "deadline check never fired");
        }
        assert!(b.exhausted());
    }

    #[test]
    fn run_budget_trips_on_nodes_and_stays_tripped() {
        let mut config = RouterConfig::paper_defaults();
        config.run_node_budget = 10;
        let b = RunBudget::from_config(&config);
        assert!(!b.tripped());
        b.add_nodes(9);
        assert!(!b.tripped());
        b.add_nodes(1);
        assert!(b.tripped());
        assert!(b.tripped(), "trip is sticky");
    }

    #[test]
    fn unarmed_run_budget_is_inert() {
        let b = RunBudget::from_config(&RouterConfig::paper_defaults());
        assert!(!b.is_limited());
        b.add_nodes(u64::MAX / 2);
        assert!(!b.tripped());
    }
}
