//! Checkpoint/resume: versioned, checksummed snapshots of the commit
//! ledger's journal.
//!
//! A snapshot captures the replayable prefix of a run — the committed
//! routes in journal order plus the failures and counters so far — as a
//! line-oriented text artifact. Resuming parses the snapshot, re-commits
//! every journaled route through the *identical* stage pipeline
//! (`commit_candidate` in the driver, without
//! searching), and then routes only the remaining nets. Because
//! checkpoints are only taken at schedule-aligned boundaries (after a
//! band fold, or between serial nets), the resumed run walks a canonical
//! suffix of the original schedule and its final output is byte-identical
//! to an uninterrupted run.
//!
//! Format (`SADPCKPT v2`):
//!
//! ```text
//! SADPCKPT v2
//! checksum <16-hex FNV-64 of everything below this line>
//! fingerprint <16-hex FNV-64 of the serialized plane+netlist>
//! counters <12 space-separated u64, LedgerCounters field order>
//! net <id> <branch count>
//! p <point count> <layer,x,y> ...
//! b <point count> <layer,x,y> ...   (one line per branch)
//! failed <count> <id> ...
//! end
//! ```
//!
//! The checksum rejects truncated or corrupted files; the fingerprint
//! rejects resuming against a different plane or netlist than the one
//! the snapshot was taken from. Both are FNV-64: not cryptographic, but
//! this is an integrity check against accidents, not an authenticator.

use crate::ledger::{CommitLedger, LedgerCounters};
use crate::router::RouterError;
use sadp_geom::{GridPoint, Layer};
use sadp_grid::{Netlist, RoutePath, RoutingPlane};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// The magic + version line. Bump the version when the body layout
/// changes; old readers reject newer snapshots instead of misparsing.
const MAGIC: &str = "SADPCKPT v2";

/// FNV-1a 64-bit, the same construction the fuzz corpus uses: stable,
/// dependency-free, good enough to catch truncation and bit rot.
#[must_use]
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Identity of a routing problem: the FNV-64 of its canonical `.layout`
/// serialization. A snapshot only resumes against the exact plane and
/// netlist it was taken from. Costs one serialization pass, so it is
/// computed only when checkpointing or resuming is actually requested.
#[must_use]
pub fn fingerprint(plane: &RoutingPlane, netlist: &Netlist) -> u64 {
    fnv64(sadp_grid::io::write_layout(plane, netlist).as_bytes())
}

/// One journaled route: the committed paths of a net, point by point.
/// Fragments are not stored — they are recomputed from the paths, the
/// same way the search stage builds them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SnapshotNet {
    pub(crate) id: sadp_grid::NetId,
    pub(crate) path: Vec<GridPoint>,
    pub(crate) branches: Vec<Vec<GridPoint>>,
}

/// A parsed (or captured) checkpoint: the replayable prefix of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    fingerprint: u64,
    counters: LedgerCounters,
    pub(crate) nets: Vec<SnapshotNet>,
    pub(crate) failed: Vec<sadp_grid::NetId>,
}

/// Why a snapshot could not be produced, parsed, or resumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The underlying router rejected the plane (forwarded unchanged so
    /// the panicking entry points keep their exact messages).
    Router(RouterError),
    /// The snapshot text does not parse.
    Format {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The body does not match its checksum line (truncation, bit rot).
    ChecksumMismatch,
    /// The magic line names a version this build does not read (e.g. a
    /// `SADPCKPT v1` file written by an older build).
    VersionUnsupported {
        /// The magic line that was found.
        found: String,
    },
    /// The snapshot was taken from a different plane/netlist.
    FingerprintMismatch,
    /// A journaled route no longer commits cleanly — the snapshot does
    /// not belong to this input, or it was edited.
    ReplayDiverged,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Router(e) => e.fmt(f),
            SnapshotError::Format { line, message } => {
                write!(f, "checkpoint line {line}: {message}")
            }
            SnapshotError::ChecksumMismatch => {
                write!(
                    f,
                    "checkpoint body does not match its checksum (truncated or corrupt)"
                )
            }
            SnapshotError::VersionUnsupported { found } => {
                write!(
                    f,
                    "checkpoint version `{found}` is not supported by this \
                     build (expected `{MAGIC}`); delete the stale checkpoint \
                     and re-route to write a current one"
                )
            }
            SnapshotError::FingerprintMismatch => {
                write!(
                    f,
                    "checkpoint was taken from a different plane/netlist \
                     (fingerprint mismatch)"
                )
            }
            SnapshotError::ReplayDiverged => {
                write!(
                    f,
                    "checkpoint replay diverged: a journaled route no longer \
                     commits cleanly against this input"
                )
            }
        }
    }
}

impl Error for SnapshotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnapshotError::Router(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RouterError> for SnapshotError {
    fn from(e: RouterError) -> SnapshotError {
        SnapshotError::Router(e)
    }
}

fn push_points(out: &mut String, tag: char, points: &[GridPoint]) {
    let _ = write!(out, "{tag} {}", points.len());
    for p in points {
        let _ = write!(out, " {},{},{}", p.layer.index(), p.x, p.y);
    }
    out.push('\n');
}

/// Serializes the ledger's current journal into snapshot text. Taken at
/// a schedule-aligned boundary by the checkpoint hook; `fingerprint` is
/// the value of [`fingerprint`] for the run's plane and netlist.
#[must_use]
pub fn serialize(ledger: &CommitLedger, failed: &[sadp_grid::NetId], fingerprint: u64) -> String {
    let c = &ledger.counters;
    let mut body = String::new();
    let _ = writeln!(body, "fingerprint {fingerprint:016x}");
    let _ = writeln!(
        body,
        "counters {} {} {} {} {} {} {} {} {} {} {} {}",
        c.ripups,
        c.ripups_type_b,
        c.ripups_graph,
        c.ripups_risk,
        c.failed_no_path,
        c.failed_exhausted,
        c.failed_cleanup,
        c.flips,
        c.nodes_expanded,
        c.failed_budget,
        c.bands_recovered,
        c.waves_recovered
    );
    let mut seen: std::collections::HashSet<sadp_grid::NetId> = std::collections::HashSet::new();
    for rec in ledger.records() {
        // Routing-phase journals always have their routed net; a record
        // whose net was unrouted later (cleanup) is not replayable and
        // is skipped — hooks never fire that late, this is belt and
        // braces for direct callers.
        let Some(r) = ledger.routed().get(&rec.net) else {
            continue;
        };
        // An ECO session re-commits ripped-up nets, so its journal can
        // hold several records per net. Each net is emitted once, at its
        // first journal position, with its *current* geometry — replay
        // then reproduces the live plane exactly.
        if !seen.insert(rec.net) {
            continue;
        }
        let _ = writeln!(body, "net {} {}", rec.net.0, r.branches.len());
        push_points(&mut body, 'p', r.path.points());
        for b in &r.branches {
            push_points(&mut body, 'b', b.points());
        }
    }
    let _ = write!(body, "failed {}", failed.len());
    for id in failed {
        let _ = write!(body, " {}", id.0);
    }
    body.push('\n');
    body.push_str("end\n");
    format!("{MAGIC}\nchecksum {:016x}\n{body}", fnv64(body.as_bytes()))
}

/// Splits off the first line (without its newline) from `s`.
fn split_line(s: &str) -> (&str, &str) {
    match s.find('\n') {
        Some(i) => (&s[..i], &s[i + 1..]),
        None => (s, ""),
    }
}

fn parse_u64(tok: &str, line: usize, what: &str) -> Result<u64, SnapshotError> {
    tok.parse().map_err(|_| SnapshotError::Format {
        line,
        message: format!("bad {what}: `{tok}`"),
    })
}

fn parse_hex64(tok: &str, line: usize, what: &str) -> Result<u64, SnapshotError> {
    u64::from_str_radix(tok, 16).map_err(|_| SnapshotError::Format {
        line,
        message: format!("bad {what}: `{tok}`"),
    })
}

fn parse_point(tok: &str, line: usize) -> Result<GridPoint, SnapshotError> {
    let bad = || SnapshotError::Format {
        line,
        message: format!("bad point: `{tok}`"),
    };
    let mut it = tok.split(',');
    let l: u8 = it.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
    let x: i32 = it.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
    let y: i32 = it.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
    if it.next().is_some() {
        return Err(bad());
    }
    Ok(GridPoint::new(Layer(l), x, y))
}

fn parse_point_line(text: &str, lineno: usize, tag: char) -> Result<Vec<GridPoint>, SnapshotError> {
    let mut toks = text.split_whitespace();
    let head = toks.next().unwrap_or("");
    if head.len() != 1 || !head.starts_with(tag) {
        return Err(SnapshotError::Format {
            line: lineno,
            message: format!("expected a `{tag}` point line, got `{text}`"),
        });
    }
    let n = parse_u64(toks.next().unwrap_or(""), lineno, "point count")? as usize;
    let mut points = Vec::with_capacity(n);
    for tok in toks {
        points.push(parse_point(tok, lineno)?);
    }
    if points.len() != n {
        return Err(SnapshotError::Format {
            line: lineno,
            message: format!("point count says {n}, line has {}", points.len()),
        });
    }
    Ok(points)
}

impl Snapshot {
    /// The plane/netlist fingerprint the snapshot was taken under.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The counters at the checkpoint (restored verbatim on resume).
    #[must_use]
    pub(crate) fn counters(&self) -> LedgerCounters {
        self.counters
    }

    /// How many committed routes the snapshot carries.
    #[must_use]
    pub fn committed(&self) -> usize {
        self.nets.len()
    }

    /// Every net the checkpointed prefix already handled — committed or
    /// failed. Resume removes these from the remaining schedule.
    #[must_use]
    pub(crate) fn processed(&self) -> Vec<sadp_grid::NetId> {
        let mut out: Vec<sadp_grid::NetId> = self.nets.iter().map(|n| n.id).collect();
        out.extend(self.failed.iter().copied());
        out
    }

    /// Parses snapshot text, verifying the version and the checksum
    /// (the fingerprint is checked later, against the actual input).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::VersionUnsupported`] for a foreign magic line,
    /// [`SnapshotError::ChecksumMismatch`] when the body was altered,
    /// [`SnapshotError::Format`] for anything that does not parse.
    pub fn parse(text: &str) -> Result<Snapshot, SnapshotError> {
        let (magic, rest) = split_line(text);
        if magic.trim_end() != MAGIC {
            return Err(if magic.starts_with("SADPCKPT") {
                SnapshotError::VersionUnsupported {
                    found: magic.trim_end().to_string(),
                }
            } else {
                SnapshotError::Format {
                    line: 1,
                    message: format!("expected `{MAGIC}` magic, got `{magic}`"),
                }
            });
        }
        let (checksum_line, body) = split_line(rest);
        let declared = checksum_line
            .strip_prefix("checksum ")
            .ok_or(SnapshotError::Format {
                line: 2,
                message: "expected a `checksum` line".into(),
            })?;
        let declared = parse_hex64(declared.trim(), 2, "checksum")?;
        if fnv64(body.as_bytes()) != declared {
            return Err(SnapshotError::ChecksumMismatch);
        }

        let mut lines = body.lines().enumerate().map(|(i, l)| (i + 3, l));
        let mut next = |what: &str| {
            lines.next().ok_or_else(|| SnapshotError::Format {
                line: 0,
                message: format!("snapshot ends before the {what} line"),
            })
        };

        let (ln, fp_line) = next("fingerprint")?;
        let fp = fp_line
            .strip_prefix("fingerprint ")
            .ok_or(SnapshotError::Format {
                line: ln,
                message: "expected a `fingerprint` line".into(),
            })?;
        let fingerprint = parse_hex64(fp.trim(), ln, "fingerprint")?;

        let (ln, counters_line) = next("counters")?;
        let toks: Vec<&str> = counters_line.split_whitespace().collect();
        if toks.first() != Some(&"counters") || toks.len() != 13 {
            return Err(SnapshotError::Format {
                line: ln,
                message: "expected `counters` with 12 values".into(),
            });
        }
        let mut v = [0u64; 12];
        for (slot, tok) in v.iter_mut().zip(&toks[1..]) {
            *slot = parse_u64(tok, ln, "counter")?;
        }
        let counters = LedgerCounters {
            ripups: v[0],
            ripups_type_b: v[1],
            ripups_graph: v[2],
            ripups_risk: v[3],
            failed_no_path: v[4],
            failed_exhausted: v[5],
            failed_cleanup: v[6],
            flips: v[7],
            nodes_expanded: v[8],
            failed_budget: v[9],
            bands_recovered: v[10],
            waves_recovered: v[11],
        };

        let mut nets = Vec::new();
        let failed;
        loop {
            let (ln, line) = next("failed")?;
            if let Some(restf) = line.strip_prefix("failed ") {
                let mut toks = restf.split_whitespace();
                let n = parse_u64(toks.next().unwrap_or(""), ln, "failed count")? as usize;
                let mut ids = Vec::with_capacity(n);
                for tok in toks {
                    ids.push(sadp_grid::NetId(parse_u64(tok, ln, "net id")? as u32));
                }
                if ids.len() != n {
                    return Err(SnapshotError::Format {
                        line: ln,
                        message: format!("failed count says {n}, line has {}", ids.len()),
                    });
                }
                failed = ids;
                break;
            }
            let Some(net_rest) = line.strip_prefix("net ") else {
                return Err(SnapshotError::Format {
                    line: ln,
                    message: format!("expected a `net` or `failed` line, got `{line}`"),
                });
            };
            let mut toks = net_rest.split_whitespace();
            let id = parse_u64(toks.next().unwrap_or(""), ln, "net id")? as u32;
            let nbranches = parse_u64(toks.next().unwrap_or(""), ln, "branch count")? as usize;
            let (pln, pline) = next("trunk path")?;
            let path = parse_point_line(pline, pln, 'p')?;
            let mut branches = Vec::with_capacity(nbranches);
            for _ in 0..nbranches {
                let (bln, bline) = next("branch path")?;
                branches.push(parse_point_line(bline, bln, 'b')?);
            }
            nets.push(SnapshotNet {
                id: sadp_grid::NetId(id),
                path,
                branches,
            });
        }
        let (ln, end) = next("end")?;
        if end.trim_end() != "end" {
            return Err(SnapshotError::Format {
                line: ln,
                message: format!("expected the `end` marker, got `{end}`"),
            });
        }
        Ok(Snapshot {
            fingerprint,
            counters,
            nets,
            failed,
        })
    }

    /// Rebuilds one journaled route as a [`RouteCandidate`], exactly the
    /// shape the search stage would have produced (fragments recomputed
    /// from the paths).
    ///
    /// [`RouteCandidate`]: crate::search::RouteCandidate
    pub(crate) fn candidate_of(
        net: &SnapshotNet,
    ) -> Result<crate::search::RouteCandidate, SnapshotError> {
        let path = RoutePath::new(net.path.clone()).map_err(|_| SnapshotError::ReplayDiverged)?;
        let mut branches = Vec::with_capacity(net.branches.len());
        for b in &net.branches {
            branches.push(RoutePath::new(b.clone()).map_err(|_| SnapshotError::ReplayDiverged)?);
        }
        let mut fragments = crate::search::FragmentList::new();
        path.fragments_into(|layer, rect| fragments.push((layer, rect)));
        for b in &branches {
            b.fragments_into(|layer, rect| fragments.push((layer, rect)));
        }
        Ok(crate::search::RouteCandidate {
            path,
            branches,
            fragments,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RouterConfig;
    use crate::Router;
    use sadp_geom::DesignRules;

    fn routed_ledger() -> (Router, RoutingPlane, Netlist) {
        let mut plane = RoutingPlane::new(3, 32, 32, DesignRules::node_10nm()).expect("valid");
        let mut nl = Netlist::new();
        nl.add_two_pin(
            "a",
            GridPoint::new(Layer(0), 2, 2),
            GridPoint::new(Layer(0), 14, 9),
        );
        nl.add_two_pin(
            "b",
            GridPoint::new(Layer(0), 2, 12),
            GridPoint::new(Layer(0), 18, 12),
        );
        let mut router = Router::new(RouterConfig::paper_defaults());
        router.route_all(&mut plane, &nl);
        (router, plane, nl)
    }

    #[test]
    fn snapshot_round_trips() {
        let (router, plane, nl) = routed_ledger();
        let fp = fingerprint(&plane, &nl);
        let text = serialize(router.ledger(), router.failed(), fp);
        let snap = Snapshot::parse(&text).expect("round trip");
        assert_eq!(snap.fingerprint(), fp);
        assert_eq!(snap.committed(), router.ledger().records().len());
        assert_eq!(snap.counters(), router.ledger().counters);
        assert_eq!(snap.failed, router.failed());
        // Serializing what we parsed yields the identical text.
        for (n, rec) in snap.nets.iter().zip(router.ledger().records()) {
            assert_eq!(n.id, rec.net);
            assert_eq!(n.path, router.ledger().routed()[&rec.net].path.points());
        }
    }

    #[test]
    fn corrupt_body_is_rejected_by_checksum() {
        let (router, plane, nl) = routed_ledger();
        let text = serialize(router.ledger(), router.failed(), fingerprint(&plane, &nl));
        let tampered = text.replace("counters 0", "counters 7");
        assert_ne!(text, tampered, "fixture must actually tamper");
        assert_eq!(
            Snapshot::parse(&tampered),
            Err(SnapshotError::ChecksumMismatch)
        );
        // Truncation is also caught.
        let truncated = &text[..text.len() - 5];
        assert_eq!(
            Snapshot::parse(truncated),
            Err(SnapshotError::ChecksumMismatch)
        );
    }

    #[test]
    fn foreign_version_is_rejected() {
        // A v1 file from an older build must fail on the version line,
        // with the found version in the message — not fall through to a
        // checksum or parse error.
        let err = Snapshot::parse("SADPCKPT v1\nchecksum 0\nend\n").unwrap_err();
        assert_eq!(
            err,
            SnapshotError::VersionUnsupported {
                found: "SADPCKPT v1".into()
            }
        );
        let msg = err.to_string();
        assert!(
            msg.contains("SADPCKPT v1"),
            "names the found version: {msg}"
        );
        assert!(msg.contains(MAGIC), "names the expected version: {msg}");
        assert!(msg.contains("re-route"), "says what to do: {msg}");
        assert_eq!(
            Snapshot::parse("SADPCKPT v99\nchecksum 0\nend\n"),
            Err(SnapshotError::VersionUnsupported {
                found: "SADPCKPT v99".into()
            })
        );
        assert!(matches!(
            Snapshot::parse("not a checkpoint\n"),
            Err(SnapshotError::Format { line: 1, .. })
        ));
    }

    #[test]
    fn errors_display_and_chain() {
        let e = SnapshotError::Router(RouterError::NotBegun);
        // The Router variant forwards the inner message unchanged, so the
        // panicking wrappers keep their exact wording.
        assert_eq!(e.to_string(), RouterError::NotBegun.to_string());
        assert!(std::error::Error::source(&e).is_some());
        assert!(SnapshotError::ChecksumMismatch
            .to_string()
            .contains("checksum"));
        assert!(SnapshotError::FingerprintMismatch
            .to_string()
            .contains("fingerprint"));
    }

    #[test]
    fn fingerprint_tracks_the_input() {
        let (_, plane, nl) = routed_ledger();
        let fp = fingerprint(&plane, &nl);
        assert_eq!(fp, fingerprint(&plane, &nl), "deterministic");
        let mut other = nl.clone();
        other.add_two_pin(
            "c",
            GridPoint::new(Layer(0), 4, 4),
            GridPoint::new(Layer(0), 8, 8),
        );
        assert_ne!(fp, fingerprint(&plane, &other));
    }
}
