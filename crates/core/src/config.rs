//! Router configuration (the user-defined parameters of eq. (5)).

use crate::fault::FaultPlan;

/// Fixed-point scale for search costs (milli-units), so that the paper's
/// fractional `γ = 1.5` stays exact in integer arithmetic.
pub const COST_SCALE: u64 = 1000;

/// The order in which `route_all` processes nets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetOrder {
    /// Shortest half-perimeter wirelength first (the usual sequential
    /// detailed-routing order; default).
    #[default]
    HpwlAscending,
    /// Longest first — long nets get clean channels, short nets detour.
    HpwlDescending,
    /// Netlist order, as given by the caller.
    Given,
}

/// Configuration of the overlay-aware router.
///
/// The defaults follow Section IV of the paper: `α = β = 1`, `γ = 1.5`,
/// flipping threshold 10, at most 3 rip-up iterations per net.
///
/// # Example
///
/// ```
/// use sadp_core::RouterConfig;
/// let cfg = RouterConfig::paper_defaults();
/// assert_eq!(cfg.alpha, 1.0);
/// assert_eq!(cfg.gamma, 1.5);
/// assert_eq!(cfg.max_ripup, 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// Wirelength weight (α of eq. (5)).
    pub alpha: f64,
    /// Via weight (β of eq. (5)).
    pub beta: f64,
    /// Type 2-b scenario penalty weight (γ of eq. (5)).
    pub gamma: f64,
    /// Side-overlay threshold (in `w_line` units) above which color
    /// flipping runs on the net's component (`f_threshold`).
    pub flip_threshold: u64,
    /// Maximum rip-up-and-re-route iterations per net (`B`).
    pub max_ripup: u32,
    /// Extra tracks around the pin bounding box the search may explore.
    pub search_margin: i32,
    /// Additional cost (in α units) added to a grid cell each time a net is
    /// ripped up because of it (`IncreaseCost`, Fig. 19 line 8).
    pub ripup_penalty: f64,
    /// Soft keep-out penalty (in α units) for routing next to another
    /// net's pin, keeping pin neighbourhoods approachable.
    pub pin_guard: f64,
    /// Wrong-way multiplier for planar steps against a layer's preferred
    /// direction (1.0 disables preferred-direction routing). Layers
    /// alternate horizontal/vertical starting with horizontal on M1.
    pub wrong_way: f64,
    /// Whether to run the final full-layout flipping pass.
    pub final_flip: bool,
    /// Whether [`finalize`](crate::Router::finalize) runs the pixel
    /// cut-process simulator on the final colored layout and repairs
    /// (rips up, re-routes, ultimately unroutes) nets whose target runs
    /// the simulator finds cut-conflicted or spacer-destroyed. The
    /// constraint graph is a pairwise model; a few multi-pattern
    /// interactions (assist-core merges closing over a via pad) only
    /// show up in the synthesised masks, and this pass is what backs the
    /// conflict-free claim against the simulator ground truth.
    pub cut_repair: bool,
    /// Whether the merge-and-cut technique is available: when disabled the
    /// router treats type 1-b (tip-to-tip) pairs as conflicts and routes
    /// away from them, like baseline \[16\]. Ablation switch.
    pub allow_merge: bool,
    /// Net processing order for `route_all`.
    pub net_order: NetOrder,
    /// Worker threads for the region-sharded schedule (minimum 1). The
    /// band partition and the commit order depend only on the plane
    /// geometry, never on this value, so results are byte-identical for
    /// any thread count.
    pub threads: usize,
    /// Per-net A* node-expansion budget spanning all rip-up attempts
    /// and branch searches; `0` means unlimited. A net over budget
    /// fails cleanly with `FailReason::BudgetExceeded`. Node budgets
    /// are byte-deterministic across thread counts.
    pub net_node_budget: u64,
    /// Per-net wall-clock deadline in milliseconds; `0` means
    /// unlimited. Checked every ~1024 expanded nodes — a liveness
    /// guard, not a deterministic one.
    pub net_deadline_ms: u64,
    /// Whole-run node-expansion budget shared across workers; `0`
    /// means unlimited. Once tripped, remaining nets fail fast and the
    /// run finalizes its committed work (partial results).
    pub run_node_budget: u64,
    /// Whole-run wall-clock deadline in milliseconds; `0` means
    /// unlimited. Like `run_node_budget`, a liveness guard.
    pub run_deadline_ms: u64,
    /// Deterministic fault-injection plan for testing the recovery
    /// paths; `None` (the default) costs one check per band and per
    /// net, never anything per node.
    pub faults: Option<FaultPlan>,
}

impl RouterConfig {
    /// The parameter set used in the paper's experiments.
    #[must_use]
    pub fn paper_defaults() -> RouterConfig {
        RouterConfig {
            alpha: 1.0,
            beta: 1.0,
            gamma: 1.5,
            flip_threshold: 10,
            max_ripup: 3,
            search_margin: 24,
            ripup_penalty: 8.0,
            pin_guard: 2.0,
            wrong_way: 2.0,
            final_flip: true,
            cut_repair: true,
            allow_merge: true,
            net_order: NetOrder::HpwlAscending,
            threads: 1,
            net_node_budget: 0,
            net_deadline_ms: 0,
            run_node_budget: 0,
            run_deadline_ms: 0,
            faults: None,
        }
    }

    /// Scaled integer α.
    #[must_use]
    pub fn alpha_cost(&self) -> u64 {
        (self.alpha * COST_SCALE as f64).round() as u64
    }

    /// Scaled integer β.
    #[must_use]
    pub fn beta_cost(&self) -> u64 {
        (self.beta * COST_SCALE as f64).round() as u64
    }

    /// Scaled integer γ.
    #[must_use]
    pub fn gamma_cost(&self) -> u64 {
        (self.gamma * COST_SCALE as f64).round() as u64
    }

    /// Scaled integer rip-up penalty.
    #[must_use]
    pub fn ripup_penalty_cost(&self) -> u64 {
        (self.ripup_penalty * COST_SCALE as f64).round() as u64
    }

    /// Scaled integer pin-guard penalty.
    #[must_use]
    pub fn pin_guard_cost(&self) -> u64 {
        (self.pin_guard * COST_SCALE as f64).round() as u64
    }

    /// Scaled integer planar cost for a step against the preferred
    /// direction.
    #[must_use]
    pub fn wrong_way_cost(&self) -> u64 {
        (self.alpha * self.wrong_way.max(1.0) * COST_SCALE as f64).round() as u64
    }
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_iv() {
        let c = RouterConfig::paper_defaults();
        assert_eq!(c.alpha, 1.0);
        assert_eq!(c.beta, 1.0);
        assert_eq!(c.gamma, 1.5);
        assert_eq!(c.flip_threshold, 10);
        assert_eq!(c.max_ripup, 3);
        assert!(c.final_flip);
        assert!(c.allow_merge);
        assert_eq!(c.net_order, NetOrder::HpwlAscending);
        // Robustness knobs are off by default: the paper configuration
        // carries no budgets and injects no faults.
        assert_eq!(c.net_node_budget, 0);
        assert_eq!(c.net_deadline_ms, 0);
        assert_eq!(c.run_node_budget, 0);
        assert_eq!(c.run_deadline_ms, 0);
        assert!(c.faults.is_none());
        assert_eq!(RouterConfig::default(), c);
    }

    #[test]
    fn scaled_costs_are_exact() {
        let c = RouterConfig::paper_defaults();
        assert_eq!(c.alpha_cost(), 1000);
        assert_eq!(c.beta_cost(), 1000);
        assert_eq!(c.gamma_cost(), 1500);
        assert_eq!(c.ripup_penalty_cost(), 8000);
    }
}
