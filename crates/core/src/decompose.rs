//! Standalone layout decomposition: optimal mask coloring of an
//! *already-routed* (or hand-drawn) layout, without touching the router.
//!
//! This is the problem solved by the layout-decomposition line of work the
//! paper builds on (its refs. 5–9): given the final patterns, build the
//! overlay constraint graph, check hard-constraint feasibility, and find a
//! coloring minimising side overlay with the same spanning-tree DP +
//! refinement used inside the router.

use sadp_geom::{DesignRules, SpatialHash, TrackRect};
use sadp_graph::{flip, GraphError, OverlayGraph};
use sadp_obs::{Recorder, SpanClock, Stage};
use sadp_scenario::{classify, Color};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// One input pattern: a net id and its wire-fragment rectangles (one
/// rectilinear polygon per net on this layer).
pub type LayoutPattern = (u32, Vec<TrackRect>);

/// The result of a standalone decomposition.
#[derive(Debug, Clone)]
pub struct LayoutColoring {
    /// The chosen color per net.
    pub colors: HashMap<u32, Color>,
    /// Total nonhard side overlay of the coloring, in `w_line` units.
    pub overlay_units: u64,
    /// Number of constraint edges in the overlay constraint graph.
    pub edges: usize,
}

/// Error: the layout has no legal coloring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndecomposableLayout {
    /// The two nets whose relation closed a hard odd cycle (or formed a
    /// contradictory pair).
    pub nets: (u32, u32),
}

impl fmt::Display for UndecomposableLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "layout is not SADP-decomposable: hard constraint cycle through nets {} and {}",
            self.nets.0, self.nets.1
        )
    }
}

impl Error for UndecomposableLayout {}

/// Colors a single-layer layout optimally with respect to the overlay
/// constraint graph (flipping DP + hill-climbing refinement).
///
/// # Errors
///
/// Returns [`UndecomposableLayout`] if the hard constraints (types 1-a and
/// 1-b) contain an odd cycle — the layout cannot be printed by the SADP
/// cut process for any coloring.
///
/// # Example
///
/// ```
/// use sadp_core::decompose_layout;
/// use sadp_geom::{DesignRules, TrackRect};
///
/// // Three wires: 0-1 tip-to-tip (merge), 1-2 and 0-2 side-by-side.
/// let layout = vec![
///     (0, vec![TrackRect::new(0, 0, 4, 0)]),
///     (1, vec![TrackRect::new(5, 0, 12, 0)]),
///     (2, vec![TrackRect::new(0, 1, 12, 1)]),
/// ];
/// let coloring = decompose_layout(&layout, &DesignRules::node_10nm())?;
/// assert_eq!(coloring.colors[&0], coloring.colors[&1]); // merged pair
/// assert_ne!(coloring.colors[&0], coloring.colors[&2]);
/// # Ok::<(), sadp_core::UndecomposableLayout>(())
/// ```
pub fn decompose_layout(
    patterns: &[LayoutPattern],
    rules: &DesignRules,
) -> Result<LayoutColoring, UndecomposableLayout> {
    let mut index = SpatialHash::new(16);
    for (pi, (_, rects)) in patterns.iter().enumerate() {
        for r in rects {
            index.insert(pi as u64, *r);
        }
    }

    let mut graph = OverlayGraph::new();
    let radius = rules.dependence_radius_tracks();
    for (pi, (net, rects)) in patterns.iter().enumerate() {
        graph.ensure_vertex(*net);
        for r in rects {
            for (qi, other) in index.query_entries(&r.expanded(radius)) {
                // Each unordered fragment pair once; same-polygon pairs are
                // skipped (Theorem 3).
                if qi as usize <= pi {
                    continue;
                }
                let other_net = patterns[qi as usize].0;
                if other_net == *net {
                    continue;
                }
                if let Some(s) = classify(r, &other, rules) {
                    if !s.is_constraining() {
                        continue;
                    }
                    match graph.add_scenario_with_kind(*net, other_net, Some(s.kind), s.table) {
                        Ok(()) => {}
                        Err(GraphError::HardOddCycle { a, b })
                        | Err(GraphError::Infeasible { a, b }) => {
                            return Err(UndecomposableLayout { nets: (a, b) });
                        }
                    }
                }
            }
        }
    }

    flip::flip_all(&mut graph);
    flip::greedy_refine(&mut graph, 4);

    let eval = graph.evaluate();
    debug_assert_eq!(eval.hard_violations, 0, "feasible graphs color cleanly");
    let colors = patterns
        .iter()
        .map(|(net, _)| (*net, graph.color(*net)))
        .collect();
    Ok(LayoutColoring {
        colors,
        overlay_units: eval.overlay_units,
        edges: graph.edge_count(),
    })
}

/// [`decompose_layout`], timed as one `decompose` span on `rec`.
///
/// # Errors
///
/// As [`decompose_layout`].
pub fn decompose_layout_observed(
    patterns: &[LayoutPattern],
    rules: &DesignRules,
    rec: &mut dyn Recorder,
) -> Result<LayoutColoring, UndecomposableLayout> {
    let clock = SpanClock::start(&*rec);
    let out = decompose_layout(patterns, rules);
    clock.stop(rec, Stage::Decompose);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules() -> DesignRules {
        DesignRules::node_10nm()
    }

    #[test]
    fn alternating_bus_colors_cleanly() {
        let layout: Vec<LayoutPattern> = (0..6)
            .map(|i| (i, vec![TrackRect::new(0, i as i32, 20, i as i32)]))
            .collect();
        let c = decompose_layout(&layout, &rules()).expect("decomposable");
        assert_eq!(c.overlay_units, 0);
        for w in layout.windows(2) {
            assert_ne!(c.colors[&w[0].0], c.colors[&w[1].0]);
        }
    }

    #[test]
    fn merge_cycle_decomposes() {
        // The Fig. 2 odd cycle: trim-undecomposable, cut-decomposable.
        let layout = vec![
            (0, vec![TrackRect::new(0, 0, 4, 0)]),
            (1, vec![TrackRect::new(5, 0, 12, 0)]),
            (2, vec![TrackRect::new(0, 1, 12, 1)]),
        ];
        let c = decompose_layout(&layout, &rules()).expect("decomposable");
        assert_eq!(c.colors[&0], c.colors[&1]);
        assert_ne!(c.colors[&0], c.colors[&2]);
        assert!(c.edges >= 3);
    }

    #[test]
    fn genuinely_undecomposable_layout_is_reported() {
        // A hard odd cycle: 0-1 side-by-side (diff), 1-2 side-by-side
        // (diff), 0-2 tip-to-tip (same) -> odd.
        let layout = vec![
            (0, vec![TrackRect::new(0, 0, 6, 0)]),
            (1, vec![TrackRect::new(0, 1, 6, 1)]),
            (
                2,
                vec![TrackRect::new(7, 0, 14, 0), TrackRect::new(7, 1, 7, 1)],
            ),
        ];
        // net 2 is tip-to-tip with net 0 (same color) and its stub at
        // (7,1) is tip-to-tip with net 1 (same color) -> 0 and 1 must
        // match, but they are side-by-side (diff): odd cycle.
        let err = decompose_layout(&layout, &rules()).unwrap_err();
        let (a, b) = err.nets;
        assert!(a != b);
        assert!(err.to_string().contains("not SADP-decomposable"));
    }

    #[test]
    fn multi_fragment_polygons_do_not_self_constrain() {
        // An L-shaped single net: its own fragments never constrain each
        // other (Theorem 3).
        let layout = vec![(
            7,
            vec![
                TrackRect::new(0, 0, 6, 0),
                TrackRect::new(6, 0, 6, 6),
                TrackRect::new(0, 2, 4, 2), // close to its own arm
            ],
        )];
        let c = decompose_layout(&layout, &rules()).expect("decomposable");
        assert_eq!(c.edges, 0);
        assert_eq!(c.overlay_units, 0);
    }

    #[test]
    fn empty_layout() {
        let c = decompose_layout(&[], &rules()).expect("trivially decomposable");
        assert!(c.colors.is_empty());
        assert_eq!(c.overlay_units, 0);
    }
}
