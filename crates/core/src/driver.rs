//! The staged routing driver (Fig. 18 / Fig. 19 as a pipeline).
//!
//! Per net, [`route_net`] runs the stages in order: pure **search**
//! ([`SearchStage`](crate::search::SearchStage)), scenario **scan**
//! ([`scan_fragments`]), the type-B cut-conflict check, then the
//! **propose → trial-color → commit/abort** protocol of the
//! [`CommitLedger`].
//!
//! [`route_schedule`] drives the whole netlist. On planes wide enough for
//! more than one column band (see [`BandPlan`]) it becomes the
//! region-sharded driver: nets whose influence region (pin bounding box +
//! search margin + scenario halo) fits one band are routed by per-band
//! workers on `std::thread::scope` against fully private state (a plane
//! clone, a fresh ledger and grids; the pin guards are shared read-only —
//! they never change after the reservation pre-pass). Band results are
//! merged in ascending band order.
//!
//! Boundary-straddling nets then run against the merged state in
//! **waves** (see [`crate::schedule`]): each wave is a contiguous run of
//! the canonical order whose members have pairwise-disjoint interaction
//! footprints. A wave's attempt-0 searches run in parallel against the
//! frozen pre-wave state (phase A); commits then replay serially in
//! canonical order (phase B), so the global commit sequence is exactly
//! the serial one and every pre-search result equals the serial search
//! bit for bit. Rip-up re-searches run live during the replay, just as
//! they would serially.
//!
//! The schedule — band count, net classification, per-band net order,
//! merge order, wave partition — depends only on the plane geometry and
//! the netlist, never on the worker count, so any `threads` value
//! produces byte-identical results. Workers only change how many bands
//! or pre-searches are *in flight* at once.

use crate::astar::SearchScratch;
use crate::budget::{Budget, RunBudget};
use crate::config::RouterConfig;
use crate::grids::{DirGrid, GuardGrid, PenaltyGrid, NO_GUARD};
use crate::ledger::CommitLedger;
use crate::router::Workspace;
use crate::scan::{scan_fragments, FoundScenario};
use crate::search::SearchStage;
use sadp_geom::{GridPoint, Layer, Orientation, TrackRect};
use sadp_grid::{BandPlan, Net, NetId, Netlist, RoutingPlane};
use sadp_obs::{BufferRecorder, FailReason, Recorder, RipReason, RouterEvent, SpanClock, Stage};
use sadp_scenario::ScenarioKind;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Callback invoked by [`route_schedule`] at checkpointable boundaries
/// with the global ledger, the failures so far, and whether the boundary
/// is a *forced* one (a band fold — always worth persisting) or a cheap
/// per-net tick the receiver may throttle.
pub(crate) type CheckpointHook<'h> = &'h mut dyn FnMut(&CommitLedger, &[NetId], bool);

/// Mutable context of one routing stream (the global one, or one band
/// worker's private one).
pub(crate) struct RouteCtx<'a> {
    pub config: &'a RouterConfig,
    pub ledger: &'a mut CommitLedger,
    pub dir_map: &'a mut DirGrid,
    pub guards: &'a GuardGrid,
    pub penalties: &'a mut PenaltyGrid,
    pub scratch: &'a mut SearchScratch,
    /// The whole-run budget, shared (read-mostly atomics) across every
    /// stream of the run including band workers.
    pub run_budget: &'a RunBudget,
    /// Observability sink of this stream: the caller's recorder on the
    /// serial paths, a private [`BufferRecorder`] inside a band worker.
    pub rec: &'a mut dyn Recorder,
}

/// Occupies every pin candidate cell of `net` up front so earlier nets
/// cannot route over the pins of later ones (the owner may still enter
/// its own reserved cells), and claims the soft guard halo around each
/// candidate (first reserver wins).
pub(crate) fn reserve_pins(
    config: &RouterConfig,
    guards: &mut GuardGrid,
    plane: &mut RoutingPlane,
    net: &Net,
) {
    for pin in net.pins() {
        for &c in pin.candidates() {
            let _ = plane.occupy(c, net.id);
        }
    }
    claim_pin_guards(config, guards, net);
}

/// The guard-halo half of [`reserve_pins`]: claims the soft 3×3 keep-out
/// around every pin candidate of `net` (first reserver wins) without
/// touching plane occupancy. The ECO engine uses this alone when
/// rebuilding a restored version, where occupancy comes from the replayed
/// commits instead.
pub(crate) fn claim_pin_guards(config: &RouterConfig, guards: &mut GuardGrid, net: &Net) {
    let guard = config.pin_guard_cost();
    if guard == 0 {
        return;
    }
    for pin in net.pins() {
        for &c in pin.candidates() {
            for dx in -1..=1 {
                for dy in -1..=1 {
                    let g = GridPoint::new(c.layer, c.x + dx, c.y + dy);
                    // First reserver wins, as with the map's
                    // entry().or_insert this replaced.
                    if guards.contains(g) && guards.get(g) == NO_GUARD {
                        guards.set(g, (net.id, guard));
                    }
                }
            }
        }
    }
}

/// Undoes [`reserve_pins`] for one net: frees every pin candidate cell
/// still owned by `net` and returns its guard-halo claims to
/// [`NO_GUARD`]. Called on the incremental failure path (and by the ECO
/// engine when a net is removed) so an unroutable net does not pin its
/// candidate cells forever.
pub(crate) fn release_pins(
    config: &RouterConfig,
    guards: &mut GuardGrid,
    plane: &mut RoutingPlane,
    net: &Net,
) {
    let guard = config.pin_guard_cost();
    for pin in net.pins() {
        for &c in pin.candidates() {
            if plane.occupant(c) == Some(net.id) {
                plane.clear_path(&[c], net.id);
            }
            if guard > 0 {
                for dx in -1..=1 {
                    for dy in -1..=1 {
                        let g = GridPoint::new(c.layer, c.x + dx, c.y + dy);
                        if guards.contains(g) && guards.get(g).0 == net.id {
                            guards.set(g, NO_GUARD);
                        }
                    }
                }
            }
        }
    }
}

/// Records one rip-up: penalises the offending cells (timed as the
/// `ripup` stage), bumps the aggregate and per-reason counters and emits
/// the `net_ripped` event.
fn rip_up(
    ctx: &mut RouteCtx<'_>,
    net: u32,
    attempt: u32,
    reason: RipReason,
    cells: &[(Layer, TrackRect)],
) {
    let clock = SpanClock::start(&*ctx.rec);
    penalize(ctx.config, ctx.penalties, cells);
    ctx.ledger.counters.ripups += 1;
    match reason {
        RipReason::TypeB => ctx.ledger.counters.ripups_type_b += 1,
        RipReason::Graph => ctx.ledger.counters.ripups_graph += 1,
        RipReason::Risk => ctx.ledger.counters.ripups_risk += 1,
    }
    clock.stop(ctx.rec, Stage::Ripup);
    if ctx.rec.enabled() {
        ctx.rec.event(RouterEvent::NetRipped {
            net,
            attempt,
            reason,
        });
    }
}

/// An attempt-0 search completed ahead of time by a wave worker against
/// the frozen pre-wave state. Because wave members have pairwise-disjoint
/// footprints, the outcome is byte-identical to the search the serial
/// schedule would run at this net's turn, and the replay can consume it
/// instead of searching again.
pub(crate) struct PreSearch {
    /// The attempt-0 search outcome.
    pub outcome: crate::search::SearchOutcome,
    /// The per-net budget *after* that search, threaded into any rip-up
    /// attempts so per-net node accounting stays byte-deterministic.
    pub budget: Budget,
}

/// Routes one net through the full stage pipeline with up to `max_ripup`
/// rip-up-and-re-route iterations; returns whether the net was committed.
/// `seed_penalties` pre-loads the penalty grid (used by the cleanup
/// re-route to steer the net away from its old corridor).
/// `count_failures` is false for cleanup re-routes: their casualties are
/// counted once as `failed_cleanup` by the caller, not a second time as
/// initial-routing failures.
pub(crate) fn route_net(
    ctx: &mut RouteCtx<'_>,
    plane: &mut RoutingPlane,
    net: &Net,
    seed_penalties: &[(GridPoint, u64)],
    count_failures: bool,
) -> bool {
    route_net_presearched(ctx, plane, net, seed_penalties, count_failures, None)
}

/// [`route_net`] with an optional pre-computed attempt-0 search from a
/// wave worker. The run budget is *not* re-charged for a consumed
/// pre-search (the worker already added its nodes); the ledger's
/// deterministic `nodes_expanded` counter is charged here, at the net's
/// canonical turn, so counters are thread-count-invariant.
pub(crate) fn route_net_presearched(
    ctx: &mut RouteCtx<'_>,
    plane: &mut RoutingPlane,
    net: &Net,
    seed_penalties: &[(GridPoint, u64)],
    count_failures: bool,
    mut presearch: Option<PreSearch>,
) -> bool {
    let key = net.id.0;
    ctx.penalties.clear();
    for &(p, v) in seed_penalties {
        if ctx.penalties.contains(p) {
            ctx.penalties.update(p, |old| old + v);
        }
    }

    // Graceful degradation: once the run is over its global budget (or a
    // fault plan says this net's budget is exhausted), remaining nets
    // fail fast instead of searching, and the run finalizes whatever is
    // already committed. Injection is keyed by net id only, so serial,
    // banded, and recovered schedules see the identical fault set.
    let injected = count_failures && ctx.config.faults.is_some_and(|f| f.injects_net_budget(key));
    if injected || ctx.run_budget.tripped() {
        if count_failures {
            ctx.ledger.counters.failed_budget += 1;
            if ctx.rec.enabled() {
                ctx.rec.event(RouterEvent::NetFailed {
                    net: key,
                    reason: FailReason::BudgetExceeded,
                });
            }
        }
        return false;
    }

    // One per-net budget spans every rip-up attempt and branch search.
    let mut budget = Budget::for_net(ctx.config);

    for attempt in 0..=ctx.config.max_ripup {
        // Stage 1: pure search over read-only views — or the wave
        // worker's pre-search for attempt 0, which is the identical
        // computation performed ahead of time.
        let outcome = match presearch.take() {
            Some(pre) => {
                budget = pre.budget;
                ctx.ledger.counters.nodes_expanded += pre.outcome.expanded;
                pre.outcome
            }
            None => {
                let stage = SearchStage {
                    plane: &*plane,
                    dir_map: &*ctx.dir_map,
                    guards: ctx.guards,
                    config: ctx.config,
                };
                let outcome = stage.search_net_observed(
                    net,
                    ctx.penalties,
                    ctx.scratch,
                    &mut budget,
                    ctx.rec,
                );
                ctx.ledger.counters.nodes_expanded += outcome.expanded;
                ctx.run_budget.add_nodes(outcome.expanded);
                outcome
            }
        };
        if outcome.budget_exceeded {
            if count_failures {
                ctx.ledger.counters.failed_budget += 1;
                if ctx.rec.enabled() {
                    ctx.rec.event(RouterEvent::NetFailed {
                        net: key,
                        reason: FailReason::BudgetExceeded,
                    });
                }
            }
            ctx.ledger.forget(net.id);
            return false;
        }
        let Some(candidate) = outcome.candidate else {
            if count_failures {
                ctx.ledger.counters.failed_no_path += 1;
                if ctx.rec.enabled() {
                    ctx.rec.event(RouterEvent::NetFailed {
                        net: key,
                        reason: FailReason::NoPath,
                    });
                }
            }
            return false;
        };

        // Stages 2-5: scenario scan, type-B check, propose, trial-color,
        // commit. Shared with the checkpoint-replay path, which re-commits
        // journaled routes without searching.
        match commit_candidate(ctx, plane, net, candidate, true) {
            Ok(flipped) => {
                if ctx.rec.enabled() {
                    ctx.rec.event(RouterEvent::NetRouted {
                        net: key,
                        attempts: attempt + 1,
                        flipped,
                    });
                }
                return true;
            }
            Err(StageReject::Merge(cells)) => {
                rip_up(ctx, key, attempt, RipReason::Graph, &cells);
            }
            Err(StageReject::TypeB(cells)) => {
                rip_up(ctx, key, attempt, RipReason::TypeB, &cells);
            }
            Err(StageReject::Graph {
                layer,
                other,
                cells,
            }) => {
                if ctx.rec.enabled() {
                    ctx.rec.event(RouterEvent::OddCycleDecomposed {
                        net: key,
                        layer: layer.index() as u8,
                        other,
                    });
                }
                rip_up(ctx, key, attempt, RipReason::Graph, &cells);
            }
            Err(StageReject::Risk(cells)) => {
                rip_up(ctx, key, attempt, RipReason::Risk, &cells);
            }
        }
    }
    // Attempts exhausted; leave the graphs clean.
    if count_failures {
        ctx.ledger.counters.failed_exhausted += 1;
        if ctx.rec.enabled() {
            ctx.rec.event(RouterEvent::NetFailed {
                net: key,
                reason: FailReason::Exhausted,
            });
        }
    }
    ctx.ledger.forget(net.id);
    false
}

/// Why [`commit_candidate`] rejected a tentative route. Each variant
/// carries the offending cells so the caller can penalise them; the
/// ledger proposal is already aborted when one of these is returned.
pub(crate) enum StageReject {
    /// Merge-and-cut is disabled and the route formed 1-b pairs (the
    /// \[16\] ablation behaviour).
    Merge(Vec<(Layer, TrackRect)>),
    /// Unavoidable type-B cut conflict (Fig. 16).
    TypeB(Vec<(Layer, TrackRect)>),
    /// Constraint-graph rejection: odd cycle or infeasible pair.
    Graph {
        layer: Layer,
        other: u32,
        cells: Vec<(Layer, TrackRect)>,
    },
    /// The trial coloring could not avoid a realized risk.
    Risk(Vec<(Layer, TrackRect)>),
}

/// Stages 2-5 of the pipeline for an already-found candidate: scenario
/// scan, type-B cut-conflict check, propose, trial coloring, commit.
/// Returns whether the committed net's component was flipped, or the
/// rejection (with the proposal aborted and the graphs rolled back).
///
/// Split out of [`route_net`] so checkpoint replay can re-commit
/// journaled routes through the identical pipeline without searching.
///
/// `enforce_steering` gates the two commit-time *steering heuristics*:
/// the geometric type-B filter and the stage-4 risk abort. Live routing
/// passes `true`. Replaying a *final* routed set passes `false`, because
/// both checks are state- or order-dependent in ways a surviving journal
/// cannot reproduce:
///
/// - the risk check sees the coloring at commit time, and the journal
///   omits ripped-up interlopers and post-commit flip passes, so the
///   replay coloring differs from the original mid-run state;
/// - the type-B filter only fires when the "side" net commits after
///   both "tip" nets, and incremental edits reorder the journal — a
///   geometric pattern that is benign under the final coloring (and was
///   never seen live) can surface under the replayed order.
///
/// The hard constraints (overlay odd cycles, occupancy) stay enforced;
/// callers that skip the steering checks force the captured final
/// coloring over the replayed one afterwards.
pub(crate) fn commit_candidate(
    ctx: &mut RouteCtx<'_>,
    plane: &mut RoutingPlane,
    net: &Net,
    candidate: crate::search::RouteCandidate,
    enforce_steering: bool,
) -> Result<bool, StageReject> {
    let key = net.id.0;

    // Stage 2: classify the tentative route against the routed layout
    // (BTreeMap: layer order must be deterministic).
    let clock = SpanClock::start(&*ctx.rec);
    let mut found: Vec<FoundScenario> = Vec::new();
    let mut per_layer: BTreeMap<Layer, Vec<TrackRect>> = BTreeMap::new();
    for &(layer, rect) in &candidate.fragments {
        per_layer.entry(layer).or_default().push(rect);
    }
    for (layer, frags) in &per_layer {
        found.extend(scan_fragments(
            *layer,
            key,
            frags,
            ctx.ledger.frag_index(*layer),
            plane.rules(),
        ));
    }
    clock.stop(ctx.rec, Stage::Commit);

    // Ablation: without the merge technique every tip-to-tip pair is
    // undecomposable (the \[16\] behaviour) and must be routed away
    // from.
    if !ctx.config.allow_merge {
        let merges: Vec<(Layer, TrackRect)> = found
            .iter()
            .filter(|f| f.scenario.kind == ScenarioKind::OneB)
            .map(|f| (f.layer, f.our_rect))
            .collect();
        if !merges.is_empty() {
            return Err(StageReject::Merge(merges));
        }
    }

    // Cut conflict check (type B, Fig. 16).
    if enforce_steering {
        if let Some(bad) = type_b_conflict(&found, plane.rules()) {
            return Err(StageReject::TypeB(bad));
        }
    }

    // Stage 3: propose — stage the scenario edges in the ledger; odd
    // cycles or infeasible pairs abort the proposal and trigger rip-up
    // (Fig. 19 lines 6-9). The union-find checkpoints inside the
    // proposal make the abort O(net) instead of O(E).
    let clock = SpanClock::start(&*ctx.rec);
    let proposal = ctx.ledger.propose(net.id);
    let mut offender: Option<(Layer, u32)> = None;
    for f in &found {
        if !f.scenario.is_constraining() {
            continue;
        }
        if ctx
            .ledger
            .add_scenario(
                &proposal,
                f.layer,
                f.other_net,
                f.scenario.kind,
                f.scenario.table,
            )
            .is_err()
        {
            offender = Some((f.layer, f.other_net));
            break;
        }
    }
    clock.stop(ctx.rec, Stage::Commit);
    if let Some((layer, bad_net)) = offender {
        ctx.ledger.abort(proposal);
        let cells: Vec<(Layer, TrackRect)> = found
            .iter()
            .filter(|f| f.layer == layer && f.other_net == bad_net)
            .map(|f| (layer, f.our_rect))
            .collect();
        return Err(StageReject::Graph {
            layer,
            other: bad_net,
            cells,
        });
    }

    // Stage 4: trial coloring — pseudo-color, flip on demand, and
    // verify no hard overlay or type-A cut risk remains realized. A
    // risk the coloring cannot avoid is a cut conflict in the making —
    // abort and steer away (Fig. 19 lines 6-9).
    let clock = SpanClock::start(&*ctx.rec);
    let layers: Vec<Layer> = per_layer.keys().copied().collect();
    let (overlay, needs_flip) = ctx.ledger.trial_color(&proposal, &layers);
    let mut flipped = false;
    if needs_flip || overlay > ctx.config.flip_threshold {
        ctx.ledger.flip_trial(&proposal, &layers);
        flipped = true;
    }
    let risky_layers = if enforce_steering {
        ctx.ledger.risky_layers(&proposal, &layers)
    } else {
        Vec::new()
    };
    clock.stop(ctx.rec, Stage::Recolor);
    if !risky_layers.is_empty() {
        let cells: Vec<(Layer, TrackRect)> = found
            .iter()
            .filter(|f| risky_layers.contains(&f.layer))
            .map(|f| (f.layer, f.our_rect))
            .collect();
        ctx.ledger.abort(proposal);
        return Err(StageReject::Risk(cells));
    }
    if flipped {
        ctx.ledger.counters.flips += 1;
    }

    // Stage 5: commit.
    let clock = SpanClock::start(&*ctx.rec);
    ctx.ledger
        .commit(proposal, plane, ctx.dir_map, net, candidate);
    clock.stop(ctx.rec, Stage::Commit);
    Ok(flipped)
}

/// Routes one net against the global state, building the context from the
/// router's workspace. `seed_penalties` and `count_failures` as in
/// [`route_net`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn route_one(
    config: &RouterConfig,
    ledger: &mut CommitLedger,
    ws: &mut Workspace,
    plane: &mut RoutingPlane,
    net: &Net,
    seed_penalties: &[(GridPoint, u64)],
    run_budget: &RunBudget,
    rec: &mut dyn Recorder,
    count_failures: bool,
) -> bool {
    let mut ctx = RouteCtx {
        config,
        ledger,
        dir_map: &mut ws.dir_map,
        guards: &ws.guards,
        penalties: &mut ws.penalties,
        scratch: &mut ws.scratch,
        run_budget,
        rec,
    };
    route_net(&mut ctx, plane, net, seed_penalties, count_failures)
}

/// Adds rip-up penalties around the given cells so the re-route leaves
/// the conflicting corridor instead of shifting by a single track into
/// the same scenario (the whole dependence-radius neighbourhood is
/// penalised, decaying with distance).
pub(crate) fn penalize(
    config: &RouterConfig,
    penalties: &mut PenaltyGrid,
    cells: &[(Layer, TrackRect)],
) {
    let p = config.ripup_penalty_cost();
    for (layer, rect) in cells {
        for (x, y) in rect.expanded(2).cells() {
            let cell = GridPoint::new(*layer, x, y);
            if !penalties.contains(cell) {
                continue;
            }
            let d = rect.track_gap(&TrackRect::cell(x, y));
            let scale = 2 - (d.0.max(d.1)).min(2) as u64 + 1;
            penalties.update(cell, |v| v + p * scale / 2);
        }
    }
}

/// The horizontal influence region of a net: the column range of its pin
/// candidates grown by the worst-case search window. The A\* window of
/// the trunk is the pin bounding box expanded by `search_margin`; each
/// branch search may extend the window by another margin (its targets are
/// points of the previous windows), so `1 + extra.len()` margins bound
/// every search of the net.
fn net_extent(net: &Net, config: &RouterConfig) -> (i32, i32) {
    let mut x0 = i32::MAX;
    let mut x1 = i32::MIN;
    for pin in net.pins() {
        for c in pin.candidates() {
            x0 = x0.min(c.x);
            x1 = x1.max(c.x);
        }
    }
    let margin = config.search_margin * (1 + net.extra.len() as i32);
    (x0 - margin, x1 + margin)
}

/// The result of one band worker.
struct BandOutcome {
    ledger: CommitLedger,
    failed: Vec<NetId>,
    /// The worker's private event/span buffer, replayed into the caller's
    /// recorder in band order so traces are thread-count-invariant.
    rec: BufferRecorder,
}

/// What one [`ScheduleMachine::step`] call did. Every non-`Complete`
/// increment ends *between* canonical commits, so pausing after any step
/// leaves a state [`crate::checkpoint::serialize`] can capture and a
/// resumed run reproduces byte-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepEvent {
    /// One net of the serial (single-band) schedule was processed — a
    /// cheap checkpoint tick the receiver may throttle.
    SerialNet,
    /// One band's private ledger was folded into the global state — a
    /// forced checkpoint boundary. The first fold also runs (and pays
    /// for) the entire parallel band phase, recovery included.
    BandFold,
    /// One boundary net committed at its canonical turn — a throttleable
    /// checkpoint tick. The first commit of each wave also runs the
    /// wave's parallel pre-search phase.
    BoundaryNet,
    /// The schedule is finished; no work was done. Further calls keep
    /// returning `Complete`.
    Complete,
}

/// The borrowed router state one schedule step executes against. Bundled
/// so the resumable [`ScheduleMachine`] and the blocking
/// [`route_schedule`] loop share one signature.
pub(crate) struct StepArgs<'a> {
    pub config: &'a RouterConfig,
    pub ledger: &'a mut CommitLedger,
    pub ws: &'a mut Workspace,
    pub plane: &'a mut RoutingPlane,
    pub netlist: &'a Netlist,
    pub failed: &'a mut Vec<NetId>,
    pub run_budget: &'a RunBudget,
    pub rec: &'a mut dyn Recorder,
}

/// Position of the resumable schedule stepper.
enum Plan {
    /// Single-band plane: the plain serial schedule.
    Serial { order: Vec<NetId>, next: usize },
    /// Region-sharded schedule: band phase, then boundary waves.
    Banded {
        /// Band-local nets, one list per band.
        band_nets: Vec<Vec<NetId>>,
        /// Outcomes of the parallel band phase in ascending band order,
        /// tagged with their recovery flag. Produced lazily by the first
        /// `BandFold` step, consumed front to back by the folds.
        outcomes: Option<VecDeque<(bool, BandOutcome)>>,
        /// Next band to fold.
        next_band: usize,
        /// The wave partition of the boundary tail. It reads only the
        /// plane geometry and the netlist pins, so planning it up front
        /// is identical to planning it after the folds.
        waves: Vec<Vec<NetId>>,
        wave_idx: usize,
        wave_pos: usize,
        /// Pre-search slots of the open wave, consumed front to back.
        slots: VecDeque<WaveSlot>,
    },
}

/// The routing schedule as a resumable state machine: repeated
/// [`ScheduleMachine::step`] calls perform exactly the computation of the
/// blocking loop — same commit order, same events, same counters, for
/// every thread count — but hand control back to the caller between
/// canonical commits. [`route_schedule`] is the blocking wrapper;
/// `RoutingSession` in [`crate::session`] drives the machine in bounded
/// increments.
///
/// Parallelism happens *within* a step, never across steps: the first
/// `BandFold` runs every band worker (and the serial panic recovery,
/// which must see the pre-merge plane) before folding band 0, and the
/// first `BoundaryNet` of each wave runs the wave's pre-search phase A.
/// Pausing between steps therefore cannot reorder or interleave any part
/// of the canonical commit sequence.
///
/// Fault tolerance: band workers run under `catch_unwind`. A band whose
/// worker panics is discarded wholesale and re-run serially *before* any
/// fold, by the identical worker closure with fault injection disabled —
/// so the recovered band's outcome is bit-for-bit the one a clean worker
/// would have produced, and the merged result stays byte-identical for
/// every thread count. A panic that survives the clean retry is a
/// deterministic bug that would abort the serial run too; it propagates.
pub(crate) struct ScheduleMachine {
    plan: Plan,
    steps_done: u64,
    steps_total: u64,
}

impl ScheduleMachine {
    /// Plans the schedule for `order` on the plane. Band classification
    /// and the wave partition are fixed here, before any routing: both
    /// depend only on the plane geometry, the config and the netlist,
    /// never on routed state or the worker count.
    pub(crate) fn new(
        config: &RouterConfig,
        plane: &RoutingPlane,
        netlist: &Netlist,
        order: Vec<NetId>,
    ) -> ScheduleMachine {
        let halo = sadp_scenario::interaction_radius_tracks(plane.rules());
        let plan = BandPlan::for_plane(plane.width(), halo);
        if plan.len() <= 1 {
            let steps_total = order.len() as u64;
            return ScheduleMachine {
                plan: Plan::Serial { order, next: 0 },
                steps_done: 0,
                steps_total,
            };
        }
        // Classify: a net is band-local when its influence region, grown
        // by the scenario halo, fits one band's columns — then its
        // searches, scans and commits provably cannot interact with any
        // other band.
        let mut band_nets: Vec<Vec<NetId>> = vec![Vec::new(); plan.len()];
        let mut boundary: Vec<NetId> = Vec::new();
        for &id in &order {
            let (x0, x1) = net_extent(netlist.net(id), config);
            match plan.band_of_span(x0, x1) {
                Some(j) => band_nets[j].push(id),
                None => boundary.push(id),
            }
        }
        let waves = crate::schedule::plan_waves(&boundary, netlist, config, halo, plane).waves;
        let steps_total = band_nets.len() as u64 + boundary.len() as u64;
        ScheduleMachine {
            plan: Plan::Banded {
                band_nets,
                outcomes: None,
                next_band: 0,
                waves,
                wave_idx: 0,
                wave_pos: 0,
                slots: VecDeque::new(),
            },
            steps_done: 0,
            steps_total,
        }
    }

    /// Steps completed so far (serial nets + band folds + boundary
    /// commits).
    pub(crate) fn steps_done(&self) -> u64 {
        self.steps_done
    }

    /// Total steps the schedule will take.
    pub(crate) fn steps_total(&self) -> u64 {
        self.steps_total
    }

    /// Executes the next increment of the schedule against `a`.
    pub(crate) fn step(&mut self, a: &mut StepArgs<'_>) -> StepEvent {
        let ev = self.step_inner(a);
        if ev != StepEvent::Complete {
            self.steps_done += 1;
        }
        ev
    }

    fn step_inner(&mut self, a: &mut StepArgs<'_>) -> StepEvent {
        match &mut self.plan {
            Plan::Serial { order, next } => {
                let Some(&id) = order.get(*next) else {
                    return StepEvent::Complete;
                };
                *next += 1;
                if !route_one(
                    a.config,
                    &mut *a.ledger,
                    &mut *a.ws,
                    &mut *a.plane,
                    a.netlist.net(id),
                    &[],
                    a.run_budget,
                    &mut *a.rec,
                    true,
                ) {
                    a.failed.push(id);
                }
                StepEvent::SerialNet
            }
            Plan::Banded {
                band_nets,
                outcomes,
                next_band,
                waves,
                wave_idx,
                wave_pos,
                slots,
            } => {
                // Band phase: the whole parallel run (workers + serial
                // panic recovery) happens with the first fold — recovery
                // must see the pre-merge plane, exactly as the blocking
                // loop ordered it. Each later step folds one band.
                if *next_band < band_nets.len() {
                    if outcomes.is_none() {
                        *outcomes = Some(run_bands(
                            a.config,
                            a.plane,
                            &a.ws.guards,
                            a.netlist,
                            band_nets,
                            a.run_budget,
                            a.rec.enabled(),
                            a.rec.timing(),
                        ));
                    }
                    let j = *next_band;
                    *next_band += 1;
                    let (recovered, outcome) = outcomes
                        .as_mut()
                        .expect("band outcomes were just produced")
                        .pop_front()
                        .expect("one outcome per band");
                    fold_band(a, j, recovered, outcome);
                    return StepEvent::BandFold;
                }

                // Boundary phase: nets straddling a band edge still
                // *commit* in exact canonical order against the merged
                // state, but each wave's attempt-0 searches run in
                // parallel against the frozen pre-wave state when the
                // wave opens (see [`crate::schedule`]). Within a wave no
                // member's commit can touch state another member's search
                // read, so each pre-search is byte-identical to the
                // serial search at that net's turn.
                while *wave_idx < waves.len() {
                    let wave = &waves[*wave_idx];
                    if wave.is_empty() {
                        *wave_idx += 1;
                        continue;
                    }
                    if *wave_pos == 0 {
                        // Phase A: parallel pre-search against the frozen
                        // global state.
                        let clock = SpanClock::start(&*a.rec);
                        if a.rec.enabled() {
                            a.rec.event(RouterEvent::WaveScheduled {
                                wave: *wave_idx as u32,
                                nets: wave.len() as u64,
                            });
                        }
                        *slots = presearch_wave(
                            a.config,
                            a.plane,
                            &a.ws.dir_map,
                            &a.ws.guards,
                            a.netlist,
                            wave,
                            a.run_budget,
                            a.config.threads.max(1),
                            a.rec.timing(),
                        )
                        .into();
                        clock.stop(&mut *a.rec, Stage::Boundary);
                    }
                    // Phase B, one increment: this net's serial commit at
                    // its canonical turn. A panicked pre-search falls
                    // back to a live serial search (wave-panic injection
                    // off on that path), which is exactly the serial
                    // schedule for that net; a panic that survives the
                    // fallback is a deterministic bug and propagates, as
                    // it would serially.
                    let id = wave[*wave_pos];
                    let slot = slots.pop_front().expect("one slot per wave member");
                    if slot.recovered {
                        a.ledger.counters.waves_recovered += 1;
                        if a.rec.enabled() {
                            a.rec.event(RouterEvent::WaveRecovered {
                                wave: *wave_idx as u32,
                                net: id.0,
                            });
                        }
                    }
                    slot.rec.replay_into(&mut *a.rec);
                    let mut ctx = RouteCtx {
                        config: a.config,
                        ledger: &mut *a.ledger,
                        dir_map: &mut a.ws.dir_map,
                        guards: &a.ws.guards,
                        penalties: &mut a.ws.penalties,
                        scratch: &mut a.ws.scratch,
                        run_budget: a.run_budget,
                        rec: &mut *a.rec,
                    };
                    if !route_net_presearched(
                        &mut ctx,
                        a.plane,
                        a.netlist.net(id),
                        &[],
                        true,
                        slot.result,
                    ) {
                        a.failed.push(id);
                    }
                    *wave_pos += 1;
                    if *wave_pos == wave.len() {
                        *wave_idx += 1;
                        *wave_pos = 0;
                    }
                    return StepEvent::BoundaryNet;
                }
                StepEvent::Complete
            }
        }
    }
}

/// Folds one band's outcome into the global state (one `BandFold` step).
fn fold_band(a: &mut StepArgs<'_>, j: usize, recovered: bool, outcome: BandOutcome) {
    let nets = outcome.ledger.routed().len() as u64;
    let clock = SpanClock::start(&*a.rec);
    a.ledger
        .merge_band(outcome.ledger, a.plane, &mut a.ws.dir_map);
    clock.stop(&mut *a.rec, Stage::Merge);
    // Replay the band's buffered stream, then mark the merge: the trace
    // reads as "band j's routing, then band j folded in", in ascending
    // band order for every worker count.
    outcome.rec.replay_into(&mut *a.rec);
    if recovered {
        a.ledger.counters.bands_recovered += 1;
        if a.rec.enabled() {
            a.rec.event(RouterEvent::BandRecovered {
                band: j as u32,
                nets,
            });
        }
    } else if a.rec.enabled() {
        a.rec.event(RouterEvent::BandMerged {
            band: j as u32,
            nets,
        });
    }
    a.failed.extend(outcome.failed);
}

/// The parallel band phase: routes every band's nets on fully private
/// state across `config.threads` workers, re-runs panicked bands serially
/// (fault injection off) against the identical pre-merge state, and
/// returns the outcomes in ascending band order tagged with their
/// recovery flag. The ledger tile size uses the global net count so the
/// fragment index behaves exactly like the serial one.
#[allow(clippy::too_many_arguments)]
fn run_bands(
    config: &RouterConfig,
    plane: &RoutingPlane,
    guards: &GuardGrid,
    netlist: &Netlist,
    band_nets: &[Vec<NetId>],
    run_budget: &RunBudget,
    trace: bool,
    timing: bool,
) -> VecDeque<(bool, BandOutcome)> {
    let expected = netlist.len();
    let bands = band_nets.len();
    let workers = config.threads.clamp(1, bands);
    // `inject` arms the fault plan's band panics; the recovery retry runs
    // the same closure with it off. (The scratch allocation can only
    // panic on an oversized plane, which `begin_sized` already rejected.)
    let run_band = move |j: usize, inject: bool| -> BandOutcome {
        let panic_at = if inject {
            config
                .faults
                .and_then(|f| f.band_panic(j, band_nets[j].len()))
        } else {
            None
        };
        let mut band_plane = plane.clone();
        let mut band_ledger = CommitLedger::new(plane, expected);
        let mut dir_map = DirGrid::new(plane, None);
        let mut penalties = PenaltyGrid::new(plane, 0);
        let mut scratch = SearchScratch::new(plane);
        let mut band_failed = Vec::new();
        let mut band_rec = BufferRecorder::with_flags(trace, timing);
        for (k, &id) in band_nets[j].iter().enumerate() {
            if panic_at == Some(k) {
                panic!("injected fault: band {j} worker dies before net {k}");
            }
            let mut ctx = RouteCtx {
                config,
                ledger: &mut band_ledger,
                dir_map: &mut dir_map,
                guards,
                penalties: &mut penalties,
                scratch: &mut scratch,
                run_budget,
                rec: &mut band_rec,
            };
            if !route_net(&mut ctx, &mut band_plane, netlist.net(id), &[], true) {
                band_failed.push(id);
            }
        }
        BandOutcome {
            ledger: band_ledger,
            failed: band_failed,
            rec: band_rec,
        }
    };
    // The isolation boundary: a worker panic poisons only its own band's
    // private state, which is discarded. Applied on the sequential path
    // too, so behavior is thread-count-invariant.
    let guarded = |j: usize| -> Option<BandOutcome> {
        catch_unwind(AssertUnwindSafe(|| run_band(j, true))).ok()
    };

    let mut results: Vec<(usize, Option<BandOutcome>)> = if workers <= 1 {
        (0..bands).map(|j| (j, guarded(j))).collect()
    } else {
        let next = AtomicUsize::new(0);
        let run = &guarded;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    s.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let j = next.fetch_add(1, Ordering::Relaxed);
                            if j >= bands {
                                break;
                            }
                            out.push((j, run(j)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| {
                    h.join()
                        .expect("band worker panicked outside the isolation boundary")
                })
                .collect()
        })
    };
    // Deterministic fold regardless of which worker finished which band.
    results.sort_by_key(|&(j, _)| j);
    // Recovery pass, before any merge mutates the plane: each poisoned
    // band re-runs serially through the identical closure (injection
    // off), so the retried outcome is the one a clean worker produces.
    results
        .into_iter()
        .map(|(j, out)| match out {
            Some(out) => (false, out),
            None => (true, run_band(j, false)),
        })
        .collect()
}

/// Routes `order` on the plane: serially when the plane holds a single
/// band, else via the region-sharded band schedule (see the module docs
/// and [`ScheduleMachine`]). Failed nets are appended to `failed` in
/// schedule order (band nets in ascending band order, then boundary nets
/// in net order). This is the blocking loop over the machine; the
/// checkpoint hook fires after every step, forced at band folds and at
/// completion.
#[allow(clippy::too_many_arguments)]
pub(crate) fn route_schedule(
    config: &RouterConfig,
    ledger: &mut CommitLedger,
    ws: &mut Workspace,
    plane: &mut RoutingPlane,
    netlist: &Netlist,
    order: &[NetId],
    failed: &mut Vec<NetId>,
    run_budget: &RunBudget,
    rec: &mut dyn Recorder,
    mut checkpoint: Option<CheckpointHook<'_>>,
) {
    let mut machine = ScheduleMachine::new(config, plane, netlist, order.to_vec());
    loop {
        let ev = machine.step(&mut StepArgs {
            config,
            ledger: &mut *ledger,
            ws: &mut *ws,
            plane: &mut *plane,
            netlist,
            failed: &mut *failed,
            run_budget,
            rec: &mut *rec,
        });
        match ev {
            // Per-net increments are cheap ticks the hook may throttle.
            StepEvent::SerialNet | StepEvent::BoundaryNet => {
                if let Some(cb) = checkpoint.as_mut() {
                    cb(ledger, failed, false);
                }
            }
            // A fold is always worth persisting.
            StepEvent::BandFold => {
                if let Some(cb) = checkpoint.as_mut() {
                    cb(ledger, failed, true);
                }
            }
            // Final forced boundary: even a run too small to hit a
            // throttled tick leaves a complete, resumable snapshot.
            StepEvent::Complete => {
                if let Some(cb) = checkpoint.as_mut() {
                    cb(ledger, failed, true);
                }
                break;
            }
        }
    }
}

/// One boundary net's pre-search result, produced by a wave worker.
struct WaveSlot {
    /// `Some` when the worker completed the attempt-0 search; `None` when
    /// it skipped (the budget fail-fast preamble would refuse the net
    /// anyway) or panicked.
    result: Option<PreSearch>,
    /// The pre-search panicked and was caught; the replay re-searches
    /// live on the serial fallback path and counts the recovery.
    recovered: bool,
    /// The worker's span buffer (timing only — wave workers emit no
    /// events), replayed into the caller's recorder at the net's
    /// canonical turn so profiles are thread-count-invariant.
    rec: BufferRecorder,
}

/// Phase A of one wave: pre-search every member against the frozen
/// global state. Workers share the read-only plane, direction map and
/// pin guards; penalties and scratch are worker-private. Each search is
/// wrapped in `catch_unwind` so one poisoned pre-search (injected via
/// [`FaultPlan::injects_wave_panic`](crate::FaultPlan::injects_wave_panic),
/// or a genuine crash) costs only its own slot. Slot order matches
/// `wave`, regardless of which worker ran what.
#[allow(clippy::too_many_arguments)]
fn presearch_wave(
    config: &RouterConfig,
    plane: &RoutingPlane,
    dir_map: &DirGrid,
    guards: &GuardGrid,
    netlist: &Netlist,
    wave: &[NetId],
    run_budget: &RunBudget,
    workers: usize,
    timing: bool,
) -> Vec<WaveSlot> {
    let search_one =
        |id: NetId, penalties: &mut PenaltyGrid, scratch: &mut SearchScratch| -> WaveSlot {
            let key = id.0;
            let mut wrec = BufferRecorder::with_flags(false, timing);
            // Mirror the fail-fast preamble of `route_net`: a net the
            // replay will refuse to route must not search here either.
            let injected = config.faults.is_some_and(|f| f.injects_net_budget(key));
            if injected || run_budget.tripped() {
                return WaveSlot {
                    result: None,
                    recovered: false,
                    rec: wrec,
                };
            }
            penalties.clear();
            let mut budget = Budget::for_net(config);
            let stage = SearchStage {
                plane,
                dir_map,
                guards,
                config,
            };
            let net = netlist.net(id);
            // The isolation boundary: a panic poisons only this slot's
            // private state. The scratch resets itself at the start of
            // every search, so reusing it afterwards is safe.
            let caught = catch_unwind(AssertUnwindSafe(|| {
                if config.faults.is_some_and(|f| f.injects_wave_panic(key)) {
                    panic!("injected fault: wave pre-search of net {key} dies");
                }
                stage.search_net_observed(net, penalties, scratch, &mut budget, &mut wrec)
            }));
            match caught {
                Ok(outcome) => {
                    // Charge the shared run budget now, like the serial
                    // path; the replay must not charge it again.
                    run_budget.add_nodes(outcome.expanded);
                    WaveSlot {
                        result: Some(PreSearch { outcome, budget }),
                        recovered: false,
                        rec: wrec,
                    }
                }
                // A panicked search never closed its span, so the buffer
                // is still clean; drop any state and let replay re-run.
                Err(_) => WaveSlot {
                    result: None,
                    recovered: true,
                    rec: wrec,
                },
            }
        };

    let n = wave.len();
    if workers <= 1 || n <= 1 {
        let mut penalties = PenaltyGrid::new(plane, 0);
        let mut scratch = SearchScratch::new(plane);
        return wave
            .iter()
            .map(|&id| search_one(id, &mut penalties, &mut scratch))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let search = &search_one;
    let mut slots: Vec<Option<WaveSlot>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers.min(n))
            .map(|_| {
                let next = &next;
                s.spawn(move || {
                    let mut penalties = PenaltyGrid::new(plane, 0);
                    let mut scratch = SearchScratch::new(plane);
                    let mut out = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= n {
                            break;
                        }
                        out.push((k, search(wave[k], &mut penalties, &mut scratch)));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            let batch = h
                .join()
                .expect("wave worker panicked outside the isolation boundary");
            for (k, slot) in batch {
                slots[k] = Some(slot);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every wave slot is filled exactly once"))
        .collect()
}

/// Detects unavoidable type-B cut conflicts in the tentative route's
/// scenarios: two cut-defined boundary sections of the same fragment
/// within `d_cut` of each other. Returns the offending fragments.
fn type_b_conflict(
    found: &[FoundScenario],
    rules: &sadp_geom::DesignRules,
) -> Option<Vec<(Layer, TrackRect)>> {
    // Tips of routed nets pointing at a side of one of our fragments, from
    // which direction, and at which axial position.
    struct TipHit {
        layer: Layer,
        our: TrackRect,
        pos: i32,
        positive_side: bool,
    }
    let mut hits: Vec<TipHit> = Vec::new();
    for f in found {
        match f.scenario.kind {
            ScenarioKind::TwoB if f.scenario.swapped => {
                // Canonical A (the tip) is the other net; we are the side.
                let (pos, positive_side) = match f.our_rect.orientation() {
                    Orientation::Horizontal | Orientation::Point => {
                        (f.other_rect.x0, f.other_rect.y0 > f.our_rect.y1)
                    }
                    Orientation::Vertical => (f.other_rect.y0, f.other_rect.x0 > f.our_rect.x1),
                };
                hits.push(TipHit {
                    layer: f.layer,
                    our: f.our_rect,
                    pos,
                    positive_side,
                });
            }
            // A one-cell fragment tip-to-tip with routed nets on both ends:
            // the two separating cuts are only w_line apart (< d_cut).
            ScenarioKind::OneB if f.our_rect.len_cells() == 1 => {
                let twin = found.iter().any(|g| {
                    g.scenario.kind == ScenarioKind::OneB
                        && g.layer == f.layer
                        && g.our_rect == f.our_rect
                        && g.other_rect != f.other_rect
                        && opposite_ends(&f.our_rect, &f.other_rect, &g.other_rect)
                });
                if twin {
                    return Some(vec![(f.layer, f.our_rect)]);
                }
            }
            _ => {}
        }
    }
    // Two tips on opposite sides of the same fragment within d_cut.
    let d_tracks = (rules.d_cut().0 / rules.pitch().0 + 1) as i32;
    for (i, a) in hits.iter().enumerate() {
        for b in hits.iter().skip(i + 1) {
            if a.layer == b.layer
                && a.our == b.our
                && a.positive_side != b.positive_side
                && (a.pos - b.pos).abs() < d_tracks
            {
                return Some(vec![(a.layer, a.our)]);
            }
        }
    }
    None
}

fn opposite_ends(ours: &TrackRect, a: &TrackRect, b: &TrackRect) -> bool {
    // For a single-cell fragment, tips approach along one axis from both
    // directions.
    let (ax, ay) = (a.x0.max(a.x1.min(ours.x0)), a.y0.max(a.y1.min(ours.y0)));
    let (bx, by) = (b.x0.max(b.x1.min(ours.x0)), b.y0.max(b.y1.min(ours.y0)));
    let da = ((ax - ours.x0).signum(), (ay - ours.y0).signum());
    let db = ((bx - ours.x0).signum(), (by - ours.y0).signum());
    da.0 == -db.0 && da.1 == -db.1 && (da != (0, 0))
}
