//! The dependence-scoped incremental (ECO) routing engine.
//!
//! An [`EcoSession`] starts from a finished batch run (it drives a
//! [`RoutingSession`] to completion) and then accepts edits: nets can be
//! added, removed or moved, and rectangular blockages added or removed.
//! Each edit re-routes *only* the nets whose interaction footprints
//! ([`net_footprint`], expanded by the scenario halo
//! [`sadp_scenario::interaction_radius_tracks`]) intersect the edit's
//! region — the TRIAD-style dependence-radius argument: a net whose
//! footprint is disjoint from the edited region can neither read nor
//! write any cell, fragment or scenario the edit touches, so its route
//! and constraints are provably unaffected.
//!
//! Every edit is journaled as a version pair (the serialized commit
//! ledger plus the explicit overlay colors, netlist, active-net set and
//! dynamic obstacles before and after), giving [`EcoSession::undo`] /
//! [`EcoSession::redo`] that restore the router state byte-identically:
//! plane occupancy, overlay colors, patterns, hard-constraint (DSU)
//! relations and counters all compare equal under
//! [`EcoSession::state_digest`]. Restores *rebuild* deterministically —
//! the pristine base plane is re-blocked, the journal replayed through
//! the identical commit pipeline ([`crate::checkpoint`] replay), and the
//! captured colors forced — rather than trusting an inverse of the live
//! mutation, so the proof obligation is one directed rebuild instead of
//! one inverse per edit kind.
//!
//! Steady-state invariant: between edits, plane occupancy is exactly
//! *committed route cells plus blockages*. Unused pin candidates are
//! released at commit and an unrouted net's reservations are released on
//! its failure path, so nothing else holds cells. The rebuild relies on
//! this — it reproduces occupancy purely from the replayed commits.
//!
//! The scripted form ([`parse_edit_script`], `sadp edit`) makes editing
//! sessions replayable and byte-for-byte comparable across thread
//! counts, like every other entry point of the router.

use crate::checkpoint::{self, Snapshot};
use crate::config::RouterConfig;
use crate::driver;
use crate::router::{Router, RouterError};
use crate::schedule::net_footprint;
use crate::session::{RoutingSession, SessionError, SessionStatus, StepBudget};
use sadp_geom::{GridPoint, Layer, SpatialHash, TrackRect};
use sadp_grid::{CellState, Net, NetId, Netlist, Pin, RoutingPlane};
use sadp_obs::{BufferRecorder, EditKind, Recorder, RouterEvent};
use sadp_scenario::Color;
use std::collections::{BTreeSet, HashSet};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// One ECO edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcoEdit {
    /// Add a net (≥ 2 pins; first two are the trunk) and route it.
    AddNet {
        /// Net name (must not collide with an active net's name).
        name: String,
        /// Pins in [`sadp_grid::Net::multi`] order.
        pins: Vec<Pin>,
    },
    /// Remove a net: unroute it and release its reservations. The net
    /// stays in the netlist as a tombstone so ids remain stable.
    RemoveNet {
        /// The net to remove.
        net: NetId,
    },
    /// Replace a net's pins and re-route it.
    MoveNet {
        /// The net to move.
        net: NetId,
        /// The new pins, in [`sadp_grid::Net::multi`] order.
        pins: Vec<Pin>,
    },
    /// Block a rectangle on one layer.
    AddObstacle {
        /// Layer of the blockage.
        layer: Layer,
        /// Blocked cell rectangle (clipped to the plane).
        rect: TrackRect,
    },
    /// Remove a previously added [`EcoEdit::AddObstacle`] rectangle
    /// (must match one exactly; layout-file blockages cannot be removed).
    RemoveObstacle {
        /// Layer of the blockage.
        layer: Layer,
        /// The exact rectangle passed to `AddObstacle`.
        rect: TrackRect,
    },
}

impl EcoEdit {
    /// The observability kind tag of this edit.
    #[must_use]
    pub fn kind(&self) -> EditKind {
        match self {
            EcoEdit::AddNet { .. } => EditKind::AddNet,
            EcoEdit::RemoveNet { .. } => EditKind::RemoveNet,
            EcoEdit::MoveNet { .. } => EditKind::MoveNet,
            EcoEdit::AddObstacle { .. } => EditKind::AddObstacle,
            EcoEdit::RemoveObstacle { .. } => EditKind::RemoveObstacle,
        }
    }
}

/// Errors of the ECO engine.
#[derive(Debug)]
pub enum EcoError {
    /// The initial batch routing failed to build.
    Session(SessionError),
    /// The underlying incremental router rejected a call.
    Router(RouterError),
    /// A net reference did not resolve to an active net.
    UnknownNet(String),
    /// An edit failed validation (out-of-bounds pin, blocked candidate,
    /// obstacle over a pin, …). The message says what and where.
    BadEdit(String),
    /// `undo()` with no edit left to undo.
    NothingToUndo,
    /// `redo()` with no undone edit left to re-apply.
    NothingToRedo,
    /// An edit script failed to parse.
    Script {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for EcoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcoError::Session(e) => write!(f, "initial routing failed: {e}"),
            EcoError::Router(e) => write!(f, "router error: {e}"),
            EcoError::UnknownNet(what) => write!(f, "no active net matches `{what}`"),
            EcoError::BadEdit(msg) => write!(f, "invalid edit: {msg}"),
            EcoError::NothingToUndo => write!(f, "nothing to undo"),
            EcoError::NothingToRedo => write!(f, "nothing to redo"),
            EcoError::Script { line, message } => {
                write!(f, "edit script line {line}: {message}")
            }
        }
    }
}

impl Error for EcoError {}

impl From<SessionError> for EcoError {
    fn from(e: SessionError) -> EcoError {
        EcoError::Session(e)
    }
}

impl From<RouterError> for EcoError {
    fn from(e: RouterError) -> EcoError {
        EcoError::Router(e)
    }
}

/// What one applied edit did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditOutcome {
    /// Session-wide edit sequence number (monotonic, not reused after
    /// undo), matching the `edit` field of the trace events.
    pub edit: u32,
    /// The edit's kind tag.
    pub kind: EditKind,
    /// Nets invalidated by the dependence-radius query, ascending.
    pub invalidated: Vec<NetId>,
    /// Nets re-routed successfully (invalidated survivors plus an
    /// added/moved net).
    pub rerouted: u64,
    /// Nets left unrouted after the edit (session-wide).
    pub failed: u64,
}

/// A net reference in an edit script: by name or by `#id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetRef {
    /// Resolve by net name among active nets (lowest id wins).
    Name(String),
    /// Resolve by raw net id.
    Id(u32),
}

impl fmt::Display for NetRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetRef::Name(n) => write!(f, "{n}"),
            NetRef::Id(i) => write!(f, "#{i}"),
        }
    }
}

/// One operation of a parsed edit script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptOp {
    /// `add NAME PIN PIN [PIN...]`
    Add {
        /// Net name.
        name: String,
        /// Parsed pins.
        pins: Vec<Pin>,
    },
    /// `remove NET`
    Remove {
        /// Net reference.
        net: NetRef,
    },
    /// `move NET PIN PIN [PIN...]`
    Move {
        /// Net reference.
        net: NetRef,
        /// The new pins.
        pins: Vec<Pin>,
    },
    /// `obstacle L X0 Y0 X1 Y1`
    Obstacle {
        /// Layer.
        layer: Layer,
        /// Rectangle.
        rect: TrackRect,
    },
    /// `clear L X0 Y0 X1 Y1`
    Clear {
        /// Layer.
        layer: Layer,
        /// Rectangle.
        rect: TrackRect,
    },
    /// `undo`
    Undo,
    /// `redo`
    Redo,
}

/// What one script operation did when run by [`EcoSession::run_script`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutcome {
    /// An edit was applied.
    Edit(EditOutcome),
    /// An `undo` line ran.
    Undo,
    /// A `redo` line ran.
    Redo,
}

/// A captured router state: everything needed to rebuild it
/// deterministically. The ledger text pins the committed geometry and
/// counters; the colors pin the (commit-order-dependent) overlay
/// coloring explicitly, because a replay is free to arrive at a
/// different — equally valid — coloring.
struct EcoVersion {
    ckpt: String,
    /// `(layer, net, color)`, sorted by `(layer, net)`.
    colors: Vec<(u8, u32, Color)>,
    netlist: Netlist,
    active: BTreeSet<NetId>,
    obstacles: Vec<(Layer, TrackRect)>,
}

/// One journal entry group: the edit plus the full state on both sides.
struct EcoRecord {
    edit: EcoEdit,
    before: EcoVersion,
    after: EcoVersion,
}

/// A live editing session over a routed layout. See the module docs.
pub struct EcoSession {
    router: Router,
    plane: RoutingPlane,
    /// The plane as loaded (layout blockages only, nothing routed) —
    /// the rebuild root for restores.
    base_plane: RoutingPlane,
    netlist: Netlist,
    /// Nets that exist from the editor's point of view. Removed nets
    /// stay in `netlist` as tombstones (ids must not shift) but leave
    /// this set.
    active: BTreeSet<NetId>,
    /// Dynamic blockages added by edits, in application order.
    obstacles: Vec<(Layer, TrackRect)>,
    rec: BufferRecorder,
    undo_stack: Vec<EcoRecord>,
    redo_stack: Vec<EcoRecord>,
    edit_seq: u32,
}

impl EcoSession {
    /// Routes `netlist` on `plane` to completion (the standard batch
    /// schedule, honouring `config.threads`) and opens an editing
    /// session on the result. With `trace` on, the batch events and all
    /// later edit events accumulate in one stream for
    /// [`EcoSession::drain_events`].
    ///
    /// Entering the session normalises reservations: pin cells held by
    /// *unrouted* nets are released (they are re-reserved on retry), so
    /// the steady-state invariant above holds from the first edit.
    ///
    /// # Errors
    ///
    /// [`EcoError::Session`] when the batch session cannot be built
    /// (oversized plane).
    pub fn create(
        config: RouterConfig,
        plane: RoutingPlane,
        netlist: Netlist,
        trace: bool,
    ) -> Result<EcoSession, EcoError> {
        let base_plane = plane.clone();
        let mut session = RoutingSession::create(config, plane, netlist, trace, false)?;
        loop {
            match session.advance(StepBudget::unbounded()) {
                SessionStatus::Running | SessionStatus::CheckpointReady => {}
                SessionStatus::Done(_) => break,
                SessionStatus::Failed(e) => return Err(EcoError::Session(e)),
            }
        }
        let (mut router, mut plane, netlist, rec) = session.into_router_parts();
        // Normalise: unrouted nets must not hold pin reservations (the
        // batch flow leaves them reserved; the incremental flow releases
        // them on failure — adopt the incremental semantics).
        {
            let Router {
                config,
                workspace,
                failed,
                ..
            } = &mut router;
            let ws = workspace.as_mut().expect("session router is begun");
            for id in failed.iter() {
                driver::release_pins(config, &mut ws.guards, &mut plane, netlist.net(*id));
            }
        }
        let active = netlist.iter().map(|n| n.id).collect();
        Ok(EcoSession {
            router,
            plane,
            base_plane,
            netlist,
            active,
            obstacles: Vec::new(),
            rec,
            undo_stack: Vec::new(),
            redo_stack: Vec::new(),
            edit_seq: 0,
        })
    }

    /// Applies one edit: validates it, computes the dependence-scoped
    /// invalidated set, rips those nets up, applies the structural
    /// change and re-routes — then journals the before/after versions.
    /// A successful apply clears the redo stack.
    ///
    /// # Errors
    ///
    /// [`EcoError::UnknownNet`] / [`EcoError::BadEdit`] when validation
    /// rejects the edit; the session state is untouched in that case.
    pub fn apply(&mut self, edit: EcoEdit) -> Result<EditOutcome, EcoError> {
        self.validate(&edit)?;
        let before = self.capture_version();
        let outcome = self.apply_live(&edit);
        let after = self.capture_version();
        self.undo_stack.push(EcoRecord {
            edit,
            before,
            after,
        });
        self.redo_stack.clear();
        Ok(outcome)
    }

    /// Reverts the most recent edit by rebuilding its *before* version.
    ///
    /// # Errors
    ///
    /// [`EcoError::NothingToUndo`] when the journal is empty.
    pub fn undo(&mut self) -> Result<(), EcoError> {
        let rec = self.undo_stack.pop().ok_or(EcoError::NothingToUndo)?;
        self.restore(&rec.before);
        self.redo_stack.push(rec);
        Ok(())
    }

    /// Re-applies the most recently undone edit by rebuilding its
    /// *after* version (no re-routing happens — the journaled result is
    /// restored exactly).
    ///
    /// # Errors
    ///
    /// [`EcoError::NothingToRedo`] when nothing was undone.
    pub fn redo(&mut self) -> Result<(), EcoError> {
        let rec = self.redo_stack.pop().ok_or(EcoError::NothingToRedo)?;
        self.restore(&rec.after);
        self.undo_stack.push(rec);
        Ok(())
    }

    /// Runs a parsed edit script in order, stopping at the first error.
    ///
    /// # Errors
    ///
    /// The first failing operation's error; operations before it remain
    /// applied (each is individually undoable).
    pub fn run_script(&mut self, ops: &[ScriptOp]) -> Result<Vec<OpOutcome>, EcoError> {
        let mut out = Vec::with_capacity(ops.len());
        for op in ops {
            out.push(match op {
                ScriptOp::Add { name, pins } => OpOutcome::Edit(self.apply(EcoEdit::AddNet {
                    name: name.clone(),
                    pins: pins.clone(),
                })?),
                ScriptOp::Remove { net } => {
                    let net = self.resolve(net)?;
                    OpOutcome::Edit(self.apply(EcoEdit::RemoveNet { net })?)
                }
                ScriptOp::Move { net, pins } => {
                    let net = self.resolve(net)?;
                    OpOutcome::Edit(self.apply(EcoEdit::MoveNet {
                        net,
                        pins: pins.clone(),
                    })?)
                }
                ScriptOp::Obstacle { layer, rect } => {
                    OpOutcome::Edit(self.apply(EcoEdit::AddObstacle {
                        layer: *layer,
                        rect: *rect,
                    })?)
                }
                ScriptOp::Clear { layer, rect } => {
                    OpOutcome::Edit(self.apply(EcoEdit::RemoveObstacle {
                        layer: *layer,
                        rect: *rect,
                    })?)
                }
                ScriptOp::Undo => {
                    self.undo()?;
                    OpOutcome::Undo
                }
                ScriptOp::Redo => {
                    self.redo()?;
                    OpOutcome::Redo
                }
            });
        }
        Ok(out)
    }

    /// Resolves a script net reference against the active nets.
    ///
    /// # Errors
    ///
    /// [`EcoError::UnknownNet`] when nothing matches.
    pub fn resolve(&self, net: &NetRef) -> Result<NetId, EcoError> {
        match net {
            NetRef::Id(raw) => {
                let id = NetId(*raw);
                if self.active.contains(&id) {
                    Ok(id)
                } else {
                    Err(EcoError::UnknownNet(format!("#{raw}")))
                }
            }
            NetRef::Name(name) => self
                .active
                .iter()
                .copied()
                .find(|id| self.netlist.net(*id).name == *name)
                .ok_or_else(|| EcoError::UnknownNet(name.clone())),
        }
    }

    /// A canonical text digest of the router state: per-layer occupancy
    /// and blockages, overlay colors, colored patterns, hard-constraint
    /// components (in the order-independent form of
    /// [`sadp_graph::OverlayGraph::hard_components`]), failed nets and
    /// counters. Two states with equal digests route, color and
    /// decompose identically; the undo property test pins
    /// `digest(before) == digest(undo(apply(e)))` byte for byte.
    #[must_use]
    pub fn state_digest(&self) -> String {
        let mut out = String::new();
        for li in 0..self.plane.layers() {
            let layer = Layer(li);
            let _ = write!(out, "occ {li}");
            for (x, y, net) in self.plane.occupied_cells(layer) {
                let _ = write!(out, " {x},{y}:{}", net.0);
            }
            out.push('\n');
            let _ = write!(out, "blk {li}");
            for y in 0..self.plane.height() {
                for x in 0..self.plane.width() {
                    if self.plane.cell(GridPoint::new(layer, x, y)) == CellState::Blocked {
                        let _ = write!(out, " {x},{y}");
                    }
                }
            }
            out.push('\n');
        }
        for (li, g) in self.router.ledger().graphs().iter().enumerate() {
            let mut vs: Vec<u32> = g.vertices().collect();
            vs.sort_unstable();
            let _ = write!(out, "color {li}");
            for v in vs {
                let c = match g.color(v) {
                    Color::Core => 'C',
                    Color::Second => 'S',
                };
                let _ = write!(out, " {v}:{c}");
            }
            out.push('\n');
            let _ = write!(out, "dsu {li}");
            for (min, members) in g.hard_components() {
                let _ = write!(out, " {min}=");
                for (i, (v, p)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push('|');
                    }
                    let _ = write!(out, "{v}:{}", u8::from(*p));
                }
            }
            out.push('\n');
            let _ = write!(out, "pat {li}");
            for (net, color, rects) in self.router.patterns_on_layer(Layer(li as u8)) {
                let c = match color {
                    Color::Core => 'C',
                    Color::Second => 'S',
                };
                let _ = write!(out, " {net}:{c}:");
                for (i, r) in rects.iter().enumerate() {
                    if i > 0 {
                        out.push('+');
                    }
                    let _ = write!(out, "{r}");
                }
            }
            out.push('\n');
        }
        let mut failed: Vec<u32> = self.router.failed().iter().map(|id| id.0).collect();
        failed.sort_unstable();
        let _ = write!(out, "failed");
        for id in failed {
            let _ = write!(out, " {id}");
        }
        out.push('\n');
        let _ = writeln!(out, "counters {}", self.router.ledger().counters.to_json());
        out
    }

    /// Drains the trace events accumulated since the last drain (batch
    /// routing plus every edit). Empty when tracing is off.
    pub fn drain_events(&mut self) -> Vec<RouterEvent> {
        self.rec.take_events()
    }

    /// The live router, for inspection (colors, patterns, report).
    #[must_use]
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The live plane.
    #[must_use]
    pub fn plane(&self) -> &RoutingPlane {
        &self.plane
    }

    /// The netlist, including tombstoned (removed) nets.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Ids of the active (non-removed) nets, ascending.
    pub fn active_nets(&self) -> impl Iterator<Item = NetId> + '_ {
        self.active.iter().copied()
    }

    /// Routed / failed / active net counts, a cheap status triple.
    #[must_use]
    pub fn stats(&self) -> (usize, usize, usize) {
        (
            self.router.ledger().routed().len(),
            self.router.failed().len(),
            self.active.len(),
        )
    }

    /// The session obstacles currently in force, in application order.
    #[must_use]
    pub fn obstacles(&self) -> &[(Layer, TrackRect)] {
        &self.obstacles
    }

    /// Edits currently undoable.
    #[must_use]
    pub fn undo_depth(&self) -> usize {
        self.undo_stack.len()
    }

    /// Undone edits currently redoable.
    #[must_use]
    pub fn redo_depth(&self) -> usize {
        self.redo_stack.len()
    }

    /// The journaled edits, oldest first.
    pub fn history(&self) -> impl Iterator<Item = &EcoEdit> {
        self.undo_stack.iter().map(|r| &r.edit)
    }

    // ---- internals ----------------------------------------------------

    fn validate(&self, edit: &EcoEdit) -> Result<(), EcoError> {
        match edit {
            EcoEdit::AddNet { name, pins } => {
                if let Some(id) = self
                    .active
                    .iter()
                    .find(|id| self.netlist.net(**id).name == *name)
                {
                    return Err(EcoError::BadEdit(format!(
                        "net name `{name}` is already in use by net #{}",
                        id.0
                    )));
                }
                self.validate_pins(pins, None)
            }
            EcoEdit::RemoveNet { net } => self.check_active(*net),
            EcoEdit::MoveNet { net, pins } => {
                self.check_active(*net)?;
                self.validate_pins(pins, Some(*net))
            }
            EcoEdit::AddObstacle { layer, rect } => {
                if layer.index() >= self.plane.layers() as usize {
                    return Err(EcoError::BadEdit(format!(
                        "layer {} out of range (plane has {})",
                        layer.index(),
                        self.plane.layers()
                    )));
                }
                if self.clip(rect).is_none() {
                    return Err(EcoError::BadEdit(format!(
                        "obstacle {rect} lies outside the plane"
                    )));
                }
                // A blockage over a pin candidate would strand its net
                // permanently (and silently skip occupied candidate
                // cells); reject instead.
                for &id in &self.active {
                    for pin in self.netlist.net(id).pins() {
                        for c in pin.candidates() {
                            if c.layer == *layer && rect.contains_cell(c.x, c.y) {
                                return Err(EcoError::BadEdit(format!(
                                    "obstacle {rect} on layer {} covers pin candidate \
                                     {},{} of net #{}",
                                    layer.index(),
                                    c.x,
                                    c.y,
                                    id.0
                                )));
                            }
                        }
                    }
                }
                Ok(())
            }
            EcoEdit::RemoveObstacle { layer, rect } => {
                if self.obstacles.contains(&(*layer, *rect)) {
                    Ok(())
                } else {
                    Err(EcoError::BadEdit(format!(
                        "no session obstacle {rect} on layer {} to remove \
                         (layout-file blockages cannot be cleared)",
                        layer.index()
                    )))
                }
            }
        }
    }

    fn check_active(&self, net: NetId) -> Result<(), EcoError> {
        if self.active.contains(&net) {
            Ok(())
        } else {
            Err(EcoError::UnknownNet(format!("#{}", net.0)))
        }
    }

    fn validate_pins(&self, pins: &[Pin], moving: Option<NetId>) -> Result<(), EcoError> {
        if pins.len() < 2 {
            return Err(EcoError::BadEdit(format!(
                "a net needs at least two pins, got {}",
                pins.len()
            )));
        }
        let mut new_cells: HashSet<GridPoint> = HashSet::new();
        for pin in pins {
            for &c in pin.candidates() {
                if !self.plane.in_bounds(c) {
                    return Err(EcoError::BadEdit(format!(
                        "pin candidate {},{},{} is out of bounds",
                        c.layer.index(),
                        c.x,
                        c.y
                    )));
                }
                if self.plane.cell(c) == CellState::Blocked {
                    return Err(EcoError::BadEdit(format!(
                        "pin candidate {},{},{} is blocked",
                        c.layer.index(),
                        c.x,
                        c.y
                    )));
                }
                new_cells.insert(c);
            }
        }
        // Sharing a candidate cell with another net's pin makes
        // reservation outcomes order-dependent; keep edits unambiguous.
        for &id in &self.active {
            if Some(id) == moving {
                continue;
            }
            for pin in self.netlist.net(id).pins() {
                for c in pin.candidates() {
                    if new_cells.contains(c) {
                        return Err(EcoError::BadEdit(format!(
                            "pin candidate {},{},{} collides with a pin of net #{}",
                            c.layer.index(),
                            c.x,
                            c.y,
                            id.0
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    fn clip(&self, rect: &TrackRect) -> Option<TrackRect> {
        let plane_rect = TrackRect::new(0, 0, self.plane.width() - 1, self.plane.height() - 1);
        rect.intersection(&plane_rect)
    }

    /// The regions an edit perturbs, already halo-expanded where the
    /// edit is not itself a net footprint (footprints carry the halo).
    fn edit_regions(&self, edit: &EcoEdit, halo: i32) -> Vec<TrackRect> {
        let config = self.router.config();
        match edit {
            EcoEdit::AddNet { name, pins } => {
                let probe = Net::multi(NetId(self.netlist.len() as u32), name, pins.clone());
                vec![net_footprint(&probe, config, halo, &self.plane)]
            }
            EcoEdit::RemoveNet { net } => {
                vec![net_footprint(
                    self.netlist.net(*net),
                    config,
                    halo,
                    &self.plane,
                )]
            }
            EcoEdit::MoveNet { net, pins } => {
                let old = net_footprint(self.netlist.net(*net), config, halo, &self.plane);
                let probe = Net::multi(*net, &self.netlist.net(*net).name, pins.clone());
                vec![old, net_footprint(&probe, config, halo, &self.plane)]
            }
            EcoEdit::AddObstacle { rect, .. } | EcoEdit::RemoveObstacle { rect, .. } => {
                match self.clip(&rect.expanded(halo)) {
                    Some(r) => vec![r],
                    None => Vec::new(),
                }
            }
        }
    }

    /// The dependence-radius query: every active net whose interaction
    /// footprint intersects one of the regions (excluding `exclude`, the
    /// edited net itself — it is handled structurally).
    fn invalidated_by(&self, regions: &[TrackRect], exclude: Option<NetId>) -> Vec<NetId> {
        let config = self.router.config();
        let halo = sadp_scenario::interaction_radius_tracks(self.plane.rules());
        let mut index = SpatialHash::with_density(
            self.plane.width(),
            self.plane.height(),
            self.active.len().max(1),
        );
        for &id in &self.active {
            if Some(id) == exclude {
                continue;
            }
            index.insert(
                u64::from(id.0),
                net_footprint(self.netlist.net(id), config, halo, &self.plane),
            );
        }
        let mut hit: BTreeSet<NetId> = BTreeSet::new();
        for region in regions {
            for (raw, rect) in index.query_entries(region) {
                if rect.intersects(region) {
                    hit.insert(NetId(raw as u32));
                }
            }
        }
        hit.into_iter().collect()
    }

    /// The live edit path. Validation has already passed, so every step
    /// here is infallible; routing failures are recorded per net, not
    /// surfaced as errors.
    fn apply_live(&mut self, edit: &EcoEdit) -> EditOutcome {
        let seq = self.edit_seq;
        self.edit_seq += 1;
        let kind = edit.kind();
        let halo = sadp_scenario::interaction_radius_tracks(self.plane.rules());
        let exclude = match edit {
            EcoEdit::RemoveNet { net } | EcoEdit::MoveNet { net, .. } => Some(*net),
            _ => None,
        };
        let regions = self.edit_regions(edit, halo);
        let invalidated = self.invalidated_by(&regions, exclude);
        if self.rec.enabled() {
            self.rec.event(RouterEvent::NetsInvalidated {
                edit: seq,
                nets: invalidated.iter().map(|id| id.0).collect(),
            });
        }

        // Rip up the invalidated nets (freed cells stay reserved where
        // they are pin candidates — commit released the unused ones) and
        // clear their failure records; the re-route below re-records.
        {
            let Router {
                config,
                ledger,
                workspace,
                failed,
                ..
            } = &mut self.router;
            let ws = workspace.as_mut().expect("eco router is begun");
            for &id in &invalidated {
                ledger.unroute(&mut self.plane, &mut ws.dir_map, id);
                failed.retain(|f| *f != id);
            }
            // The structural change.
            match edit {
                EcoEdit::AddNet { name, pins } => {
                    let id = self.netlist.add_multi_pin(name.clone(), pins.clone());
                    self.active.insert(id);
                }
                EcoEdit::RemoveNet { net } => {
                    ledger.unroute(&mut self.plane, &mut ws.dir_map, *net);
                    driver::release_pins(
                        config,
                        &mut ws.guards,
                        &mut self.plane,
                        self.netlist.net(*net),
                    );
                    self.active.remove(net);
                    failed.retain(|f| f != net);
                }
                EcoEdit::MoveNet { net, pins } => {
                    ledger.unroute(&mut self.plane, &mut ws.dir_map, *net);
                    driver::release_pins(
                        config,
                        &mut ws.guards,
                        &mut self.plane,
                        self.netlist.net(*net),
                    );
                    failed.retain(|f| f != net);
                    let mut pins = pins.clone();
                    let extra = pins.split_off(2);
                    let n = self.netlist.net_mut(*net);
                    n.target = pins.pop().expect("validated: two pins");
                    n.source = pins.pop().expect("validated: two pins");
                    n.extra = extra;
                }
                EcoEdit::AddObstacle { layer, rect } => {
                    self.obstacles.push((*layer, *rect));
                    self.plane.add_blockage(*layer, *rect);
                }
                EcoEdit::RemoveObstacle { layer, rect } => {
                    let pos = self
                        .obstacles
                        .iter()
                        .position(|o| o == &(*layer, *rect))
                        .expect("validated: obstacle present");
                    self.obstacles.remove(pos);
                    self.plane.clear_blockage(*layer, *rect);
                    // Cells also covered by the base layout or another
                    // session obstacle stay blocked.
                    for (x, y) in rect.cells() {
                        let p = GridPoint::new(*layer, x, y);
                        if self.base_plane.in_bounds(p)
                            && self.base_plane.cell(p) == CellState::Blocked
                        {
                            self.plane.add_blockage(*layer, TrackRect::cell(x, y));
                        }
                    }
                    for &(l, r) in &self.obstacles {
                        if l == *layer && r.intersects(rect) {
                            self.plane.add_blockage(l, r);
                        }
                    }
                }
            }
        }

        // Re-route: the invalidated survivors plus an added/moved net,
        // in the canonical net order. Pins are re-reserved for the whole
        // set up front (ascending id, as the batch pre-pass does) so an
        // early re-route cannot run over a later net's pins.
        let mut targets: BTreeSet<NetId> = invalidated.iter().copied().collect();
        match edit {
            EcoEdit::AddNet { .. } => {
                targets.insert(NetId(self.netlist.len() as u32 - 1));
            }
            EcoEdit::MoveNet { net, .. } => {
                targets.insert(*net);
            }
            EcoEdit::RemoveNet { net } => {
                targets.remove(net);
            }
            _ => {}
        }
        {
            let Router {
                config, workspace, ..
            } = &mut self.router;
            let ws = workspace.as_mut().expect("eco router is begun");
            for &id in &targets {
                driver::reserve_pins(
                    config,
                    &mut ws.guards,
                    &mut self.plane,
                    self.netlist.net(id),
                );
            }
        }
        let order = self.router.net_order(&self.netlist);
        let mut rerouted: u64 = 0;
        for id in order {
            if !targets.contains(&id) {
                continue;
            }
            let net = self.netlist.net(id);
            let ok = self
                .router
                .route_incremental_with(&mut self.plane, net, &mut self.rec)
                .expect("eco router is begun");
            if ok {
                rerouted += 1;
            }
        }
        let failed = self.router.failed().len() as u64;
        if self.rec.enabled() {
            self.rec.event(RouterEvent::EditApplied {
                edit: seq,
                kind,
                invalidated: invalidated.len() as u64,
                rerouted,
                failed,
            });
        }
        EditOutcome {
            edit: seq,
            kind,
            invalidated,
            rerouted,
            failed,
        }
    }

    fn capture_version(&self) -> EcoVersion {
        // The fingerprint field is unused on this path (restores rebuild
        // from the session's own base plane, not from external files).
        let ckpt = checkpoint::serialize(self.router.ledger(), self.router.failed(), 0);
        let mut colors = Vec::new();
        for (li, g) in self.router.ledger().graphs().iter().enumerate() {
            let mut vs: Vec<u32> = g.vertices().collect();
            vs.sort_unstable();
            for v in vs {
                colors.push((li as u8, v, g.color(v)));
            }
        }
        EcoVersion {
            ckpt,
            colors,
            netlist: self.netlist.clone(),
            active: self.active.clone(),
            obstacles: self.obstacles.clone(),
        }
    }

    /// Rebuilds a captured version from scratch: base plane + obstacles,
    /// replayed commits, forced colors, restored failure list and
    /// counters. Deterministic and independent of the mutation history
    /// that produced the version, which is what makes undo/redo exact.
    fn restore(&mut self, v: &EcoVersion) {
        self.netlist = v.netlist.clone();
        self.active = v.active.clone();
        self.obstacles = v.obstacles.clone();
        let mut plane = self.base_plane.clone();
        for &(layer, rect) in &self.obstacles {
            plane.add_blockage(layer, rect);
        }
        let snap = Snapshot::parse(&v.ckpt).expect("eco versions hold self-produced snapshots");
        let mut router = Router::new(self.router.config().clone());
        router
            .try_begin_sized(&plane, self.netlist.len())
            .expect("the live plane already fit this router");
        {
            let Router {
                config,
                ledger,
                workspace,
                failed,
                run_budget,
                ..
            } = &mut router;
            let ws = workspace.as_mut().expect("just begun");
            crate::router::replay_snapshot(
                &snap,
                config,
                ledger,
                ws,
                &mut plane,
                &self.netlist,
                failed,
                run_budget,
                // A final routed set replays without the commit-time
                // steering heuristics (risk abort, type-B filter): the
                // captured colors are forced below, so mid-replay
                // coloring state is transient, and the journal order no
                // longer matches the live commit order.
                false,
            )
            .expect("a consistent final routed set always replays");
            // Colors are commit-order dependent; force the captured ones
            // over whatever the replay chose.
            for &(layer, net, color) in &v.colors {
                ledger.graphs_mut()[layer as usize].set_color(net, color);
            }
            // Soft pin-guard halos for the routed nets (unrouted nets
            // hold none, per the steady-state invariant). Plane
            // occupancy is complete already: replayed commits own their
            // cells and unused candidates stay free.
            let unrouted: HashSet<NetId> = failed.iter().copied().collect();
            for &id in &self.active {
                if !unrouted.contains(&id) {
                    driver::claim_pin_guards(config, &mut ws.guards, self.netlist.net(id));
                }
            }
        }
        self.plane = plane;
        self.router = router;
    }
}

impl fmt::Debug for EcoSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (routed, failed, active) = self.stats();
        f.debug_struct("EcoSession")
            .field("routed", &routed)
            .field("failed", &failed)
            .field("active", &active)
            .field("edits", &self.undo_stack.len())
            .field("redoable", &self.redo_stack.len())
            .finish()
    }
}

// ---- edit-script parsing ----------------------------------------------

fn parse_i32(tok: &str, line: usize, what: &str) -> Result<i32, EcoError> {
    tok.parse().map_err(|_| EcoError::Script {
        line,
        message: format!("bad {what}: `{tok}`"),
    })
}

/// Parses one pin token: `layer:x,y` candidates separated by `|`.
fn parse_pin(tok: &str, line: usize) -> Result<Pin, EcoError> {
    let mut candidates = Vec::new();
    for part in tok.split('|') {
        let bad = || EcoError::Script {
            line,
            message: format!("bad pin `{part}` (want layer:x,y)"),
        };
        let (layer, xy) = part.split_once(':').ok_or_else(bad)?;
        let (x, y) = xy.split_once(',').ok_or_else(bad)?;
        let layer: u8 = layer.parse().map_err(|_| bad())?;
        let x: i32 = x.parse().map_err(|_| bad())?;
        let y: i32 = y.parse().map_err(|_| bad())?;
        candidates.push(GridPoint::new(Layer(layer), x, y));
    }
    if candidates.is_empty() {
        return Err(EcoError::Script {
            line,
            message: format!("empty pin `{tok}`"),
        });
    }
    Ok(Pin::with_candidates(candidates))
}

fn parse_net_ref(tok: &str) -> NetRef {
    match tok.strip_prefix('#').and_then(|s| s.parse::<u32>().ok()) {
        Some(id) => NetRef::Id(id),
        None => NetRef::Name(tok.to_string()),
    }
}

fn parse_rect_op(toks: &[&str], line: usize) -> Result<(Layer, TrackRect), EcoError> {
    if toks.len() != 5 {
        return Err(EcoError::Script {
            line,
            message: format!("want `L X0 Y0 X1 Y1`, got {} fields", toks.len()),
        });
    }
    let layer: u8 = toks[0].parse().map_err(|_| EcoError::Script {
        line,
        message: format!("bad layer: `{}`", toks[0]),
    })?;
    let x0 = parse_i32(toks[1], line, "x0")?;
    let y0 = parse_i32(toks[2], line, "y0")?;
    let x1 = parse_i32(toks[3], line, "x1")?;
    let y1 = parse_i32(toks[4], line, "y1")?;
    Ok((Layer(layer), TrackRect::new(x0, y0, x1, y1)))
}

/// Parses an edit script: one operation per line, `#` comments and blank
/// lines skipped. Pin syntax matches the `.layout` format.
///
/// ```text
/// add NAME PIN PIN [PIN...]   # add a net and route it
/// remove NET                  # NET = name or #id
/// move NET PIN PIN [PIN...]   # replace pins, re-route
/// obstacle L X0 Y0 X1 Y1      # block a rect on layer L
/// clear L X0 Y0 X1 Y1         # remove that exact obstacle again
/// undo
/// redo
/// ```
///
/// # Errors
///
/// [`EcoError::Script`] with the 1-based line number of the first bad
/// line.
pub fn parse_edit_script(text: &str) -> Result<Vec<ScriptOp>, EcoError> {
    let mut ops = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        // `#` starts a comment — except `#<digit>`, which is a net id.
        let cut = raw
            .char_indices()
            .find(|&(i, c)| {
                c == '#'
                    && !raw[i + 1..]
                        .chars()
                        .next()
                        .is_some_and(|next| next.is_ascii_digit())
            })
            .map_or(raw.len(), |(i, _)| i);
        let content = raw[..cut].trim();
        if content.is_empty() {
            continue;
        }
        let toks: Vec<&str> = content.split_whitespace().collect();
        let op = match toks[0] {
            "add" | "move" => {
                if toks.len() < 4 {
                    return Err(EcoError::Script {
                        line,
                        message: format!("`{}` wants a net and at least two pins", toks[0]),
                    });
                }
                let pins = toks[2..]
                    .iter()
                    .map(|t| parse_pin(t, line))
                    .collect::<Result<Vec<Pin>, EcoError>>()?;
                if toks[0] == "add" {
                    ScriptOp::Add {
                        name: toks[1].to_string(),
                        pins,
                    }
                } else {
                    ScriptOp::Move {
                        net: parse_net_ref(toks[1]),
                        pins,
                    }
                }
            }
            "remove" => {
                if toks.len() != 2 {
                    return Err(EcoError::Script {
                        line,
                        message: "`remove` wants exactly one net".to_string(),
                    });
                }
                ScriptOp::Remove {
                    net: parse_net_ref(toks[1]),
                }
            }
            "obstacle" => {
                let (layer, rect) = parse_rect_op(&toks[1..], line)?;
                ScriptOp::Obstacle { layer, rect }
            }
            "clear" => {
                let (layer, rect) = parse_rect_op(&toks[1..], line)?;
                ScriptOp::Clear { layer, rect }
            }
            "undo" => ScriptOp::Undo,
            "redo" => ScriptOp::Redo,
            other => {
                return Err(EcoError::Script {
                    line,
                    message: format!(
                        "unknown operation `{other}` (want add, remove, move, \
                         obstacle, clear, undo or redo)"
                    ),
                })
            }
        };
        ops.push(op);
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_geom::DesignRules;

    fn plane(w: i32, h: i32) -> RoutingPlane {
        RoutingPlane::new(3, w, h, DesignRules::node_10nm()).expect("valid")
    }

    fn p0(x: i32, y: i32) -> GridPoint {
        GridPoint::new(Layer(0), x, y)
    }

    type NetSpec<'a> = (&'a str, (i32, i32), (i32, i32));

    fn session(nets: &[NetSpec<'_>]) -> EcoSession {
        let mut nl = Netlist::new();
        for (name, s, t) in nets {
            nl.add_two_pin(*name, p0(s.0, s.1), p0(t.0, t.1));
        }
        EcoSession::create(RouterConfig::paper_defaults(), plane(96, 96), nl, true)
            .expect("session builds")
    }

    #[test]
    fn add_net_routes_and_scopes_invalidation() {
        let mut eco = session(&[("a", (2, 2), (20, 2)), ("far", (2, 88), (20, 88))]);
        eco.drain_events();
        let out = eco
            .apply(EcoEdit::AddNet {
                name: "b".into(),
                pins: vec![Pin::fixed(p0(2, 4)), Pin::fixed(p0(20, 4))],
            })
            .expect("valid edit");
        assert_eq!(out.kind, EditKind::AddNet);
        // `far` is 84 tracks away — beyond search margin plus halo.
        assert!(!out.invalidated.contains(&NetId(1)));
        let (routed, failed, active) = eco.stats();
        assert_eq!((routed, failed, active), (3, 0, 3));
        let events = eco.drain_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, RouterEvent::NetsInvalidated { edit: 0, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, RouterEvent::EditApplied { edit: 0, .. })));
    }

    #[test]
    fn undo_redo_restore_digests() {
        let mut eco = session(&[("a", (2, 2), (20, 2)), ("b", (2, 4), (20, 4))]);
        let before = eco.state_digest();
        eco.apply(EcoEdit::MoveNet {
            net: NetId(0),
            pins: vec![Pin::fixed(p0(2, 8)), Pin::fixed(p0(20, 8))],
        })
        .expect("valid edit");
        let after = eco.state_digest();
        assert_ne!(before, after);
        eco.undo().expect("one edit to undo");
        assert_eq!(eco.state_digest(), before);
        eco.redo().expect("one edit to redo");
        assert_eq!(eco.state_digest(), after);
        eco.undo().expect("undoable again");
        assert_eq!(eco.state_digest(), before);
    }

    #[test]
    fn obstacle_roundtrip_restores_plane() {
        let mut eco = session(&[("a", (2, 10), (40, 10))]);
        let before = eco.state_digest();
        let rect = TrackRect::new(10, 8, 14, 12);
        eco.apply(EcoEdit::AddObstacle {
            layer: Layer(0),
            rect,
        })
        .expect("valid edit");
        // The route crossed the rect's columns, so it must have moved.
        assert_ne!(eco.state_digest(), before);
        eco.apply(EcoEdit::RemoveObstacle {
            layer: Layer(0),
            rect,
        })
        .expect("obstacle exists");
        eco.undo().expect("undo clear");
        eco.undo().expect("undo obstacle");
        assert_eq!(eco.state_digest(), before);
    }

    #[test]
    fn remove_net_frees_cells_and_rejects_double_remove() {
        let mut eco = session(&[("a", (2, 2), (20, 2))]);
        eco.apply(EcoEdit::RemoveNet { net: NetId(0) })
            .expect("active");
        let (routed, _, active) = eco.stats();
        assert_eq!((routed, active), (0, 0));
        assert!(eco.plane().is_free(p0(2, 2)));
        let err = eco.apply(EcoEdit::RemoveNet { net: NetId(0) }).unwrap_err();
        assert!(matches!(err, EcoError::UnknownNet(_)));
    }

    #[test]
    fn validation_rejects_bad_edits() {
        let eco = session(&[("a", (2, 2), (20, 2))]);
        let mut eco = eco;
        // Obstacle over a's pin.
        assert!(matches!(
            eco.apply(EcoEdit::AddObstacle {
                layer: Layer(0),
                rect: TrackRect::new(1, 1, 3, 3),
            }),
            Err(EcoError::BadEdit(_))
        ));
        // Duplicate name.
        assert!(matches!(
            eco.apply(EcoEdit::AddNet {
                name: "a".into(),
                pins: vec![Pin::fixed(p0(2, 30)), Pin::fixed(p0(20, 30))],
            }),
            Err(EcoError::BadEdit(_))
        ));
        // Pin collision.
        assert!(matches!(
            eco.apply(EcoEdit::AddNet {
                name: "c".into(),
                pins: vec![Pin::fixed(p0(2, 2)), Pin::fixed(p0(20, 30))],
            }),
            Err(EcoError::BadEdit(_))
        ));
        // Out-of-bounds pin.
        assert!(matches!(
            eco.apply(EcoEdit::AddNet {
                name: "d".into(),
                pins: vec![Pin::fixed(p0(2, 120)), Pin::fixed(p0(20, 30))],
            }),
            Err(EcoError::BadEdit(_))
        ));
        // A failed validation must not burn an undo slot.
        assert_eq!(eco.undo_depth(), 0);
    }

    #[test]
    fn script_parses_and_runs() {
        let text = "\
# a comment
add b 0:2,6 0:20,6   # trailing comment
move #0 0:2,12|1:2,12 0:20,12
obstacle 0 30 30 34 34
clear 0 30 30 34 34
remove b
undo
redo
";
        let ops = parse_edit_script(text).expect("parses");
        assert_eq!(ops.len(), 7);
        assert_eq!(
            ops[0],
            ScriptOp::Add {
                name: "b".into(),
                pins: vec![Pin::fixed(p0(2, 6)), Pin::fixed(p0(20, 6))],
            }
        );
        let mut eco = session(&[("a", (2, 2), (20, 2))]);
        let outcomes = eco.run_script(&ops).expect("runs");
        assert_eq!(outcomes.len(), 7);
        assert!(matches!(outcomes[5], OpOutcome::Undo));
        // After remove+undo+redo, `b` is removed again.
        assert!(eco.resolve(&NetRef::Name("b".into())).is_err());
        assert!(eco.resolve(&NetRef::Id(0)).is_ok());
    }

    #[test]
    fn script_errors_carry_line_numbers() {
        let err = parse_edit_script("add x 0:1,1 0:5,1\nfrobnicate\n").unwrap_err();
        match err {
            EcoError::Script { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }
}
