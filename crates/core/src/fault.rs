//! Deterministic fault injection for exercising the recovery paths.
//!
//! A [`FaultPlan`] is a pure function of a `u64` seed (SplitMix64, the
//! same generator the fuzz subsystem uses): equal seeds inject equal
//! faults, on every machine and at every thread count. Injection sites
//! are keyed by *logical* identity — a net id, a band index — never by
//! scheduling, so the fault pattern a plan produces is part of the
//! deterministic output contract the recovery machinery must preserve.
//!
//! The plan is carried as `Option<FaultPlan>` in
//! [`RouterConfig`](crate::RouterConfig); `None` (the default) costs one
//! `Option` check per band and per net, never anything per node.

use sadp_geom::Rng;

/// Which faults to inject, derived deterministically from a seed.
///
/// Three kinds of fault are injected, matching the three recovery paths:
///
/// * **Band-worker panics** — [`FaultPlan::band_panic`] tells a band
///   worker to panic after routing k nets; the driver must catch it and
///   re-route the band serially with injection disabled.
/// * **Budget exhaustion** — [`FaultPlan::injects_net_budget`] makes a
///   net fail as if its search budget ran out; the driver must record it
///   as `BudgetExceeded` and keep going.
/// * **Wave pre-search panics** — [`FaultPlan::injects_wave_panic`]
///   panics the parallel pre-search of a boundary net; the driver must
///   catch it and re-search the net serially with injection disabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Probability that a given band panics.
    band_panic_rate: f64,
    /// Probability that a given net's budget is exhausted.
    net_budget_rate: f64,
    /// Probability that a boundary net's wave pre-search panics.
    wave_panic_rate: f64,
    /// Probability that a given persistence write is faulted.
    io_fault_rate: f64,
}

/// Which persisted artifact a write belongs to, for [`FaultPlan::io_fault`]
/// keying. The serving layer persists one of each per job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistKind {
    /// The job's submitted layout text.
    Layout,
    /// The job's metadata record.
    Meta,
    /// A `SADPCKPT` snapshot.
    Checkpoint,
    /// The terminal result line.
    Final,
}

impl PersistKind {
    fn stream_salt(self) -> u64 {
        match self {
            PersistKind::Layout => 0x1A70_u64,
            PersistKind::Meta => 0x3E7A,
            PersistKind::Checkpoint => 0xC4B7,
            PersistKind::Final => 0xF1A1,
        }
    }
}

/// An injected persistence fault, modelling the two ways real storage
/// betrays a daemon: a write that claims success but lands truncated
/// (torn write surviving a crash), and a write the filesystem refuses
/// outright (ENOSPC and friends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Write only the first `keep_bytes(len)` bytes, report success.
    /// The corruption is only discoverable by reading the file back —
    /// exactly what the quarantine path on daemon restart must catch.
    ShortWrite,
    /// Fail the write with an out-of-space-style I/O error.
    Enospc,
}

impl FaultPlan {
    /// The plan for `seed`, with default injection rates chosen so that
    /// small fixtures (a handful of bands, tens of nets) still trigger
    /// both fault kinds within a few seeds.
    #[must_use]
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            band_panic_rate: 0.5,
            net_budget_rate: 0.02,
            wave_panic_rate: 0.05,
            io_fault_rate: 0.25,
        }
    }

    /// The seed the plan was built from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether — and after how many routed nets — the worker for `band`
    /// should panic. `nets` is the band's net count; the panic point is
    /// uniform in `0..nets` so faults hit the start, middle, and end of
    /// a band's schedule across seeds.
    #[must_use]
    pub fn band_panic(&self, band: usize, nets: usize) -> Option<usize> {
        if nets == 0 {
            return None;
        }
        // A distinct stream per (seed, band): mix the band index into the
        // seed the same way SplitMix64 advances its own state.
        let mut rng =
            Rng::seed_from_u64(self.seed ^ (band as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if !rng.chance(self.band_panic_rate) {
            return None;
        }
        Some(rng.index(nets))
    }

    /// Whether `net`'s search budget should be treated as exhausted.
    /// Keyed by net id only, so serial, banded, and recovered schedules
    /// all see the identical fault set.
    #[must_use]
    pub fn injects_net_budget(&self, net: u32) -> bool {
        let mut rng = Rng::seed_from_u64(
            self.seed ^ 0xB10D_6E75 ^ u64::from(net).wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        rng.chance(self.net_budget_rate)
    }

    /// Whether — and how — the persistence write of `kind` for `job`
    /// should be faulted. Keyed by `(job, kind)` only, never by write
    /// attempt or wall-clock, so the fault set of a plan is identical
    /// across daemon restarts and retries: a faulted artifact stays
    /// faulted for the plan's lifetime, which is what makes the
    /// resulting corruption reproducible enough to test quarantine
    /// recovery against.
    #[must_use]
    pub fn io_fault(&self, job: u64, kind: PersistKind) -> Option<IoFault> {
        let mut rng = Rng::seed_from_u64(
            self.seed
                ^ 0x10FA_017u64
                ^ kind.stream_salt().wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ job.wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        if !rng.chance(self.io_fault_rate) {
            return None;
        }
        Some(if rng.chance(0.5) {
            IoFault::ShortWrite
        } else {
            IoFault::Enospc
        })
    }

    /// How many bytes a [`IoFault::ShortWrite`] of a `len`-byte payload
    /// keeps: roughly half, and always strictly less than `len` for a
    /// non-empty payload, so the torn artifact can never parse clean.
    #[must_use]
    pub fn short_write_len(len: usize) -> usize {
        len / 2
    }

    /// Whether the boundary-wave pre-search of `net` should panic. Keyed
    /// by net id only — never by wave index or worker — so every thread
    /// count (and the serial schedule, which skips pre-search entirely)
    /// recovers to the identical output.
    #[must_use]
    pub fn injects_wave_panic(&self, net: u32) -> bool {
        let mut rng = Rng::seed_from_u64(
            self.seed ^ 0x5AD9_0B0E ^ u64::from(net).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        rng.chance(self.wave_panic_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_a_pure_function_of_the_seed() {
        let a = FaultPlan::new(99);
        let b = FaultPlan::new(99);
        for band in 0..32 {
            assert_eq!(a.band_panic(band, 17), b.band_panic(band, 17));
        }
        for net in 0..1000 {
            assert_eq!(a.injects_net_budget(net), b.injects_net_budget(net));
            assert_eq!(a.injects_wave_panic(net), b.injects_wave_panic(net));
        }
    }

    #[test]
    fn some_seed_triggers_a_wave_panic() {
        let hit = (0..32).any(|s| (0..200).any(|n| FaultPlan::new(s).injects_wave_panic(n)));
        assert!(hit, "no seed in 0..32 panics any wave pre-search");
    }

    #[test]
    fn band_panic_point_is_in_range() {
        for seed in 0..64 {
            let plan = FaultPlan::new(seed);
            for band in 0..8 {
                if let Some(k) = plan.band_panic(band, 12) {
                    assert!(k < 12);
                }
            }
        }
    }

    #[test]
    fn empty_band_never_panics() {
        assert_eq!(FaultPlan::new(3).band_panic(0, 0), None);
    }

    #[test]
    fn some_seed_triggers_each_fault_kind() {
        let band_hit = (0..32).any(|s| FaultPlan::new(s).band_panic(1, 10).is_some());
        assert!(band_hit, "no seed in 0..32 panics band 1");
        let budget_hit = (0..32).any(|s| (0..200).any(|n| FaultPlan::new(s).injects_net_budget(n)));
        assert!(budget_hit, "no seed in 0..32 exhausts any net budget");
    }

    #[test]
    fn io_faults_are_pure_and_cover_both_kinds() {
        let kinds = [
            PersistKind::Layout,
            PersistKind::Meta,
            PersistKind::Checkpoint,
            PersistKind::Final,
        ];
        let a = FaultPlan::new(7);
        let b = FaultPlan::new(7);
        for job in 0..64 {
            for kind in kinds {
                assert_eq!(a.io_fault(job, kind), b.io_fault(job, kind));
            }
        }
        let mut short = false;
        let mut enospc = false;
        for seed in 0..64 {
            let plan = FaultPlan::new(seed);
            for job in 1..16 {
                match plan.io_fault(job, PersistKind::Layout) {
                    Some(IoFault::ShortWrite) => short = true,
                    Some(IoFault::Enospc) => enospc = true,
                    None => {}
                }
            }
        }
        assert!(short, "no seed in 0..64 injects a short write");
        assert!(enospc, "no seed in 0..64 injects an ENOSPC");
    }

    #[test]
    fn short_write_always_truncates_nonempty_payloads() {
        for len in 1..=1024usize {
            let keep = FaultPlan::short_write_len(len);
            assert!(keep < len, "len {len} kept {keep}");
        }
        assert_eq!(FaultPlan::short_write_len(0), 0);
    }

    #[test]
    fn different_bands_get_different_streams() {
        // Not a hard guarantee per seed, but across many seeds the panic
        // points for two bands must not be systematically identical.
        let distinct = (0..64).any(|s| {
            let p = FaultPlan::new(s);
            p.band_panic(0, 100) != p.band_panic(1, 100)
        });
        assert!(distinct);
    }
}
