//! Generation-stamped dense per-cell grids for the routing hot path.
//!
//! The router and the A\* search used to keep per-cell state (g-costs,
//! came-from links, penalties, pin guards, preferred directions) in
//! `HashMap<GridPoint, _>` tables. On large circuits the hash lookups in
//! the innermost expansion loop dominated the runtime and pushed the
//! Fig. 20 scaling towards quadratic. A [`DenseGrid`] stores one slot per
//! grid cell, indexed by the same `(layer * height + y) * width + x`
//! linearisation the [`RoutingPlane`] uses, so a
//! lookup is one multiply-add and one array read.
//!
//! Clearing a dense grid between nets would itself be `O(cells)` — worse
//! than the hash maps it replaces — so every slot carries a generation
//! stamp: [`DenseGrid::clear`] bumps the generation counter and a slot
//! whose stamp is stale reads as the default value. A full rewrite of the
//! stamp vector only happens on the (never in practice) generation
//! wrap-around.

use sadp_geom::{Dir, GridPoint};
use sadp_grid::{NetId, RoutingPlane};

/// A dense per-cell store with `O(1)` epoch-based clearing.
#[derive(Debug, Clone)]
pub struct DenseGrid<T: Copy> {
    width: i32,
    height: i32,
    layers: u8,
    default: T,
    slots: Vec<T>,
    stamps: Vec<u32>,
    generation: u32,
}

impl<T: Copy> DenseGrid<T> {
    /// Builds a grid shaped like `plane`, with every cell reading as
    /// `default` until written.
    pub fn new(plane: &RoutingPlane, default: T) -> Self {
        let cells = plane.layers() as usize * plane.height() as usize * plane.width() as usize;
        Self {
            width: plane.width(),
            height: plane.height(),
            layers: plane.layers(),
            default,
            slots: vec![default; cells],
            stamps: vec![0; cells],
            generation: 1,
        }
    }

    /// True if this grid matches the plane's dimensions (used to decide
    /// whether a cached grid can be reused across [`Router::begin`]
    /// calls).
    ///
    /// [`Router::begin`]: crate::Router::begin
    pub fn fits(&self, plane: &RoutingPlane) -> bool {
        self.width == plane.width()
            && self.height == plane.height()
            && self.layers == plane.layers()
    }

    /// Resets every cell to the default in `O(1)`.
    pub fn clear(&mut self) {
        self.generation = match self.generation.checked_add(1) {
            Some(g) => g,
            None => {
                self.stamps.fill(0);
                1
            }
        };
    }

    /// True if `p` lies inside the grid (and thus may be read or
    /// written). Out-of-grid points come from seed penalties recorded
    /// against a previous, larger plane.
    #[inline]
    #[must_use]
    pub fn contains(&self, p: GridPoint) -> bool {
        p.layer.index() < self.layers as usize
            && (0..self.width).contains(&p.x)
            && (0..self.height).contains(&p.y)
    }

    #[inline]
    fn index(&self, p: GridPoint) -> usize {
        debug_assert!(
            p.layer.index() < self.layers as usize
                && (0..self.width).contains(&p.x)
                && (0..self.height).contains(&p.y),
            "point {p:?} outside the grid"
        );
        (p.layer.index() * self.height as usize + p.y as usize) * self.width as usize + p.x as usize
    }

    #[inline]
    pub fn get(&self, p: GridPoint) -> T {
        let i = self.index(p);
        if self.stamps[i] == self.generation {
            self.slots[i]
        } else {
            self.default
        }
    }

    #[inline]
    pub fn set(&mut self, p: GridPoint, value: T) {
        let i = self.index(p);
        self.stamps[i] = self.generation;
        self.slots[i] = value;
    }

    /// Read-modify-write in one index computation.
    #[inline]
    pub fn update(&mut self, p: GridPoint, f: impl FnOnce(T) -> T) {
        let i = self.index(p);
        let old = if self.stamps[i] == self.generation {
            self.slots[i]
        } else {
            self.default
        };
        self.stamps[i] = self.generation;
        self.slots[i] = f(old);
    }

    /// Removes a single cell's value (it reads as the default again).
    #[inline]
    pub fn remove(&mut self, p: GridPoint) {
        let i = self.index(p);
        self.slots[i] = self.default;
        self.stamps[i] = self.generation;
    }
}

/// Extra grid-cost milli-units added by rip-up (`penalize`).
pub type PenaltyGrid = DenseGrid<u64>;

/// Pin-guard ownership: `(owner net, penalty)`; [`NO_GUARD`] = no guard.
pub type GuardGrid = DenseGrid<(NetId, u64)>;

/// No-guard sentinel for [`GuardGrid`] cells.
pub const NO_GUARD: (NetId, u64) = (NetId(u32::MAX), 0);

/// Committed preferred routing direction per cell (`None` = unrouted).
pub type DirGrid = DenseGrid<Option<Dir>>;

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_geom::{DesignRules, Layer};

    fn plane() -> RoutingPlane {
        RoutingPlane::new(2, 8, 6, DesignRules::node_10nm()).unwrap()
    }

    fn p(l: u8, x: i32, y: i32) -> GridPoint {
        GridPoint::new(Layer(l), x, y)
    }

    #[test]
    fn reads_default_until_written() {
        let mut g = PenaltyGrid::new(&plane(), 0);
        assert_eq!(g.get(p(1, 7, 5)), 0);
        g.set(p(1, 7, 5), 42);
        assert_eq!(g.get(p(1, 7, 5)), 42);
        assert_eq!(g.get(p(0, 7, 5)), 0);
    }

    #[test]
    fn clear_is_epoch_based() {
        let mut g = PenaltyGrid::new(&plane(), 0);
        for x in 0..8 {
            g.set(p(0, x, 0), x as u64 + 1);
        }
        g.clear();
        for x in 0..8 {
            assert_eq!(g.get(p(0, x, 0)), 0);
        }
        g.set(p(0, 3, 0), 9);
        assert_eq!(g.get(p(0, 3, 0)), 9);
    }

    #[test]
    fn update_accumulates() {
        let mut g = PenaltyGrid::new(&plane(), 0);
        g.update(p(0, 1, 1), |v| v + 10);
        g.update(p(0, 1, 1), |v| v + 10);
        assert_eq!(g.get(p(0, 1, 1)), 20);
    }

    #[test]
    fn remove_restores_default() {
        let mut g = DirGrid::new(&plane(), None);
        g.set(p(0, 2, 2), Some(Dir::Horizontal));
        g.remove(p(0, 2, 2));
        assert_eq!(g.get(p(0, 2, 2)), None);
    }

    #[test]
    fn generation_wraparound_survives() {
        let mut g = PenaltyGrid::new(&plane(), 7);
        g.set(p(0, 0, 0), 1);
        g.generation = u32::MAX;
        g.set(p(0, 1, 0), 2);
        g.clear();
        assert_eq!(g.generation, 1);
        assert_eq!(g.get(p(0, 0, 0)), 7);
        assert_eq!(g.get(p(0, 1, 0)), 7);
    }

    #[test]
    fn guard_grid_sentinel() {
        let g = GuardGrid::new(&plane(), NO_GUARD);
        assert_eq!(g.get(p(0, 0, 0)), NO_GUARD);
    }
}
