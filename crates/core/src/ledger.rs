//! The commit ledger: the single mutation point of the routing pipeline.
//!
//! Every piece of shared routing state that outlives one net — the
//! per-layer [`OverlayGraph`]s with their union–find, the fragment
//! [`SpatialHash`] index and the routed-net store — lives behind a
//! [`CommitLedger`]. The driver interacts with it through an explicit
//! `propose → commit / abort` protocol:
//!
//! 1. [`CommitLedger::propose`] checkpoints the graphs (union–find marks)
//!    and returns a [`Proposal`] token,
//! 2. scenario edges are staged with [`CommitLedger::add_scenario`] and
//!    trial-colored with [`CommitLedger::trial_color`] /
//!    [`CommitLedger::flip_trial`],
//! 3. [`CommitLedger::abort`] rolls everything back to the checkpoint
//!    (rip-up), or [`CommitLedger::commit`] makes the route durable:
//!    plane occupancy, direction map, spatial index, routed-net store —
//!    and appends a [`CommitRecord`] to the ledger's journal.
//!
//! Commits are strictly serialized (every mutator takes `&mut self`) and
//! the journal makes them replayable: [`CommitLedger::merge_band`] replays
//! a band worker's journal against the global plane/direction map in
//! commit order, which is how the sharded driver folds per-band results
//! into the global state deterministically.

use crate::grids::DirGrid;
use crate::scan::pack_frag_id;
use crate::search::RouteCandidate;
use sadp_geom::{GridPoint, Layer, SpatialHash, TrackRect};
use sadp_graph::{flip, GraphError, OverlayGraph};
use sadp_grid::{Net, NetId, RoutePath, RoutingPlane};
use sadp_scenario::{CostTable, ScenarioKind};
use std::collections::BTreeMap;

/// Member cap for the per-net trial flips and the cleanup flips. On dense
/// circuits the soft scenarios fuse nearly every net into one connected
/// component, so an uncapped `flip_component` per routed net costs
/// `O(n)` each — the dominant quadratic term of the old Fig. 20 series.
/// The final [`Router::finalize`](crate::Router::finalize) pass still
/// flips whole components once.
pub(crate) const FLIP_NEIGHBORHOOD: usize = 256;

/// A successfully routed net: its path(s) and per-layer wire fragments.
#[derive(Debug, Clone)]
pub struct RoutedNet {
    /// The net.
    pub id: NetId,
    /// The trunk path (source pin to target pin).
    pub path: RoutePath,
    /// Branch paths connecting the extra terminals of a multi-pin net to
    /// the trunk (empty for two-pin nets).
    pub branches: Vec<RoutePath>,
    /// Maximal wire-fragment rectangles per layer, over all paths.
    pub fragments: Vec<(Layer, TrackRect)>,
    /// Spatial-index ids of the fragments (parallel to `fragments`).
    pub(crate) frag_ids: Vec<u64>,
}

impl RoutedNet {
    /// Total planar wirelength over trunk and branches.
    #[must_use]
    pub fn wirelength(&self) -> u64 {
        self.path.wirelength() + self.branches.iter().map(RoutePath::wirelength).sum::<u64>()
    }

    /// Total via count over trunk and branches.
    #[must_use]
    pub fn via_count(&self) -> u64 {
        self.path.via_count() + self.branches.iter().map(RoutePath::via_count).sum::<u64>()
    }

    /// Iterates over every grid point of the net (trunk then branches;
    /// branch tap points repeat their trunk cell).
    pub fn all_points(&self) -> impl Iterator<Item = GridPoint> + '_ {
        self.path.points().iter().copied().chain(
            self.branches
                .iter()
                .flat_map(|b| b.points().iter().copied()),
        )
    }
}

/// Event counters aggregated by the ledger (they feed the
/// [`RoutingReport`](crate::RoutingReport)). Band workers count into their
/// private ledger; [`CommitLedger::merge_band`] sums them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LedgerCounters {
    /// Rip-up-and-re-route iterations.
    pub ripups: u64,
    /// Rip-ups caused by unavoidable type-B cut conflicts.
    pub ripups_type_b: u64,
    /// Rip-ups caused by constraint-graph rejections (odd cycles,
    /// infeasible pairs, forbidden merges).
    pub ripups_graph: u64,
    /// Rip-ups caused by unavoidable realized risks after trial coloring.
    pub ripups_risk: u64,
    /// Nets with no path at all.
    pub failed_no_path: u64,
    /// Nets that exhausted their rip-up budget.
    pub failed_exhausted: u64,
    /// Nets given up by the conflict cleanup.
    pub failed_cleanup: u64,
    /// Nets whose trial coloring triggered a flip.
    pub flips: u64,
    /// Total A\*-nodes expanded.
    pub nodes_expanded: u64,
    /// Nets that ran out of their search budget (per-net or whole-run).
    pub failed_budget: u64,
    /// Band workers that panicked and were re-routed on the serial
    /// fallback path.
    pub bands_recovered: u64,
    /// Boundary-wave pre-searches that panicked and were re-searched on
    /// the serial fallback path.
    pub waves_recovered: u64,
}

impl LedgerCounters {
    /// One-line JSON object with a fixed key order, for bench records.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ripups\":{},\"ripups_type_b\":{},\"ripups_graph\":{},\
             \"ripups_risk\":{},\"failed_no_path\":{},\"failed_exhausted\":{},\
             \"failed_cleanup\":{},\"flips\":{},\"nodes_expanded\":{},\
             \"failed_budget\":{},\"bands_recovered\":{},\"waves_recovered\":{}}}",
            self.ripups,
            self.ripups_type_b,
            self.ripups_graph,
            self.ripups_risk,
            self.failed_no_path,
            self.failed_exhausted,
            self.failed_cleanup,
            self.flips,
            self.nodes_expanded,
            self.failed_budget,
            self.bands_recovered,
            self.waves_recovered
        )
    }

    /// Adds another counter set, field-wise. This is how band workers'
    /// private counts reach the global report: every counter lives in the
    /// worker's own ledger and [`CommitLedger::merge_band`] accumulates it
    /// here, so no count is lost to sharding and the totals are identical
    /// for every worker count.
    pub fn accumulate(&mut self, other: &LedgerCounters) {
        self.ripups += other.ripups;
        self.ripups_type_b += other.ripups_type_b;
        self.ripups_graph += other.ripups_graph;
        self.ripups_risk += other.ripups_risk;
        self.failed_no_path += other.failed_no_path;
        self.failed_exhausted += other.failed_exhausted;
        self.failed_cleanup += other.failed_cleanup;
        self.flips += other.flips;
        self.nodes_expanded += other.nodes_expanded;
        self.failed_budget += other.failed_budget;
        self.bands_recovered += other.bands_recovered;
        self.waves_recovered += other.waves_recovered;
    }
}

/// One entry of the commit journal: which net was committed and which
/// unused pin-candidate reservations its commit released. Together with
/// the routed-net store this is enough to replay the commit against
/// another plane/direction map (see [`CommitLedger::merge_band`]).
#[derive(Debug, Clone)]
pub struct CommitRecord {
    /// The committed net.
    pub net: NetId,
    /// Pin-candidate cells released because the route did not use them.
    pub released: Vec<GridPoint>,
}

/// A checkpoint token of an in-flight route proposal. Obtained from
/// [`CommitLedger::propose`]; consumed by [`CommitLedger::commit`] or
/// [`CommitLedger::abort`]. Holding it is proof that the per-graph
/// union–find marks were taken, so a rollback is always possible.
#[derive(Debug)]
pub struct Proposal {
    net: NetId,
    marks: Vec<usize>,
}

impl Proposal {
    /// The net this proposal is for.
    #[must_use]
    pub fn net(&self) -> NetId {
        self.net
    }
}

/// Serialized, replayable owner of all shared routing state (see the
/// module docs for the protocol).
#[derive(Debug, Default)]
pub struct CommitLedger {
    graphs: Vec<OverlayGraph>,
    index: Vec<SpatialHash>,
    routed: BTreeMap<NetId, RoutedNet>,
    records: Vec<CommitRecord>,
    frag_seq: u32,
    /// Event counters (reported, not replayed).
    pub counters: LedgerCounters,
}

impl CommitLedger {
    /// An unsized ledger (zero layers); [`CommitLedger::new`] replaces it
    /// once the plane is known.
    #[must_use]
    pub fn empty() -> CommitLedger {
        CommitLedger::default()
    }

    /// Creates a ledger sized for `plane`, with the fragment index tile
    /// size matched to `expected_nets` (`0` = unknown, coarsest tile).
    #[must_use]
    pub fn new(plane: &RoutingPlane, expected_nets: usize) -> CommitLedger {
        CommitLedger {
            graphs: (0..plane.layers()).map(|_| OverlayGraph::new()).collect(),
            index: (0..plane.layers())
                .map(|_| SpatialHash::with_density(plane.width(), plane.height(), expected_nets))
                .collect(),
            routed: BTreeMap::new(),
            records: Vec::new(),
            frag_seq: 0,
            counters: LedgerCounters::default(),
        }
    }

    /// Number of layers the ledger is sized for (`0` before sizing).
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.graphs.len()
    }

    /// The per-layer overlay constraint graphs.
    #[must_use]
    pub fn graphs(&self) -> &[OverlayGraph] {
        &self.graphs
    }

    /// Mutable graph access for the finalize/cleanup flipping passes (the
    /// one consumer outside the proposal protocol; runs strictly serially
    /// after all commits).
    pub(crate) fn graphs_mut(&mut self) -> &mut [OverlayGraph] {
        &mut self.graphs
    }

    /// The fragment spatial index of one layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range for the sized plane.
    #[must_use]
    pub fn frag_index(&self, layer: Layer) -> &SpatialHash {
        &self.index[layer.index()]
    }

    /// The routed nets, ordered by [`NetId`].
    #[must_use]
    pub fn routed(&self) -> &BTreeMap<NetId, RoutedNet> {
        &self.routed
    }

    /// The commit journal, in commit order. Append-only during routing;
    /// cleanup-stage unroutes do not rewrite history.
    #[must_use]
    pub fn records(&self) -> &[CommitRecord] {
        &self.records
    }

    /// Opens a proposal for `net`: checkpoints every layer graph so the
    /// staged scenario edges and trial colors can be rolled back.
    #[must_use]
    pub fn propose(&self, net: NetId) -> Proposal {
        Proposal {
            net,
            marks: self.graphs.iter().map(OverlayGraph::mark).collect(),
        }
    }

    /// Stages one scenario edge between the proposal's net and
    /// `other_net` on `layer`.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] when the edge closes a hard odd cycle or
    /// makes the pair infeasible; the caller should [`CommitLedger::abort`]
    /// and rip up.
    pub fn add_scenario(
        &mut self,
        proposal: &Proposal,
        layer: Layer,
        other_net: u32,
        kind: ScenarioKind,
        table: CostTable,
    ) -> Result<(), GraphError> {
        self.graphs[layer.index()].add_scenario_with_kind(
            proposal.net.0,
            other_net,
            Some(kind),
            table,
        )
    }

    /// Trial-colors the proposal's net on each of `layers` (pseudo-color,
    /// Fig. 19 line 11) and returns `(side overlay units, has realized
    /// risk)` summed/or-ed over the layers.
    pub fn trial_color(&mut self, proposal: &Proposal, layers: &[Layer]) -> (u64, bool) {
        let key = proposal.net.0;
        let mut overlay = 0u64;
        let mut has_risk = false;
        for layer in layers {
            let g = &mut self.graphs[layer.index()];
            g.ensure_vertex(key);
            g.pseudo_color(key);
            overlay += g.net_overlay_units(key);
            has_risk |= g.net_has_risk(key);
        }
        (overlay, has_risk)
    }

    /// Runs the bounded neighborhood color flipping around the proposal's
    /// net on each of `layers` (Fig. 19 line 13).
    pub fn flip_trial(&mut self, proposal: &Proposal, layers: &[Layer]) {
        let key = proposal.net.0;
        for layer in layers {
            flip::flip_neighborhood(&mut self.graphs[layer.index()], key, FLIP_NEIGHBORHOOD);
        }
    }

    /// The subset of `layers` on which the proposal's net still realizes a
    /// forbidden assignment or a type-A cut risk after trial coloring.
    #[must_use]
    pub fn risky_layers(&self, proposal: &Proposal, layers: &[Layer]) -> Vec<Layer> {
        let key = proposal.net.0;
        layers
            .iter()
            .copied()
            .filter(|l| self.graphs[l.index()].net_has_risk(key))
            .collect()
    }

    /// Aborts the proposal: rolls every layer graph back to the
    /// checkpoint, removing the staged vertex, edges and trial colors.
    pub fn abort(&mut self, proposal: Proposal) {
        debug_assert_eq!(proposal.marks.len(), self.graphs.len());
        for (g, &mark) in self.graphs.iter_mut().zip(&proposal.marks) {
            g.rollback_net(proposal.net.0, mark);
        }
    }

    /// Commits the proposal: occupies the candidate's cells on `plane`,
    /// releases unused pin-candidate reservations, publishes the wire
    /// directions and the fragments, stores the routed net and journals a
    /// [`CommitRecord`]. The graphs are left exactly as the trial phase
    /// validated them.
    pub fn commit(
        &mut self,
        proposal: Proposal,
        plane: &mut RoutingPlane,
        dir_map: &mut DirGrid,
        net: &Net,
        candidate: RouteCandidate,
    ) {
        debug_assert_eq!(proposal.net, net.id);
        let RouteCandidate {
            path,
            branches,
            fragments,
        } = candidate;
        let id = net.id;
        let on_path = |c: &GridPoint| {
            path.points().contains(c) || branches.iter().any(|b| b.points().contains(c))
        };
        for &p in path.points() {
            plane
                .occupy(p, id)
                .expect("A* only walks free or own cells");
        }
        for b in &branches {
            for &p in b.points() {
                plane
                    .occupy(p, id)
                    .expect("branch A* only walks free or own cells");
            }
        }
        // Release the unused pin candidate reservations.
        let mut released: Vec<GridPoint> = Vec::new();
        for pin in net.pins() {
            for &c in pin.candidates() {
                if !on_path(&c) {
                    plane.clear_path(&[c], id);
                    released.push(c);
                }
            }
        }
        let fragments = fragments.into_vec();
        let mut frag_ids = Vec::with_capacity(fragments.len());
        for &(layer, rect) in &fragments {
            if let Some(axis) = rect.orientation().axis() {
                for (x, y) in rect.cells() {
                    dir_map.set(GridPoint::new(layer, x, y), Some(axis));
                }
            }
            let fid = pack_frag_id(id.0, self.frag_seq);
            self.index[layer.index()].insert(fid, rect);
            frag_ids.push(fid);
            self.frag_seq += 1;
        }
        self.routed.insert(
            id,
            RoutedNet {
                id,
                path,
                branches,
                fragments,
                frag_ids,
            },
        );
        self.records.push(CommitRecord { net: id, released });
    }

    /// Drops a net that exhausted its rip-up budget from every layer graph
    /// (nothing was committed for it).
    pub fn forget(&mut self, net: NetId) {
        for g in &mut self.graphs {
            g.remove_net(net.0);
        }
    }

    /// Unroutes a committed net: frees its plane cells, clears its wire
    /// directions, drops its fragments from the index and removes it from
    /// every layer graph. Returns whether the net was routed.
    pub fn unroute(&mut self, plane: &mut RoutingPlane, dir_map: &mut DirGrid, id: NetId) -> bool {
        let Some(r) = self.routed.remove(&id) else {
            return false;
        };
        plane.clear_path(r.path.points(), id);
        for b in &r.branches {
            plane.clear_path(b.points(), id);
        }
        for ((layer, rect), fid) in r.fragments.iter().zip(&r.frag_ids) {
            self.index[layer.index()].remove(*fid, rect);
            for (x, y) in rect.cells() {
                dir_map.remove(GridPoint::new(*layer, x, y));
            }
        }
        for g in &mut self.graphs {
            g.remove_net(id.0);
        }
        true
    }

    /// Folds a band worker's ledger into this one: replays the band's
    /// commit journal (plane occupancy, pin releases, wire directions) in
    /// commit order against the global `plane`/`dir_map`, re-inserts the
    /// band's fragments into the global index, absorbs the band graphs and
    /// sums the counters.
    ///
    /// Sound because band column ranges are disjoint and a band worker
    /// only writes cells inside its own band; merging bands in ascending
    /// band order therefore yields the same global state as routing the
    /// same nets serially in the same schedule.
    ///
    /// # Panics
    ///
    /// Panics if the band journal references a net it did not commit, or
    /// if a replayed occupancy conflicts (both would mean the band
    /// isolation invariant was broken).
    pub fn merge_band(
        &mut self,
        band: CommitLedger,
        plane: &mut RoutingPlane,
        dir_map: &mut DirGrid,
    ) {
        let CommitLedger {
            graphs,
            index: _,
            routed,
            records,
            frag_seq,
            counters,
        } = band;
        debug_assert_eq!(
            records.len(),
            routed.len(),
            "band workers never unroute: one journal entry per routed net"
        );
        for rec in &records {
            let r = &routed[&rec.net];
            for p in r.all_points() {
                plane.occupy(p, rec.net).expect("band columns are disjoint");
            }
            for &c in &rec.released {
                plane.clear_path(&[c], rec.net);
            }
            for &(layer, rect) in &r.fragments {
                if let Some(axis) = rect.orientation().axis() {
                    for (x, y) in rect.cells() {
                        dir_map.set(GridPoint::new(layer, x, y), Some(axis));
                    }
                }
            }
            for (&(layer, rect), &fid) in r.fragments.iter().zip(&r.frag_ids) {
                self.index[layer.index()].insert(fid, rect);
            }
        }
        for (g, band_g) in self.graphs.iter_mut().zip(&graphs) {
            g.absorb(band_g);
        }
        self.frag_seq = self.frag_seq.max(frag_seq);
        self.counters.accumulate(&counters);
        self.records.extend(records);
        self.routed.extend(routed);
    }
}
