//! The overlay-aware SADP cut-process detailed router (Section III-E).
//!
//! The router is an A\*-search maze router guided by the per-layer
//! [overlay constraint graphs](sadp_graph::OverlayGraph):
//!
//! * the search cost follows eq. (5):
//!   `C(j) = C(i) + α·C_wl + β·C_via + γ·T2b(j)`, where the `T2b` term
//!   discourages creating type 2-b scenarios (the only scenario with
//!   unavoidable side overlay),
//! * after each net is routed, its wire fragments are classified against
//!   every dependent neighbour (Theorems 1–3) and the scenarios are added
//!   to the constraint graph of their layer,
//! * a hard-constraint odd cycle or an unavoidable cut conflict triggers
//!   rip-up-and-re-route with increased grid costs (at most
//!   [`RouterConfig::max_ripup`] iterations, 3 in the paper),
//! * the net is then pseudo-colored greedily; if its induced side overlay
//!   exceeds [`RouterConfig::flip_threshold`], the linear-time color
//!   flipping runs on its component,
//! * after all nets, a full-layout flipping pass minimises overlay
//!   globally.
//!
//! # Example
//!
//! ```
//! use sadp_core::{Router, RouterConfig};
//! use sadp_geom::{DesignRules, GridPoint, Layer};
//! use sadp_grid::{Netlist, RoutingPlane};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut plane = RoutingPlane::new(3, 32, 32, DesignRules::node_10nm())?;
//! let mut netlist = Netlist::new();
//! netlist.add_two_pin("a", GridPoint::new(Layer(0), 2, 2), GridPoint::new(Layer(0), 12, 8));
//! let mut router = Router::new(RouterConfig::paper_defaults());
//! let report = router.route_all(&mut plane, &netlist);
//! assert_eq!(report.routed_nets, 1);
//! assert_eq!(report.hard_overlay_violations, 0);
//! # Ok(())
//! # }
//! ```

pub mod astar;
pub mod bucket;
pub mod budget;
pub mod checkpoint;
pub mod config;
pub mod decompose;
mod driver;
pub mod eco;
pub mod fault;
pub mod grids;
pub mod ledger;
pub mod report;
pub mod router;
pub mod scan;
pub mod schedule;
pub mod search;
pub mod session;
pub mod stats;

pub use astar::{AstarRequest, SearchScratch, SearchStats};
pub use bucket::BucketQueue;
pub use budget::{Budget, RunBudget};
pub use checkpoint::{Snapshot, SnapshotError};
pub use config::{NetOrder, RouterConfig};
pub use decompose::{
    decompose_layout, decompose_layout_observed, LayoutColoring, UndecomposableLayout,
};
pub use eco::{
    parse_edit_script, EcoEdit, EcoError, EcoSession, EditOutcome, NetRef, OpOutcome, ScriptOp,
};
pub use fault::{FaultPlan, IoFault, PersistKind};
pub use grids::{DenseGrid, DirGrid, GuardGrid, PenaltyGrid, NO_GUARD};
pub use ledger::{CommitLedger, CommitRecord, LedgerCounters, Proposal, RoutedNet};
pub use report::RoutingReport;
pub use router::{Router, RouterError};
pub use scan::{scan_fragments, FoundScenario};
pub use schedule::{net_footprint, plan_waves, WavePlan};
pub use search::{FragmentList, RouteCandidate, SearchOutcome, SearchStage};
pub use session::{RoutingSession, SessionError, SessionStatus, StepBudget};
pub use stats::ScenarioCensus;
