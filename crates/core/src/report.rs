//! Routing result metrics (the columns of Tables III and IV).

use sadp_obs::StageProfile;
use std::fmt;
use std::time::Duration;

/// Aggregate metrics of one routing run.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct RoutingReport {
    /// Nets in the input netlist.
    pub total_nets: usize,
    /// Nets routed without violations.
    pub routed_nets: usize,
    /// Total planar wirelength in tracks.
    pub wirelength: u64,
    /// Total via count.
    pub vias: u64,
    /// Total side overlay in `w_line` units ("overlay length").
    pub overlay_units: u64,
    /// Realized hard-overlay assignments (0 for a legal result).
    pub hard_overlay_violations: u64,
    /// Cut conflicts (`#C` of Table III; 0 for our router by construction).
    pub cut_conflicts: u64,
    /// Rip-up-and-re-route iterations performed.
    pub ripups: u64,
    /// Rip-ups caused by type-B cut-conflict checks.
    pub ripups_type_b: u64,
    /// Rip-ups caused by hard-constraint odd cycles / infeasible pairs.
    pub ripups_graph: u64,
    /// Rip-ups caused by colorings that could not avoid a realized risk.
    pub ripups_risk: u64,
    /// Nets failed because no path existed.
    pub failed_no_path: u64,
    /// Nets failed after exhausting the rip-up budget.
    pub failed_exhausted: u64,
    /// Nets dropped by the post-routing conflict cleanup.
    pub failed_cleanup: u64,
    /// Nets failed because a search budget (per-net or whole-run) ran
    /// out. Always 0 when no budget is configured.
    pub failed_budget: u64,
    /// Band workers that panicked and whose nets were re-routed on the
    /// serial fallback path. Always 0 outside fault injection unless a
    /// worker genuinely crashed; the output is byte-identical either way.
    pub bands_recovered: u64,
    /// Boundary-wave pre-searches that panicked and were re-searched on
    /// the serial fallback path. Always 0 outside fault injection unless
    /// a worker genuinely crashed; the output is byte-identical either
    /// way.
    pub waves_recovered: u64,
    /// Color-flipping passes triggered by the threshold.
    pub flips: u64,
    /// A\*-search nodes expanded.
    pub nodes_expanded: u64,
    /// Routed `(net, layer)` pairs whose color lookup fell back to
    /// [`Core`](sadp_scenario::Color::Core) because the net was missing
    /// from that layer's constraint graph. Always 0 for a consistent
    /// router state; a nonzero count means the decomposition input was
    /// silently defaulted.
    pub color_fallbacks: u64,
    /// Wall-clock routing time.
    pub cpu: Duration,
    /// Per-stage time and work counts, filled when the run used a
    /// recorder with timing on ([`Router::route_all_with`]); all zeros —
    /// and equal across runs — with the default no-op recorder. Stage
    /// *counts* are deterministic for a given input regardless of thread
    /// count; stage *times* are wall-clock and are not.
    ///
    /// [`Router::route_all_with`]: crate::router::Router::route_all_with
    pub profile: StageProfile,
}

impl RoutingReport {
    /// Routability in percent (`Rout.` of Tables III/IV).
    #[must_use]
    pub fn routability(&self) -> f64 {
        if self.total_nets == 0 {
            100.0
        } else {
            self.routed_nets as f64 * 100.0 / self.total_nets as f64
        }
    }

    /// One formatted table row: `Rout.% | overlay | #C | CPU(s)`.
    #[must_use]
    pub fn table_row(&self) -> String {
        format!(
            "{:6.1} | {:8} | {:4} | {:8.2}",
            self.routability(),
            self.overlay_units,
            self.cut_conflicts,
            self.cpu.as_secs_f64()
        )
    }
}

impl fmt::Display for RoutingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "routed {}/{} nets ({:.1}%)",
            self.routed_nets,
            self.total_nets,
            self.routability()
        )?;
        writeln!(
            f,
            "wirelength {} tracks, {} vias, {} rip-ups, {} flips",
            self.wirelength, self.vias, self.ripups, self.flips
        )?;
        writeln!(
            f,
            "overlay {} units, {} hard violations, {} cut conflicts",
            self.overlay_units, self.hard_overlay_violations, self.cut_conflicts
        )?;
        if self.color_fallbacks > 0 {
            writeln!(
                f,
                "WARNING: {} color lookups fell back to Core",
                self.color_fallbacks
            )?;
        }
        if self.failed_budget > 0 {
            writeln!(
                f,
                "{} nets failed over search budget (partial result)",
                self.failed_budget
            )?;
        }
        if self.bands_recovered > 0 {
            writeln!(
                f,
                "{} band workers recovered on the serial fallback path",
                self.bands_recovered
            )?;
        }
        if self.waves_recovered > 0 {
            writeln!(
                f,
                "{} wave pre-searches recovered on the serial fallback path",
                self.waves_recovered
            )?;
        }
        write!(f, "cpu {:.3}s", self.cpu.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routability_percent() {
        let mut r = RoutingReport {
            total_nets: 200,
            routed_nets: 188,
            ..RoutingReport::default()
        };
        assert!((r.routability() - 94.0).abs() < 1e-9);
        r.total_nets = 0;
        assert_eq!(r.routability(), 100.0);
    }

    #[test]
    fn display_and_row() {
        let r = RoutingReport {
            total_nets: 10,
            routed_nets: 10,
            overlay_units: 3,
            cpu: Duration::from_millis(1500),
            ..RoutingReport::default()
        };
        let s = r.to_string();
        assert!(s.contains("10/10"));
        assert!(s.contains("overlay 3 units"));
        assert!(r.table_row().contains("100.0"));
    }
}
