//! The overall routing flow (Fig. 18 / Fig. 19).

use crate::astar::{astar_search, AstarRequest, DirMap};
use crate::config::RouterConfig;
use crate::report::RoutingReport;
use crate::scan::{pack_frag_id, scan_fragments, FoundScenario};
use sadp_geom::{Layer, Orientation, SpatialHash, TrackRect};
use sadp_graph::{flip, OverlayGraph};
use sadp_grid::{Net, NetId, Netlist, RoutePath, RoutingPlane};
use sadp_scenario::{Color, ScenarioKind};
use std::collections::HashMap;
use std::time::Instant;

/// A successfully routed net: its path(s) and per-layer wire fragments.
#[derive(Debug, Clone)]
pub struct RoutedNet {
    /// The net.
    pub id: NetId,
    /// The trunk path (source pin to target pin).
    pub path: RoutePath,
    /// Branch paths connecting the extra terminals of a multi-pin net to
    /// the trunk (empty for two-pin nets).
    pub branches: Vec<RoutePath>,
    /// Maximal wire-fragment rectangles per layer, over all paths.
    pub fragments: Vec<(Layer, TrackRect)>,
    /// Spatial-index ids of the fragments (parallel to `fragments`).
    frag_ids: Vec<u64>,
}

impl RoutedNet {
    /// Total planar wirelength over trunk and branches.
    #[must_use]
    pub fn wirelength(&self) -> u64 {
        self.path.wirelength() + self.branches.iter().map(RoutePath::wirelength).sum::<u64>()
    }

    /// Total via count over trunk and branches.
    #[must_use]
    pub fn via_count(&self) -> u64 {
        self.path.via_count() + self.branches.iter().map(RoutePath::via_count).sum::<u64>()
    }

    /// Iterates over every grid point of the net (trunk then branches;
    /// branch tap points repeat their trunk cell).
    pub fn all_points(&self) -> impl Iterator<Item = sadp_geom::GridPoint> + '_ {
        self.path
            .points()
            .iter()
            .copied()
            .chain(self.branches.iter().flat_map(|b| b.points().iter().copied()))
    }
}

/// The overlay-aware detailed router.
///
/// One instance routes one netlist; per-layer overlay constraint graphs,
/// the fragment spatial index and the routed-net store live here and can
/// be inspected after routing (e.g. to feed the decomposition simulator).
#[derive(Debug)]
pub struct Router {
    config: RouterConfig,
    graphs: Vec<OverlayGraph>,
    index: Vec<SpatialHash>,
    dir_map: DirMap,
    guards: HashMap<sadp_geom::GridPoint, (NetId, u64)>,
    routed: HashMap<NetId, RoutedNet>,
    failed: Vec<NetId>,
    frag_seq: u32,
    ripups: u64,
    ripups_type_b: u64,
    ripups_graph: u64,
    ripups_risk: u64,
    failed_no_path: u64,
    failed_exhausted: u64,
    failed_cleanup: u64,
    flips: u64,
    nodes_expanded: u64,
}

impl Router {
    /// Creates a router with the given configuration.
    #[must_use]
    pub fn new(config: RouterConfig) -> Router {
        Router {
            config,
            graphs: Vec::new(),
            index: Vec::new(),
            dir_map: DirMap::new(),
            guards: HashMap::new(),
            routed: HashMap::new(),
            failed: Vec::new(),
            frag_seq: 0,
            ripups: 0,
            ripups_type_b: 0,
            ripups_graph: 0,
            ripups_risk: 0,
            failed_no_path: 0,
            failed_exhausted: 0,
            failed_cleanup: 0,
            flips: 0,
            nodes_expanded: 0,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// The per-layer overlay constraint graphs (valid after
    /// [`Router::route_all`]).
    #[must_use]
    pub fn graphs(&self) -> &[OverlayGraph] {
        &self.graphs
    }

    /// The routed nets.
    #[must_use]
    pub fn routed(&self) -> &HashMap<NetId, RoutedNet> {
        &self.routed
    }

    /// Nets that could not be routed without violations.
    #[must_use]
    pub fn failed(&self) -> &[NetId] {
        &self.failed
    }

    /// The mask color assigned to `net` on `layer`, if it is routed there.
    #[must_use]
    pub fn color_of(&self, net: NetId, layer: Layer) -> Option<Color> {
        let g = self.graphs.get(layer.index())?;
        g.contains(net.0).then(|| g.color(net.0))
    }

    /// The colored patterns of one layer, as
    /// `(net, color, fragment rects)` triples — the input format of the
    /// decomposition simulator.
    #[must_use]
    pub fn patterns_on_layer(&self, layer: Layer) -> Vec<(u32, Color, Vec<TrackRect>)> {
        let mut out = Vec::new();
        let mut ids: Vec<&RoutedNet> = self.routed.values().collect();
        ids.sort_by_key(|r| r.id);
        for r in ids {
            let rects: Vec<TrackRect> = r
                .fragments
                .iter()
                .filter(|(l, _)| *l == layer)
                .map(|(_, rect)| *rect)
                .collect();
            if !rects.is_empty() {
                let color = self.color_of(r.id, layer).unwrap_or(Color::Core);
                out.push((r.id.0, color, rects));
            }
        }
        out
    }

    /// Routes every net of the netlist (shortest first) on the plane,
    /// running the full flow of Fig. 19, and returns the aggregate report.
    pub fn route_all(&mut self, plane: &mut RoutingPlane, netlist: &Netlist) -> RoutingReport {
        let start = Instant::now();
        self.begin(plane.layers());

        // Reserve every pin candidate cell up front so earlier nets cannot
        // route over the pins of later ones (the owner may still enter its
        // own reserved cells).
        for net in netlist {
            self.reserve_pins(plane, net);
        }

        for id in self.net_order(netlist) {
            let net = netlist.net(id);
            if !self.route_net(plane, net, HashMap::new()) {
                self.failed.push(id);
            }
        }

        self.finalize(plane, netlist);
        self.build_report(netlist, start)
    }

    /// Resets the router state for a plane with the given layer count.
    /// Called automatically by [`Router::route_all`]; use directly for the
    /// incremental API ([`Router::route_incremental`]).
    pub fn begin(&mut self, layers: u8) {
        self.reset(layers);
    }

    /// Routes one net incrementally against the already-routed layout,
    /// reserving its pins first. Returns whether the net was committed
    /// (failed nets are recorded in [`Router::failed`]).
    ///
    /// Unlike [`Router::route_all`] the caller controls the net order and
    /// no final flipping/cleanup runs — call [`Router::finalize`] when the
    /// batch is complete.
    ///
    /// # Panics
    ///
    /// Panics if [`Router::begin`] (or a prior `route_all`) has not sized
    /// the router for the plane.
    pub fn route_incremental(&mut self, plane: &mut RoutingPlane, net: &Net) -> bool {
        assert!(
            !self.graphs.is_empty(),
            "call Router::begin before route_incremental"
        );
        self.reserve_pins(plane, net);
        let ok = self.route_net(plane, net, HashMap::new());
        if !ok {
            self.failed.push(net.id);
        }
        ok
    }

    /// Runs the final full-layout color flipping (Fig. 19 line 16), the
    /// hill-climbing refinement, and the conflict cleanup that guarantees
    /// a conflict-free result. `netlist` is used to re-route nets the
    /// cleanup has to move.
    pub fn finalize(&mut self, plane: &mut RoutingPlane, netlist: &Netlist) {
        if self.config.final_flip {
            for g in &mut self.graphs {
                flip::flip_all(g);
                flip::greedy_refine(g, 4);
            }
        }
        // Guarantee the conflict-free claim: any net whose coloring still
        // realizes a hard overlay or a type-A cut risk is re-flipped,
        // re-routed away from the offending region, or — failing both —
        // unrouted.
        self.cleanup_risks(plane, netlist);
    }

    /// Builds the aggregate report for the current state (used by the
    /// incremental API after [`Router::finalize`]).
    #[must_use]
    pub fn report(&self, netlist: &Netlist, since: Instant) -> RoutingReport {
        self.build_report(netlist, since)
    }

    fn net_order(&self, netlist: &Netlist) -> Vec<NetId> {
        use crate::config::NetOrder;
        match self.config.net_order {
            NetOrder::HpwlAscending => netlist.ids_by_hpwl(),
            NetOrder::HpwlDescending => {
                let mut ids = netlist.ids_by_hpwl();
                ids.reverse();
                ids
            }
            NetOrder::Given => netlist.iter().map(|n| n.id).collect(),
        }
    }

    fn reserve_pins(&mut self, plane: &mut RoutingPlane, net: &Net) {
        let guard = self.config.pin_guard_cost();
        for pin in net.pins() {
            for &c in pin.candidates() {
                let _ = plane.occupy(c, net.id);
                if guard > 0 {
                    for dx in -1..=1 {
                        for dy in -1..=1 {
                            let g = sadp_geom::GridPoint::new(c.layer, c.x + dx, c.y + dy);
                            self.guards.entry(g).or_insert((net.id, guard));
                        }
                    }
                }
            }
        }
    }

    fn reset(&mut self, layers: u8) {
        self.graphs = (0..layers).map(|_| OverlayGraph::new()).collect();
        self.index = (0..layers).map(|_| SpatialHash::new(16)).collect();
        self.dir_map.clear();
        self.guards.clear();
        self.routed.clear();
        self.failed.clear();
        self.frag_seq = 0;
        self.ripups = 0;
        self.ripups_type_b = 0;
        self.ripups_graph = 0;
        self.ripups_risk = 0;
        self.failed_no_path = 0;
        self.failed_exhausted = 0;
        self.failed_cleanup = 0;
        self.flips = 0;
        self.nodes_expanded = 0;
    }

    fn build_report(&self, netlist: &Netlist, start: Instant) -> RoutingReport {
        let mut report = RoutingReport {
            total_nets: netlist.len(),
            routed_nets: self.routed.len(),
            ripups: self.ripups,
            ripups_type_b: self.ripups_type_b,
            ripups_graph: self.ripups_graph,
            ripups_risk: self.ripups_risk,
            failed_no_path: self.failed_no_path,
            failed_exhausted: self.failed_exhausted,
            failed_cleanup: self.failed_cleanup,
            flips: self.flips,
            nodes_expanded: self.nodes_expanded,
            cpu: start.elapsed(),
            ..RoutingReport::default()
        };
        for r in self.routed.values() {
            report.wirelength += r.wirelength();
            report.vias += r.via_count();
        }
        for g in &self.graphs {
            let e = g.evaluate();
            report.overlay_units += e.overlay_units;
            report.hard_overlay_violations += e.hard_violations;
            report.cut_conflicts += e.cut_risks;
        }
        report
    }

    /// Routes one net with up to `max_ripup` rip-up-and-re-route
    /// iterations; returns whether the net was committed.
    fn route_net(
        &mut self,
        plane: &mut RoutingPlane,
        net: &Net,
        mut penalties: HashMap<sadp_geom::GridPoint, u64>,
    ) -> bool {
        let key = net.id.0;

        for _attempt in 0..=self.config.max_ripup {
            let req = AstarRequest {
                net: net.id,
                sources: net.source.candidates(),
                targets: net.target.candidates(),
                penalties: &penalties,
                guards: &self.guards,
            };
            let (path, stats) = astar_search(plane, &req, &self.dir_map, &self.config);
            self.nodes_expanded += stats.expanded;
            let Some(path) = path else {
                self.failed_no_path += 1;
                return false;
            };

            // Branch routing for multi-terminal nets: each extra pin
            // connects to any already-routed point of the net.
            let mut branches: Vec<RoutePath> = Vec::new();
            let mut branch_fail = false;
            for pin in &net.extra {
                let mut targets: Vec<sadp_geom::GridPoint> =
                    path.points().to_vec();
                for b in &branches {
                    targets.extend_from_slice(b.points());
                }
                let breq = AstarRequest {
                    net: net.id,
                    sources: pin.candidates(),
                    targets: &targets,
                    penalties: &penalties,
                    guards: &self.guards,
                };
                let (bpath, bstats) = astar_search(plane, &breq, &self.dir_map, &self.config);
                self.nodes_expanded += bstats.expanded;
                match bpath {
                    Some(bp) => branches.push(bp),
                    None => {
                        branch_fail = true;
                        break;
                    }
                }
            }
            if branch_fail {
                self.failed_no_path += 1;
                return false;
            }

            let mut fragments = path.fragments();
            for b in &branches {
                fragments.extend(b.fragments());
            }

            // Classify the tentative route against the routed layout
            // (BTreeMap: layer order must be deterministic).
            let mut found = Vec::new();
            let mut per_layer: std::collections::BTreeMap<Layer, Vec<TrackRect>> =
                std::collections::BTreeMap::new();
            for &(layer, rect) in &fragments {
                per_layer.entry(layer).or_default().push(rect);
            }
            for (layer, frags) in &per_layer {
                found.extend(scan_fragments(
                    *layer,
                    key,
                    frags,
                    &self.index[layer.index()],
                    plane.rules(),
                ));
            }

            // Ablation: without the merge technique every tip-to-tip pair
            // is undecomposable (the \[16\] behaviour) and must be routed
            // away from.
            if !self.config.allow_merge {
                let merges: Vec<(Layer, TrackRect)> = found
                    .iter()
                    .filter(|f| f.scenario.kind == ScenarioKind::OneB)
                    .map(|f| (f.layer, f.our_rect))
                    .collect();
                if !merges.is_empty() {
                    self.penalize(&mut penalties, &merges);
                    self.ripups += 1;
                    self.ripups_graph += 1;
                    continue;
                }
            }

            // Cut conflict check (type B, Fig. 16).
            if std::env::var_os("SADP_DEBUG_FAIL").is_some() && _attempt > 0 {
                let kinds: Vec<String> = found
                    .iter()
                    .filter(|f| f.scenario.kind.is_constraining())
                    .map(|f| format!("{}:{}", f.scenario.kind.name(), f.other_net))
                    .collect();
                let on_path: u64 = path
                    .points()
                    .iter()
                    .filter_map(|pt| penalties.get(pt))
                    .sum();
                eprintln!(
                    "net {} attempt {}: penalties={} cells, {} on path; {:?}",
                    net.id,
                    _attempt,
                    penalties.len(),
                    on_path,
                    kinds
                );
            }
            if let Some(bad) = type_b_conflict(&found, plane.rules()) {
                self.penalize(&mut penalties, &bad);
                self.ripups += 1;
                self.ripups_type_b += 1;
                continue;
            }

            // Update the overlay constraint graphs; odd cycles or
            // infeasible pairs trigger rip-up (Fig. 19 lines 6-9). The
            // union-find checkpoints make rip-up O(net) instead of O(E).
            let marks: Vec<usize> = self.graphs.iter_mut().map(|g| g.mark()).collect();
            let mut offender: Option<(Layer, u32)> = None;
            for f in &found {
                if !f.scenario.kind.is_constraining() {
                    continue;
                }
                let g = &mut self.graphs[f.layer.index()];
                if g.add_scenario_with_kind(key, f.other_net, Some(f.scenario.kind), f.scenario.table)
                    .is_err()
                {
                    offender = Some((f.layer, f.other_net));
                    break;
                }
            }
            if let Some((layer, bad_net)) = offender {
                for (g, &mark) in self.graphs.iter_mut().zip(&marks) {
                    g.rollback_net(key, mark);
                }
                let bad: Vec<TrackRect> = found
                    .iter()
                    .filter(|f| f.layer == layer && f.other_net == bad_net)
                    .map(|f| f.our_rect)
                    .collect();
                let cells: Vec<(Layer, TrackRect)> =
                    bad.into_iter().map(|r| (layer, r)).collect();
                self.penalize(&mut penalties, &cells);
                self.ripups += 1;
                self.ripups_graph += 1;
                continue;
            }

            // Trial coloring: pseudo-color, flip on demand, and verify no
            // hard overlay or type-A cut risk remains realized. A risk the
            // coloring cannot avoid is a cut conflict in the making —
            // rip up and steer away (Fig. 19 lines 6-9).
            let mut overlay = 0u64;
            let mut needs_flip = false;
            for layer in per_layer.keys() {
                let g = &mut self.graphs[layer.index()];
                g.ensure_vertex(key);
                g.pseudo_color(key);
                overlay += g.net_overlay_units(key);
                needs_flip |= g.net_has_risk(key);
            }
            let mut flipped = false;
            if needs_flip || overlay > self.config.flip_threshold {
                for layer in per_layer.keys() {
                    flip::flip_component(&mut self.graphs[layer.index()], key);
                }
                flipped = true;
            }
            let risky_layers: Vec<Layer> = per_layer
                .keys()
                .copied()
                .filter(|l| self.graphs[l.index()].net_has_risk(key))
                .collect();
            if !risky_layers.is_empty() {
                let cells: Vec<(Layer, TrackRect)> = found
                    .iter()
                    .filter(|f| risky_layers.contains(&f.layer))
                    .map(|f| (f.layer, f.our_rect))
                    .collect();
                for (g, &mark) in self.graphs.iter_mut().zip(&marks) {
                    g.rollback_net(key, mark);
                }
                self.penalize(&mut penalties, &cells);
                self.ripups += 1;
                self.ripups_risk += 1;
                continue;
            }
            if flipped {
                self.flips += 1;
            }

            self.commit(plane, net, path, branches, fragments, &per_layer);
            return true;
        }
        // Attempts exhausted; leave the graphs clean.
        if std::env::var_os("SADP_DEBUG_FAIL").is_some() {
            eprintln!(
                "net {} exhausted: src={:?} dst={:?}",
                net.id,
                net.source.primary(),
                net.target.primary()
            );
        }
        self.failed_exhausted += 1;
        for g in &mut self.graphs {
            g.remove_net(key);
        }
        false
    }

    fn penalize(&self, penalties: &mut HashMap<sadp_geom::GridPoint, u64>, cells: &[(Layer, TrackRect)]) {
        let p = self.config.ripup_penalty_cost();
        for (layer, rect) in cells {
            // Penalise the whole neighbourhood (dependence radius) so the
            // re-route leaves the conflicting corridor instead of shifting
            // by a single track into the same scenario.
            for (x, y) in rect.expanded(2).cells() {
                let d = rect.track_gap(&TrackRect::cell(x, y));
                let scale = 2 - (d.0.max(d.1)).min(2) as u64 + 1;
                *penalties
                    .entry(sadp_geom::GridPoint::new(*layer, x, y))
                    .or_insert(0) += p * scale / 2;
            }
        }
    }

    fn commit(
        &mut self,
        plane: &mut RoutingPlane,
        net: &Net,
        path: RoutePath,
        branches: Vec<RoutePath>,
        fragments: Vec<(Layer, TrackRect)>,
        per_layer: &std::collections::BTreeMap<Layer, Vec<TrackRect>>,
    ) {
        let id = net.id;
        let on_path = |c: &sadp_geom::GridPoint| {
            path.points().contains(c) || branches.iter().any(|b| b.points().contains(c))
        };
        for &p in path.points() {
            plane
                .occupy(p, id)
                .expect("A* only walks free or own cells");
        }
        for b in &branches {
            for &p in b.points() {
                plane
                    .occupy(p, id)
                    .expect("branch A* only walks free or own cells");
            }
        }
        // Release the unused pin candidate reservations.
        for pin in net.pins() {
            for &c in pin.candidates() {
                if !on_path(&c) {
                    plane.clear_path(&[c], id);
                }
            }
        }
        let mut frag_ids = Vec::with_capacity(fragments.len());
        for &(layer, rect) in &fragments {
            if let Some(axis) = rect.orientation().axis() {
                for (x, y) in rect.cells() {
                    self.dir_map
                        .insert(sadp_geom::GridPoint::new(layer, x, y), axis);
                }
            }
            let fid = pack_frag_id(id.0, self.frag_seq);
            self.index[layer.index()].insert(fid, rect);
            frag_ids.push(fid);
            self.frag_seq += 1;
        }

        // Coloring already happened in the trial phase of route_net; the
        // graphs are left exactly as validated there.
        let _ = per_layer;
        self.routed.insert(
            id,
            RoutedNet {
                id,
                path,
                branches,
                fragments,
                frag_ids,
            },
        );
    }

    /// Post-routing cleanup: re-flip components of nets whose coloring
    /// still realizes a forbidden assignment or a type-A cut risk, and
    /// unroute the incorrigible ones so the final result is conflict-free.
    fn cleanup_risks(&mut self, plane: &mut RoutingPlane, netlist: &Netlist) {
        for _ in 0..8 {
            let mut risky: Vec<u32> = Vec::new();
            for g in &self.graphs {
                risky.extend(g.nets_with_realized_risk());
            }
            risky.sort_unstable();
            risky.dedup();
            if risky.is_empty() {
                return;
            }
            for net in risky {
                let id = NetId(net);
                let Some(routed) = self.routed.get(&id) else {
                    continue;
                };
                let old_cells: Vec<(Layer, TrackRect)> = routed.fragments.clone();
                let layers: Vec<usize> = (0..self.graphs.len())
                    .filter(|&l| self.graphs[l].contains(net))
                    .collect();
                for &l in &layers {
                    flip::flip_component(&mut self.graphs[l], net);
                    flip::greedy_refine(&mut self.graphs[l], 2);
                }
                let still = layers.iter().any(|&l| self.graphs[l].net_has_risk(net));
                if still {
                    // Re-route away from the old corridor; give the net up
                    // only if that fails too.
                    self.unroute(plane, id);
                    let mut penalties = HashMap::new();
                    let p = self.config.ripup_penalty_cost() * 2;
                    for (layer, rect) in &old_cells {
                        for (x, y) in rect.cells() {
                            penalties.insert(sadp_geom::GridPoint::new(*layer, x, y), p);
                        }
                    }
                    // The pins were freed by the unroute; re-reserve them
                    // for the re-route attempt.
                    let net_ref = netlist.net(id);
                    for pin in [&net_ref.source, &net_ref.target] {
                        for &c in pin.candidates() {
                            let _ = plane.occupy(c, id);
                        }
                    }
                    let ok = self.route_net(plane, net_ref, penalties);
                    let risk_again = ok
                        && (0..self.graphs.len())
                            .any(|l| self.graphs[l].net_has_risk(net));
                    if risk_again {
                        self.unroute(plane, id);
                        self.failed.push(id);
                        self.failed_cleanup += 1;
                    } else if !ok {
                        self.failed.push(id);
                        self.failed_cleanup += 1;
                    }
                }
            }
        }
        // Anything still risky after the passes is unrouted outright.
        loop {
            let mut risky: Vec<u32> = Vec::new();
            for g in &self.graphs {
                risky.extend(g.nets_with_realized_risk());
            }
            risky.sort_unstable();
            risky.dedup();
            if risky.is_empty() {
                break;
            }
            for net in risky {
                let id = NetId(net);
                if self.routed.contains_key(&id) {
                    self.unroute(plane, id);
                    self.failed.push(id);
                    self.failed_cleanup += 1;
                }
            }
        }
    }

    fn unroute(&mut self, plane: &mut RoutingPlane, id: NetId) {
        let Some(r) = self.routed.remove(&id) else {
            return;
        };
        plane.clear_path(r.path.points(), id);
        for b in &r.branches {
            plane.clear_path(b.points(), id);
        }
        for ((layer, rect), fid) in r.fragments.iter().zip(&r.frag_ids) {
            self.index[layer.index()].remove(*fid, rect);
            for (x, y) in rect.cells() {
                self.dir_map
                    .remove(&sadp_geom::GridPoint::new(*layer, x, y));
            }
        }
        for g in &mut self.graphs {
            g.remove_net(id.0);
        }
    }
}

/// Detects unavoidable type-B cut conflicts in the tentative route's
/// scenarios: two cut-defined boundary sections of the same fragment
/// within `d_cut` of each other. Returns the offending fragments.
fn type_b_conflict(
    found: &[FoundScenario],
    rules: &sadp_geom::DesignRules,
) -> Option<Vec<(Layer, TrackRect)>> {
    // Tips of routed nets pointing at a side of one of our fragments, from
    // which direction, and at which axial position.
    struct TipHit {
        layer: Layer,
        our: TrackRect,
        pos: i32,
        positive_side: bool,
    }
    let mut hits: Vec<TipHit> = Vec::new();
    for f in found {
        match f.scenario.kind {
            ScenarioKind::TwoB if f.scenario.swapped => {
                // Canonical A (the tip) is the other net; we are the side.
                let (pos, positive_side) = match f.our_rect.orientation() {
                    Orientation::Horizontal | Orientation::Point => {
                        (f.other_rect.x0, f.other_rect.y0 > f.our_rect.y1)
                    }
                    Orientation::Vertical => (f.other_rect.y0, f.other_rect.x0 > f.our_rect.x1),
                };
                hits.push(TipHit {
                    layer: f.layer,
                    our: f.our_rect,
                    pos,
                    positive_side,
                });
            }
            // A one-cell fragment tip-to-tip with routed nets on both ends:
            // the two separating cuts are only w_line apart (< d_cut).
            ScenarioKind::OneB if f.our_rect.len_cells() == 1 => {
                let twin = found.iter().any(|g| {
                    g.scenario.kind == ScenarioKind::OneB
                        && g.layer == f.layer
                        && g.our_rect == f.our_rect
                        && g.other_rect != f.other_rect
                        && opposite_ends(&f.our_rect, &f.other_rect, &g.other_rect)
                });
                if twin {
                    return Some(vec![(f.layer, f.our_rect)]);
                }
            }
            _ => {}
        }
    }
    // Two tips on opposite sides of the same fragment within d_cut.
    let d_tracks = (rules.d_cut().0 / rules.pitch().0 + 1) as i32;
    for (i, a) in hits.iter().enumerate() {
        for b in hits.iter().skip(i + 1) {
            if a.layer == b.layer
                && a.our == b.our
                && a.positive_side != b.positive_side
                && (a.pos - b.pos).abs() < d_tracks
            {
                return Some(vec![(a.layer, a.our)]);
            }
        }
    }
    None
}

fn opposite_ends(ours: &TrackRect, a: &TrackRect, b: &TrackRect) -> bool {
    // For a single-cell fragment, tips approach along one axis from both
    // directions.
    let (ax, ay) = (a.x0.max(a.x1.min(ours.x0)), a.y0.max(a.y1.min(ours.y0)));
    let (bx, by) = (b.x0.max(b.x1.min(ours.x0)), b.y0.max(b.y1.min(ours.y0)));
    let da = ((ax - ours.x0).signum(), (ay - ours.y0).signum());
    let db = ((bx - ours.x0).signum(), (by - ours.y0).signum());
    da.0 == -db.0 && da.1 == -db.1 && (da != (0, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_geom::{DesignRules, GridPoint};

    fn plane(w: i32, h: i32) -> RoutingPlane {
        RoutingPlane::new(3, w, h, DesignRules::node_10nm()).expect("valid")
    }

    fn p0(x: i32, y: i32) -> GridPoint {
        GridPoint::new(Layer(0), x, y)
    }

    #[test]
    fn routes_single_net() {
        let mut plane = plane(32, 32);
        let mut nl = Netlist::new();
        nl.add_two_pin("a", p0(2, 2), p0(14, 9));
        let mut router = Router::new(RouterConfig::paper_defaults());
        let report = router.route_all(&mut plane, &nl);
        assert_eq!(report.routed_nets, 1);
        assert_eq!(report.wirelength, 19);
        assert_eq!(report.overlay_units, 0);
        assert!(router.failed().is_empty());
    }

    #[test]
    fn adjacent_nets_get_different_colors() {
        let mut plane = plane(32, 32);
        let mut nl = Netlist::new();
        let a = nl.add_two_pin("a", p0(2, 5), p0(20, 5));
        let b = nl.add_two_pin("b", p0(2, 6), p0(20, 6));
        let mut router = Router::new(RouterConfig::paper_defaults());
        let report = router.route_all(&mut plane, &nl);
        assert_eq!(report.routed_nets, 2);
        assert_eq!(report.hard_overlay_violations, 0);
        // Straight rails side by side: a hard 1-a constraint.
        let ca = router.color_of(a, Layer(0)).unwrap();
        let cb = router.color_of(b, Layer(0)).unwrap();
        assert_ne!(ca, cb);
    }

    #[test]
    fn odd_cycle_resolved_by_merge_or_detour() {
        // Three parallel rails pairwise adjacent would be an odd cycle in a
        // trim process; the middle spacing here forms 1-a chains (even), so
        // add a third rail adjacent to both others via wrap-around is not
        // possible on a grid — instead verify a 3-rail bus routes clean.
        let mut plane = plane(32, 32);
        let mut nl = Netlist::new();
        for i in 0..3 {
            nl.add_two_pin(
                format!("r{i}"),
                p0(2, 5 + i),
                p0(20, 5 + i),
            );
        }
        let mut router = Router::new(RouterConfig::paper_defaults());
        let report = router.route_all(&mut plane, &nl);
        assert_eq!(report.routed_nets, 3);
        assert_eq!(report.hard_overlay_violations, 0);
        assert_eq!(report.cut_conflicts, 0);
    }

    #[test]
    fn patterns_on_layer_reflect_routes() {
        let mut plane = plane(32, 32);
        let mut nl = Netlist::new();
        nl.add_two_pin("a", p0(2, 2), p0(10, 2));
        let mut router = Router::new(RouterConfig::paper_defaults());
        router.route_all(&mut plane, &nl);
        let pats = router.patterns_on_layer(Layer(0));
        assert_eq!(pats.len(), 1);
        assert_eq!(pats[0].2, vec![TrackRect::new(2, 2, 10, 2)]);
        assert!(router.patterns_on_layer(Layer(2)).is_empty());
    }

    #[test]
    fn dense_block_routes_conflict_free() {
        let mut plane = plane(48, 48);
        let mut nl = Netlist::new();
        for i in 0..12 {
            nl.add_two_pin(format!("n{i}"), p0(2 + i, 2 + i), p0(30 + (i % 5), 20 + i));
        }
        let mut router = Router::new(RouterConfig::paper_defaults());
        let report = router.route_all(&mut plane, &nl);
        assert!(report.routed_nets >= 9, "report: {report}");
        assert_eq!(report.hard_overlay_violations, 0);
        assert_eq!(report.cut_conflicts, 0);
    }

    #[test]
    fn multi_candidate_pins_route() {
        use sadp_grid::Pin;
        let mut plane = plane(32, 32);
        let mut nl = Netlist::new();
        nl.add_net(
            "m",
            Pin::with_candidates(vec![p0(2, 2), p0(2, 8)]),
            Pin::with_candidates(vec![p0(20, 8), p0(20, 2)]),
        );
        let mut router = Router::new(RouterConfig::paper_defaults());
        let report = router.route_all(&mut plane, &nl);
        assert_eq!(report.routed_nets, 1);
        // The straight pairing wins.
        let routed = router.routed().values().next().unwrap();
        assert_eq!(routed.path.wirelength(), 18);
    }

    #[test]
    fn unroutable_net_reported_failed() {
        let mut plane = plane(16, 16);
        for l in 0..3 {
            plane.add_blockage(Layer(l), TrackRect::new(8, 0, 8, 15));
        }
        let mut nl = Netlist::new();
        let id = nl.add_two_pin("x", p0(2, 2), p0(14, 2));
        let mut router = Router::new(RouterConfig::paper_defaults());
        let report = router.route_all(&mut plane, &nl);
        assert_eq!(report.routed_nets, 0);
        assert_eq!(router.failed(), &[id]);
        assert!(report.routability() < 1.0);
    }
}
