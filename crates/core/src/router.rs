//! The routing façade over the staged pipeline (Fig. 18 / Fig. 19).
//!
//! [`Router`] owns the [`CommitLedger`] (all shared routing state) and a
//! `Workspace` (plane-sized dense working grids) and orchestrates the
//! stages in [`crate::search`] and the internal driver module: pin
//! reservation, the (possibly region-sharded) routing schedule, the final
//! flipping passes and the conflict cleanup. See DESIGN.md, "Pipeline
//! architecture".

use crate::budget::RunBudget;
use crate::checkpoint::{self, Snapshot, SnapshotError};
use crate::config::RouterConfig;
use crate::driver;
use crate::grids::{DirGrid, GuardGrid, PenaltyGrid, NO_GUARD};
use crate::ledger::{CommitLedger, FLIP_NEIGHBORHOOD};
use crate::report::RoutingReport;
use sadp_decomp::{ColoredPattern, CutSimulator};
use sadp_geom::{GridPoint, Layer, TrackRect};
use sadp_graph::{flip, OverlayGraph};
use sadp_grid::{Net, NetId, Netlist, RoutingPlane};
use sadp_obs::{FailReason, NoopRecorder, Recorder, RouterEvent, SpanClock, Stage};
use sadp_scenario::Color;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::time::Instant;

pub use crate::ledger::RoutedNet;

use crate::astar::SearchScratch;

/// Errors of the incremental routing API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterError {
    /// [`Router::route_incremental`] was called before [`Router::begin`]
    /// (or a prior [`Router::route_all`]) sized the router for a plane.
    NotBegun,
    /// The plane has too many cells for the packed 32-bit search indices
    /// (`layers * width * height >= u32::MAX`). Returned by the `try_`
    /// entry points; the panicking ones abort with the same message.
    PlaneTooLarge {
        /// The offending cell count (`u128`: the product can exceed
        /// `usize` arithmetic on the way in).
        cells: u128,
    },
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterError::NotBegun => {
                write!(f, "call Router::begin before route_incremental")
            }
            RouterError::PlaneTooLarge { cells } => {
                write!(
                    f,
                    "plane has {cells} cells but the packed search indices \
                     hold at most {} (32-bit cell ids); shrink the plane or \
                     split the layout into separate runs",
                    u32::MAX - 1
                )
            }
        }
    }
}

impl Error for RouterError {}

/// Plane-sized dense working state, allocated once per [`Router::begin`]
/// and reused for every net (clearing is `O(1)` via generation stamps).
#[derive(Debug)]
pub(crate) struct Workspace {
    /// Per-cell wire direction of committed nets (the `T2b` hint map).
    pub(crate) dir_map: DirGrid,
    /// Soft pin keep-out halos: `(owner, penalty)` per cell.
    pub(crate) guards: GuardGrid,
    /// Rip-up penalties for the net currently being routed.
    pub(crate) penalties: PenaltyGrid,
    /// A\*-search state (g-costs, came-from, open list).
    pub(crate) scratch: SearchScratch,
}

impl Workspace {
    fn try_new(plane: &RoutingPlane) -> Result<Workspace, RouterError> {
        // Check the size before touching the other grids so an oversized
        // plane allocates nothing at all.
        let scratch = SearchScratch::try_new(plane)?;
        Ok(Workspace {
            dir_map: DirGrid::new(plane, None),
            guards: GuardGrid::new(plane, NO_GUARD),
            penalties: PenaltyGrid::new(plane, 0),
            scratch,
        })
    }

    fn fits(&self, plane: &RoutingPlane) -> bool {
        self.scratch.fits(plane)
    }

    fn clear(&mut self) {
        self.dir_map.clear();
        self.guards.clear();
        self.penalties.clear();
    }
}

/// The overlay-aware detailed router.
///
/// One instance routes one netlist; the per-layer overlay constraint
/// graphs, the fragment spatial index and the routed-net store live in
/// its [`CommitLedger`] and can be inspected after routing (e.g. to feed
/// the decomposition simulator).
#[derive(Debug)]
pub struct Router {
    pub(crate) config: RouterConfig,
    pub(crate) ledger: CommitLedger,
    pub(crate) workspace: Option<Workspace>,
    pub(crate) failed: Vec<NetId>,
    color_fallbacks: Cell<u64>,
    /// The whole-run budget, re-armed at the start of every `route_all`
    /// from the config (unlimited between runs, so the incremental API
    /// is never throttled by a stale deadline).
    pub(crate) run_budget: RunBudget,
}

impl Router {
    /// Creates a router with the given configuration.
    #[must_use]
    pub fn new(config: RouterConfig) -> Router {
        Router {
            config,
            ledger: CommitLedger::empty(),
            workspace: None,
            failed: Vec::new(),
            color_fallbacks: Cell::new(0),
            run_budget: RunBudget::unlimited(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// The commit ledger: all shared routing state, including the commit
    /// journal (valid after [`Router::route_all`]).
    #[must_use]
    pub fn ledger(&self) -> &CommitLedger {
        &self.ledger
    }

    /// The per-layer overlay constraint graphs (valid after
    /// [`Router::route_all`]).
    #[must_use]
    pub fn graphs(&self) -> &[OverlayGraph] {
        self.ledger.graphs()
    }

    /// The routed nets, ordered by [`NetId`].
    #[must_use]
    pub fn routed(&self) -> &BTreeMap<NetId, RoutedNet> {
        self.ledger.routed()
    }

    /// Nets that could not be routed without violations.
    #[must_use]
    pub fn failed(&self) -> &[NetId] {
        &self.failed
    }

    /// The mask color assigned to `net` on `layer`, if it is routed there.
    #[must_use]
    pub fn color_of(&self, net: NetId, layer: Layer) -> Option<Color> {
        let g = self.ledger.graphs().get(layer.index())?;
        g.contains(net.0).then(|| g.color(net.0))
    }

    /// The colored patterns of one layer, as
    /// `(net, color, fragment rects)` triples — the input format of the
    /// decomposition simulator.
    ///
    /// A routed net missing from the layer's constraint graph is reported
    /// with [`Color::Core`]; that should never happen for a consistent
    /// router state, so the fallback is counted
    /// ([`RoutingReport::color_fallbacks`]) and asserts in dev builds.
    #[must_use]
    pub fn patterns_on_layer(&self, layer: Layer) -> Vec<(u32, Color, Vec<TrackRect>)> {
        let mut out = Vec::new();
        // The ledger store is a BTreeMap: iteration is NetId-ordered.
        for r in self.ledger.routed().values() {
            let rects: Vec<TrackRect> = r
                .fragments
                .iter()
                .filter(|(l, _)| *l == layer)
                .map(|(_, rect)| *rect)
                .collect();
            if !rects.is_empty() {
                let color = match self.color_of(r.id, layer) {
                    Some(c) => c,
                    None => {
                        self.color_fallbacks.set(self.color_fallbacks.get() + 1);
                        debug_assert!(
                            false,
                            "{} has fragments on {layer} but no color there; defaulting to Core",
                            r.id
                        );
                        Color::Core
                    }
                };
                out.push((r.id.0, color, rects));
            }
        }
        out
    }

    /// Routes every net of the netlist (shortest first) on the plane,
    /// running the full flow of Fig. 19 — region-sharded across
    /// [`RouterConfig::threads`] workers when the plane is wide enough —
    /// and returns the aggregate report. The result is identical for any
    /// thread count.
    pub fn route_all(&mut self, plane: &mut RoutingPlane, netlist: &Netlist) -> RoutingReport {
        self.route_all_with(plane, netlist, &mut NoopRecorder)
    }

    /// [`Router::route_all`] with an observability [`Recorder`]: timing
    /// spans and counters land in [`RoutingReport::profile`], structured
    /// [`RouterEvent`] records in the recorder's sink.
    /// Event order (and every event payload) is identical for any
    /// [`RouterConfig::threads`] value: band workers buffer locally and
    /// the buffers are replayed in ascending band order.
    pub fn route_all_with(
        &mut self,
        plane: &mut RoutingPlane,
        netlist: &Netlist,
        rec: &mut dyn Recorder,
    ) -> RoutingReport {
        self.route_all_recoverable(plane, netlist, rec, None, None)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Router::route_all_with`] with checkpoint/resume:
    ///
    /// * `resume` — a parsed [`Snapshot`] to start from. Its journaled
    ///   routes are re-committed through the identical stage pipeline
    ///   (no searching) and only the remaining nets are routed. The
    ///   final result is byte-identical to an uninterrupted run because
    ///   snapshots are only taken at schedule-aligned boundaries.
    /// * `save` — a sink called with fresh snapshot text at those
    ///   boundaries: after every band fold, and (throttled) between
    ///   serial nets. `None` disables checkpointing at zero cost — the
    ///   input fingerprint is not even computed then.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Router`] for an oversized plane,
    /// [`SnapshotError::FingerprintMismatch`] when `resume` was taken
    /// from a different plane/netlist, and
    /// [`SnapshotError::ReplayDiverged`] when a journaled route no
    /// longer commits cleanly.
    pub fn route_all_recoverable(
        &mut self,
        plane: &mut RoutingPlane,
        netlist: &Netlist,
        rec: &mut dyn Recorder,
        resume: Option<&Snapshot>,
        mut save: Option<&mut dyn FnMut(&str)>,
    ) -> Result<RoutingReport, SnapshotError> {
        let start = Instant::now();
        let (order, fp) = self.prepare_run(plane, netlist, resume, save.is_some())?;
        {
            let Router {
                config,
                ledger,
                workspace,
                failed,
                run_budget,
                ..
            } = self;
            let ws = workspace.as_mut().expect("begin_sized sets the workspace");
            // The hook serializes the whole journal each time, so the
            // per-net ticks on the serial paths are throttled; band
            // folds (force = true) always persist.
            let mut hook_fn;
            let hook: Option<driver::CheckpointHook<'_>> = match save.as_mut() {
                Some(sink) => {
                    let fp = fp.expect("fingerprint is computed when saving");
                    let mut tick = 0u64;
                    hook_fn = move |ledger: &CommitLedger, failed: &[NetId], force: bool| {
                        tick += 1;
                        if force || tick.is_multiple_of(64) {
                            sink(&checkpoint::serialize(ledger, failed, fp));
                        }
                    };
                    Some(&mut hook_fn)
                }
                None => None,
            };
            driver::route_schedule(
                config, ledger, ws, plane, netlist, &order, failed, run_budget, rec, hook,
            );
        }
        self.finalize_with(plane, netlist, rec);
        let mut report = self.build_report(netlist, start);
        if let Some(profile) = rec.profile() {
            report.profile = profile;
        }
        Ok(report)
    }

    /// [`Router::route_all_with`], but an oversized plane is a
    /// [`RouterError`] instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns [`RouterError::PlaneTooLarge`] if the plane's cells do not
    /// fit the packed 32-bit search indices. The check runs before any
    /// routing state is allocated.
    pub fn try_route_all(
        &mut self,
        plane: &mut RoutingPlane,
        netlist: &Netlist,
        rec: &mut dyn Recorder,
    ) -> Result<RoutingReport, RouterError> {
        SearchScratch::check_plane(plane)?;
        Ok(self.route_all_with(plane, netlist, rec))
    }

    /// The shared run preamble of [`Router::route_all_recoverable`] and
    /// [`crate::session::RoutingSession`]: sizes the router for the
    /// plane, arms the run budget, verifies the resume fingerprint,
    /// reserves every pin, replays the snapshot journal, and returns the
    /// canonical net order with the processed prefix removed (plus the
    /// input fingerprint when checkpointing asked for it).
    pub(crate) fn prepare_run(
        &mut self,
        plane: &mut RoutingPlane,
        netlist: &Netlist,
        resume: Option<&Snapshot>,
        want_fingerprint: bool,
    ) -> Result<(Vec<NetId>, Option<u64>), SnapshotError> {
        self.try_begin_sized(plane, netlist.len())?;
        self.run_budget = RunBudget::from_config(&self.config);
        // The input fingerprint costs a serialization pass, so it is
        // computed only when checkpointing or resuming asks for it.
        let fp =
            (resume.is_some() || want_fingerprint).then(|| checkpoint::fingerprint(plane, netlist));
        if let (Some(snap), Some(fp)) = (resume, fp) {
            if snap.fingerprint() != fp {
                return Err(SnapshotError::FingerprintMismatch);
            }
        }
        let mut order = self.net_order(netlist);
        let Router {
            config,
            ledger,
            workspace,
            failed,
            run_budget,
            ..
        } = self;
        let ws = workspace.as_mut().expect("begin_sized sets the workspace");
        // Reserve every pin candidate cell up front so earlier nets
        // cannot route over the pins of later ones (the owner may
        // still enter its own reserved cells).
        for net in netlist {
            driver::reserve_pins(config, &mut ws.guards, plane, net);
        }
        if let Some(snap) = resume {
            replay_snapshot(
                snap, config, ledger, ws, plane, netlist, failed, run_budget, true,
            )?;
            let done: std::collections::HashSet<NetId> = snap.processed().into_iter().collect();
            order.retain(|id| !done.contains(id));
        }
        Ok((order, fp))
    }

    /// Resets the router state for the plane. Called automatically by
    /// [`Router::route_all`]; use directly for the incremental API
    /// ([`Router::route_incremental`]).
    pub fn begin(&mut self, plane: &RoutingPlane) {
        self.begin_sized(plane, 0);
    }

    /// Like [`Router::begin`], with a hint of how many nets will be routed
    /// so the fragment spatial index can pick a density-matched tile size
    /// (`0` = unknown, uses the coarsest tile).
    pub fn begin_sized(&mut self, plane: &RoutingPlane, expected_nets: usize) {
        self.try_begin_sized(plane, expected_nets)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`Router::begin_sized`], but an oversized plane is a
    /// [`RouterError`] instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns [`RouterError::PlaneTooLarge`] if the plane's cells do not
    /// fit the packed 32-bit search indices; the router state is left
    /// untouched in that case.
    pub fn try_begin_sized(
        &mut self,
        plane: &RoutingPlane,
        expected_nets: usize,
    ) -> Result<(), RouterError> {
        SearchScratch::check_plane(plane)?;
        self.ledger = CommitLedger::new(plane, expected_nets);
        match self.workspace.as_mut() {
            Some(ws) if ws.fits(plane) => ws.clear(),
            _ => self.workspace = Some(Workspace::try_new(plane)?),
        }
        self.failed.clear();
        self.color_fallbacks.set(0);
        Ok(())
    }

    /// Routes one net incrementally against the already-routed layout,
    /// reserving its pins first. Returns whether the net was committed
    /// (failed nets are recorded in [`Router::failed`]).
    ///
    /// Unlike [`Router::route_all`] the caller controls the net order and
    /// no final flipping/cleanup runs — call [`Router::finalize`] when the
    /// batch is complete.
    ///
    /// # Errors
    ///
    /// Returns [`RouterError::NotBegun`] if [`Router::begin`] (or a prior
    /// `route_all`) has not sized the router for the plane.
    pub fn route_incremental(
        &mut self,
        plane: &mut RoutingPlane,
        net: &Net,
    ) -> Result<bool, RouterError> {
        self.route_incremental_with(plane, net, &mut NoopRecorder)
    }

    /// [`Router::route_incremental`] with an observability [`Recorder`]:
    /// the net emits the same `net_routed` / `net_failed` / rip-up trace
    /// events as the batch path.
    ///
    /// On failure the pin reservations taken for this net are released
    /// again (cells and guard halo), so an unroutable net does not block
    /// its candidate cells for later nets; a retry that succeeds clears
    /// the net's earlier entry in [`Router::failed`], and repeated
    /// failures record it only once.
    ///
    /// # Errors
    ///
    /// Returns [`RouterError::NotBegun`] if [`Router::begin`] (or a prior
    /// `route_all`) has not sized the router for the plane.
    pub fn route_incremental_with(
        &mut self,
        plane: &mut RoutingPlane,
        net: &Net,
        rec: &mut dyn Recorder,
    ) -> Result<bool, RouterError> {
        let Router {
            config,
            ledger,
            workspace,
            failed,
            run_budget,
            ..
        } = self;
        if ledger.layer_count() == 0 {
            return Err(RouterError::NotBegun);
        }
        let ws = workspace.as_mut().ok_or(RouterError::NotBegun)?;
        driver::reserve_pins(config, &mut ws.guards, plane, net);
        let ok = driver::route_one(config, ledger, ws, plane, net, &[], run_budget, rec, true);
        if ok {
            // A retry that made it clears the earlier failure record so
            // report counters see the net exactly once.
            failed.retain(|&id| id != net.id);
        } else {
            driver::release_pins(config, &mut ws.guards, plane, net);
            if !failed.contains(&net.id) {
                failed.push(net.id);
            }
        }
        Ok(ok)
    }

    /// Runs the final color flipping (Fig. 19 line 16) on every component
    /// touched since the last finalize, the hill-climbing refinement, and
    /// the conflict cleanup that guarantees a conflict-free result.
    /// `netlist` is used to re-route nets the cleanup has to move.
    ///
    /// The flipping is scoped to *dirty* components — those containing a
    /// vertex whose edges changed since the previous finalize — so
    /// repeated incremental batches only re-color what moved instead of
    /// re-walking the whole layout each time. A no-op before
    /// [`Router::begin`].
    pub fn finalize(&mut self, plane: &mut RoutingPlane, netlist: &Netlist) {
        self.finalize_with(plane, netlist, &mut NoopRecorder);
    }

    /// [`Router::finalize`] with an observability [`Recorder`]: the
    /// flipping passes are timed as the `recolor` stage and emit one
    /// `flip_pass` event per layer that had dirty components.
    pub fn finalize_with(
        &mut self,
        plane: &mut RoutingPlane,
        netlist: &Netlist,
        rec: &mut dyn Recorder,
    ) {
        if self.config.final_flip {
            let clock = SpanClock::start(rec);
            for (layer, g) in self.ledger.graphs_mut().iter_mut().enumerate() {
                let mut dirty = g.take_dirty();
                dirty.sort_unstable();
                let mut visited: std::collections::HashSet<u32> = std::collections::HashSet::new();
                let mut components: u64 = 0;
                for v in dirty {
                    if !g.contains(v) || visited.contains(&v) {
                        continue;
                    }
                    visited.extend(g.component_of(v));
                    flip::flip_component(g, v);
                    flip::greedy_refine_component(g, v, 4);
                    components += 1;
                }
                if rec.enabled() && components > 0 {
                    rec.event(RouterEvent::FlipPass {
                        layer: layer as u8,
                        components,
                    });
                }
            }
            clock.stop(rec, Stage::Recolor);
        }
        // Guarantee the conflict-free claim: any net whose coloring still
        // realizes a hard overlay or a type-A cut risk is re-flipped,
        // re-routed away from the offending region, or — failing both —
        // unrouted.
        self.cleanup_risks(plane, netlist, rec);
        self.repair_cut_conflicts(plane, netlist, rec);
    }

    /// Simulator-backed repair: synthesises the cut-process masks for the
    /// final colored layout and, while any layer still shows a type-B cut
    /// conflict or a spacer-destroyed target, rips up the nets owning the
    /// conflicted runs and re-routes them away from the region.
    ///
    /// The overlay constraint graph is a pairwise model; a few
    /// multi-pattern interactions (e.g. an assist core of one wire merging
    /// over a via pad that is itself tip-merged with a third net) only
    /// appear in the synthesised masks. This pass closes that gap, so the
    /// router's conflict-free claim holds against the pixel simulator and
    /// not just against its own graph.
    fn repair_cut_conflicts(
        &mut self,
        plane: &mut RoutingPlane,
        netlist: &Netlist,
        rec: &mut dyn Recorder,
    ) {
        if !self.config.cut_repair || self.workspace.is_none() {
            return;
        }
        let sim = CutSimulator::new(*plane.rules());
        // Re-routing rounds: later rounds widen the rip-up to the
        // dependence-radius neighbours of the conflict, since the net
        // owning the conflicted run may be pinned in place (a via pad on
        // a pin cell cannot move). A re-route can realize a fresh
        // graph-level risk, so the graph cleanup re-runs after each round.
        let radius = plane.rules().dependence_radius_tracks();
        for round in 0..4 {
            let offenders = self.sim_offenders(&sim, if round >= 2 { radius } else { 0 });
            if offenders.is_empty() {
                return;
            }
            self.reroute_offenders(plane, netlist, &offenders, rec);
            self.cleanup_risks(plane, netlist, rec);
        }
        // Convergence backstop: unroute the offenders outright. Removing
        // a net never adds constraint-graph edges, but it can reshape the
        // masks, so re-simulate until clean; every iteration unroutes at
        // least one routed net, so this terminates.
        loop {
            let offenders = self.sim_offenders(&sim, 0);
            if offenders.is_empty() {
                return;
            }
            let ws = self.workspace.as_mut().expect("checked above");
            for id in offenders {
                if self.ledger.routed().contains_key(&id) {
                    self.ledger.unroute(plane, &mut ws.dir_map, id);
                    self.failed.push(id);
                    self.ledger.counters.failed_cleanup += 1;
                    if rec.enabled() {
                        rec.event(RouterEvent::NetFailed {
                            net: id.0,
                            reason: FailReason::Cleanup,
                        });
                    }
                }
            }
        }
    }

    /// Runs the cut simulator on every occupied layer and returns the
    /// nets owning target cells the decomposition fails on (sorted,
    /// deduplicated). With `radius > 0`, nets with any fragment within
    /// that many tracks of a conflicted cell are included as well.
    fn sim_offenders(&self, sim: &CutSimulator, radius: i32) -> Vec<NetId> {
        let mut offenders: Vec<NetId> = Vec::new();
        for l in 0..self.ledger.layer_count() {
            let layer = Layer(l as u8);
            let pats = self.patterns_on_layer(layer);
            if pats.is_empty() {
                continue;
            }
            let colored: Vec<ColoredPattern> = pats
                .iter()
                .map(|(net, color, rects)| ColoredPattern::new(*net, *color, rects.clone()))
                .collect();
            let d = sim.run(&colored);
            if d.report.cut_conflicts == 0 && d.report.spacer_violations == 0 {
                continue;
            }
            for (cx, cy) in d.conflict_cells() {
                let window = TrackRect::cell(cx, cy).expanded(radius);
                for (id, rect) in self.ledger.frag_index(layer).query_entries(&window) {
                    if rect.intersects(&window) {
                        offenders.push(NetId(crate::scan::net_of_frag_id(id)));
                    }
                }
            }
        }
        offenders.sort_unstable();
        offenders.dedup();
        offenders
    }

    /// Rips up and re-routes each offender with penalties seeded on its
    /// old corridor (the repair analogue of the cleanup re-route); a net
    /// that cannot be re-routed is recorded as a cleanup casualty.
    fn reroute_offenders(
        &mut self,
        plane: &mut RoutingPlane,
        netlist: &Netlist,
        offenders: &[NetId],
        rec: &mut dyn Recorder,
    ) {
        let Router {
            config,
            ledger,
            workspace,
            failed,
            run_budget,
            ..
        } = self;
        let ws = workspace.as_mut().expect("repair runs after begin");
        for &id in offenders {
            let Some(routed) = ledger.routed().get(&id) else {
                continue;
            };
            let old_cells: Vec<(Layer, TrackRect)> = routed.fragments.clone();
            ledger.unroute(plane, &mut ws.dir_map, id);
            let p = config.ripup_penalty_cost() * 2;
            let mut seeds: Vec<(GridPoint, u64)> = Vec::new();
            for (layer, rect) in &old_cells {
                for (x, y) in rect.cells() {
                    seeds.push((GridPoint::new(*layer, x, y), p));
                }
            }
            let net_ref = netlist.net(id);
            for pin in [&net_ref.source, &net_ref.target] {
                for &c in pin.candidates() {
                    let _ = plane.occupy(c, id);
                }
            }
            let ok = driver::route_one(
                config, ledger, ws, plane, net_ref, &seeds, run_budget, rec, false,
            );
            if !ok {
                failed.push(id);
                ledger.counters.failed_cleanup += 1;
                if rec.enabled() {
                    rec.event(RouterEvent::NetFailed {
                        net: id.0,
                        reason: FailReason::Cleanup,
                    });
                }
            }
        }
    }

    /// Builds the aggregate report for the current state (used by the
    /// incremental API after [`Router::finalize`]).
    #[must_use]
    pub fn report(&self, netlist: &Netlist, since: Instant) -> RoutingReport {
        self.build_report(netlist, since)
    }

    pub(crate) fn net_order(&self, netlist: &Netlist) -> Vec<NetId> {
        use crate::config::NetOrder;
        match self.config.net_order {
            NetOrder::HpwlAscending => netlist.ids_by_hpwl(),
            NetOrder::HpwlDescending => {
                let mut ids = netlist.ids_by_hpwl();
                ids.reverse();
                ids
            }
            NetOrder::Given => netlist.iter().map(|n| n.id).collect(),
        }
    }

    pub(crate) fn build_report(&self, netlist: &Netlist, start: Instant) -> RoutingReport {
        let c = &self.ledger.counters;
        let mut report = RoutingReport {
            total_nets: netlist.len(),
            routed_nets: self.ledger.routed().len(),
            ripups: c.ripups,
            ripups_type_b: c.ripups_type_b,
            ripups_graph: c.ripups_graph,
            ripups_risk: c.ripups_risk,
            failed_no_path: c.failed_no_path,
            failed_exhausted: c.failed_exhausted,
            failed_cleanup: c.failed_cleanup,
            failed_budget: c.failed_budget,
            bands_recovered: c.bands_recovered,
            waves_recovered: c.waves_recovered,
            flips: c.flips,
            nodes_expanded: c.nodes_expanded,
            cpu: start.elapsed(),
            ..RoutingReport::default()
        };
        for r in self.ledger.routed().values() {
            report.wirelength += r.wirelength();
            report.vias += r.via_count();
        }
        for g in self.ledger.graphs() {
            let e = g.evaluate();
            report.overlay_units += e.overlay_units;
            report.hard_overlay_violations += e.hard_violations;
            report.cut_conflicts += e.cut_risks;
        }
        // Consistency sweep: every routed net must have a color on every
        // layer it occupies. This sweep is the authoritative count; the
        // `color_fallbacks` cell only backs `patterns_on_layer`'s own
        // dev-build assertion and would double-count the same missing
        // `(net, layer)` pairs if added here (and would make the report
        // depend on how many times the caller asked for patterns).
        let mut fallbacks = 0u64;
        for r in self.ledger.routed().values() {
            let mut layers: Vec<Layer> = r.fragments.iter().map(|&(l, _)| l).collect();
            layers.sort_unstable();
            layers.dedup();
            for l in layers {
                if self.color_of(r.id, l).is_none() {
                    fallbacks += 1;
                    debug_assert!(false, "{} routed on {l} without a color", r.id);
                }
            }
        }
        report.color_fallbacks = fallbacks;
        report
    }

    /// Post-routing cleanup: re-flip components of nets whose coloring
    /// still realizes a forbidden assignment or a type-A cut risk, and
    /// unroute the incorrigible ones so the final result is conflict-free.
    fn cleanup_risks(
        &mut self,
        plane: &mut RoutingPlane,
        netlist: &Netlist,
        rec: &mut dyn Recorder,
    ) {
        let Router {
            config,
            ledger,
            workspace,
            failed,
            run_budget,
            ..
        } = self;
        let Some(ws) = workspace.as_mut() else {
            // Never begun: nothing routed, nothing to clean.
            return;
        };
        for _ in 0..8 {
            let mut risky: Vec<u32> = Vec::new();
            for g in ledger.graphs() {
                risky.extend(g.nets_with_realized_risk());
            }
            risky.sort_unstable();
            risky.dedup();
            if risky.is_empty() {
                break;
            }
            // One flip+refine per neighbourhood per pass: several risky
            // nets usually share a region, and re-flipping it for each of
            // them repeated `O(component)` work per net.
            let mut flipped: Vec<std::collections::HashSet<u32>> =
                vec![std::collections::HashSet::new(); ledger.layer_count()];
            for net in risky {
                let id = NetId(net);
                let Some(routed) = ledger.routed().get(&id) else {
                    continue;
                };
                let old_cells: Vec<(Layer, TrackRect)> = routed.fragments.clone();
                let layers: Vec<usize> = (0..ledger.layer_count())
                    .filter(|&l| ledger.graphs()[l].contains(net))
                    .collect();
                for &l in &layers {
                    if flipped[l].contains(&net) {
                        continue;
                    }
                    let members = flip::flip_neighborhood(
                        &mut ledger.graphs_mut()[l],
                        net,
                        FLIP_NEIGHBORHOOD,
                    );
                    flip::refine_members(&mut ledger.graphs_mut()[l], &members, 2);
                    flipped[l].extend(members);
                }
                let still = layers.iter().any(|&l| ledger.graphs()[l].net_has_risk(net));
                if still {
                    // Re-route away from the old corridor; give the net up
                    // only if that fails too.
                    ledger.unroute(plane, &mut ws.dir_map, id);
                    let p = config.ripup_penalty_cost() * 2;
                    let mut seeds: Vec<(GridPoint, u64)> = Vec::new();
                    for (layer, rect) in &old_cells {
                        for (x, y) in rect.cells() {
                            seeds.push((GridPoint::new(*layer, x, y), p));
                        }
                    }
                    // The pins were freed by the unroute; re-reserve them
                    // for the re-route attempt.
                    let net_ref = netlist.net(id);
                    for pin in [&net_ref.source, &net_ref.target] {
                        for &c in pin.candidates() {
                            let _ = plane.occupy(c, id);
                        }
                    }
                    // `count_failures = false`: a net that fails here is a
                    // *cleanup* casualty, not an initial-routing failure —
                    // letting route_net bump failed_no_path/failed_exhausted
                    // for it double-counted the net across failure counters.
                    let ok = driver::route_one(
                        config, ledger, ws, plane, net_ref, &seeds, run_budget, rec, false,
                    );
                    let risk_again = ok
                        && (0..ledger.layer_count()).any(|l| ledger.graphs()[l].net_has_risk(net));
                    if risk_again || !ok {
                        if risk_again {
                            ledger.unroute(plane, &mut ws.dir_map, id);
                        }
                        failed.push(id);
                        ledger.counters.failed_cleanup += 1;
                        if rec.enabled() {
                            rec.event(RouterEvent::NetFailed {
                                net: id.0,
                                reason: FailReason::Cleanup,
                            });
                        }
                    }
                }
            }
        }
        // Anything still risky after the passes is unrouted outright.
        loop {
            let mut risky: Vec<u32> = Vec::new();
            for g in ledger.graphs() {
                risky.extend(g.nets_with_realized_risk());
            }
            risky.sort_unstable();
            risky.dedup();
            if risky.is_empty() {
                break;
            }
            for net in risky {
                let id = NetId(net);
                if ledger.routed().contains_key(&id) {
                    ledger.unroute(plane, &mut ws.dir_map, id);
                    failed.push(id);
                    ledger.counters.failed_cleanup += 1;
                    if rec.enabled() {
                        rec.event(RouterEvent::NetFailed {
                            net: id.0,
                            reason: FailReason::Cleanup,
                        });
                    }
                }
            }
        }
    }
}

/// Re-commits a snapshot's journal against a freshly begun router state:
/// every journaled route goes through the identical stage pipeline
/// ([`driver::commit_candidate`]) in journal order, which reproduces the
/// plane occupancy, direction map, fragment-index scan order and graph
/// state of the original prefix exactly — no searching involved. The
/// snapshot's counters then overwrite the replayed ones (replay re-counts
/// flips but none of the search/rip-up work).
///
/// `enforce_steering` is forwarded to [`driver::commit_candidate`]:
/// mid-run resume passes `true` (the replayed prefix made exactly these
/// decisions), while restoring a *final* routed set passes `false` —
/// the journal omits ripped-up interlopers, post-commit flip passes and
/// the original commit order, so the commit-time steering heuristics
/// (risk abort, geometric type-B filter) can reject a commit that is
/// part of a perfectly consistent final state.
#[allow(clippy::too_many_arguments)]
pub(crate) fn replay_snapshot(
    snap: &Snapshot,
    config: &RouterConfig,
    ledger: &mut CommitLedger,
    ws: &mut Workspace,
    plane: &mut RoutingPlane,
    netlist: &Netlist,
    failed: &mut Vec<NetId>,
    run_budget: &RunBudget,
    enforce_steering: bool,
) -> Result<(), SnapshotError> {
    let mut rec = NoopRecorder;
    for n in &snap.nets {
        if n.id.index() >= netlist.len() {
            return Err(SnapshotError::ReplayDiverged);
        }
        let candidate = Snapshot::candidate_of(n)?;
        let mut ctx = driver::RouteCtx {
            config,
            ledger,
            dir_map: &mut ws.dir_map,
            guards: &ws.guards,
            penalties: &mut ws.penalties,
            scratch: &mut ws.scratch,
            run_budget,
            rec: &mut rec,
        };
        let committed = driver::commit_candidate(
            &mut ctx,
            plane,
            netlist.net(n.id),
            candidate,
            enforce_steering,
        );
        if committed.is_err() {
            return Err(SnapshotError::ReplayDiverged);
        }
    }
    ledger.counters = snap.counters();
    failed.extend(snap.failed.iter().copied());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_geom::DesignRules;

    fn plane(w: i32, h: i32) -> RoutingPlane {
        RoutingPlane::new(3, w, h, DesignRules::node_10nm()).expect("valid")
    }

    fn p0(x: i32, y: i32) -> GridPoint {
        GridPoint::new(Layer(0), x, y)
    }

    #[test]
    fn routes_single_net() {
        let mut plane = plane(32, 32);
        let mut nl = Netlist::new();
        nl.add_two_pin("a", p0(2, 2), p0(14, 9));
        let mut router = Router::new(RouterConfig::paper_defaults());
        let report = router.route_all(&mut plane, &nl);
        assert_eq!(report.routed_nets, 1);
        assert_eq!(report.wirelength, 19);
        assert_eq!(report.overlay_units, 0);
        assert_eq!(report.color_fallbacks, 0);
        assert!(router.failed().is_empty());
    }

    #[test]
    fn adjacent_nets_get_different_colors() {
        let mut plane = plane(32, 32);
        let mut nl = Netlist::new();
        let a = nl.add_two_pin("a", p0(2, 5), p0(20, 5));
        let b = nl.add_two_pin("b", p0(2, 6), p0(20, 6));
        let mut router = Router::new(RouterConfig::paper_defaults());
        let report = router.route_all(&mut plane, &nl);
        assert_eq!(report.routed_nets, 2);
        assert_eq!(report.hard_overlay_violations, 0);
        // Straight rails side by side: a hard 1-a constraint.
        let ca = router.color_of(a, Layer(0)).unwrap();
        let cb = router.color_of(b, Layer(0)).unwrap();
        assert_ne!(ca, cb);
    }

    #[test]
    fn odd_cycle_resolved_by_merge_or_detour() {
        // Three parallel rails pairwise adjacent would be an odd cycle in a
        // trim process; the middle spacing here forms 1-a chains (even), so
        // add a third rail adjacent to both others via wrap-around is not
        // possible on a grid — instead verify a 3-rail bus routes clean.
        let mut plane = plane(32, 32);
        let mut nl = Netlist::new();
        for i in 0..3 {
            nl.add_two_pin(format!("r{i}"), p0(2, 5 + i), p0(20, 5 + i));
        }
        let mut router = Router::new(RouterConfig::paper_defaults());
        let report = router.route_all(&mut plane, &nl);
        assert_eq!(report.routed_nets, 3);
        assert_eq!(report.hard_overlay_violations, 0);
        assert_eq!(report.cut_conflicts, 0);
    }

    #[test]
    fn patterns_on_layer_reflect_routes() {
        let mut plane = plane(32, 32);
        let mut nl = Netlist::new();
        nl.add_two_pin("a", p0(2, 2), p0(10, 2));
        let mut router = Router::new(RouterConfig::paper_defaults());
        router.route_all(&mut plane, &nl);
        let pats = router.patterns_on_layer(Layer(0));
        assert_eq!(pats.len(), 1);
        assert_eq!(pats[0].2, vec![TrackRect::new(2, 2, 10, 2)]);
        assert!(router.patterns_on_layer(Layer(2)).is_empty());
    }

    #[test]
    fn dense_block_routes_conflict_free() {
        let mut plane = plane(48, 48);
        let mut nl = Netlist::new();
        for i in 0..12 {
            nl.add_two_pin(format!("n{i}"), p0(2 + i, 2 + i), p0(30 + (i % 5), 20 + i));
        }
        let mut router = Router::new(RouterConfig::paper_defaults());
        let report = router.route_all(&mut plane, &nl);
        assert!(report.routed_nets >= 9, "report: {report}");
        assert_eq!(report.hard_overlay_violations, 0);
        assert_eq!(report.cut_conflicts, 0);
    }

    #[test]
    fn multi_candidate_pins_route() {
        use sadp_grid::Pin;
        let mut plane = plane(32, 32);
        let mut nl = Netlist::new();
        nl.add_net(
            "m",
            Pin::with_candidates(vec![p0(2, 2), p0(2, 8)]),
            Pin::with_candidates(vec![p0(20, 8), p0(20, 2)]),
        );
        let mut router = Router::new(RouterConfig::paper_defaults());
        let report = router.route_all(&mut plane, &nl);
        assert_eq!(report.routed_nets, 1);
        // The straight pairing wins.
        let routed = router.routed().values().next().unwrap();
        assert_eq!(routed.path.wirelength(), 18);
    }

    #[test]
    fn unroutable_net_reported_failed() {
        let mut plane = plane(16, 16);
        for l in 0..3 {
            plane.add_blockage(Layer(l), TrackRect::new(8, 0, 8, 15));
        }
        let mut nl = Netlist::new();
        let id = nl.add_two_pin("x", p0(2, 2), p0(14, 2));
        let mut router = Router::new(RouterConfig::paper_defaults());
        let report = router.route_all(&mut plane, &nl);
        assert_eq!(report.routed_nets, 0);
        assert_eq!(router.failed(), &[id]);
        assert!(report.routability() < 1.0);
    }

    #[test]
    fn route_all_twice_reuses_workspace() {
        // A second route_all on the same-shaped plane must behave exactly
        // like a fresh router (workspace reuse + epoch clears).
        let mut nl = Netlist::new();
        nl.add_two_pin("a", p0(2, 2), p0(14, 9));
        nl.add_two_pin("b", p0(2, 12), p0(18, 12));
        let mut router = Router::new(RouterConfig::paper_defaults());
        let mut plane_a = plane(32, 32);
        let first = router.route_all(&mut plane_a, &nl);
        let mut plane_b = plane(32, 32);
        let second = router.route_all(&mut plane_b, &nl);
        assert_eq!(first.routed_nets, second.routed_nets);
        assert_eq!(first.wirelength, second.wirelength);
        assert_eq!(first.overlay_units, second.overlay_units);
        assert_eq!(first.nodes_expanded, second.nodes_expanded);
    }

    #[test]
    fn incremental_before_begin_is_recoverable() {
        let mut plane = plane(16, 16);
        let mut nl = Netlist::new();
        let id = nl.add_two_pin("a", p0(2, 2), p0(10, 2));
        let mut router = Router::new(RouterConfig::paper_defaults());
        // No begin(): a recoverable error, not a panic.
        assert_eq!(
            router.route_incremental(&mut plane, nl.net(id)),
            Err(RouterError::NotBegun)
        );
        assert!(RouterError::NotBegun.to_string().contains("begin"));
        // The same router recovers after begin().
        router.begin(&plane);
        assert_eq!(router.route_incremental(&mut plane, nl.net(id)), Ok(true));
    }

    #[test]
    fn finalize_before_begin_is_a_noop() {
        let mut plane = plane(16, 16);
        let nl = Netlist::new();
        let mut router = Router::new(RouterConfig::paper_defaults());
        router.finalize(&mut plane, &nl);
        assert!(router.routed().is_empty());
    }

    #[test]
    fn commit_journal_covers_routed_nets() {
        let mut plane = plane(32, 32);
        let mut nl = Netlist::new();
        nl.add_two_pin("a", p0(2, 2), p0(14, 9));
        nl.add_two_pin("b", p0(2, 12), p0(18, 12));
        let mut router = Router::new(RouterConfig::paper_defaults());
        let report = router.route_all(&mut plane, &nl);
        assert_eq!(report.routed_nets, 2);
        let journal = router.ledger().records();
        assert_eq!(journal.len(), 2);
        for rec in journal {
            assert!(router.routed().contains_key(&rec.net));
        }
    }
}
