//! The overall routing flow (Fig. 18 / Fig. 19).

use crate::astar::{astar_search_in, AstarRequest, SearchScratch};
use crate::config::RouterConfig;
use crate::grids::{DirGrid, GuardGrid, PenaltyGrid, NO_GUARD};
use crate::report::RoutingReport;
use crate::scan::{pack_frag_id, scan_fragments, FoundScenario};
use sadp_geom::{GridPoint, Layer, Orientation, SpatialHash, TrackRect};
use sadp_graph::{flip, OverlayGraph};
use sadp_grid::{Net, NetId, Netlist, RoutePath, RoutingPlane};
use sadp_scenario::{Color, ScenarioKind};
use std::cell::Cell;
use std::collections::HashMap;
use std::time::Instant;

/// Member cap for the per-net trial flips and the cleanup flips. On dense
/// circuits the soft scenarios fuse nearly every net into one connected
/// component, so an uncapped `flip_component` per routed net costs
/// `O(n)` each — the dominant quadratic term of the old Fig. 20 series.
/// The final [`Router::finalize`] pass still flips whole components once.
const FLIP_NEIGHBORHOOD: usize = 256;

/// A successfully routed net: its path(s) and per-layer wire fragments.
#[derive(Debug, Clone)]
pub struct RoutedNet {
    /// The net.
    pub id: NetId,
    /// The trunk path (source pin to target pin).
    pub path: RoutePath,
    /// Branch paths connecting the extra terminals of a multi-pin net to
    /// the trunk (empty for two-pin nets).
    pub branches: Vec<RoutePath>,
    /// Maximal wire-fragment rectangles per layer, over all paths.
    pub fragments: Vec<(Layer, TrackRect)>,
    /// Spatial-index ids of the fragments (parallel to `fragments`).
    frag_ids: Vec<u64>,
}

impl RoutedNet {
    /// Total planar wirelength over trunk and branches.
    #[must_use]
    pub fn wirelength(&self) -> u64 {
        self.path.wirelength() + self.branches.iter().map(RoutePath::wirelength).sum::<u64>()
    }

    /// Total via count over trunk and branches.
    #[must_use]
    pub fn via_count(&self) -> u64 {
        self.path.via_count() + self.branches.iter().map(RoutePath::via_count).sum::<u64>()
    }

    /// Iterates over every grid point of the net (trunk then branches;
    /// branch tap points repeat their trunk cell).
    pub fn all_points(&self) -> impl Iterator<Item = GridPoint> + '_ {
        self.path.points().iter().copied().chain(
            self.branches
                .iter()
                .flat_map(|b| b.points().iter().copied()),
        )
    }
}

/// Plane-sized dense working state, allocated once per [`Router::begin`]
/// and reused for every net (clearing is `O(1)` via generation stamps).
#[derive(Debug)]
struct Workspace {
    /// Per-cell wire direction of committed nets (the `T2b` hint map).
    dir_map: DirGrid,
    /// Soft pin keep-out halos: `(owner, penalty)` per cell.
    guards: GuardGrid,
    /// Rip-up penalties for the net currently being routed.
    penalties: PenaltyGrid,
    /// A\*-search state (g-costs, came-from, open list).
    scratch: SearchScratch,
}

impl Workspace {
    fn new(plane: &RoutingPlane) -> Workspace {
        Workspace {
            dir_map: DirGrid::new(plane, None),
            guards: GuardGrid::new(plane, NO_GUARD),
            penalties: PenaltyGrid::new(plane, 0),
            scratch: SearchScratch::new(plane),
        }
    }

    fn fits(&self, plane: &RoutingPlane) -> bool {
        self.scratch.fits(plane)
    }

    fn clear(&mut self) {
        self.dir_map.clear();
        self.guards.clear();
        self.penalties.clear();
    }
}

/// The overlay-aware detailed router.
///
/// One instance routes one netlist; per-layer overlay constraint graphs,
/// the fragment spatial index and the routed-net store live here and can
/// be inspected after routing (e.g. to feed the decomposition simulator).
#[derive(Debug)]
pub struct Router {
    config: RouterConfig,
    graphs: Vec<OverlayGraph>,
    index: Vec<SpatialHash>,
    workspace: Option<Workspace>,
    routed: HashMap<NetId, RoutedNet>,
    failed: Vec<NetId>,
    frag_seq: u32,
    ripups: u64,
    ripups_type_b: u64,
    ripups_graph: u64,
    ripups_risk: u64,
    failed_no_path: u64,
    failed_exhausted: u64,
    failed_cleanup: u64,
    flips: u64,
    nodes_expanded: u64,
    color_fallbacks: Cell<u64>,
}

impl Router {
    /// Creates a router with the given configuration.
    #[must_use]
    pub fn new(config: RouterConfig) -> Router {
        Router {
            config,
            graphs: Vec::new(),
            index: Vec::new(),
            workspace: None,
            routed: HashMap::new(),
            failed: Vec::new(),
            frag_seq: 0,
            ripups: 0,
            ripups_type_b: 0,
            ripups_graph: 0,
            ripups_risk: 0,
            failed_no_path: 0,
            failed_exhausted: 0,
            failed_cleanup: 0,
            flips: 0,
            nodes_expanded: 0,
            color_fallbacks: Cell::new(0),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// The per-layer overlay constraint graphs (valid after
    /// [`Router::route_all`]).
    #[must_use]
    pub fn graphs(&self) -> &[OverlayGraph] {
        &self.graphs
    }

    /// The routed nets.
    #[must_use]
    pub fn routed(&self) -> &HashMap<NetId, RoutedNet> {
        &self.routed
    }

    /// Nets that could not be routed without violations.
    #[must_use]
    pub fn failed(&self) -> &[NetId] {
        &self.failed
    }

    /// The mask color assigned to `net` on `layer`, if it is routed there.
    #[must_use]
    pub fn color_of(&self, net: NetId, layer: Layer) -> Option<Color> {
        let g = self.graphs.get(layer.index())?;
        g.contains(net.0).then(|| g.color(net.0))
    }

    /// The colored patterns of one layer, as
    /// `(net, color, fragment rects)` triples — the input format of the
    /// decomposition simulator.
    ///
    /// A routed net missing from the layer's constraint graph is reported
    /// with [`Color::Core`]; that should never happen for a consistent
    /// router state, so the fallback is counted
    /// ([`RoutingReport::color_fallbacks`]) and asserts in dev builds.
    #[must_use]
    pub fn patterns_on_layer(&self, layer: Layer) -> Vec<(u32, Color, Vec<TrackRect>)> {
        let mut out = Vec::new();
        let mut ids: Vec<&RoutedNet> = self.routed.values().collect();
        ids.sort_by_key(|r| r.id);
        for r in ids {
            let rects: Vec<TrackRect> = r
                .fragments
                .iter()
                .filter(|(l, _)| *l == layer)
                .map(|(_, rect)| *rect)
                .collect();
            if !rects.is_empty() {
                let color = match self.color_of(r.id, layer) {
                    Some(c) => c,
                    None => {
                        self.color_fallbacks.set(self.color_fallbacks.get() + 1);
                        debug_assert!(
                            false,
                            "{} has fragments on {layer} but no color there; defaulting to Core",
                            r.id
                        );
                        Color::Core
                    }
                };
                out.push((r.id.0, color, rects));
            }
        }
        out
    }

    /// Routes every net of the netlist (shortest first) on the plane,
    /// running the full flow of Fig. 19, and returns the aggregate report.
    pub fn route_all(&mut self, plane: &mut RoutingPlane, netlist: &Netlist) -> RoutingReport {
        let start = Instant::now();
        self.begin_sized(plane, netlist.len());

        // Reserve every pin candidate cell up front so earlier nets cannot
        // route over the pins of later ones (the owner may still enter its
        // own reserved cells).
        for net in netlist {
            self.reserve_pins(plane, net);
        }

        for id in self.net_order(netlist) {
            let net = netlist.net(id);
            if !self.route_net(plane, net, &[]) {
                self.failed.push(id);
            }
        }
        self.finalize(plane, netlist);
        self.build_report(netlist, start)
    }

    /// Resets the router state for the plane. Called automatically by
    /// [`Router::route_all`]; use directly for the incremental API
    /// ([`Router::route_incremental`]).
    pub fn begin(&mut self, plane: &RoutingPlane) {
        self.begin_sized(plane, 0);
    }

    /// Like [`Router::begin`], with a hint of how many nets will be routed
    /// so the fragment spatial index can pick a density-matched tile size
    /// (`0` = unknown, uses the coarsest tile).
    pub fn begin_sized(&mut self, plane: &RoutingPlane, expected_nets: usize) {
        self.graphs = (0..plane.layers()).map(|_| OverlayGraph::new()).collect();
        self.index = (0..plane.layers())
            .map(|_| SpatialHash::with_density(plane.width(), plane.height(), expected_nets))
            .collect();
        match self.workspace.as_mut() {
            Some(ws) if ws.fits(plane) => ws.clear(),
            _ => self.workspace = Some(Workspace::new(plane)),
        }
        self.routed.clear();
        self.failed.clear();
        self.frag_seq = 0;
        self.ripups = 0;
        self.ripups_type_b = 0;
        self.ripups_graph = 0;
        self.ripups_risk = 0;
        self.failed_no_path = 0;
        self.failed_exhausted = 0;
        self.failed_cleanup = 0;
        self.flips = 0;
        self.nodes_expanded = 0;
        self.color_fallbacks.set(0);
    }

    /// Routes one net incrementally against the already-routed layout,
    /// reserving its pins first. Returns whether the net was committed
    /// (failed nets are recorded in [`Router::failed`]).
    ///
    /// Unlike [`Router::route_all`] the caller controls the net order and
    /// no final flipping/cleanup runs — call [`Router::finalize`] when the
    /// batch is complete.
    ///
    /// # Panics
    ///
    /// Panics if [`Router::begin`] (or a prior `route_all`) has not sized
    /// the router for the plane.
    pub fn route_incremental(&mut self, plane: &mut RoutingPlane, net: &Net) -> bool {
        assert!(
            !self.graphs.is_empty(),
            "call Router::begin before route_incremental"
        );
        self.reserve_pins(plane, net);
        let ok = self.route_net(plane, net, &[]);
        if !ok {
            self.failed.push(net.id);
        }
        ok
    }

    /// Runs the final color flipping (Fig. 19 line 16) on every component
    /// touched since the last finalize, the hill-climbing refinement, and
    /// the conflict cleanup that guarantees a conflict-free result.
    /// `netlist` is used to re-route nets the cleanup has to move.
    ///
    /// The flipping is scoped to *dirty* components — those containing a
    /// vertex whose edges changed since the previous finalize — so
    /// repeated incremental batches only re-color what moved instead of
    /// re-walking the whole layout each time.
    pub fn finalize(&mut self, plane: &mut RoutingPlane, netlist: &Netlist) {
        if self.config.final_flip {
            for g in &mut self.graphs {
                let mut dirty = g.take_dirty();
                dirty.sort_unstable();
                let mut visited: std::collections::HashSet<u32> = std::collections::HashSet::new();
                for v in dirty {
                    if !g.contains(v) || visited.contains(&v) {
                        continue;
                    }
                    visited.extend(g.component_of(v));
                    flip::flip_component(g, v);
                    flip::greedy_refine_component(g, v, 4);
                }
            }
        }
        // Guarantee the conflict-free claim: any net whose coloring still
        // realizes a hard overlay or a type-A cut risk is re-flipped,
        // re-routed away from the offending region, or — failing both —
        // unrouted.
        self.cleanup_risks(plane, netlist);
    }

    /// Builds the aggregate report for the current state (used by the
    /// incremental API after [`Router::finalize`]).
    #[must_use]
    pub fn report(&self, netlist: &Netlist, since: Instant) -> RoutingReport {
        self.build_report(netlist, since)
    }

    fn net_order(&self, netlist: &Netlist) -> Vec<NetId> {
        use crate::config::NetOrder;
        match self.config.net_order {
            NetOrder::HpwlAscending => netlist.ids_by_hpwl(),
            NetOrder::HpwlDescending => {
                let mut ids = netlist.ids_by_hpwl();
                ids.reverse();
                ids
            }
            NetOrder::Given => netlist.iter().map(|n| n.id).collect(),
        }
    }

    fn reserve_pins(&mut self, plane: &mut RoutingPlane, net: &Net) {
        let guard = self.config.pin_guard_cost();
        let ws = self.workspace.as_mut().expect("begin() sizes the router");
        for pin in net.pins() {
            for &c in pin.candidates() {
                let _ = plane.occupy(c, net.id);
                if guard > 0 {
                    for dx in -1..=1 {
                        for dy in -1..=1 {
                            let g = GridPoint::new(c.layer, c.x + dx, c.y + dy);
                            // First reserver wins, as with the map's
                            // entry().or_insert this replaced.
                            if ws.guards.contains(g) && ws.guards.get(g) == NO_GUARD {
                                ws.guards.set(g, (net.id, guard));
                            }
                        }
                    }
                }
            }
        }
    }

    fn build_report(&self, netlist: &Netlist, start: Instant) -> RoutingReport {
        let mut report = RoutingReport {
            total_nets: netlist.len(),
            routed_nets: self.routed.len(),
            ripups: self.ripups,
            ripups_type_b: self.ripups_type_b,
            ripups_graph: self.ripups_graph,
            ripups_risk: self.ripups_risk,
            failed_no_path: self.failed_no_path,
            failed_exhausted: self.failed_exhausted,
            failed_cleanup: self.failed_cleanup,
            flips: self.flips,
            nodes_expanded: self.nodes_expanded,
            cpu: start.elapsed(),
            ..RoutingReport::default()
        };
        for r in self.routed.values() {
            report.wirelength += r.wirelength();
            report.vias += r.via_count();
        }
        for g in &self.graphs {
            let e = g.evaluate();
            report.overlay_units += e.overlay_units;
            report.hard_overlay_violations += e.hard_violations;
            report.cut_conflicts += e.cut_risks;
        }
        // Consistency sweep: every routed net must have a color on every
        // layer it occupies (see `patterns_on_layer`).
        let mut fallbacks = self.color_fallbacks.get();
        for r in self.routed.values() {
            let mut layers: Vec<Layer> = r.fragments.iter().map(|&(l, _)| l).collect();
            layers.sort_unstable();
            layers.dedup();
            for l in layers {
                if self.color_of(r.id, l).is_none() {
                    fallbacks += 1;
                    debug_assert!(false, "{} routed on {l} without a color", r.id);
                }
            }
        }
        report.color_fallbacks = fallbacks;
        report
    }

    /// Routes one net with up to `max_ripup` rip-up-and-re-route
    /// iterations; returns whether the net was committed. `seed_penalties`
    /// pre-loads the penalty grid (used by the cleanup re-route to steer
    /// the net away from its old corridor).
    fn route_net(
        &mut self,
        plane: &mut RoutingPlane,
        net: &Net,
        seed_penalties: &[(GridPoint, u64)],
    ) -> bool {
        let mut ws = self.workspace.take().expect("begin() sizes the router");
        let ok = self.route_net_with(plane, net, seed_penalties, &mut ws);
        self.workspace = Some(ws);
        ok
    }

    fn route_net_with(
        &mut self,
        plane: &mut RoutingPlane,
        net: &Net,
        seed_penalties: &[(GridPoint, u64)],
        ws: &mut Workspace,
    ) -> bool {
        let key = net.id.0;
        ws.penalties.clear();
        for &(p, v) in seed_penalties {
            if ws.penalties.contains(p) {
                ws.penalties.update(p, |old| old + v);
            }
        }

        for _attempt in 0..=self.config.max_ripup {
            let req = AstarRequest {
                net: net.id,
                sources: net.source.candidates(),
                targets: net.target.candidates(),
                penalties: &ws.penalties,
                guards: &ws.guards,
            };
            let (path, stats) =
                astar_search_in(plane, &req, &ws.dir_map, &self.config, &mut ws.scratch);
            self.nodes_expanded += stats.expanded;
            let Some(path) = path else {
                self.failed_no_path += 1;
                return false;
            };

            // Branch routing for multi-terminal nets: each extra pin
            // connects to any already-routed point of the net.
            let mut branches: Vec<RoutePath> = Vec::new();
            let mut branch_fail = false;
            for pin in &net.extra {
                let mut targets: Vec<GridPoint> = path.points().to_vec();
                for b in &branches {
                    targets.extend_from_slice(b.points());
                }
                let breq = AstarRequest {
                    net: net.id,
                    sources: pin.candidates(),
                    targets: &targets,
                    penalties: &ws.penalties,
                    guards: &ws.guards,
                };
                let (bpath, bstats) =
                    astar_search_in(plane, &breq, &ws.dir_map, &self.config, &mut ws.scratch);
                self.nodes_expanded += bstats.expanded;
                match bpath {
                    Some(bp) => branches.push(bp),
                    None => {
                        branch_fail = true;
                        break;
                    }
                }
            }
            if branch_fail {
                self.failed_no_path += 1;
                return false;
            }

            let mut fragments = path.fragments();
            for b in &branches {
                fragments.extend(b.fragments());
            }

            // Classify the tentative route against the routed layout
            // (BTreeMap: layer order must be deterministic).
            let mut found = Vec::new();
            let mut per_layer: std::collections::BTreeMap<Layer, Vec<TrackRect>> =
                std::collections::BTreeMap::new();
            for &(layer, rect) in &fragments {
                per_layer.entry(layer).or_default().push(rect);
            }
            for (layer, frags) in &per_layer {
                found.extend(scan_fragments(
                    *layer,
                    key,
                    frags,
                    &self.index[layer.index()],
                    plane.rules(),
                ));
            }

            // Ablation: without the merge technique every tip-to-tip pair
            // is undecomposable (the \[16\] behaviour) and must be routed
            // away from.
            if !self.config.allow_merge {
                let merges: Vec<(Layer, TrackRect)> = found
                    .iter()
                    .filter(|f| f.scenario.kind == ScenarioKind::OneB)
                    .map(|f| (f.layer, f.our_rect))
                    .collect();
                if !merges.is_empty() {
                    self.penalize(&mut ws.penalties, &merges);
                    self.ripups += 1;
                    self.ripups_graph += 1;
                    continue;
                }
            }

            // Cut conflict check (type B, Fig. 16).
            if std::env::var_os("SADP_DEBUG_FAIL").is_some() && _attempt > 0 {
                let kinds: Vec<String> = found
                    .iter()
                    .filter(|f| f.scenario.kind.is_constraining())
                    .map(|f| format!("{}:{}", f.scenario.kind.name(), f.other_net))
                    .collect();
                let on_path: u64 = path.points().iter().map(|&pt| ws.penalties.get(pt)).sum();
                eprintln!(
                    "net {} attempt {}: {} penalty units on path; {:?}",
                    net.id, _attempt, on_path, kinds
                );
            }
            if let Some(bad) = type_b_conflict(&found, plane.rules()) {
                self.penalize(&mut ws.penalties, &bad);
                self.ripups += 1;
                self.ripups_type_b += 1;
                continue;
            }

            // Update the overlay constraint graphs; odd cycles or
            // infeasible pairs trigger rip-up (Fig. 19 lines 6-9). The
            // union-find checkpoints make rip-up O(net) instead of O(E).
            let marks: Vec<usize> = self.graphs.iter_mut().map(|g| g.mark()).collect();
            let mut offender: Option<(Layer, u32)> = None;
            for f in &found {
                if !f.scenario.kind.is_constraining() {
                    continue;
                }
                let g = &mut self.graphs[f.layer.index()];
                if g.add_scenario_with_kind(
                    key,
                    f.other_net,
                    Some(f.scenario.kind),
                    f.scenario.table,
                )
                .is_err()
                {
                    offender = Some((f.layer, f.other_net));
                    break;
                }
            }
            if let Some((layer, bad_net)) = offender {
                for (g, &mark) in self.graphs.iter_mut().zip(&marks) {
                    g.rollback_net(key, mark);
                }
                let bad: Vec<TrackRect> = found
                    .iter()
                    .filter(|f| f.layer == layer && f.other_net == bad_net)
                    .map(|f| f.our_rect)
                    .collect();
                let cells: Vec<(Layer, TrackRect)> = bad.into_iter().map(|r| (layer, r)).collect();
                self.penalize(&mut ws.penalties, &cells);
                self.ripups += 1;
                self.ripups_graph += 1;
                continue;
            }

            // Trial coloring: pseudo-color, flip on demand, and verify no
            // hard overlay or type-A cut risk remains realized. A risk the
            // coloring cannot avoid is a cut conflict in the making —
            // rip up and steer away (Fig. 19 lines 6-9).
            let mut overlay = 0u64;
            let mut needs_flip = false;
            for layer in per_layer.keys() {
                let g = &mut self.graphs[layer.index()];
                g.ensure_vertex(key);
                g.pseudo_color(key);
                overlay += g.net_overlay_units(key);
                needs_flip |= g.net_has_risk(key);
            }
            let mut flipped = false;
            if needs_flip || overlay > self.config.flip_threshold {
                for layer in per_layer.keys() {
                    flip::flip_neighborhood(
                        &mut self.graphs[layer.index()],
                        key,
                        FLIP_NEIGHBORHOOD,
                    );
                }
                flipped = true;
            }
            let risky_layers: Vec<Layer> = per_layer
                .keys()
                .copied()
                .filter(|l| self.graphs[l.index()].net_has_risk(key))
                .collect();
            if !risky_layers.is_empty() {
                let cells: Vec<(Layer, TrackRect)> = found
                    .iter()
                    .filter(|f| risky_layers.contains(&f.layer))
                    .map(|f| (f.layer, f.our_rect))
                    .collect();
                for (g, &mark) in self.graphs.iter_mut().zip(&marks) {
                    g.rollback_net(key, mark);
                }
                self.penalize(&mut ws.penalties, &cells);
                self.ripups += 1;
                self.ripups_risk += 1;
                continue;
            }
            if flipped {
                self.flips += 1;
            }

            self.commit(plane, net, path, branches, fragments, ws);
            return true;
        }
        // Attempts exhausted; leave the graphs clean.
        if std::env::var_os("SADP_DEBUG_FAIL").is_some() {
            eprintln!(
                "net {} exhausted: src={:?} dst={:?}",
                net.id,
                net.source.primary(),
                net.target.primary()
            );
        }
        self.failed_exhausted += 1;
        for g in &mut self.graphs {
            g.remove_net(key);
        }
        false
    }

    fn penalize(&self, penalties: &mut PenaltyGrid, cells: &[(Layer, TrackRect)]) {
        let p = self.config.ripup_penalty_cost();
        for (layer, rect) in cells {
            // Penalise the whole neighbourhood (dependence radius) so the
            // re-route leaves the conflicting corridor instead of shifting
            // by a single track into the same scenario.
            for (x, y) in rect.expanded(2).cells() {
                let cell = GridPoint::new(*layer, x, y);
                if !penalties.contains(cell) {
                    continue;
                }
                let d = rect.track_gap(&TrackRect::cell(x, y));
                let scale = 2 - (d.0.max(d.1)).min(2) as u64 + 1;
                penalties.update(cell, |v| v + p * scale / 2);
            }
        }
    }

    fn commit(
        &mut self,
        plane: &mut RoutingPlane,
        net: &Net,
        path: RoutePath,
        branches: Vec<RoutePath>,
        fragments: Vec<(Layer, TrackRect)>,
        ws: &mut Workspace,
    ) {
        let id = net.id;
        let on_path = |c: &GridPoint| {
            path.points().contains(c) || branches.iter().any(|b| b.points().contains(c))
        };
        for &p in path.points() {
            plane
                .occupy(p, id)
                .expect("A* only walks free or own cells");
        }
        for b in &branches {
            for &p in b.points() {
                plane
                    .occupy(p, id)
                    .expect("branch A* only walks free or own cells");
            }
        }
        // Release the unused pin candidate reservations.
        for pin in net.pins() {
            for &c in pin.candidates() {
                if !on_path(&c) {
                    plane.clear_path(&[c], id);
                }
            }
        }
        let mut frag_ids = Vec::with_capacity(fragments.len());
        for &(layer, rect) in &fragments {
            if let Some(axis) = rect.orientation().axis() {
                for (x, y) in rect.cells() {
                    ws.dir_map.set(GridPoint::new(layer, x, y), Some(axis));
                }
            }
            let fid = pack_frag_id(id.0, self.frag_seq);
            self.index[layer.index()].insert(fid, rect);
            frag_ids.push(fid);
            self.frag_seq += 1;
        }

        // Coloring already happened in the trial phase of route_net; the
        // graphs are left exactly as validated there.
        self.routed.insert(
            id,
            RoutedNet {
                id,
                path,
                branches,
                fragments,
                frag_ids,
            },
        );
    }

    /// Post-routing cleanup: re-flip components of nets whose coloring
    /// still realizes a forbidden assignment or a type-A cut risk, and
    /// unroute the incorrigible ones so the final result is conflict-free.
    fn cleanup_risks(&mut self, plane: &mut RoutingPlane, netlist: &Netlist) {
        let mut ws = self.workspace.take().expect("begin() sizes the router");
        for _ in 0..8 {
            let mut risky: Vec<u32> = Vec::new();
            for g in &self.graphs {
                risky.extend(g.nets_with_realized_risk());
            }
            risky.sort_unstable();
            risky.dedup();
            if risky.is_empty() {
                break;
            }
            // One flip+refine per neighbourhood per pass: several risky
            // nets usually share a region, and re-flipping it for each of
            // them repeated `O(component)` work per net.
            let mut flipped: Vec<std::collections::HashSet<u32>> =
                vec![std::collections::HashSet::new(); self.graphs.len()];
            for net in risky {
                let id = NetId(net);
                let Some(routed) = self.routed.get(&id) else {
                    continue;
                };
                let old_cells: Vec<(Layer, TrackRect)> = routed.fragments.clone();
                let layers: Vec<usize> = (0..self.graphs.len())
                    .filter(|&l| self.graphs[l].contains(net))
                    .collect();
                for &l in &layers {
                    if flipped[l].contains(&net) {
                        continue;
                    }
                    let members =
                        flip::flip_neighborhood(&mut self.graphs[l], net, FLIP_NEIGHBORHOOD);
                    flip::refine_members(&mut self.graphs[l], &members, 2);
                    flipped[l].extend(members);
                }
                let still = layers.iter().any(|&l| self.graphs[l].net_has_risk(net));
                if still {
                    // Re-route away from the old corridor; give the net up
                    // only if that fails too.
                    self.unroute(plane, id, &mut ws);
                    let p = self.config.ripup_penalty_cost() * 2;
                    let mut seeds: Vec<(GridPoint, u64)> = Vec::new();
                    for (layer, rect) in &old_cells {
                        for (x, y) in rect.cells() {
                            seeds.push((GridPoint::new(*layer, x, y), p));
                        }
                    }
                    // The pins were freed by the unroute; re-reserve them
                    // for the re-route attempt.
                    let net_ref = netlist.net(id);
                    for pin in [&net_ref.source, &net_ref.target] {
                        for &c in pin.candidates() {
                            let _ = plane.occupy(c, id);
                        }
                    }
                    let ok = self.route_net_with(plane, net_ref, &seeds, &mut ws);
                    let risk_again =
                        ok && (0..self.graphs.len()).any(|l| self.graphs[l].net_has_risk(net));
                    if risk_again {
                        self.unroute(plane, id, &mut ws);
                        self.failed.push(id);
                        self.failed_cleanup += 1;
                    } else if !ok {
                        self.failed.push(id);
                        self.failed_cleanup += 1;
                    }
                }
            }
        }
        // Anything still risky after the passes is unrouted outright.
        loop {
            let mut risky: Vec<u32> = Vec::new();
            for g in &self.graphs {
                risky.extend(g.nets_with_realized_risk());
            }
            risky.sort_unstable();
            risky.dedup();
            if risky.is_empty() {
                break;
            }
            for net in risky {
                let id = NetId(net);
                if self.routed.contains_key(&id) {
                    self.unroute(plane, id, &mut ws);
                    self.failed.push(id);
                    self.failed_cleanup += 1;
                }
            }
        }
        self.workspace = Some(ws);
    }

    fn unroute(&mut self, plane: &mut RoutingPlane, id: NetId, ws: &mut Workspace) {
        let Some(r) = self.routed.remove(&id) else {
            return;
        };
        plane.clear_path(r.path.points(), id);
        for b in &r.branches {
            plane.clear_path(b.points(), id);
        }
        for ((layer, rect), fid) in r.fragments.iter().zip(&r.frag_ids) {
            self.index[layer.index()].remove(*fid, rect);
            for (x, y) in rect.cells() {
                ws.dir_map.remove(GridPoint::new(*layer, x, y));
            }
        }
        for g in &mut self.graphs {
            g.remove_net(id.0);
        }
    }
}

/// Detects unavoidable type-B cut conflicts in the tentative route's
/// scenarios: two cut-defined boundary sections of the same fragment
/// within `d_cut` of each other. Returns the offending fragments.
fn type_b_conflict(
    found: &[FoundScenario],
    rules: &sadp_geom::DesignRules,
) -> Option<Vec<(Layer, TrackRect)>> {
    // Tips of routed nets pointing at a side of one of our fragments, from
    // which direction, and at which axial position.
    struct TipHit {
        layer: Layer,
        our: TrackRect,
        pos: i32,
        positive_side: bool,
    }
    let mut hits: Vec<TipHit> = Vec::new();
    for f in found {
        match f.scenario.kind {
            ScenarioKind::TwoB if f.scenario.swapped => {
                // Canonical A (the tip) is the other net; we are the side.
                let (pos, positive_side) = match f.our_rect.orientation() {
                    Orientation::Horizontal | Orientation::Point => {
                        (f.other_rect.x0, f.other_rect.y0 > f.our_rect.y1)
                    }
                    Orientation::Vertical => (f.other_rect.y0, f.other_rect.x0 > f.our_rect.x1),
                };
                hits.push(TipHit {
                    layer: f.layer,
                    our: f.our_rect,
                    pos,
                    positive_side,
                });
            }
            // A one-cell fragment tip-to-tip with routed nets on both ends:
            // the two separating cuts are only w_line apart (< d_cut).
            ScenarioKind::OneB if f.our_rect.len_cells() == 1 => {
                let twin = found.iter().any(|g| {
                    g.scenario.kind == ScenarioKind::OneB
                        && g.layer == f.layer
                        && g.our_rect == f.our_rect
                        && g.other_rect != f.other_rect
                        && opposite_ends(&f.our_rect, &f.other_rect, &g.other_rect)
                });
                if twin {
                    return Some(vec![(f.layer, f.our_rect)]);
                }
            }
            _ => {}
        }
    }
    // Two tips on opposite sides of the same fragment within d_cut.
    let d_tracks = (rules.d_cut().0 / rules.pitch().0 + 1) as i32;
    for (i, a) in hits.iter().enumerate() {
        for b in hits.iter().skip(i + 1) {
            if a.layer == b.layer
                && a.our == b.our
                && a.positive_side != b.positive_side
                && (a.pos - b.pos).abs() < d_tracks
            {
                return Some(vec![(a.layer, a.our)]);
            }
        }
    }
    None
}

fn opposite_ends(ours: &TrackRect, a: &TrackRect, b: &TrackRect) -> bool {
    // For a single-cell fragment, tips approach along one axis from both
    // directions.
    let (ax, ay) = (a.x0.max(a.x1.min(ours.x0)), a.y0.max(a.y1.min(ours.y0)));
    let (bx, by) = (b.x0.max(b.x1.min(ours.x0)), b.y0.max(b.y1.min(ours.y0)));
    let da = ((ax - ours.x0).signum(), (ay - ours.y0).signum());
    let db = ((bx - ours.x0).signum(), (by - ours.y0).signum());
    da.0 == -db.0 && da.1 == -db.1 && (da != (0, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_geom::DesignRules;

    fn plane(w: i32, h: i32) -> RoutingPlane {
        RoutingPlane::new(3, w, h, DesignRules::node_10nm()).expect("valid")
    }

    fn p0(x: i32, y: i32) -> GridPoint {
        GridPoint::new(Layer(0), x, y)
    }

    #[test]
    fn routes_single_net() {
        let mut plane = plane(32, 32);
        let mut nl = Netlist::new();
        nl.add_two_pin("a", p0(2, 2), p0(14, 9));
        let mut router = Router::new(RouterConfig::paper_defaults());
        let report = router.route_all(&mut plane, &nl);
        assert_eq!(report.routed_nets, 1);
        assert_eq!(report.wirelength, 19);
        assert_eq!(report.overlay_units, 0);
        assert_eq!(report.color_fallbacks, 0);
        assert!(router.failed().is_empty());
    }

    #[test]
    fn adjacent_nets_get_different_colors() {
        let mut plane = plane(32, 32);
        let mut nl = Netlist::new();
        let a = nl.add_two_pin("a", p0(2, 5), p0(20, 5));
        let b = nl.add_two_pin("b", p0(2, 6), p0(20, 6));
        let mut router = Router::new(RouterConfig::paper_defaults());
        let report = router.route_all(&mut plane, &nl);
        assert_eq!(report.routed_nets, 2);
        assert_eq!(report.hard_overlay_violations, 0);
        // Straight rails side by side: a hard 1-a constraint.
        let ca = router.color_of(a, Layer(0)).unwrap();
        let cb = router.color_of(b, Layer(0)).unwrap();
        assert_ne!(ca, cb);
    }

    #[test]
    fn odd_cycle_resolved_by_merge_or_detour() {
        // Three parallel rails pairwise adjacent would be an odd cycle in a
        // trim process; the middle spacing here forms 1-a chains (even), so
        // add a third rail adjacent to both others via wrap-around is not
        // possible on a grid — instead verify a 3-rail bus routes clean.
        let mut plane = plane(32, 32);
        let mut nl = Netlist::new();
        for i in 0..3 {
            nl.add_two_pin(format!("r{i}"), p0(2, 5 + i), p0(20, 5 + i));
        }
        let mut router = Router::new(RouterConfig::paper_defaults());
        let report = router.route_all(&mut plane, &nl);
        assert_eq!(report.routed_nets, 3);
        assert_eq!(report.hard_overlay_violations, 0);
        assert_eq!(report.cut_conflicts, 0);
    }

    #[test]
    fn patterns_on_layer_reflect_routes() {
        let mut plane = plane(32, 32);
        let mut nl = Netlist::new();
        nl.add_two_pin("a", p0(2, 2), p0(10, 2));
        let mut router = Router::new(RouterConfig::paper_defaults());
        router.route_all(&mut plane, &nl);
        let pats = router.patterns_on_layer(Layer(0));
        assert_eq!(pats.len(), 1);
        assert_eq!(pats[0].2, vec![TrackRect::new(2, 2, 10, 2)]);
        assert!(router.patterns_on_layer(Layer(2)).is_empty());
    }

    #[test]
    fn dense_block_routes_conflict_free() {
        let mut plane = plane(48, 48);
        let mut nl = Netlist::new();
        for i in 0..12 {
            nl.add_two_pin(format!("n{i}"), p0(2 + i, 2 + i), p0(30 + (i % 5), 20 + i));
        }
        let mut router = Router::new(RouterConfig::paper_defaults());
        let report = router.route_all(&mut plane, &nl);
        assert!(report.routed_nets >= 9, "report: {report}");
        assert_eq!(report.hard_overlay_violations, 0);
        assert_eq!(report.cut_conflicts, 0);
    }

    #[test]
    fn multi_candidate_pins_route() {
        use sadp_grid::Pin;
        let mut plane = plane(32, 32);
        let mut nl = Netlist::new();
        nl.add_net(
            "m",
            Pin::with_candidates(vec![p0(2, 2), p0(2, 8)]),
            Pin::with_candidates(vec![p0(20, 8), p0(20, 2)]),
        );
        let mut router = Router::new(RouterConfig::paper_defaults());
        let report = router.route_all(&mut plane, &nl);
        assert_eq!(report.routed_nets, 1);
        // The straight pairing wins.
        let routed = router.routed().values().next().unwrap();
        assert_eq!(routed.path.wirelength(), 18);
    }

    #[test]
    fn unroutable_net_reported_failed() {
        let mut plane = plane(16, 16);
        for l in 0..3 {
            plane.add_blockage(Layer(l), TrackRect::new(8, 0, 8, 15));
        }
        let mut nl = Netlist::new();
        let id = nl.add_two_pin("x", p0(2, 2), p0(14, 2));
        let mut router = Router::new(RouterConfig::paper_defaults());
        let report = router.route_all(&mut plane, &nl);
        assert_eq!(report.routed_nets, 0);
        assert_eq!(router.failed(), &[id]);
        assert!(report.routability() < 1.0);
    }

    #[test]
    fn route_all_twice_reuses_workspace() {
        // A second route_all on the same-shaped plane must behave exactly
        // like a fresh router (workspace reuse + epoch clears).
        let mut nl = Netlist::new();
        nl.add_two_pin("a", p0(2, 2), p0(14, 9));
        nl.add_two_pin("b", p0(2, 12), p0(18, 12));
        let mut router = Router::new(RouterConfig::paper_defaults());
        let mut plane_a = plane(32, 32);
        let first = router.route_all(&mut plane_a, &nl);
        let mut plane_b = plane(32, 32);
        let second = router.route_all(&mut plane_b, &nl);
        assert_eq!(first.routed_nets, second.routed_nets);
        assert_eq!(first.wirelength, second.wirelength);
        assert_eq!(first.overlay_units, second.overlay_units);
        assert_eq!(first.nodes_expanded, second.nodes_expanded);
    }
}
