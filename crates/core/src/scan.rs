//! Scenario scanning: classifying a freshly routed net's wire fragments
//! against every dependent routed neighbour.

use sadp_geom::{DesignRules, Layer, SpatialHash, TrackRect};
use sadp_scenario::{classify, Scenario};

/// A potential overlay scenario discovered between a fragment of the net
/// being routed and a fragment of an already-routed net.
#[derive(Debug, Clone, Copy)]
pub struct FoundScenario {
    /// The layer both fragments lie on.
    pub layer: Layer,
    /// The other (routed) net.
    pub other_net: u32,
    /// The classification, oriented as `(our net, other net)`.
    pub scenario: Scenario,
    /// Our fragment.
    pub our_rect: TrackRect,
    /// The other net's fragment.
    pub other_rect: TrackRect,
}

/// Packs a net id and a per-router fragment sequence number into the id
/// space of [`SpatialHash`].
#[must_use]
pub fn pack_frag_id(net: u32, seq: u32) -> u64 {
    (u64::from(seq) << 32) | u64::from(net)
}

/// Recovers the net id from a packed fragment id.
#[must_use]
pub fn net_of_frag_id(id: u64) -> u32 {
    (id & 0xffff_ffff) as u32
}

/// Scans one layer's fragment index for all potential overlay scenarios
/// between `our_frags` (the fragments of `our_net` on `layer`) and the
/// routed fragments stored in `index`.
///
/// Pairs of fragments of the same net never induce overlays between each
/// other (Theorem 3) and are skipped.
#[must_use]
pub fn scan_fragments(
    layer: Layer,
    our_net: u32,
    our_frags: &[TrackRect],
    index: &SpatialHash,
    rules: &DesignRules,
) -> Vec<FoundScenario> {
    let radius = rules.dependence_radius_tracks();
    let mut out = Vec::new();
    for &our in our_frags {
        let window = our.expanded(radius);
        for (id, other) in index.query_entries(&window) {
            let other_net = net_of_frag_id(id);
            if other_net == our_net {
                continue;
            }
            if let Some(scenario) = classify(&our, &other, rules) {
                out.push(FoundScenario {
                    layer,
                    other_net,
                    scenario,
                    our_rect: our,
                    other_rect: other,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_scenario::ScenarioKind;

    fn rules() -> DesignRules {
        DesignRules::node_10nm()
    }

    #[test]
    fn frag_id_round_trip() {
        let id = pack_frag_id(0xDEAD, 7);
        assert_eq!(net_of_frag_id(id), 0xDEAD);
        assert_ne!(pack_frag_id(1, 2), pack_frag_id(1, 3));
    }

    #[test]
    fn scan_finds_dependent_neighbors() {
        let mut index = SpatialHash::new(8);
        index.insert(pack_frag_id(1, 0), TrackRect::new(0, 1, 7, 1));
        index.insert(pack_frag_id(2, 1), TrackRect::new(0, 8, 7, 8)); // far away
        let found = scan_fragments(Layer(0), 0, &[TrackRect::new(0, 0, 5, 0)], &index, &rules());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].other_net, 1);
        assert_eq!(found[0].scenario.kind, ScenarioKind::OneA);
    }

    #[test]
    fn scan_skips_own_fragments() {
        let mut index = SpatialHash::new(8);
        index.insert(pack_frag_id(0, 0), TrackRect::new(0, 1, 7, 1));
        let found = scan_fragments(Layer(0), 0, &[TrackRect::new(0, 0, 5, 0)], &index, &rules());
        assert!(found.is_empty());
    }

    #[test]
    fn scan_reports_multiple_scenarios_per_pair() {
        // An L-shaped routed net with two fragments near our wire.
        let mut index = SpatialHash::new(8);
        index.insert(pack_frag_id(1, 0), TrackRect::new(0, 1, 4, 1));
        index.insert(pack_frag_id(1, 1), TrackRect::new(4, 1, 4, 5));
        let found = scan_fragments(Layer(0), 0, &[TrackRect::new(0, 0, 6, 0)], &index, &rules());
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.other_net == 1));
    }
}
