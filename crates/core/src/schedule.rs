//! Conflict-aware wave scheduling for the boundary-net tail.
//!
//! Band sharding ([`BandPlan`](sadp_grid::BandPlan)) parallelises nets
//! whose search windows fit inside one column band, but every net that
//! *straddles* a band boundary used to route serially after the fold —
//! on wide planes that tail dominates wall-clock. This module breaks the
//! tail up: each boundary net gets a conservative **footprint** (the
//! region its search and commit can read or write), footprints are
//! indexed in a [`SpatialHash`], and the canonically-ordered conflict
//! DAG over them is layered greedily into **waves**.
//!
//! A wave is a maximal *contiguous run* of the canonical net order whose
//! members are pairwise footprint-disjoint. Contiguity is what makes the
//! scheme sound for byte-identity: the driver pre-searches a wave's nets
//! in parallel against the frozen pre-wave state and then commits them
//! in canonical order, so the global commit sequence is *exactly* the
//! serial one. Within a wave, disjoint footprints guarantee that no
//! member's commit can change anything another member's search read —
//! hence the parallel pre-search result equals the serial search result
//! bit for bit. (A non-contiguous layering — e.g. classic longest-path
//! DAG levels — would reorder commits, and trial coloring chains through
//! the overlay graph far beyond footprints, so reordering is unsound.)

use crate::config::RouterConfig;
use sadp_geom::{SpatialHash, TrackRect};
use sadp_grid::{Net, NetId, Netlist, RoutingPlane};

/// The conservative interaction footprint of `net`.
///
/// The rectangle covers everything routing this net can read or write:
///
/// * the bounding box of **all** pin candidates (every candidate can
///   seed or terminate the search),
/// * expanded by the search window margin, scaled by the pin count the
///   same way the band classifier scales it (branch searches widen the
///   window once per extra pin),
/// * expanded by `halo` extra tracks so that neighbour reads just
///   outside the window (the `T2b` cost term inspects adjacent cells,
///   and scenario scans reach `dependence_radius_tracks`) stay inside.
///
/// Two nets with disjoint footprints can therefore neither block each
/// other's paths nor contribute scenarios to each other's scans.
#[must_use]
pub fn net_footprint(
    net: &Net,
    config: &RouterConfig,
    halo: i32,
    plane: &RoutingPlane,
) -> TrackRect {
    let mut bbox: Option<TrackRect> = None;
    for pin in net.pins() {
        for c in pin.candidates() {
            let cell = TrackRect::cell(c.x, c.y);
            bbox = Some(match bbox {
                Some(b) => b.union_bbox(&cell),
                None => cell,
            });
        }
    }
    let margin = config
        .search_margin
        .saturating_mul(1 + net.extra.len() as i32)
        .saturating_add(halo);
    let plane_rect = TrackRect::new(0, 0, plane.width() - 1, plane.height() - 1);
    bbox.expect("a net has at least two pins")
        .expanded(margin)
        .intersection(&plane_rect)
        .unwrap_or(plane_rect)
}

/// The wave schedule for a boundary-net tail: a partition of the input
/// order into contiguous, pairwise footprint-disjoint runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WavePlan {
    /// The waves, in execution order. Concatenating them reproduces the
    /// input net order exactly.
    pub waves: Vec<Vec<NetId>>,
}

impl WavePlan {
    /// Number of waves.
    #[must_use]
    pub fn len(&self) -> usize {
        self.waves.len()
    }

    /// Whether the plan has no waves (empty boundary tail).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.waves.is_empty()
    }

    /// The widest wave (1 for a fully serial plan, 0 when empty).
    #[must_use]
    pub fn max_width(&self) -> usize {
        self.waves.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Layers `boundary` (already in canonical routing order) into waves.
///
/// Builds the footprint interference graph with one [`SpatialHash`]
/// sweep: nets are inserted in order, and each net records its *nearest
/// earlier* conflicting index. The greedy contiguous layering then cuts
/// a new wave exactly when a net conflicts with any member of the open
/// wave — equivalently, when its nearest earlier conflict lies at or
/// after the open wave's first index. This is the canonical antichain
/// prefix decomposition of the order-oriented conflict DAG.
#[must_use]
pub fn plan_waves(
    boundary: &[NetId],
    netlist: &Netlist,
    config: &RouterConfig,
    halo: i32,
    plane: &RoutingPlane,
) -> WavePlan {
    let n = boundary.len();
    let footprints: Vec<TrackRect> = boundary
        .iter()
        .map(|&id| net_footprint(netlist.net(id), config, halo, plane))
        .collect();
    let mut index = SpatialHash::with_density(plane.width(), plane.height(), n.max(1));
    let mut nearest_conflict: Vec<Option<usize>> = vec![None; n];
    for (i, fp) in footprints.iter().enumerate() {
        let mut best: Option<usize> = None;
        for (k, rect) in index.query_entries(fp) {
            if rect.intersects(fp) {
                let k = k as usize;
                best = Some(best.map_or(k, |b| b.max(k)));
            }
        }
        nearest_conflict[i] = best;
        index.insert(i as u64, *fp);
    }

    let mut waves: Vec<Vec<NetId>> = Vec::new();
    let mut wave: Vec<NetId> = Vec::new();
    let mut start = 0usize;
    for (i, &id) in boundary.iter().enumerate() {
        if !wave.is_empty() && nearest_conflict[i].is_some_and(|k| k >= start) {
            waves.push(std::mem::take(&mut wave));
            start = i;
        }
        wave.push(id);
    }
    if !wave.is_empty() {
        waves.push(wave);
    }
    WavePlan { waves }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_geom::{DesignRules, GridPoint, Layer};

    fn plane(width: i32, height: i32) -> RoutingPlane {
        RoutingPlane::new(3, width, height, DesignRules::node_10nm()).unwrap()
    }

    fn p(x: i32, y: i32) -> GridPoint {
        GridPoint::new(Layer(0), x, y)
    }

    /// A netlist of horizontal two-pin nets at the given (x0, x1, y)
    /// spans, ids in insertion order.
    fn spans(spans: &[(i32, i32, i32)]) -> (Netlist, Vec<NetId>) {
        let mut nl = Netlist::new();
        let ids = spans
            .iter()
            .enumerate()
            .map(|(i, &(x0, x1, y))| nl.add_two_pin(format!("n{i}"), p(x0, y), p(x1, y)))
            .collect();
        (nl, ids)
    }

    fn check_invariants(plan: &WavePlan, order: &[NetId], nl: &Netlist, pl: &RoutingPlane) {
        let config = RouterConfig::paper_defaults();
        // Concatenation reproduces the input order (contiguity).
        let flat: Vec<NetId> = plan.waves.iter().flatten().copied().collect();
        assert_eq!(flat, order, "waves must be contiguous canonical runs");
        // Members of one wave are pairwise footprint-disjoint.
        for wave in &plan.waves {
            let fps: Vec<TrackRect> = wave
                .iter()
                .map(|&id| net_footprint(nl.net(id), &config, 2, pl))
                .collect();
            for a in 0..fps.len() {
                for b in a + 1..fps.len() {
                    assert!(
                        !fps[a].intersects(&fps[b]),
                        "wave members {:?} and {:?} overlap",
                        wave[a],
                        wave[b]
                    );
                }
            }
        }
    }

    #[test]
    fn disjoint_nets_share_one_wave() {
        // Far-apart nets on a wide plane: everything fits in wave 0.
        let pl = plane(800, 64);
        let (nl, ids) = spans(&[(10, 30, 10), (300, 320, 10), (600, 620, 10)]);
        let plan = plan_waves(&ids, &nl, &RouterConfig::paper_defaults(), 2, &pl);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.max_width(), 3);
        check_invariants(&plan, &ids, &nl, &pl);
    }

    #[test]
    fn overlapping_nets_serialise() {
        // Nets stacked on adjacent tracks conflict pairwise: one net per
        // wave, reproducing the serial schedule.
        let pl = plane(200, 64);
        let (nl, ids) = spans(&[(10, 60, 10), (20, 70, 12), (30, 80, 14)]);
        let plan = plan_waves(&ids, &nl, &RouterConfig::paper_defaults(), 2, &pl);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.max_width(), 1);
        check_invariants(&plan, &ids, &nl, &pl);
    }

    #[test]
    fn conflict_with_open_wave_cuts_a_new_wave() {
        // Net 0 and net 1 are disjoint; net 2 overlaps net 0. The cut
        // must fall before net 2 even though nets 1 and 2 are disjoint.
        let pl = plane(900, 64);
        let (nl, ids) = spans(&[(10, 40, 10), (700, 740, 10), (20, 50, 30)]);
        let plan = plan_waves(&ids, &nl, &RouterConfig::paper_defaults(), 2, &pl);
        assert_eq!(plan.waves, vec![vec![ids[0], ids[1]], vec![ids[2]]]);
        check_invariants(&plan, &ids, &nl, &pl);
    }

    #[test]
    fn interleaved_footprints_split_into_multiple_waves() {
        // Alternating left/right nets: lefts conflict with lefts, rights
        // with rights, so waves of width 2 form.
        let pl = plane(1200, 200);
        let (nl, ids) = spans(&[
            (10, 60, 10),
            (1000, 1060, 10),
            (20, 70, 20),
            (1010, 1070, 20),
            (30, 80, 30),
            (1020, 1080, 30),
        ]);
        let plan = plan_waves(&ids, &nl, &RouterConfig::paper_defaults(), 2, &pl);
        assert!(plan.len() >= 2, "interleaved fixture must split");
        assert!(plan.max_width() >= 2, "some wave must hold >1 net");
        check_invariants(&plan, &ids, &nl, &pl);
    }

    #[test]
    fn footprint_covers_pins_and_clips_to_plane() {
        let pl = plane(100, 50);
        let (nl, ids) = spans(&[(2, 90, 5)]);
        let config = RouterConfig::paper_defaults();
        let fp = net_footprint(nl.net(ids[0]), &config, 2, &pl);
        assert!(fp.contains_cell(2, 5) && fp.contains_cell(90, 5));
        assert!(fp.x0 >= 0 && fp.y0 >= 0);
        assert!(fp.x1 < pl.width() && fp.y1 < pl.height());
    }

    #[test]
    fn empty_boundary_is_an_empty_plan() {
        let pl = plane(100, 50);
        let nl = Netlist::new();
        let plan = plan_waves(&[], &nl, &RouterConfig::paper_defaults(), 2, &pl);
        assert!(plan.is_empty());
        assert_eq!(plan.max_width(), 0);
    }
}
