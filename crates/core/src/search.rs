//! The pure search stage of the routing pipeline.
//!
//! [`SearchStage`] bundles the read-only views a per-net pathfinding call
//! needs — the routing plane, the committed direction map, the pin guards
//! and the configuration — and produces a [`RouteCandidate`] without
//! touching any shared router state. The only thing it mutates is the
//! caller-provided [`SearchScratch`] (per-search A\* working memory) and
//! it never writes the plane, the spatial index or the constraint graphs:
//! those mutations happen later, through the
//! [`CommitLedger`](crate::ledger::CommitLedger).
//!
//! Because the stage is a pure function of its inputs, the sharded driver
//! can run one instance per worker thread against clones/snapshots of the
//! shared state with no coordination.

use crate::astar::{astar_search_budgeted, AstarRequest, SearchScratch, SearchStats};
use crate::budget::Budget;
use crate::config::RouterConfig;
use crate::grids::{DirGrid, GuardGrid, PenaltyGrid};
use sadp_geom::{GridPoint, Layer, TrackRect};
use sadp_grid::{Net, NetId, RoutePath, RoutingPlane};
use sadp_obs::{Recorder, SpanClock, Stage};

/// Read-only views for one pathfinding call.
#[derive(Debug, Clone, Copy)]
pub struct SearchStage<'a> {
    /// The routing plane (occupancy and blockages).
    pub plane: &'a RoutingPlane,
    /// Committed wire directions of already-routed nets (the `T2b` hints).
    pub dir_map: &'a DirGrid,
    /// Soft pin keep-out halos.
    pub guards: &'a GuardGrid,
    /// The router configuration (cost weights, search margin).
    pub config: &'a RouterConfig,
}

/// Inline capacity of a [`FragmentList`]. Eight covers the vast majority
/// of routed nets: a straight trunk is one fragment, and each bend or
/// via landing adds only one or two more.
const FRAGMENTS_INLINE: usize = 8;

/// The maximal wire-fragment rectangles of a candidate route, with
/// inline storage for short lists.
///
/// A [`RouteCandidate`] is built once per search attempt and moved
/// through the propose → commit pipeline, so its fragment list is one of
/// the hottest allocations in the router. Up to `FRAGMENTS_INLINE` (8)
/// entries live in the struct itself; longer lists spill to the heap
/// transparently, preserving order.
#[derive(Debug, Clone)]
pub struct FragmentList {
    repr: FragRepr,
}

#[derive(Debug, Clone)]
enum FragRepr {
    Inline {
        buf: [(Layer, TrackRect); FRAGMENTS_INLINE],
        len: u8,
    },
    Heap(Vec<(Layer, TrackRect)>),
}

impl FragmentList {
    /// An empty list (inline, no allocation).
    #[must_use]
    pub fn new() -> FragmentList {
        FragmentList {
            repr: FragRepr::Inline {
                buf: [(Layer(0), TrackRect::cell(0, 0)); FRAGMENTS_INLINE],
                len: 0,
            },
        }
    }

    /// Appends one fragment, spilling to the heap past the inline
    /// capacity.
    pub fn push(&mut self, frag: (Layer, TrackRect)) {
        match &mut self.repr {
            FragRepr::Inline { buf, len } => {
                let l = usize::from(*len);
                if l < FRAGMENTS_INLINE {
                    buf[l] = frag;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(FRAGMENTS_INLINE * 2);
                    v.extend_from_slice(buf);
                    v.push(frag);
                    self.repr = FragRepr::Heap(v);
                }
            }
            FragRepr::Heap(v) => v.push(frag),
        }
    }

    /// The fragments as a slice, in insertion order.
    #[must_use]
    pub fn as_slice(&self) -> &[(Layer, TrackRect)] {
        match &self.repr {
            FragRepr::Inline { buf, len } => &buf[..usize::from(*len)],
            FragRepr::Heap(v) => v,
        }
    }

    /// Number of fragments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the list holds no fragments.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Iterates over the fragments.
    pub fn iter(&self) -> std::slice::Iter<'_, (Layer, TrackRect)> {
        self.as_slice().iter()
    }

    /// Moves the fragments into a plain `Vec` (no copy once spilled).
    #[must_use]
    pub fn into_vec(self) -> Vec<(Layer, TrackRect)> {
        match self.repr {
            FragRepr::Inline { buf, len } => buf[..usize::from(len)].to_vec(),
            FragRepr::Heap(v) => v,
        }
    }
}

impl Default for FragmentList {
    fn default() -> FragmentList {
        FragmentList::new()
    }
}

impl<'a> IntoIterator for &'a FragmentList {
    type Item = &'a (Layer, TrackRect);
    type IntoIter = std::slice::Iter<'a, (Layer, TrackRect)>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A tentative route produced by the search stage: trunk, branches, and
/// the maximal wire-fragment rectangles of all of them. Nothing about it
/// is committed yet.
#[derive(Debug, Clone)]
pub struct RouteCandidate {
    /// The trunk path (source pin to target pin).
    pub path: RoutePath,
    /// Branch paths of a multi-terminal net (empty for two-pin nets).
    pub branches: Vec<RoutePath>,
    /// Maximal wire-fragment rectangles per layer, over all paths.
    pub fragments: FragmentList,
}

/// The result of [`SearchStage::search_net`].
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The candidate route, or `None` if the net (or one of its branches)
    /// has no path.
    pub candidate: Option<RouteCandidate>,
    /// Total A\* nodes expanded across trunk and branch searches.
    pub expanded: u64,
    /// Whether the net's search [`Budget`] ran out mid-search. When set,
    /// `candidate` is `None` and the net must fail with
    /// `FailReason::BudgetExceeded`, not `NoPath`.
    pub budget_exceeded: bool,
}

impl SearchStage<'_> {
    /// One multi-source multi-target A\* search for `net`.
    pub fn search(
        &self,
        net: NetId,
        sources: &[GridPoint],
        targets: &[GridPoint],
        penalties: &PenaltyGrid,
        scratch: &mut SearchScratch,
    ) -> (Option<RoutePath>, SearchStats) {
        self.search_budgeted(
            net,
            sources,
            targets,
            penalties,
            scratch,
            &mut Budget::unlimited(),
        )
    }

    /// [`SearchStage::search`] under a caller-owned [`Budget`], charged
    /// once per expanded node.
    pub fn search_budgeted(
        &self,
        net: NetId,
        sources: &[GridPoint],
        targets: &[GridPoint],
        penalties: &PenaltyGrid,
        scratch: &mut SearchScratch,
        budget: &mut Budget,
    ) -> (Option<RoutePath>, SearchStats) {
        let req = AstarRequest {
            net,
            sources,
            targets,
            penalties,
            guards: self.guards,
        };
        astar_search_budgeted(self.plane, &req, self.dir_map, self.config, scratch, budget)
    }

    /// Searches a full candidate route for `net`: the trunk between the
    /// source and target pins, then one branch per extra terminal (each
    /// may tap any already-found point of the net), and fragments the
    /// result into maximal wire rectangles.
    #[must_use]
    pub fn search_net(
        &self,
        net: &Net,
        penalties: &PenaltyGrid,
        scratch: &mut SearchScratch,
    ) -> SearchOutcome {
        self.search_net_budgeted(net, penalties, scratch, &mut Budget::unlimited())
    }

    /// [`SearchStage::search_net`] under the net's [`Budget`]. The budget
    /// spans the trunk and every branch search; once it runs out the
    /// outcome carries `budget_exceeded` and no candidate.
    #[must_use]
    pub fn search_net_budgeted(
        &self,
        net: &Net,
        penalties: &PenaltyGrid,
        scratch: &mut SearchScratch,
        budget: &mut Budget,
    ) -> SearchOutcome {
        let (path, stats) = self.search_budgeted(
            net.id,
            net.source.candidates(),
            net.target.candidates(),
            penalties,
            scratch,
            budget,
        );
        let mut expanded = stats.expanded;
        let Some(path) = path else {
            return SearchOutcome {
                candidate: None,
                expanded,
                budget_exceeded: stats.budget_exceeded,
            };
        };

        let mut branches: Vec<RoutePath> = Vec::new();
        for pin in &net.extra {
            let mut targets: Vec<GridPoint> = path.points().to_vec();
            for b in &branches {
                targets.extend_from_slice(b.points());
            }
            let (bpath, bstats) = self.search_budgeted(
                net.id,
                pin.candidates(),
                &targets,
                penalties,
                scratch,
                budget,
            );
            expanded += bstats.expanded;
            match bpath {
                Some(bp) => branches.push(bp),
                None => {
                    return SearchOutcome {
                        candidate: None,
                        expanded,
                        budget_exceeded: bstats.budget_exceeded,
                    }
                }
            }
        }

        let mut fragments = FragmentList::new();
        path.fragments_into(|layer, rect| fragments.push((layer, rect)));
        for b in &branches {
            b.fragments_into(|layer, rect| fragments.push((layer, rect)));
        }
        SearchOutcome {
            candidate: Some(RouteCandidate {
                path,
                branches,
                fragments,
            }),
            expanded,
            budget_exceeded: false,
        }
    }

    /// [`SearchStage::search_net_budgeted`], timed as one `search` span
    /// on `rec`. One virtual call per net attempt — the per-node inner
    /// loop stays observation-free.
    #[must_use]
    pub fn search_net_observed(
        &self,
        net: &Net,
        penalties: &PenaltyGrid,
        scratch: &mut SearchScratch,
        budget: &mut Budget,
        rec: &mut dyn Recorder,
    ) -> SearchOutcome {
        let clock = SpanClock::start(&*rec);
        let outcome = self.search_net_budgeted(net, penalties, scratch, budget);
        clock.stop(rec, Stage::Search);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frag(i: i32) -> (Layer, TrackRect) {
        (Layer(0), TrackRect::cell(i, i))
    }

    #[test]
    fn fragment_list_starts_empty_and_inline() {
        let list = FragmentList::new();
        assert!(list.is_empty());
        assert_eq!(list.len(), 0);
        assert_eq!(list.as_slice(), &[]);
        assert!(FragmentList::default().is_empty());
    }

    #[test]
    fn fragment_list_spills_past_inline_capacity_preserving_order() {
        let mut list = FragmentList::new();
        let n = FRAGMENTS_INLINE as i32 + 5;
        for i in 0..n {
            list.push(frag(i));
        }
        assert_eq!(list.len(), n as usize);
        let expect: Vec<_> = (0..n).map(frag).collect();
        assert_eq!(list.as_slice(), expect.as_slice());
        assert_eq!(list.iter().count(), n as usize);
        assert_eq!((&list).into_iter().count(), n as usize);
        assert_eq!(list.into_vec(), expect);
    }

    #[test]
    fn fragment_list_into_vec_at_exact_inline_boundary() {
        let mut list = FragmentList::new();
        for i in 0..FRAGMENTS_INLINE as i32 {
            list.push(frag(i));
        }
        assert_eq!(list.len(), FRAGMENTS_INLINE);
        let expect: Vec<_> = (0..FRAGMENTS_INLINE as i32).map(frag).collect();
        assert_eq!(list.into_vec(), expect);
    }
}
