//! The pure search stage of the routing pipeline.
//!
//! [`SearchStage`] bundles the read-only views a per-net pathfinding call
//! needs — the routing plane, the committed direction map, the pin guards
//! and the configuration — and produces a [`RouteCandidate`] without
//! touching any shared router state. The only thing it mutates is the
//! caller-provided [`SearchScratch`] (per-search A\* working memory) and
//! it never writes the plane, the spatial index or the constraint graphs:
//! those mutations happen later, through the
//! [`CommitLedger`](crate::ledger::CommitLedger).
//!
//! Because the stage is a pure function of its inputs, the sharded driver
//! can run one instance per worker thread against clones/snapshots of the
//! shared state with no coordination.

use crate::astar::{astar_search_budgeted, AstarRequest, SearchScratch, SearchStats};
use crate::budget::Budget;
use crate::config::RouterConfig;
use crate::grids::{DirGrid, GuardGrid, PenaltyGrid};
use sadp_geom::{GridPoint, Layer, TrackRect};
use sadp_grid::{Net, NetId, RoutePath, RoutingPlane};
use sadp_obs::{Recorder, SpanClock, Stage};

/// Read-only views for one pathfinding call.
#[derive(Debug, Clone, Copy)]
pub struct SearchStage<'a> {
    /// The routing plane (occupancy and blockages).
    pub plane: &'a RoutingPlane,
    /// Committed wire directions of already-routed nets (the `T2b` hints).
    pub dir_map: &'a DirGrid,
    /// Soft pin keep-out halos.
    pub guards: &'a GuardGrid,
    /// The router configuration (cost weights, search margin).
    pub config: &'a RouterConfig,
}

/// A tentative route produced by the search stage: trunk, branches, and
/// the maximal wire-fragment rectangles of all of them. Nothing about it
/// is committed yet.
#[derive(Debug, Clone)]
pub struct RouteCandidate {
    /// The trunk path (source pin to target pin).
    pub path: RoutePath,
    /// Branch paths of a multi-terminal net (empty for two-pin nets).
    pub branches: Vec<RoutePath>,
    /// Maximal wire-fragment rectangles per layer, over all paths.
    pub fragments: Vec<(Layer, TrackRect)>,
}

/// The result of [`SearchStage::search_net`].
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The candidate route, or `None` if the net (or one of its branches)
    /// has no path.
    pub candidate: Option<RouteCandidate>,
    /// Total A\* nodes expanded across trunk and branch searches.
    pub expanded: u64,
    /// Whether the net's search [`Budget`] ran out mid-search. When set,
    /// `candidate` is `None` and the net must fail with
    /// `FailReason::BudgetExceeded`, not `NoPath`.
    pub budget_exceeded: bool,
}

impl SearchStage<'_> {
    /// One multi-source multi-target A\* search for `net`.
    pub fn search(
        &self,
        net: NetId,
        sources: &[GridPoint],
        targets: &[GridPoint],
        penalties: &PenaltyGrid,
        scratch: &mut SearchScratch,
    ) -> (Option<RoutePath>, SearchStats) {
        self.search_budgeted(
            net,
            sources,
            targets,
            penalties,
            scratch,
            &mut Budget::unlimited(),
        )
    }

    /// [`SearchStage::search`] under a caller-owned [`Budget`], charged
    /// once per expanded node.
    pub fn search_budgeted(
        &self,
        net: NetId,
        sources: &[GridPoint],
        targets: &[GridPoint],
        penalties: &PenaltyGrid,
        scratch: &mut SearchScratch,
        budget: &mut Budget,
    ) -> (Option<RoutePath>, SearchStats) {
        let req = AstarRequest {
            net,
            sources,
            targets,
            penalties,
            guards: self.guards,
        };
        astar_search_budgeted(self.plane, &req, self.dir_map, self.config, scratch, budget)
    }

    /// Searches a full candidate route for `net`: the trunk between the
    /// source and target pins, then one branch per extra terminal (each
    /// may tap any already-found point of the net), and fragments the
    /// result into maximal wire rectangles.
    #[must_use]
    pub fn search_net(
        &self,
        net: &Net,
        penalties: &PenaltyGrid,
        scratch: &mut SearchScratch,
    ) -> SearchOutcome {
        self.search_net_budgeted(net, penalties, scratch, &mut Budget::unlimited())
    }

    /// [`SearchStage::search_net`] under the net's [`Budget`]. The budget
    /// spans the trunk and every branch search; once it runs out the
    /// outcome carries `budget_exceeded` and no candidate.
    #[must_use]
    pub fn search_net_budgeted(
        &self,
        net: &Net,
        penalties: &PenaltyGrid,
        scratch: &mut SearchScratch,
        budget: &mut Budget,
    ) -> SearchOutcome {
        let (path, stats) = self.search_budgeted(
            net.id,
            net.source.candidates(),
            net.target.candidates(),
            penalties,
            scratch,
            budget,
        );
        let mut expanded = stats.expanded;
        let Some(path) = path else {
            return SearchOutcome {
                candidate: None,
                expanded,
                budget_exceeded: stats.budget_exceeded,
            };
        };

        let mut branches: Vec<RoutePath> = Vec::new();
        for pin in &net.extra {
            let mut targets: Vec<GridPoint> = path.points().to_vec();
            for b in &branches {
                targets.extend_from_slice(b.points());
            }
            let (bpath, bstats) = self.search_budgeted(
                net.id,
                pin.candidates(),
                &targets,
                penalties,
                scratch,
                budget,
            );
            expanded += bstats.expanded;
            match bpath {
                Some(bp) => branches.push(bp),
                None => {
                    return SearchOutcome {
                        candidate: None,
                        expanded,
                        budget_exceeded: bstats.budget_exceeded,
                    }
                }
            }
        }

        let mut fragments = path.fragments();
        for b in &branches {
            fragments.extend(b.fragments());
        }
        SearchOutcome {
            candidate: Some(RouteCandidate {
                path,
                branches,
                fragments,
            }),
            expanded,
            budget_exceeded: false,
        }
    }

    /// [`SearchStage::search_net_budgeted`], timed as one `search` span
    /// on `rec`. One virtual call per net attempt — the per-node inner
    /// loop stays observation-free.
    #[must_use]
    pub fn search_net_observed(
        &self,
        net: &Net,
        penalties: &PenaltyGrid,
        scratch: &mut SearchScratch,
        budget: &mut Budget,
        rec: &mut dyn Recorder,
    ) -> SearchOutcome {
        let clock = SpanClock::start(&*rec);
        let outcome = self.search_net_budgeted(net, penalties, scratch, budget);
        clock.stop(rec, Stage::Search);
        outcome
    }
}
