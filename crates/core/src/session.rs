//! Stepwise routing sessions: the batch pipeline as a resumable state
//! machine.
//!
//! [`RoutingSession`] owns everything one routing run needs — the plane,
//! the netlist, the [`Router`] (ledger + workspace + budgets) and an
//! event/span recorder — and exposes the schedule as bounded increments:
//!
//! ```text
//!   create / resume ──▶ Routing ──advance──▶ Running
//!                          │                 CheckpointReady
//!                          │                     │
//!                          │ (schedule done:     │ advance
//!                          │  finalize runs)     ▼
//!                          ├───────────────▶ Done(report)
//!                          └──cancel───────▶ Cancelled
//! ```
//!
//! [`RoutingSession::advance`] drives the driver's schedule machine for
//! at most [`StepBudget::steps`] increments and returns. One increment is
//! one canonical unit of the schedule: a serial net, a band fold, or a
//! boundary-wave commit. Parallel work (band workers, wave pre-search)
//! happens *within* an increment, never across a pause — so pausing
//! between `advance` calls can never reorder or interleave the canonical
//! commit sequence, and the final result (report, colors, patterns,
//! JSONL trace) is byte-identical to a blocking
//! [`Router::route_all_with`] run for every thread count and every step
//! budget.
//!
//! Every pause point is also a valid checkpoint:
//! [`RoutingSession::snapshot`] serializes the commit journal in the
//! `SADPCKPT v2` format and [`RoutingSession::resume`] replays it
//! through the identical commit pipeline, exactly like
//! [`Router::route_all_recoverable`]. A session cancelled mid-run and
//! resumed from its last snapshot therefore finishes byte-identical to
//! an uninterrupted run.

use crate::checkpoint::{self, Snapshot, SnapshotError};
use crate::config::RouterConfig;
use crate::driver::{ScheduleMachine, StepArgs, StepEvent};
use crate::report::RoutingReport;
use crate::router::Router;
use sadp_grid::{Netlist, RoutingPlane};
use sadp_obs::{BufferRecorder, Recorder, RouterEvent};
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// How much work one [`RoutingSession::advance`] call may do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepBudget {
    /// Maximum schedule increments (serial nets, band folds, boundary
    /// commits) to execute. Clamped to at least 1 so an `advance` always
    /// makes progress.
    pub steps: u64,
}

impl StepBudget {
    /// A budget of `steps` schedule increments.
    #[must_use]
    pub fn steps(steps: u64) -> StepBudget {
        StepBudget { steps }
    }

    /// An unbounded budget: `advance` runs the whole remaining schedule.
    #[must_use]
    pub fn unbounded() -> StepBudget {
        StepBudget { steps: u64::MAX }
    }
}

/// What a [`RoutingSession::advance`] call left behind.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionStatus {
    /// The budget ran out mid-schedule; call `advance` again.
    Running,
    /// Like `Running`, but the slice crossed at least one forced
    /// checkpoint boundary (a band fold) — a [`RoutingSession::snapshot`]
    /// taken now captures freshly folded state worth persisting.
    CheckpointReady,
    /// The schedule and the finalize stage completed; the session is
    /// finished and further `advance` calls return this same report.
    Done(Box<RoutingReport>),
    /// The session cannot advance (it was cancelled).
    Failed(SessionError),
}

/// Errors of the session API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// Creating or resuming the session failed (oversized plane,
    /// fingerprint mismatch, corrupt snapshot, diverged replay).
    Snapshot(SnapshotError),
    /// `advance` was called on a cancelled session. Take a final
    /// [`RoutingSession::snapshot`] and resume a fresh session instead.
    Cancelled,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Snapshot(e) => write!(f, "{e}"),
            SessionError::Cancelled => {
                write!(
                    f,
                    "session is cancelled; snapshot it and resume a new session to continue"
                )
            }
        }
    }
}

impl Error for SessionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SessionError::Snapshot(e) => Some(e),
            SessionError::Cancelled => None,
        }
    }
}

impl From<SnapshotError> for SessionError {
    fn from(e: SnapshotError) -> SessionError {
        SessionError::Snapshot(e)
    }
}

enum State {
    Routing,
    Done(Box<RoutingReport>),
    Cancelled,
}

/// A resumable routing run. See the [module docs](crate::session).
pub struct RoutingSession {
    router: Router,
    plane: RoutingPlane,
    netlist: Netlist,
    machine: ScheduleMachine,
    rec: BufferRecorder,
    /// The input fingerprint, stamped into every snapshot so a resume
    /// against a different plane/netlist is rejected.
    fingerprint: u64,
    started: Instant,
    state: State,
}

// A session must be able to migrate between a job server's worker
// threads; this fails to compile if any field loses `Send`.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<RoutingSession>();
};

impl RoutingSession {
    /// Creates a session for routing `netlist` on `plane`, taking
    /// ownership of both (retrieve the routed plane with
    /// [`RoutingSession::into_parts`]). Event tracing and stage timing
    /// are controlled by `trace` / `timing` exactly like
    /// [`BufferRecorder::with_flags`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Router`] (inside [`SessionError::Snapshot`]) when
    /// the plane is too large for the packed search indices.
    pub fn create(
        config: RouterConfig,
        plane: RoutingPlane,
        netlist: Netlist,
        trace: bool,
        timing: bool,
    ) -> Result<RoutingSession, SessionError> {
        RoutingSession::build(config, plane, netlist, None, trace, timing)
    }

    /// [`RoutingSession::create`] starting from a parsed `SADPCKPT v2`
    /// snapshot: the journaled prefix is re-committed through the
    /// identical stage pipeline (no searching) and only the remaining
    /// nets are scheduled.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::FingerprintMismatch`] when the snapshot was taken
    /// from a different plane/netlist, [`SnapshotError::ReplayDiverged`]
    /// when a journaled route no longer commits cleanly, and
    /// [`SnapshotError::Router`] for an oversized plane — all inside
    /// [`SessionError::Snapshot`].
    pub fn resume(
        config: RouterConfig,
        plane: RoutingPlane,
        netlist: Netlist,
        snapshot: &Snapshot,
        trace: bool,
        timing: bool,
    ) -> Result<RoutingSession, SessionError> {
        RoutingSession::build(config, plane, netlist, Some(snapshot), trace, timing)
    }

    fn build(
        config: RouterConfig,
        mut plane: RoutingPlane,
        netlist: Netlist,
        resume: Option<&Snapshot>,
        trace: bool,
        timing: bool,
    ) -> Result<RoutingSession, SessionError> {
        let started = Instant::now();
        let mut router = Router::new(config);
        let (order, fp) = router.prepare_run(&mut plane, &netlist, resume, true)?;
        let machine = ScheduleMachine::new(router.config(), &plane, &netlist, order);
        Ok(RoutingSession {
            router,
            plane,
            netlist,
            machine,
            rec: BufferRecorder::with_flags(trace, timing),
            fingerprint: fp.expect("fingerprint is always requested"),
            started,
            state: State::Routing,
        })
    }

    /// Executes up to `budget` schedule increments. When the schedule
    /// runs dry the finalize stage (flipping, cleanup, cut repair) runs
    /// in the same call and the session transitions to `Done`.
    pub fn advance(&mut self, budget: StepBudget) -> SessionStatus {
        match &self.state {
            State::Done(report) => return SessionStatus::Done(report.clone()),
            State::Cancelled => return SessionStatus::Failed(SessionError::Cancelled),
            State::Routing => {}
        }
        let mut complete = false;
        let mut fold_seen = false;
        {
            let RoutingSession {
                router,
                plane,
                netlist,
                machine,
                rec,
                ..
            } = self;
            for _ in 0..budget.steps.max(1) {
                let Router {
                    config,
                    ledger,
                    workspace,
                    failed,
                    run_budget,
                    ..
                } = &mut *router;
                let ws = workspace.as_mut().expect("prepare_run sets the workspace");
                let ev = machine.step(&mut StepArgs {
                    config,
                    ledger,
                    ws,
                    plane,
                    netlist,
                    failed,
                    run_budget,
                    rec: &mut *rec,
                });
                match ev {
                    StepEvent::Complete => {
                        complete = true;
                        break;
                    }
                    StepEvent::BandFold => fold_seen = true,
                    StepEvent::SerialNet | StepEvent::BoundaryNet => {}
                }
            }
        }
        if complete {
            self.router
                .finalize_with(&mut self.plane, &self.netlist, &mut self.rec);
            let mut report = self.router.build_report(&self.netlist, self.started);
            if let Some(profile) = self.rec.profile() {
                report.profile = profile;
            }
            let report = Box::new(report);
            self.state = State::Done(report.clone());
            return SessionStatus::Done(report);
        }
        if fold_seen {
            SessionStatus::CheckpointReady
        } else {
            SessionStatus::Running
        }
    }

    /// Stops the session: further [`RoutingSession::advance`] calls
    /// return [`SessionStatus::Failed`]. The state stays intact, so a
    /// final [`RoutingSession::snapshot`] can still be taken and resumed
    /// later. Cancelling a `Done` session is a no-op.
    pub fn cancel(&mut self) {
        if !matches!(self.state, State::Done(_)) {
            self.state = State::Cancelled;
        }
    }

    /// Serializes the current state as `SADPCKPT v2` text. Valid at any
    /// pause point — every increment ends between canonical commits, so
    /// the journal is always a clean resumable prefix.
    #[must_use]
    pub fn snapshot(&self) -> String {
        checkpoint::serialize(self.router.ledger(), self.router.failed(), self.fingerprint)
    }

    /// `(done, total)` schedule increments — a coarse progress gauge.
    /// The finalize stage runs after the last increment and is not
    /// counted.
    #[must_use]
    pub fn progress(&self) -> (u64, u64) {
        (self.machine.steps_done(), self.machine.steps_total())
    }

    /// Whether the session reached `Done`.
    #[must_use]
    pub fn is_done(&self) -> bool {
        matches!(self.state, State::Done(_))
    }

    /// Whether the session was cancelled.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        matches!(self.state, State::Cancelled)
    }

    /// The final report, once the session is `Done`.
    #[must_use]
    pub fn report(&self) -> Option<&RoutingReport> {
        match &self.state {
            State::Done(report) => Some(report),
            _ => None,
        }
    }

    /// Drains the structured events recorded since the last drain (or
    /// since creation), in canonical order. Streaming consumers (the job
    /// server) call this between `advance` slices; batch consumers call
    /// it once at the end. Empty when tracing is off.
    pub fn drain_events(&mut self) -> Vec<RouterEvent> {
        self.rec.take_events()
    }

    /// The router, for post-run inspection (colors, patterns, graphs).
    #[must_use]
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The routing plane (routed so far, up to the last pause point).
    #[must_use]
    pub fn plane(&self) -> &RoutingPlane {
        &self.plane
    }

    /// The session's recorder, so downstream stages (e.g. pixel
    /// verification) can append to the same trace and profile before
    /// the events are drained.
    pub fn recorder_mut(&mut self) -> &mut BufferRecorder {
        &mut self.rec
    }

    /// Consumes the session and returns the (routed) plane and the
    /// netlist.
    #[must_use]
    pub fn into_parts(self) -> (RoutingPlane, Netlist) {
        (self.plane, self.netlist)
    }

    /// Consumes the session and returns the live router alongside the
    /// plane, netlist and recorder — the full routing state, for layers
    /// (the ECO engine) that keep editing where the batch run stopped.
    #[must_use]
    pub(crate) fn into_router_parts(self) -> (Router, RoutingPlane, Netlist, BufferRecorder) {
        (self.router, self.plane, self.netlist, self.rec)
    }
}

impl fmt::Debug for RoutingSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (done, total) = self.progress();
        f.debug_struct("RoutingSession")
            .field("steps_done", &done)
            .field("steps_total", &total)
            .field(
                "state",
                &match self.state {
                    State::Routing => "routing",
                    State::Done(_) => "done",
                    State::Cancelled => "cancelled",
                },
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_geom::{DesignRules, GridPoint, Layer};

    fn plane(w: i32, h: i32) -> RoutingPlane {
        RoutingPlane::new(3, w, h, DesignRules::node_10nm()).expect("valid")
    }

    fn p0(x: i32, y: i32) -> GridPoint {
        GridPoint::new(Layer(0), x, y)
    }

    fn small_netlist() -> Netlist {
        let mut nl = Netlist::new();
        nl.add_two_pin("a", p0(2, 2), p0(14, 9));
        nl.add_two_pin("b", p0(2, 12), p0(18, 12));
        nl.add_two_pin("c", p0(20, 3), p0(28, 14));
        nl
    }

    #[test]
    fn stepped_session_matches_blocking_route_all() {
        let nl = small_netlist();
        let mut plane_a = plane(32, 32);
        let mut router = Router::new(RouterConfig::paper_defaults());
        // The baseline records through the same recorder shape the
        // session uses, so the profiles are comparable.
        let mut base_rec = BufferRecorder::with_flags(false, false);
        let blocking = router.route_all_with(&mut plane_a, &nl, &mut base_rec);

        let mut session = RoutingSession::create(
            RouterConfig::paper_defaults(),
            plane(32, 32),
            nl,
            false,
            false,
        )
        .expect("create");
        let mut advances = 0u32;
        let report = loop {
            advances += 1;
            match session.advance(StepBudget::steps(1)) {
                SessionStatus::Done(r) => break r,
                SessionStatus::Running | SessionStatus::CheckpointReady => {}
                SessionStatus::Failed(e) => panic!("unexpected failure: {e}"),
            }
        };
        assert!(advances >= 3, "one advance per net plus the finishing one");
        assert_eq!(report.routed_nets, blocking.routed_nets);
        assert_eq!(report.wirelength, blocking.wirelength);
        assert_eq!(report.nodes_expanded, blocking.nodes_expanded);
        assert_eq!(report.profile.counts_only(), blocking.profile.counts_only());
    }

    #[test]
    fn progress_counts_schedule_increments() {
        let nl = small_netlist();
        let mut session = RoutingSession::create(
            RouterConfig::paper_defaults(),
            plane(32, 32),
            nl,
            false,
            false,
        )
        .expect("create");
        assert_eq!(session.progress(), (0, 3));
        session.advance(StepBudget::steps(1));
        assert_eq!(session.progress(), (1, 3));
        let status = session.advance(StepBudget::unbounded());
        assert!(matches!(status, SessionStatus::Done(_)));
        assert_eq!(session.progress(), (3, 3));
        assert!(session.is_done());
    }

    #[test]
    fn cancel_then_snapshot_resumes_byte_identical() {
        let nl = small_netlist();
        // Uninterrupted reference run.
        let mut reference = RoutingSession::create(
            RouterConfig::paper_defaults(),
            plane(32, 32),
            nl.clone(),
            false,
            false,
        )
        .expect("create");
        let SessionStatus::Done(want) = reference.advance(StepBudget::unbounded()) else {
            panic!("reference must finish in one unbounded advance");
        };

        // Cancel after one increment, snapshot, resume in a new session.
        let mut first = RoutingSession::create(
            RouterConfig::paper_defaults(),
            plane(32, 32),
            nl.clone(),
            false,
            false,
        )
        .expect("create");
        assert!(matches!(
            first.advance(StepBudget::steps(1)),
            SessionStatus::Running
        ));
        first.cancel();
        assert!(session_is_cancelled(&mut first));
        let snap_text = first.snapshot();
        let snap = Snapshot::parse(&snap_text).expect("own snapshot parses");

        let mut resumed = RoutingSession::resume(
            RouterConfig::paper_defaults(),
            plane(32, 32),
            nl,
            &snap,
            false,
            false,
        )
        .expect("resume");
        let SessionStatus::Done(got) = resumed.advance(StepBudget::unbounded()) else {
            panic!("resumed session must finish");
        };
        assert_eq!(got.routed_nets, want.routed_nets);
        assert_eq!(got.wirelength, want.wirelength);
        assert_eq!(got.vias, want.vias);
        assert_eq!(got.overlay_units, want.overlay_units);
    }

    fn session_is_cancelled(s: &mut RoutingSession) -> bool {
        s.is_cancelled()
            && matches!(
                s.advance(StepBudget::steps(1)),
                SessionStatus::Failed(SessionError::Cancelled)
            )
    }

    #[test]
    fn resume_rejects_foreign_fingerprint() {
        let nl = small_netlist();
        let mut s = RoutingSession::create(
            RouterConfig::paper_defaults(),
            plane(32, 32),
            nl,
            false,
            false,
        )
        .expect("create");
        s.advance(StepBudget::steps(1));
        let snap = Snapshot::parse(&s.snapshot()).expect("parses");
        // A different netlist: the fingerprint must not match.
        let mut other = Netlist::new();
        other.add_two_pin("x", p0(2, 2), p0(10, 2));
        let err = RoutingSession::resume(
            RouterConfig::paper_defaults(),
            plane(32, 32),
            other,
            &snap,
            false,
            false,
        )
        .expect_err("foreign fingerprint must be rejected");
        assert_eq!(
            err,
            SessionError::Snapshot(SnapshotError::FingerprintMismatch)
        );
    }

    #[test]
    fn done_session_replays_its_report() {
        let nl = small_netlist();
        let mut s = RoutingSession::create(
            RouterConfig::paper_defaults(),
            plane(32, 32),
            nl,
            false,
            false,
        )
        .expect("create");
        let SessionStatus::Done(first) = s.advance(StepBudget::unbounded()) else {
            panic!("must finish");
        };
        let SessionStatus::Done(second) = s.advance(StepBudget::steps(1)) else {
            panic!("done sessions stay done");
        };
        assert_eq!(first, second);
        assert_eq!(s.report(), Some(&*first));
        // Cancel after done is a no-op.
        s.cancel();
        assert!(s.is_done());
    }

    #[test]
    fn trace_events_stream_across_slices() {
        let nl = small_netlist();
        let mut s = RoutingSession::create(
            RouterConfig::paper_defaults(),
            plane(32, 32),
            nl.clone(),
            true,
            false,
        )
        .expect("create");
        let mut streamed: Vec<RouterEvent> = Vec::new();
        loop {
            let status = s.advance(StepBudget::steps(1));
            streamed.extend(s.drain_events());
            match status {
                SessionStatus::Done(_) => break,
                SessionStatus::Failed(e) => panic!("unexpected: {e}"),
                _ => {}
            }
        }
        // The streamed concatenation equals the blocking trace.
        let mut batch = BufferRecorder::with_flags(true, false);
        let mut router = Router::new(RouterConfig::paper_defaults());
        let mut pl = plane(32, 32);
        router.route_all_with(&mut pl, &nl, &mut batch);
        assert_eq!(streamed, batch.take_events());
    }
}
