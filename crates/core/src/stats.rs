//! Post-routing layout statistics.

use crate::router::Router;
use sadp_scenario::{Assignment, ScenarioKind};
use std::collections::BTreeMap;
use std::fmt;

/// Census of the potential overlay scenarios of a routed layout, with the
/// overlay each kind contributes under the final coloring.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ScenarioCensus {
    /// Occurrences per scenario kind.
    pub counts: BTreeMap<ScenarioKind, usize>,
    /// Realized overlay units per *pair edge*, attributed to the first
    /// recorded kind of the edge.
    pub realized_units: BTreeMap<ScenarioKind, u64>,
    /// Constraint edges in total.
    pub edges: usize,
    /// Hard (type 1-a / 1-b) edges.
    pub hard_edges: usize,
}

impl ScenarioCensus {
    /// Builds the census from a routed router.
    #[must_use]
    pub fn of(router: &Router) -> ScenarioCensus {
        let mut census = ScenarioCensus::default();
        for graph in router.graphs() {
            for (a, b, data) in graph.edges() {
                census.edges += 1;
                if data.table.hard_parity().is_some() {
                    census.hard_edges += 1;
                }
                for kind in &data.kinds {
                    *census.counts.entry(*kind).or_default() += 1;
                }
                let asg = Assignment::from_colors(graph.color(a), graph.color(b));
                if let Some(units) = data.table.entry(asg).overlay_units() {
                    if units > 0 {
                        if let Some(kind) = data.kinds.first() {
                            *census.realized_units.entry(*kind).or_default() += u64::from(units);
                        }
                    }
                }
            }
        }
        census
    }

    /// Total realized overlay units.
    #[must_use]
    pub fn total_realized(&self) -> u64 {
        self.realized_units.values().sum()
    }
}

impl fmt::Display for ScenarioCensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} constraint edges ({} hard), realized overlay {} units",
            self.edges,
            self.hard_edges,
            self.total_realized()
        )?;
        for (kind, count) in &self.counts {
            let realized = self.realized_units.get(kind).copied().unwrap_or(0);
            writeln!(
                f,
                "  {kind:10}: {count:6} occurrences, {realized:6} units realized"
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Router, RouterConfig};
    use sadp_geom::{DesignRules, GridPoint, Layer};
    use sadp_grid::{Netlist, RoutingPlane};

    #[test]
    fn census_of_a_parallel_pair() {
        let mut plane = RoutingPlane::new(3, 32, 32, DesignRules::node_10nm()).unwrap();
        let mut nl = Netlist::new();
        let p = |x, y| GridPoint::new(Layer(0), x, y);
        nl.add_two_pin("a", p(2, 5), p(20, 5));
        nl.add_two_pin("b", p(2, 6), p(20, 6));
        let mut router = Router::new(RouterConfig::paper_defaults());
        router.route_all(&mut plane, &nl);
        let census = ScenarioCensus::of(&router);
        assert!(census.counts.contains_key(&ScenarioKind::OneA));
        assert_eq!(census.hard_edges, 1);
        assert_eq!(census.total_realized(), 0, "1-a colored correctly");
        assert!(census.to_string().contains("type 1-a"));
    }

    #[test]
    fn empty_router_has_empty_census() {
        let router = Router::new(RouterConfig::paper_defaults());
        let census = ScenarioCensus::of(&router);
        assert_eq!(census.edges, 0);
        assert_eq!(census.total_realized(), 0);
    }
}
