//! The ECO undo/redo contract, property-tested on the corpus fixtures:
//! for every edit, `apply` → `undo` restores the pre-edit state digest
//! byte-identically (occupancy, blockages, colors, patterns, DSU
//! components, failure list and counters), and `undo` → `redo` restores
//! the post-edit digest. Edit scripts are generated from seeded
//! [`sadp_geom::Rng`] streams, so failures replay exactly.

use sadp_core::eco::{parse_edit_script, EcoEdit, EcoSession, OpOutcome};
use sadp_core::RouterConfig;
use sadp_geom::{GridPoint, Layer, Rng, TrackRect};
use sadp_grid::io::read_layout;
use sadp_grid::{BenchmarkSpec, Pin};
use std::path::PathBuf;

fn corpus(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../fixtures/corpus")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn session(fixture: &str) -> EcoSession {
    let (plane, netlist) = read_layout(&corpus(fixture)).expect("fixture parses");
    EcoSession::create(RouterConfig::paper_defaults(), plane, netlist, false)
        .expect("fixture routes")
}

/// Draws a random edit. Validation may still reject it (blocked cell,
/// pin collision) — the property loop simply skips those draws.
fn random_edit(rng: &mut Rng, eco: &EcoSession, step: usize) -> EcoEdit {
    let plane = eco.plane();
    let (w, h) = (plane.width(), plane.height());
    let pin = |rng: &mut Rng| {
        Pin::fixed(GridPoint::new(
            Layer(0),
            rng.range_i32(1..w - 1),
            rng.range_i32(1..h - 1),
        ))
    };
    let active: Vec<_> = eco.active_nets().collect();
    match rng.index(5) {
        0 => EcoEdit::AddNet {
            name: format!("eco{step}"),
            pins: vec![pin(rng), pin(rng)],
        },
        1 if !active.is_empty() => EcoEdit::RemoveNet {
            net: active[rng.index(active.len())],
        },
        2 if !active.is_empty() => EcoEdit::MoveNet {
            net: active[rng.index(active.len())],
            pins: vec![pin(rng), pin(rng)],
        },
        3 if !eco.obstacles().is_empty() => {
            let (layer, rect) = eco.obstacles()[rng.index(eco.obstacles().len())];
            EcoEdit::RemoveObstacle { layer, rect }
        }
        _ => {
            let x = rng.range_i32(0..w - 3);
            let y = rng.range_i32(0..h - 3);
            EcoEdit::AddObstacle {
                layer: Layer(rng.index(plane.layers() as usize) as u8),
                rect: TrackRect::new(x, y, x + rng.range_i32(1..4), y + rng.range_i32(1..4)),
            }
        }
    }
}

/// The property: run `steps` seeded edits; around each accepted edit,
/// undo restores the before-digest and redo the after-digest; at the
/// end, unwinding the whole journal restores every earlier digest in
/// reverse order, down to the pristine batch result.
fn check_fixture(fixture: &str, seed: u64, steps: usize) {
    let mut eco = session(fixture);
    let mut rng = Rng::seed_from_u64(seed);
    // Digest after each applied edit; index 0 is the batch result.
    let mut digests = vec![eco.state_digest()];
    let mut applied = 0usize;
    for step in 0..steps {
        let edit = random_edit(&mut rng, &eco, step);
        let before = eco.state_digest();
        assert_eq!(
            before,
            digests[digests.len() - 1],
            "{fixture}/{seed}: digest drifted between edits"
        );
        let Ok(outcome) = eco.apply(edit.clone()) else {
            continue; // validation rejected the draw
        };
        applied += 1;
        let after = eco.state_digest();
        eco.undo().expect("just applied");
        assert_eq!(
            eco.state_digest(),
            before,
            "{fixture}/{seed} step {step}: undo of {:?} (invalidated {:?}) \
             did not restore the pre-edit state",
            edit.kind(),
            outcome.invalidated,
        );
        eco.redo().expect("just undone");
        assert_eq!(
            eco.state_digest(),
            after,
            "{fixture}/{seed} step {step}: redo of {:?} did not restore \
             the post-edit state",
            edit.kind(),
        );
        digests.push(after);
    }
    assert!(
        applied >= steps / 2,
        "{fixture}/{seed}: only {applied}/{steps} draws were valid — \
         the generator is too weak to mean anything"
    );
    // Unwind the whole session.
    while eco.undo_depth() > 0 {
        eco.undo().expect("journal non-empty");
        digests.pop();
        assert_eq!(
            eco.state_digest(),
            digests[digests.len() - 1],
            "{fixture}/{seed}: unwinding depth {} diverged",
            digests.len() - 1,
        );
    }
}

#[test]
fn undo_is_byte_identical_on_clock_tree() {
    check_fixture("clock-tree-multi-terminal.layout", 1, 8);
    check_fixture("clock-tree-multi-terminal.layout", 2, 8);
}

#[test]
fn undo_is_byte_identical_on_dense_clock() {
    check_fixture("dense-clock-pad-assist-merge.layout", 3, 8);
}

#[test]
fn undo_is_byte_identical_on_odd_cycle() {
    check_fixture("odd-cycle-merge-and-cut.layout", 4, 8);
}

#[test]
fn undo_is_byte_identical_on_sparse_pairs() {
    check_fixture("sparse-pairs-flanked-pad.layout", 5, 6);
}

/// Regression: undo on a dense generated layout whose batch run ripped
/// up nets and left failures. The journal holds only surviving commits,
/// so the stage-4 risk heuristic sees a different coloring during the
/// restore replay than the original run did mid-route — it must not be
/// allowed to reject a commit that is part of a consistent final state
/// (the corpus fixtures route 100% and never caught this).
#[test]
fn undo_is_byte_identical_with_failed_nets() {
    let spec = BenchmarkSpec::paper_fixed_suite()
        .pop()
        .expect("suite is non-empty")
        .scaled(0.05);
    let (plane, netlist) = spec.generate();
    let mut eco = EcoSession::create(RouterConfig::paper_defaults(), plane, netlist, false)
        .expect("dense layout batches");
    let (_, failed, _) = eco.stats();
    assert!(failed > 0, "vacuous fixture: the batch must leave failures");
    let id = eco.active_nets().next().expect("nets exist");
    let before = eco.state_digest();
    eco.apply(EcoEdit::RemoveNet { net: id }).expect("valid");
    eco.undo().expect("just applied");
    assert_eq!(eco.state_digest(), before);
}

#[test]
fn anchor_script_round_trips() {
    // The shrunk anchor: a fixed script over the clock-tree fixture.
    let ops = parse_edit_script(&corpus("eco-undo-redo-roundtrip.edits")).expect("anchor parses");
    let mut eco = session("clock-tree-multi-terminal.layout");
    let initial = eco.state_digest();
    let outcomes = eco.run_script(&ops).expect("anchor applies cleanly");
    // Non-vacuity: the anchor exercises every edit kind and both verbs.
    let edits = outcomes
        .iter()
        .filter(|o| matches!(o, OpOutcome::Edit(_)))
        .count();
    assert_eq!(edits, 5);
    assert!(outcomes.iter().any(|o| matches!(o, OpOutcome::Undo)));
    assert!(outcomes.iter().any(|o| matches!(o, OpOutcome::Redo)));
    let settled = eco.state_digest();
    // Unwind everything: back to the pristine batch result.
    let depth = eco.undo_depth();
    for _ in 0..depth {
        eco.undo().expect("journal non-empty");
    }
    assert_eq!(eco.state_digest(), initial);
    // Replay everything: forward to the settled state again.
    for _ in 0..depth {
        eco.redo().expect("redo available");
    }
    assert_eq!(eco.state_digest(), settled);
}
