//! The incremental routing API: begin / route_incremental / finalize.

use sadp_core::{Router, RouterConfig, RouterError};
use sadp_geom::{DesignRules, GridPoint, Layer};
use sadp_grid::{Netlist, RoutingPlane};
use std::time::Instant;

fn p0(x: i32, y: i32) -> GridPoint {
    GridPoint::new(Layer(0), x, y)
}

fn netlist() -> Netlist {
    let mut nl = Netlist::new();
    nl.add_two_pin("a", p0(2, 5), p0(20, 5));
    nl.add_two_pin("b", p0(2, 6), p0(20, 6));
    nl.add_two_pin("c", p0(4, 10), p0(18, 14));
    nl
}

#[test]
fn incremental_matches_batch_in_hpwl_order() {
    let nl = netlist();

    let mut plane_a = RoutingPlane::new(3, 32, 32, DesignRules::node_10nm()).unwrap();
    let mut batch = Router::new(RouterConfig::paper_defaults());
    let batch_report = batch.route_all(&mut plane_a, &nl);

    let mut plane_b = RoutingPlane::new(3, 32, 32, DesignRules::node_10nm()).unwrap();
    let mut inc = Router::new(RouterConfig::paper_defaults());
    let start = Instant::now();
    inc.begin(&plane_b);
    for id in nl.ids_by_hpwl() {
        inc.route_incremental(&mut plane_b, nl.net(id)).unwrap();
    }
    inc.finalize(&mut plane_b, &nl);
    let inc_report = inc.report(&nl, start);

    assert_eq!(batch_report.routed_nets, inc_report.routed_nets);
    assert_eq!(batch_report.wirelength, inc_report.wirelength);
    assert_eq!(batch_report.overlay_units, inc_report.overlay_units);
    assert_eq!(batch_report.cut_conflicts, 0);
    assert_eq!(inc_report.cut_conflicts, 0);
}

#[test]
fn caller_controls_the_order() {
    // Routing the long net first changes the layout but not the
    // guarantees.
    let nl = netlist();
    let mut plane = RoutingPlane::new(3, 32, 32, DesignRules::node_10nm()).unwrap();
    let mut router = Router::new(RouterConfig::paper_defaults());
    router.begin(&plane);
    let mut order: Vec<_> = nl.ids_by_hpwl();
    order.reverse();
    for id in order {
        router.route_incremental(&mut plane, nl.net(id)).unwrap();
    }
    router.finalize(&mut plane, &nl);
    let report = router.report(&nl, Instant::now());
    assert_eq!(report.routed_nets, 3);
    assert_eq!(report.hard_overlay_violations, 0);
    assert_eq!(report.cut_conflicts, 0);
}

#[test]
fn route_incremental_requires_begin() {
    let nl = netlist();
    let mut plane = RoutingPlane::new(3, 32, 32, DesignRules::node_10nm()).unwrap();
    let mut router = Router::new(RouterConfig::paper_defaults());
    // Calling before begin() is a recoverable error, not a panic …
    assert_eq!(
        router.route_incremental(&mut plane, nl.net(sadp_grid::NetId(0))),
        Err(RouterError::NotBegun)
    );
    // … and the router is still usable afterwards.
    router.begin(&plane);
    assert_eq!(
        router.route_incremental(&mut plane, nl.net(sadp_grid::NetId(0))),
        Ok(true)
    );
}

#[test]
fn eco_style_addition_after_finalize() {
    // Add one more net after a finalized batch — an ECO-style flow.
    let nl = netlist();
    let mut plane = RoutingPlane::new(3, 32, 32, DesignRules::node_10nm()).unwrap();
    let mut router = Router::new(RouterConfig::paper_defaults());
    router.route_all(&mut plane, &nl);

    let mut extended = nl.clone();
    let extra = extended.add_two_pin("eco", p0(25, 2), p0(25, 20));
    let ok = router
        .route_incremental(&mut plane, extended.net(extra))
        .unwrap();
    assert!(ok);
    router.finalize(&mut plane, &extended);
    let report = router.report(&extended, Instant::now());
    assert_eq!(report.routed_nets, 4);
    assert_eq!(report.cut_conflicts, 0);
}

#[test]
fn incremental_threads_the_callers_recorder() {
    // `route_incremental_with` must feed the caller's recorder, not a
    // silent no-op: the trace is the only evidence of what ran. Two
    // isolated nets route first-try, so the JSONL is a stable golden.
    let mut nl = Netlist::new();
    nl.add_two_pin("a", p0(2, 2), p0(12, 2));
    nl.add_two_pin("b", p0(2, 20), p0(12, 20));
    let mut plane = RoutingPlane::new(3, 32, 32, DesignRules::node_10nm()).unwrap();
    let mut router = Router::new(RouterConfig::paper_defaults());
    router.begin(&plane);
    let mut rec = sadp_obs::BufferRecorder::with_flags(true, false);
    for net in nl.iter() {
        let ok = router
            .route_incremental_with(&mut plane, net, &mut rec)
            .unwrap();
        assert!(ok);
    }
    let jsonl = sadp_obs::events_to_jsonl(&rec.take_events());
    assert_eq!(
        jsonl,
        "{\"event\":\"net_routed\",\"net\":0,\"attempts\":1,\"flipped\":false}\n\
         {\"event\":\"net_routed\",\"net\":1,\"attempts\":1,\"flipped\":false}\n"
    );
}

/// Walls every layer at x = 8 so nothing crosses it.
fn wall(plane: &mut RoutingPlane) {
    for l in 0..plane.layers() {
        plane.add_blockage(Layer(l), sadp_geom::TrackRect::new(8, 0, 8, 31));
    }
}

#[test]
fn failed_net_releases_its_pin_reservations() {
    // Net `a` cannot cross the wall and fails; its reserved pin cells
    // must be released, or net `b` — whose shortest path runs straight
    // through `a`'s source — would be blocked by a net that isn't there.
    let mut nl = Netlist::new();
    let a = nl.add_two_pin("a", p0(2, 2), p0(12, 2));
    let b = nl.add_two_pin("b", p0(1, 2), p0(3, 2));
    let mut plane = RoutingPlane::new(3, 32, 32, DesignRules::node_10nm()).unwrap();
    wall(&mut plane);
    let mut router = Router::new(RouterConfig::paper_defaults());
    router.begin(&plane);
    assert_eq!(router.route_incremental(&mut plane, nl.net(a)), Ok(false));
    assert!(plane.is_free(p0(2, 2)), "failed net must release its pins");
    assert_eq!(router.route_incremental(&mut plane, nl.net(b)), Ok(true));
    assert_eq!(plane.occupant(p0(2, 2)), Some(b));
    router.finalize(&mut plane, &nl);
    let report = router.report(&nl, Instant::now());
    assert_eq!(report.routed_nets, 1);
    assert_eq!(report.total_nets - report.routed_nets, 1);
}

#[test]
fn retries_neither_duplicate_failures_nor_keep_stale_ones() {
    let mut nl = Netlist::new();
    let a = nl.add_two_pin("a", p0(2, 2), p0(12, 2));
    let mut plane = RoutingPlane::new(3, 32, 32, DesignRules::node_10nm()).unwrap();
    wall(&mut plane);
    let mut router = Router::new(RouterConfig::paper_defaults());
    router.begin(&plane);
    // Two failed attempts record the net once, not twice.
    assert_eq!(router.route_incremental(&mut plane, nl.net(a)), Ok(false));
    assert_eq!(router.route_incremental(&mut plane, nl.net(a)), Ok(false));
    assert_eq!(router.failed(), &[a]);
    // Tear the wall down: the retry succeeds and clears the record.
    for l in 0..plane.layers() {
        plane.clear_blockage(Layer(l), sadp_geom::TrackRect::new(8, 0, 8, 31));
    }
    assert_eq!(router.route_incremental(&mut plane, nl.net(a)), Ok(true));
    assert_eq!(router.failed(), &[]);
    router.finalize(&mut plane, &nl);
    let report = router.report(&nl, Instant::now());
    assert_eq!(report.routed_nets, 1);
    assert_eq!(report.total_nets, report.routed_nets);
}
