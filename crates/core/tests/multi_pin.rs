//! Multi-terminal net routing (the trunk-plus-branches extension).

use sadp_core::{Router, RouterConfig};
use sadp_geom::{DesignRules, GridPoint, Layer, TrackRect};
use sadp_grid::{NetId, Netlist, Pin, RoutingPlane};

fn p0(x: i32, y: i32) -> GridPoint {
    GridPoint::new(Layer(0), x, y)
}

#[test]
fn three_terminal_net_routes_as_one_polygon() {
    let mut plane = RoutingPlane::new(3, 32, 32, DesignRules::node_10nm()).unwrap();
    let mut nl = Netlist::new();
    let id = nl.add_multi_pin(
        "tee",
        vec![
            Pin::fixed(p0(4, 10)),
            Pin::fixed(p0(24, 10)),
            Pin::fixed(p0(14, 20)),
        ],
    );
    let mut router = Router::new(RouterConfig::paper_defaults());
    let report = router.route_all(&mut plane, &nl);
    assert_eq!(report.routed_nets, 1, "{report}");
    assert_eq!(report.cut_conflicts, 0);

    let routed = &router.routed()[&id];
    assert_eq!(routed.branches.len(), 1);
    // The branch taps the trunk: its last point lies on the trunk or an
    // earlier branch.
    let branch = &routed.branches[0];
    assert!(routed.path.points().contains(&branch.target()));
    // Every terminal is covered by the net.
    for pin in nl.net(id).pins() {
        assert!(
            routed.all_points().any(|q| q == pin.primary()),
            "terminal {} connected",
            pin.primary()
        );
    }
    // Wirelength counts trunk + branch.
    assert_eq!(report.wirelength, routed.wirelength());
    assert!(routed.wirelength() >= 20 + 10);
}

#[test]
fn five_terminal_net() {
    let mut plane = RoutingPlane::new(3, 48, 48, DesignRules::node_10nm()).unwrap();
    let mut nl = Netlist::new();
    let id = nl.add_multi_pin(
        "clk_tree",
        vec![
            Pin::fixed(p0(24, 24)),
            Pin::fixed(p0(8, 8)),
            Pin::fixed(p0(40, 8)),
            Pin::fixed(p0(8, 40)),
            Pin::fixed(p0(40, 40)),
        ],
    );
    let mut router = Router::new(RouterConfig::paper_defaults());
    let report = router.route_all(&mut plane, &nl);
    assert_eq!(report.routed_nets, 1);
    let routed = &router.routed()[&id];
    assert_eq!(routed.branches.len(), 3);
    assert_eq!(report.hard_overlay_violations, 0);
}

#[test]
fn multi_pin_nets_mix_with_two_pin_nets() {
    let mut plane = RoutingPlane::new(3, 40, 40, DesignRules::node_10nm()).unwrap();
    let mut nl = Netlist::new();
    nl.add_multi_pin(
        "bus_tap",
        vec![
            Pin::fixed(p0(4, 10)),
            Pin::fixed(p0(30, 10)),
            Pin::fixed(p0(16, 20)),
        ],
    );
    // A neighbour one track over: the hard 1-a constraint must still hold
    // against the multi-pin net's trunk.
    let two = nl.add_two_pin("neighbor", p0(4, 11), p0(30, 11));
    let mut router = Router::new(RouterConfig::paper_defaults());
    let report = router.route_all(&mut plane, &nl);
    assert_eq!(report.routed_nets, 2, "{report}");
    assert_eq!(report.hard_overlay_violations, 0);
    // Wherever the hard 1-a relation materialised, the colors obey it.
    let g = &router.graphs()[0];
    if let Some(edge) = g.edge(0, two.0) {
        if edge.table.hard_parity() == Some(true) {
            let a = router.color_of(NetId(0), Layer(0)).unwrap();
            let b = router.color_of(two, Layer(0)).unwrap();
            assert_ne!(a, b);
        }
    }
}

#[test]
fn branch_failure_fails_the_whole_net() {
    let mut plane = RoutingPlane::new(1, 24, 24, DesignRules::node_10nm()).unwrap();
    // Wall off the third terminal completely.
    plane.add_blockage(Layer(0), TrackRect::new(0, 15, 23, 15));
    let mut nl = Netlist::new();
    nl.add_multi_pin(
        "cut_off",
        vec![
            Pin::fixed(p0(2, 2)),
            Pin::fixed(p0(20, 2)),
            Pin::fixed(p0(10, 20)),
        ],
    );
    let mut router = Router::new(RouterConfig::paper_defaults());
    let report = router.route_all(&mut plane, &nl);
    assert_eq!(report.routed_nets, 0);
    assert_eq!(router.failed().len(), 1);
    // Nothing but the reserved pins remains on the plane.
    let (_, blocked_and_free, occupied) = {
        let (f, b, o) = plane.usage();
        (f, b, o)
    };
    let _ = blocked_and_free;
    assert_eq!(occupied, 3, "only the reserved pin cells remain");
}
