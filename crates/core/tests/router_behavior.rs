//! Behavioural tests of the router's mechanisms: merge technique,
//! pin guards, rip-up bookkeeping, ablation switches.

use sadp_core::{Router, RouterConfig, ScenarioCensus};
use sadp_geom::{DesignRules, GridPoint, Layer, TrackRect};
use sadp_grid::{Netlist, RoutingPlane};
use sadp_scenario::ScenarioKind;

fn p0(x: i32, y: i32) -> GridPoint {
    GridPoint::new(Layer(0), x, y)
}

fn channel_plane() -> RoutingPlane {
    // A single-layer 2-track channel: rows 5 and 6 only.
    let mut plane = RoutingPlane::new(1, 24, 16, DesignRules::node_10nm()).unwrap();
    plane.add_blockage(Layer(0), TrackRect::new(0, 0, 23, 4));
    plane.add_blockage(Layer(0), TrackRect::new(0, 7, 23, 15));
    plane
}

fn odd_cycle_netlist() -> Netlist {
    let mut nl = Netlist::new();
    nl.add_two_pin("A", p0(2, 5), p0(6, 5));
    nl.add_two_pin("B", p0(7, 5), p0(12, 5));
    nl.add_two_pin("C", p0(2, 6), p0(12, 6));
    nl
}

fn no_guard() -> RouterConfig {
    RouterConfig {
        pin_guard: 0.0,
        ..RouterConfig::paper_defaults()
    }
}

#[test]
fn merge_technique_resolves_the_channel() {
    let mut plane = channel_plane();
    let mut router = Router::new(no_guard());
    let report = router.route_all(&mut plane, &odd_cycle_netlist());
    assert_eq!(report.routed_nets, 3, "{report}");
    assert_eq!(report.cut_conflicts, 0);
    // A and B are hard-linked same-color (1-b), C differs from both.
    let census = ScenarioCensus::of(&router);
    assert!(census.counts.contains_key(&ScenarioKind::OneB));
    assert!(census.counts.contains_key(&ScenarioKind::OneA));
}

#[test]
fn disabling_merge_reproduces_the_16_handicap() {
    let mut plane = channel_plane();
    let mut router = Router::new(RouterConfig {
        allow_merge: false,
        ..no_guard()
    });
    let report = router.route_all(&mut plane, &odd_cycle_netlist());
    // Without merge-and-cut the tip-to-tip pair cannot exist and the
    // channel leaves no room to detour: one net must fail.
    assert!(report.routed_nets < 3, "{report}");
    assert_eq!(report.cut_conflicts, 0, "conflict-free is still guaranteed");
}

#[test]
fn pin_guards_keep_pin_neighborhoods_clear() {
    // A long net routed first would hug the later net's pin without
    // guards; with guards its route leaves the pin cell approachable.
    let build = |guard: f64| {
        let mut plane = RoutingPlane::new(1, 32, 16, DesignRules::node_10nm()).unwrap();
        let mut nl = Netlist::new();
        // Long net passes right next to `victim`'s source pin.
        nl.add_two_pin("long", p0(1, 6), p0(30, 6));
        nl.add_two_pin("victim", p0(15, 5), p0(15, 2));
        let mut router = Router::new(RouterConfig {
            pin_guard: guard,
            ..RouterConfig::paper_defaults()
        });
        let report = router.route_all(&mut plane, &nl);
        report.routed_nets
    };
    // Both configurations route (rip-up handles the conflict), but the
    // guarded run must never do worse.
    assert!(build(2.0) >= build(0.0));
}

#[test]
fn failed_nets_leave_no_trace() {
    let mut plane = RoutingPlane::new(1, 16, 16, DesignRules::node_10nm()).unwrap();
    // Wall the middle completely.
    plane.add_blockage(Layer(0), TrackRect::new(8, 0, 8, 15));
    let mut nl = Netlist::new();
    nl.add_two_pin("blocked", p0(2, 5), p0(14, 5));
    nl.add_two_pin("fine", p0(2, 8), p0(6, 8));
    let mut router = Router::new(RouterConfig::paper_defaults());
    let report = router.route_all(&mut plane, &nl);
    assert_eq!(report.routed_nets, 1);
    assert_eq!(router.failed().len(), 1);
    // The failed net holds no cells except its reserved pins and no graph
    // vertices.
    for g in router.graphs() {
        assert!(!g.contains(0) || g.neighbors(0).is_empty());
    }
    let (_, _, occupied) = plane.usage();
    // fine's path (5 cells) + reserved pin cells of the failed net (2).
    assert_eq!(occupied, 7);
}

#[test]
fn report_counters_add_up() {
    let mut plane = RoutingPlane::new(3, 48, 48, DesignRules::node_10nm()).unwrap();
    let mut nl = Netlist::new();
    for i in 0..10 {
        nl.add_two_pin(format!("n{i}"), p0(2 + 4 * (i % 5), 2 + i), p0(40, 40 - i));
    }
    let mut router = Router::new(RouterConfig::paper_defaults());
    let report = router.route_all(&mut plane, &nl);
    assert_eq!(
        report.ripups,
        report.ripups_type_b + report.ripups_graph + report.ripups_risk
    );
    assert_eq!(report.total_nets, 10);
    assert!(report.nodes_expanded > 0);
    assert_eq!(
        report.total_nets,
        report.routed_nets + router.failed().len()
    );
}

#[test]
fn via_rich_route_counts_layers() {
    let mut plane = RoutingPlane::new(3, 24, 24, DesignRules::node_10nm()).unwrap();
    // Block all direct planar routes on M1.
    plane.add_blockage(Layer(0), TrackRect::new(10, 0, 10, 23));
    let mut nl = Netlist::new();
    nl.add_two_pin("v", p0(2, 5), p0(20, 5));
    let mut router = Router::new(RouterConfig::paper_defaults());
    let report = router.route_all(&mut plane, &nl);
    assert_eq!(report.routed_nets, 1);
    assert!(report.vias >= 2);
    let routed = router.routed().values().next().unwrap();
    let layers: std::collections::HashSet<u8> = routed.fragments.iter().map(|(l, _)| l.0).collect();
    assert!(layers.len() >= 2, "route uses multiple layers");
}

#[test]
fn rerun_resets_state() {
    let mut nl = Netlist::new();
    nl.add_two_pin("a", p0(2, 2), p0(12, 2));
    let mut router = Router::new(RouterConfig::paper_defaults());
    let mut plane1 = RoutingPlane::new(3, 24, 24, DesignRules::node_10nm()).unwrap();
    let r1 = router.route_all(&mut plane1, &nl);
    let mut plane2 = RoutingPlane::new(3, 24, 24, DesignRules::node_10nm()).unwrap();
    let r2 = router.route_all(&mut plane2, &nl);
    assert_eq!(r1.routed_nets, r2.routed_nets);
    assert_eq!(r1.wirelength, r2.wirelength);
    assert_eq!(router.routed().len(), 1);
}

#[test]
fn net_order_variants_all_route_cleanly() {
    use sadp_core::NetOrder;
    for order in [
        NetOrder::HpwlAscending,
        NetOrder::HpwlDescending,
        NetOrder::Given,
    ] {
        let mut plane = RoutingPlane::new(3, 40, 40, DesignRules::node_10nm()).unwrap();
        let mut nl = Netlist::new();
        for i in 0..8 {
            nl.add_two_pin(format!("n{i}"), p0(2, 4 + 2 * i), p0(30, 36 - 2 * i));
        }
        let mut router = Router::new(RouterConfig {
            net_order: order,
            ..RouterConfig::paper_defaults()
        });
        let report = router.route_all(&mut plane, &nl);
        assert_eq!(report.cut_conflicts, 0, "{order:?}");
        assert_eq!(report.hard_overlay_violations, 0, "{order:?}");
        assert!(report.routed_nets >= 7, "{order:?}: {report}");
    }
}
