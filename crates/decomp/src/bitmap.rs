//! A dense boolean pixel grid with the morphological operations the
//! decomposition simulator is built on.

use std::fmt;

/// A row-major boolean pixel grid.
///
/// # Example
///
/// ```
/// use sadp_decomp::Bitmap;
/// let mut b = Bitmap::new(8, 8);
/// b.fill_rect(2, 2, 3, 3);
/// assert_eq!(b.count(), 4);
/// let d = b.dilated(1);
/// assert!(d.get(1, 1) && d.get(4, 4) && !d.get(5, 5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    width: usize,
    height: usize,
    bits: Vec<bool>,
}

impl Bitmap {
    /// Creates an all-false bitmap.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Bitmap {
        Bitmap {
            width,
            height,
            bits: vec![false; width * height],
        }
    }

    /// Width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The pixel at `(x, y)`; out-of-bounds reads are `false`.
    #[must_use]
    pub fn get(&self, x: i64, y: i64) -> bool {
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            return false;
        }
        self.bits[y as usize * self.width + x as usize]
    }

    /// Sets the pixel at `(x, y)`; out-of-bounds writes are ignored.
    pub fn set(&mut self, x: i64, y: i64, value: bool) {
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            return;
        }
        self.bits[y as usize * self.width + x as usize] = value;
    }

    /// Sets the inclusive pixel rectangle `[x0..=x1] × [y0..=y1]` to true,
    /// clipped to the bitmap.
    pub fn fill_rect(&mut self, x0: i64, y0: i64, x1: i64, y1: i64) {
        let xa = x0.max(0) as usize;
        let ya = y0.max(0) as usize;
        let xb = (x1.min(self.width as i64 - 1)).max(-1);
        let yb = (y1.min(self.height as i64 - 1)).max(-1);
        if xb < xa as i64 || yb < ya as i64 {
            return;
        }
        for y in ya..=yb as usize {
            let row = y * self.width;
            self.bits[row + xa..=row + xb as usize].fill(true);
        }
    }

    /// Number of set pixels.
    #[must_use]
    pub fn count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Whether no pixel is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        !self.bits.iter().any(|&b| b)
    }

    /// L∞ (square structuring element) dilation by `r` pixels, computed
    /// separably.
    #[must_use]
    pub fn dilated(&self, r: usize) -> Bitmap {
        if r == 0 {
            return self.clone();
        }
        let mut tmp = Bitmap::new(self.width, self.height);
        // Horizontal pass.
        for y in 0..self.height {
            let row = y * self.width;
            for x in 0..self.width {
                if self.bits[row + x] {
                    let a = x.saturating_sub(r);
                    let b = (x + r).min(self.width - 1);
                    tmp.bits[row + a..=row + b].fill(true);
                }
            }
        }
        // Vertical pass.
        let mut out = Bitmap::new(self.width, self.height);
        for x in 0..self.width {
            let mut y = 0;
            while y < self.height {
                if tmp.bits[y * self.width + x] {
                    let a = y.saturating_sub(r);
                    let b = (y + r).min(self.height - 1);
                    for yy in a..=b {
                        out.bits[yy * self.width + x] = true;
                    }
                }
                y += 1;
            }
        }
        out
    }

    /// L∞ erosion by `r` pixels. Out-of-canvas pixels count as foreground,
    /// so regions touching the border do not erode from that direction and
    /// [`Bitmap::closed`] is extensive (never removes original pixels).
    #[must_use]
    pub fn eroded(&self, r: usize) -> Bitmap {
        if r == 0 {
            return self.clone();
        }
        let mut inv = self.clone();
        for b in &mut inv.bits {
            *b = !*b;
        }
        // Erode = complement of dilation of the complement; the complement
        // is background outside the canvas, so borders are preserved.
        let mut grown = inv.dilated(r);
        for b in &mut grown.bits {
            *b = !*b;
        }
        grown
    }

    /// Morphological closing (dilation then erosion) by `r`: fills gaps of
    /// width ≤ `2r` between set regions.
    #[must_use]
    pub fn closed(&self, r: usize) -> Bitmap {
        self.dilated(r).eroded(r)
    }

    /// Pixel-wise union.
    #[must_use]
    pub fn union(&self, other: &Bitmap) -> Bitmap {
        self.zip(other, |a, b| a | b)
    }

    /// Pixel-wise difference (`self AND NOT other`).
    #[must_use]
    pub fn minus(&self, other: &Bitmap) -> Bitmap {
        self.zip(other, |a, b| a & !b)
    }

    /// Pixel-wise intersection.
    #[must_use]
    pub fn intersect(&self, other: &Bitmap) -> Bitmap {
        self.zip(other, |a, b| a & b)
    }

    /// Pixel-wise complement (within the canvas).
    #[must_use]
    pub fn complement(&self) -> Bitmap {
        let mut out = self.clone();
        for b in &mut out.bits {
            *b = !*b;
        }
        out
    }

    fn zip(&self, other: &Bitmap, f: impl Fn(bool, bool) -> bool) -> Bitmap {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "bitmap sizes must match"
        );
        let mut out = Bitmap::new(self.width, self.height);
        for (o, (&a, &b)) in out.bits.iter_mut().zip(self.bits.iter().zip(&other.bits)) {
            *o = f(a, b);
        }
        out
    }

    /// Labels 4-connected components; returns `(labels, count)` where
    /// unset pixels get label 0 and components are labelled `1..=count`.
    #[must_use]
    pub fn components(&self) -> (Vec<u32>, u32) {
        let mut labels = vec![0u32; self.bits.len()];
        let mut next = 0u32;
        let mut stack = Vec::new();
        for start in 0..self.bits.len() {
            if !self.bits[start] || labels[start] != 0 {
                continue;
            }
            next += 1;
            labels[start] = next;
            stack.push(start);
            while let Some(i) = stack.pop() {
                let (x, y) = (i % self.width, i / self.width);
                let mut visit = |j: usize| {
                    if self.bits[j] && labels[j] == 0 {
                        labels[j] = next;
                        stack.push(j);
                    }
                };
                if x > 0 {
                    visit(i - 1);
                }
                if x + 1 < self.width {
                    visit(i + 1);
                }
                if y > 0 {
                    visit(i - self.width);
                }
                if y + 1 < self.height {
                    visit(i + self.width);
                }
            }
        }
        (labels, next)
    }
}

impl fmt::Display for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for y in (0..self.height).rev() {
            for x in 0..self.width {
                write!(
                    f,
                    "{}",
                    if self.bits[y * self.width + x] {
                        '#'
                    } else {
                        '.'
                    }
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_bounds() {
        let mut b = Bitmap::new(4, 4);
        b.set(1, 2, true);
        assert!(b.get(1, 2));
        assert!(!b.get(0, 0));
        assert!(!b.get(-1, 0));
        assert!(!b.get(9, 9));
        b.set(-1, 0, true); // ignored
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn fill_rect_clipped() {
        let mut b = Bitmap::new(4, 4);
        b.fill_rect(-2, -2, 1, 1);
        assert_eq!(b.count(), 4);
        b.fill_rect(3, 3, 10, 10);
        assert_eq!(b.count(), 5);
        let mut c = Bitmap::new(4, 4);
        c.fill_rect(5, 5, 6, 6); // fully outside
        assert!(c.is_empty());
    }

    #[test]
    fn dilation_and_erosion() {
        let mut b = Bitmap::new(9, 9);
        b.set(4, 4, true);
        let d = b.dilated(2);
        assert_eq!(d.count(), 25);
        assert!(d.get(2, 2) && d.get(6, 6));
        let e = d.eroded(2);
        assert_eq!(e, b);
    }

    #[test]
    fn erosion_treats_outside_as_foreground() {
        // A full canvas does not erode at all: out-of-canvas pixels count
        // as foreground so closing stays extensive.
        let mut b = Bitmap::new(4, 4);
        b.fill_rect(0, 0, 3, 3);
        assert_eq!(b.eroded(1), b);
        // An interior island erodes normally.
        let mut c = Bitmap::new(8, 8);
        c.fill_rect(2, 2, 5, 5);
        let e = c.eroded(1);
        assert_eq!(e.count(), 4);
        assert!(e.get(3, 3) && !e.get(2, 2));
    }

    #[test]
    fn closing_fills_small_gaps_only() {
        // Two vertical bars separated by a 2px gap close; a 3px gap does not.
        let mut b = Bitmap::new(16, 8);
        b.fill_rect(1, 0, 2, 7);
        b.fill_rect(5, 0, 6, 7); // gap 2 (columns 3,4)
        b.fill_rect(10, 0, 11, 7); // gap 3 from previous (columns 7,8,9)
        let c = b.closed(1);
        assert!(c.get(3, 4) && c.get(4, 4), "2px gap filled");
        assert!(!c.get(8, 4), "3px gap preserved");
        // Closing never shrinks the original.
        assert!(c.minus(&b).count() > 0 || c == b);
        assert!(b.minus(&c).is_empty());
    }

    #[test]
    fn set_ops() {
        let mut a = Bitmap::new(3, 1);
        a.set(0, 0, true);
        a.set(1, 0, true);
        let mut b = Bitmap::new(3, 1);
        b.set(1, 0, true);
        b.set(2, 0, true);
        assert_eq!(a.union(&b).count(), 3);
        assert_eq!(a.intersect(&b).count(), 1);
        assert_eq!(a.minus(&b).count(), 1);
        assert_eq!(a.complement().count(), 1);
    }

    #[test]
    fn components_labelling() {
        let mut b = Bitmap::new(8, 8);
        b.fill_rect(0, 0, 1, 1);
        b.fill_rect(4, 4, 6, 4);
        b.set(7, 7, true);
        let (labels, n) = b.components();
        assert_eq!(n, 3);
        assert_eq!(labels[0], labels[8 + 1]);
        assert_ne!(labels[0], labels[4 * 8 + 4]);
    }

    #[test]
    fn display_renders_grid() {
        let mut b = Bitmap::new(2, 2);
        b.set(0, 1, true);
        let s = b.to_string();
        assert_eq!(s, "#.\n..\n");
    }
}
