//! Critical cut-pattern extraction (Section III-D).
//!
//! The paper: *"We refer to cut patterns that directly define edges of
//! target patterns as critical cut patterns. Note that only critical cut
//! patterns may induce cut conflicts."* This module extracts exactly those
//! regions from a [`Decomposition`] — the connected cut components
//! touching a target boundary — together with the geometry the mask-rule
//! checks care about.

use crate::bitmap::Bitmap;
use crate::cutsim::{Decomposition, PX_NM};
use sadp_geom::Nm;

/// One critical cut pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutPattern {
    /// Pixel bounding box `(x0, y0, x1, y1)`, inclusive.
    pub bbox_px: (i64, i64, i64, i64),
    /// Component area in pixels.
    pub area_px: usize,
    /// Indices of the target patterns whose boundary this cut defines.
    pub touches: Vec<usize>,
    /// Minimum feature width of the component, in pixels (the `w_cut`
    /// mask-rule quantity), estimated by erosion.
    pub min_width_px: usize,
}

impl CutPattern {
    /// Minimum feature width as a physical length.
    #[must_use]
    pub fn min_width(&self) -> Nm {
        Nm(self.min_width_px as i64 * PX_NM)
    }
}

/// Extracts the critical cut patterns of a decomposition: connected
/// components of the cut region that are 4-adjacent to target metal.
///
/// # Example
///
/// ```
/// use sadp_decomp::{critical_cuts, ColoredPattern, CutSimulator};
/// use sadp_geom::{DesignRules, TrackRect};
/// use sadp_scenario::Color;
///
/// // A merged tip-to-tip pair: exactly one cut separates the tips.
/// let sim = CutSimulator::new(DesignRules::node_10nm());
/// let pats = vec![
///     ColoredPattern::new(0, Color::Core, vec![TrackRect::new(0, 0, 4, 0)]),
///     ColoredPattern::new(1, Color::Core, vec![TrackRect::new(5, 0, 9, 0)]),
/// ];
/// let d = sim.run(&pats);
/// let cuts = critical_cuts(&d);
/// assert_eq!(cuts.len(), 1);
/// assert_eq!(cuts[0].touches, vec![0, 1]);
/// ```
#[must_use]
pub fn critical_cuts(decomp: &Decomposition) -> Vec<CutPattern> {
    let (labels, count) = decomp.cut.components();
    if count == 0 {
        return Vec::new();
    }
    let w = decomp.cut.width();
    let h = decomp.cut.height();

    // Which components touch a target, and which patterns they touch.
    let mut touches: Vec<Vec<usize>> = vec![Vec::new(); count as usize + 1];
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            if !decomp.target.get(x, y) {
                continue;
            }
            let own = decomp.owner[y as usize * w + x as usize];
            if own == 0 {
                continue;
            }
            for (dx, dy) in [(1, 0), (-1, 0), (0, 1), (0, -1)] {
                let (nx, ny) = (x + dx, y + dy);
                if nx < 0 || ny < 0 || nx >= w as i64 || ny >= h as i64 {
                    continue;
                }
                let label = labels[ny as usize * w + nx as usize];
                if label != 0 {
                    let t = &mut touches[label as usize];
                    if !t.contains(&(own as usize - 1)) {
                        t.push(own as usize - 1);
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    for label in 1..=count {
        if touches[label as usize].is_empty() {
            continue; // field cut region, not critical
        }
        // Collect the component into its own bitmap for the width check.
        let mut bbox = (i64::MAX, i64::MAX, i64::MIN, i64::MIN);
        let mut comp = Bitmap::new(w, h);
        let mut area = 0usize;
        for y in 0..h as i64 {
            for x in 0..w as i64 {
                if labels[y as usize * w + x as usize] == label {
                    comp.set(x, y, true);
                    area += 1;
                    bbox.0 = bbox.0.min(x);
                    bbox.1 = bbox.1.min(y);
                    bbox.2 = bbox.2.max(x);
                    bbox.3 = bbox.3.max(y);
                }
            }
        }
        let mut min_width = 0usize;
        let mut eroded = comp.clone();
        while !eroded.is_empty() {
            min_width += 1;
            eroded = eroded.eroded(1);
            // A feature of width w survives floor((w-1)/2) erosions, so
            // width ≈ 2*erosions - 1 .. 2*erosions; report the lower bound
            // doubled for an even estimate.
            if min_width > 64 {
                break; // huge field-like component, width is not the issue
            }
        }
        let mut touching = touches[label as usize].clone();
        touching.sort_unstable();
        out.push(CutPattern {
            bbox_px: bbox,
            area_px: area,
            touches: touching,
            min_width_px: min_width * 2 - 1,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutsim::CutSimulator;
    use crate::layout::ColoredPattern;
    use sadp_geom::{DesignRules, TrackRect};
    use sadp_scenario::Color;

    fn sim() -> CutSimulator {
        CutSimulator::new(DesignRules::node_10nm())
    }

    #[test]
    fn isolated_core_wire_has_no_critical_cuts() {
        let d = sim().run(&[ColoredPattern::new(
            0,
            Color::Core,
            vec![TrackRect::new(2, 2, 8, 2)],
        )]);
        assert!(critical_cuts(&d).is_empty());
    }

    #[test]
    fn isolated_second_wire_has_no_critical_cuts() {
        let d = sim().run(&[ColoredPattern::new(
            0,
            Color::Second,
            vec![TrackRect::new(2, 2, 8, 2)],
        )]);
        assert!(critical_cuts(&d).is_empty());
    }

    #[test]
    fn merged_pair_has_one_separating_cut() {
        let d = sim().run(&[
            ColoredPattern::new(0, Color::Core, vec![TrackRect::new(0, 0, 4, 0)]),
            ColoredPattern::new(1, Color::Core, vec![TrackRect::new(5, 0, 9, 0)]),
        ]);
        let cuts = critical_cuts(&d);
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].touches, vec![0, 1]);
        // The separating cut is the w_spacer-wide gap: exactly w_cut.
        let (x0, _, x1, _) = cuts[0].bbox_px;
        assert_eq!(x1 - x0 + 1, 2, "cut spans the 20nm gap");
    }

    #[test]
    fn tip_to_side_merge_has_a_critical_cut_on_both() {
        // 2-b CC: the vertical tip merges into the horizontal side; the
        // separating cut defines boundary on both patterns.
        let d = sim().run(&[
            ColoredPattern::new(0, Color::Core, vec![TrackRect::new(0, 0, 6, 0)]),
            ColoredPattern::new(1, Color::Core, vec![TrackRect::new(3, 1, 3, 5)]),
        ]);
        let cuts = critical_cuts(&d);
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].touches, vec![0, 1]);
        assert!(cuts[0].min_width() >= Nm(10));
    }

    #[test]
    fn violated_1a_pair_has_a_long_critical_cut() {
        let d = sim().run(&[
            ColoredPattern::new(0, Color::Core, vec![TrackRect::new(0, 0, 6, 0)]),
            ColoredPattern::new(1, Color::Core, vec![TrackRect::new(0, 1, 6, 1)]),
        ]);
        let cuts = critical_cuts(&d);
        assert!(!cuts.is_empty());
        let longest = cuts
            .iter()
            .map(|c| (c.bbox_px.2 - c.bbox_px.0 + 1).max(c.bbox_px.3 - c.bbox_px.1 + 1))
            .max()
            .unwrap();
        assert!(longest > 2, "the cut runs along the facing overlap");
    }
}
