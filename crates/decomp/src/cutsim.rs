//! The SADP cut-process decomposition simulator.

use crate::bitmap::Bitmap;
use crate::layout::ColoredPattern;
use sadp_geom::{DesignRules, Orientation};
use sadp_scenario::Color;

/// Pixel resolution of the simulator, in nanometres.
pub const PX_NM: i64 = 10;

/// One contiguous run of unprotected (cut-defined) target boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlayRun {
    /// Index of the pattern (into the simulator input) the run lies on.
    pub pattern: usize,
    /// Run length in pixels.
    pub len_px: usize,
    /// Whether the run lies on a side boundary (vs. a line-end tip).
    pub is_side: bool,
}

/// Measured metrics of one decomposition.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DecompReport {
    /// Total side-overlay length in pixels.
    pub side_overlay_px: usize,
    /// Total tip-overlay length in pixels (noncritical).
    pub tip_overlay_px: usize,
    /// Number of side-overlay runs strictly longer than `w_line`
    /// (hard overlays, strictly forbidden).
    pub hard_overlay_runs: usize,
    /// Number of type-B cut conflicts (two parallel cut-defined boundary
    /// sections of one target within `d_cut`).
    pub cut_conflicts: usize,
    /// Pixels where a spacer overlaps a target pattern (the decomposition
    /// destroys the target; must be 0).
    pub spacer_violations: usize,
    /// All overlay runs.
    pub runs: Vec<OverlayRun>,
    w_line_px: usize,
}

impl DecompReport {
    /// Side overlay in `w_line` units (the paper's "overlay length").
    #[must_use]
    pub fn side_overlay_units(&self) -> u64 {
        (self.side_overlay_px / self.w_line_px.max(1)) as u64
    }

    /// Side overlay in nanometres.
    #[must_use]
    pub fn side_overlay_nm(&self) -> i64 {
        self.side_overlay_px as i64 * PX_NM
    }

    /// Whether the layout decomposed without destroying any target and
    /// without hard overlays or cut conflicts.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.hard_overlay_runs == 0 && self.cut_conflicts == 0 && self.spacer_violations == 0
    }
}

/// The mask set produced by one simulation.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Target metal pixels.
    pub target: Bitmap,
    /// Final core mask (core patterns + assists, after merging).
    pub core: Bitmap,
    /// Spacer pixels.
    pub spacer: Bitmap,
    /// Required cut pixels (`NOT spacer − target`).
    pub cut: Bitmap,
    /// Pattern index + 1 per pixel (0 = no pattern).
    pub owner: Vec<u16>,
    /// Measured metrics.
    pub report: DecompReport,
    /// Target pixels the decomposition fails on: type-B conflicted runs
    /// plus spacer-destroyed target. Empty iff
    /// [`DecompReport::cut_conflicts`] and
    /// [`DecompReport::spacer_violations`] are both zero.
    pub conflicts: Bitmap,
    /// Cell origin: the track coordinate mapped to the canvas margin.
    pub origin: (i32, i32),
    /// Pixels per track pitch.
    pub pitch_px: usize,
    /// Canvas margin in pixels.
    pub margin_px: usize,
}

/// Pixel-area statistics of the synthesised masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskStats {
    /// Target metal pixels.
    pub target_px: usize,
    /// Final core-mask pixels (targets + assists + merge fill).
    pub core_px: usize,
    /// Spacer pixels.
    pub spacer_px: usize,
    /// Required-cut pixels.
    pub cut_px: usize,
    /// Assist/fill pixels: core that is not target metal.
    pub assist_px: usize,
}

impl Decomposition {
    /// Pixel-area statistics of the synthesised masks, e.g. for comparing
    /// assist-core usage between decomposition strategies.
    #[must_use]
    pub fn mask_stats(&self) -> MaskStats {
        MaskStats {
            target_px: self.target.count(),
            core_px: self.core.count(),
            spacer_px: self.spacer.count(),
            cut_px: self.cut.count(),
            assist_px: self.core.minus(&self.target).count(),
        }
    }

    /// Converts a track cell x coordinate to the pixel of its left edge.
    #[must_use]
    pub fn px_of_cell_x(&self, x: i32) -> i64 {
        (x - self.origin.0) as i64 * self.pitch_px as i64 + self.margin_px as i64
    }

    /// Converts a track cell y coordinate to the pixel of its bottom edge.
    #[must_use]
    pub fn px_of_cell_y(&self, y: i32) -> i64 {
        (y - self.origin.1) as i64 * self.pitch_px as i64 + self.margin_px as i64
    }

    /// The track cells whose target pixels the decomposition fails on
    /// (see [`Decomposition::conflicts`]), deduplicated and sorted.
    /// Conflict pixels are target pixels, which only exist inside the
    /// `w_line` band of a cell, so flooring by the pitch is exact.
    #[must_use]
    pub fn conflict_cells(&self) -> Vec<(i32, i32)> {
        let pitch = self.pitch_px as i64;
        let m = self.margin_px as i64;
        let mut cells = Vec::new();
        for y in 0..self.conflicts.height() as i64 {
            for x in 0..self.conflicts.width() as i64 {
                if self.conflicts.get(x, y) {
                    let cx = ((x - m) / pitch) as i32 + self.origin.0;
                    let cy = ((y - m) / pitch) as i32 + self.origin.1;
                    cells.push((cx, cy));
                }
            }
        }
        cells.sort_unstable();
        cells.dedup();
        cells
    }
}

/// The cut-process simulator (see the crate-level docs for the pipeline).
#[derive(Debug, Clone)]
pub struct CutSimulator {
    rules: DesignRules,
}

impl CutSimulator {
    /// Creates a simulator for the given rule set.
    ///
    /// # Panics
    ///
    /// Panics if any rule dimension is not a multiple of the 10 nm pixel
    /// size.
    #[must_use]
    pub fn new(rules: DesignRules) -> CutSimulator {
        for v in [
            rules.w_line().0,
            rules.w_spacer().0,
            rules.w_cut().0,
            rules.w_core().0,
            rules.d_cut().0,
            rules.d_core().0,
        ] {
            assert!(
                v % PX_NM == 0,
                "rule dimension {v}nm not a {PX_NM}nm multiple"
            );
        }
        CutSimulator { rules }
    }

    fn w_line_px(&self) -> usize {
        (self.rules.w_line().0 / PX_NM) as usize
    }
    fn w_spacer_px(&self) -> usize {
        (self.rules.w_spacer().0 / PX_NM) as usize
    }
    fn w_core_px(&self) -> usize {
        (self.rules.w_core().0 / PX_NM) as usize
    }
    fn d_core_px(&self) -> usize {
        (self.rules.d_core().0 / PX_NM) as usize
    }
    fn d_cut_px(&self) -> usize {
        (self.rules.d_cut().0 / PX_NM) as usize
    }
    fn pitch_px(&self) -> usize {
        (self.rules.pitch().0 / PX_NM) as usize
    }

    /// Runs the full cut-process pipeline on a colored single-layer layout.
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty.
    #[must_use]
    pub fn run(&self, patterns: &[ColoredPattern]) -> Decomposition {
        self.run_with_options(patterns, true)
    }

    /// Runs the mask-synthesis pipeline with or without assist-core
    /// generation. `generate_assists = false` models the trim process of
    /// the no-assist baselines (see [`crate::trimsim`]): second patterns
    /// are protected only where a core neighbour's spacer happens to cover
    /// them.
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty.
    #[must_use]
    pub fn run_with_options(
        &self,
        patterns: &[ColoredPattern],
        generate_assists: bool,
    ) -> Decomposition {
        assert!(!patterns.is_empty(), "nothing to decompose");
        // Same-net fragments on abutting tracks (islands that connect on
        // another layer) are bridged into one contiguous polygon first:
        // shorting a net to itself is free metal, while cutting the spacer
        // band between them would manufacture spurious overlays and
        // type-B conflicts.
        let patterns = &bridge_same_net(patterns);
        let pitch = self.pitch_px();
        let wline = self.w_line_px();
        let wspacer = self.w_spacer_px();

        // Canvas: pattern bbox plus a margin wide enough for assists.
        let bbox = patterns
            .iter()
            .map(ColoredPattern::bbox)
            .reduce(|a, b| a.union_bbox(&b))
            .expect("non-empty");
        let margin_cells = 3i32;
        let origin = (bbox.x0 - margin_cells, bbox.y0 - margin_cells);
        let w_cells = (bbox.width_x() + 2 * margin_cells) as usize;
        let h_cells = (bbox.width_y() + 2 * margin_cells) as usize;
        let margin_px = 0usize;
        let width = w_cells * pitch;
        let height = h_cells * pitch;

        let px_x = |cx: i32| (cx - origin.0) as i64 * pitch as i64;
        let px_y = |cy: i32| (cy - origin.1) as i64 * pitch as i64;

        // 1. Paint targets with ownership.
        let mut target = Bitmap::new(width, height);
        let mut second_targets = Bitmap::new(width, height);
        let mut owner = vec![0u16; width * height];
        for (pi, p) in patterns.iter().enumerate() {
            for r in &p.rects {
                let (x0, y0) = (px_x(r.x0), px_y(r.y0));
                let (x1, y1) = (px_x(r.x1) + wline as i64 - 1, px_y(r.y1) + wline as i64 - 1);
                target.fill_rect(x0, y0, x1, y1);
                if p.color == Color::Second {
                    second_targets.fill_rect(x0, y0, x1, y1);
                }
                for y in y0.max(0)..=y1.min(height as i64 - 1) {
                    for x in x0.max(0)..=x1.min(width as i64 - 1) {
                        owner[y as usize * width + x as usize] = pi as u16 + 1;
                    }
                }
            }
        }

        // 2. Core mask: core-colored patterns.
        let mut core = Bitmap::new(width, height);
        for p in patterns.iter().filter(|p| p.color == Color::Core) {
            for r in &p.rects {
                core.fill_rect(
                    px_x(r.x0),
                    px_y(r.y0),
                    px_x(r.x1) + wline as i64 - 1,
                    px_y(r.y1) + wline as i64 - 1,
                );
            }
        }

        // 3. Assist cores: one strip per pattern-rectangle side, at a gap
        //    of exactly w_spacer and w_core wide. Side strips (protecting
        //    long boundaries) are always attempted — if they end up within
        //    d_core of a core pattern, the merging step below resolves them
        //    and the resulting cut-defined overlay is measured honestly.
        //    Tip strips are dropped when they would merge into a core
        //    pattern: an unprotected line end is only a (noncritical) tip
        //    overlay, which the decomposer prefers over a merge.
        let second_clearance = second_targets.dilated(wspacer);
        let core_merge_zone = core.dilated(self.d_core_px());
        let mut side_strips = Bitmap::new(width, height);
        let mut tip_strips = Bitmap::new(width, height);
        let assist_patterns: &[ColoredPattern] = if generate_assists { patterns } else { &[] };
        let wcore = self.w_core_px() as i64;
        let gap = wspacer as i64;
        for p in assist_patterns.iter().filter(|p| p.color == Color::Second) {
            for r in &p.rects {
                let (x0, y0) = (px_x(r.x0), px_y(r.y0));
                let (x1, y1) = (px_x(r.x1) + wline as i64 - 1, px_y(r.y1) + wline as i64 - 1);
                // (strip rect, protects-a-side?) for west/east/south/north.
                // Point fragments (via landings) have no droppable tips:
                // a 20nm pad must be spacer-protected on every side or two
                // cuts end up w_line apart over it — so all four strips
                // count as side strips and merging is the lesser evil.
                let (horizontal, vertical) = match r.orientation() {
                    Orientation::Horizontal => (true, false),
                    Orientation::Vertical => (false, true),
                    Orientation::Point => (true, true),
                };
                let strips = [
                    ((x0 - gap - wcore, y0, x0 - gap - 1, y1), vertical),
                    ((x1 + gap + 1, y0, x1 + gap + wcore, y1), vertical),
                    ((x0, y0 - gap - wcore, x1, y0 - gap - 1), horizontal),
                    ((x0, y1 + gap + 1, x1, y1 + gap + wcore), horizontal),
                ];
                for ((sx0, sy0, sx1, sy1), is_side) in strips {
                    let dst = if is_side {
                        &mut side_strips
                    } else {
                        &mut tip_strips
                    };
                    dst.fill_rect(sx0, sy0, sx1, sy1);
                }
            }
        }
        let assists = side_strips
            .union(&tip_strips.minus(&core_merge_zone))
            .minus(&second_clearance);
        core = core.union(&assists);

        // 4. Merge core patterns closer than d_core: exact straight-gap
        //    fills (a plain morphological closing cannot hit an arbitrary
        //    `< d_core` threshold), plus corner closing when the diagonal
        //    track gap is itself below d_core (true at the 10 nm node:
        //    √2·w_spacer ≈ 28 nm < 30 nm; false at the 14 nm set).
        core = self.merge_cores(core);

        // 5. Spacer on all core sidewalls; metal is everything not spacer.
        let spacer = core.dilated(wspacer).minus(&core);
        let cut = spacer.complement().minus(&target);

        // 6. Measure.
        let (mut report, type_b) = self.measure(
            patterns, origin, &target, &spacer, &cut, &owner, width, height,
        );
        let destroyed = spacer.intersect(&target);
        report.spacer_violations = destroyed.count();
        let conflicts = type_b.union(&destroyed);

        Decomposition {
            target,
            core,
            spacer,
            cut,
            owner,
            report,
            conflicts,
            origin,
            pitch_px: pitch,
            margin_px,
        }
    }

    /// Fills every straight gap of width `< d_core` between core pixels
    /// (rows then columns, twice, so L-shaped fills compose), then closes
    /// diagonal corners when the corner-to-corner distance of adjacent
    /// tracks is below `d_core`.
    fn merge_cores(&self, mut core: Bitmap) -> Bitmap {
        let d = self.d_core_px() as i64;
        let w = core.width() as i64;
        let h = core.height() as i64;
        for _ in 0..2 {
            let snapshot = core.clone();
            // Horizontal gaps.
            for y in 0..h {
                let mut x = 0;
                while x < w {
                    if !snapshot.get(x, y) && snapshot.get(x - 1, y) {
                        let start = x;
                        while x < w && !snapshot.get(x, y) {
                            x += 1;
                        }
                        if x < w && x - start < d {
                            for fx in start..x {
                                core.set(fx, y, true);
                            }
                        }
                    } else {
                        x += 1;
                    }
                }
            }
            // Vertical gaps.
            for x in 0..w {
                let mut y = 0;
                while y < h {
                    if !snapshot.get(x, y) && snapshot.get(x, y - 1) {
                        let start = y;
                        while y < h && !snapshot.get(x, y) {
                            y += 1;
                        }
                        if y < h && y - start < d {
                            for fy in start..y {
                                core.set(x, fy, true);
                            }
                        }
                    } else {
                        y += 1;
                    }
                }
            }
        }
        let diag2 = self.rules.w_spacer().squared() * 2;
        if diag2 < self.rules.d_core().squared() {
            core = core.closed(1);
        }
        core
    }

    #[allow(clippy::too_many_arguments)]
    fn measure(
        &self,
        patterns: &[ColoredPattern],
        origin: (i32, i32),
        target: &Bitmap,
        spacer: &Bitmap,
        cut: &Bitmap,
        owner: &[u16],
        width: usize,
        height: usize,
    ) -> (DecompReport, Bitmap) {
        let wline = self.w_line_px();
        let pitch = self.pitch_px() as i64;
        let mut report = DecompReport {
            w_line_px: wline,
            ..DecompReport::default()
        };

        // Unprotected boundary edges, grouped into runs per
        // (pattern, direction, boundary line).
        use std::collections::HashMap;
        // key: (pattern, dir 0..4, line coordinate) -> positions
        let mut edges: HashMap<(u16, u8, i64), Vec<(i64, bool)>> = HashMap::new();
        let dirs: [(i64, i64); 4] = [(1, 0), (-1, 0), (0, 1), (0, -1)];
        for y in 0..height as i64 {
            for x in 0..width as i64 {
                if !target.get(x, y) {
                    continue;
                }
                let own = owner[y as usize * width + x as usize];
                for (di, &(dx, dy)) in dirs.iter().enumerate() {
                    let (nx, ny) = (x + dx, y + dy);
                    if target.get(nx, ny) || spacer.get(nx, ny) {
                        continue; // interior or protected
                    }
                    if !cut.get(nx, ny) {
                        continue; // outside canvas bookkeeping
                    }
                    let is_side = self.edge_is_side(patterns, origin, own, x, y, dx, dy, pitch);
                    let (line, pos) = if dx != 0 { (x, y) } else { (y, x) };
                    edges
                        .entry((own, di as u8, line))
                        .or_default()
                        .push((pos, is_side));
                }
            }
        }

        for ((own, _dir, _line), mut positions) in edges {
            positions.sort_unstable();
            let mut i = 0;
            while i < positions.len() {
                let mut j = i;
                while j + 1 < positions.len()
                    && positions[j + 1].0 == positions[j].0 + 1
                    && positions[j + 1].1 == positions[i].1
                {
                    j += 1;
                }
                let len = j - i + 1;
                let is_side = positions[i].1;
                report.runs.push(OverlayRun {
                    pattern: own as usize - 1,
                    len_px: len,
                    is_side,
                });
                if is_side {
                    report.side_overlay_px += len;
                    if len > wline {
                        report.hard_overlay_runs += 1;
                    }
                } else {
                    report.tip_overlay_px += len;
                }
                i = j + 1;
            }
        }

        let (n, conflicted) = self.count_type_b(target, cut, width, height);
        report.cut_conflicts = n;
        (report, conflicted)
    }

    /// Classifies a boundary edge as side (normal perpendicular to the wire
    /// axis) or tip (normal along the axis). Corner cells belonging to two
    /// fragments classify as side if any containing fragment does.
    #[allow(clippy::too_many_arguments)]
    fn edge_is_side(
        &self,
        patterns: &[ColoredPattern],
        origin: (i32, i32),
        owner: u16,
        x: i64,
        y: i64,
        dx: i64,
        dy: i64,
        pitch: i64,
    ) -> bool {
        if owner == 0 {
            return true;
        }
        let p = &patterns[owner as usize - 1];
        // Pixel -> cell (target pixels only exist in the w_line band of a
        // cell, so flooring by the pitch is exact). The pattern was painted
        // relative to the canvas origin, which offsets whole cells only.
        let cx = (x / pitch) as i32 + origin.0;
        let cy = (y / pitch) as i32 + origin.1;
        let mut any_side = false;
        let mut any_rect = false;
        for r in &p.rects {
            if r.contains_cell(cx, cy) {
                any_rect = true;
                let side = match r.orientation() {
                    Orientation::Horizontal => dy != 0,
                    Orientation::Vertical => dx != 0,
                    Orientation::Point => false,
                };
                any_side |= side;
            }
        }
        // Unknown cells (shouldn't happen) count as side, conservatively.
        if !any_rect {
            return true;
        }
        any_side
    }

    /// Counts type-B cut conflicts: a target run of width < d_cut flanked
    /// by cut pixels on both sides (two parallel cut-defined boundary
    /// sections over one pattern). Contiguous conflicting positions count
    /// once. Also returns the union of the marked runs so callers can
    /// locate the conflicts.
    fn count_type_b(
        &self,
        target: &Bitmap,
        cut: &Bitmap,
        width: usize,
        height: usize,
    ) -> (usize, Bitmap) {
        let d_cut = self.d_cut_px() as i64;
        let mut conflict_h = Bitmap::new(width, height);
        let mut conflict_v = Bitmap::new(width, height);
        for y in 0..height as i64 {
            let mut x = 0i64;
            while x < width as i64 {
                if target.get(x, y) && !target.get(x - 1, y) {
                    // Maximal horizontal target run starting at x.
                    let mut e = x;
                    while target.get(e + 1, y) {
                        e += 1;
                    }
                    if e - x + 1 < d_cut && cut.get(x - 1, y) && cut.get(e + 1, y) {
                        for xx in x..=e {
                            conflict_h.set(xx, y, true);
                        }
                    }
                    x = e + 1;
                } else {
                    x += 1;
                }
            }
        }
        for x in 0..width as i64 {
            let mut y = 0i64;
            while y < height as i64 {
                if target.get(x, y) && !target.get(x, y - 1) {
                    let mut e = y;
                    while target.get(x, e + 1) {
                        e += 1;
                    }
                    if e - y + 1 < d_cut && cut.get(x, y - 1) && cut.get(x, e + 1) {
                        for yy in y..=e {
                            conflict_v.set(x, yy, true);
                        }
                    }
                    y = e + 1;
                } else {
                    y += 1;
                }
            }
        }
        let (_, nh) = conflict_h.components();
        let (_, nv) = conflict_v.components();
        ((nh + nv) as usize, conflict_h.union(&conflict_v))
    }
}

/// Adds a connecting rectangle between any two fragments of the same
/// pattern on abutting tracks (track gap 1) with overlapping projections.
/// Such fragments occupy adjacent cells — only the pixel-level spacer band
/// between the tracks separates them — so the bridge introduces no new
/// cells; it merely makes the polygon contiguous on the pixel canvas, as a
/// real same-net shape would be drawn.
fn bridge_same_net(patterns: &[ColoredPattern]) -> Vec<ColoredPattern> {
    use sadp_geom::TrackRect;
    let mut out: Vec<ColoredPattern> = patterns.to_vec();
    for (pi, p) in patterns.iter().enumerate() {
        let mut bridges: Vec<TrackRect> = Vec::new();
        for (i, a) in p.rects.iter().enumerate() {
            for b in p.rects.iter().skip(i + 1) {
                let (dx, dy) = a.track_gap(b);
                if dx == 1 && dy == 0 && a.overlap_y(b) > 0 {
                    bridges.push(TrackRect::new(
                        a.x1.min(b.x1),
                        a.y0.max(b.y0),
                        a.x0.max(b.x0),
                        a.y1.min(b.y1),
                    ));
                } else if dy == 1 && dx == 0 && a.overlap_x(b) > 0 {
                    bridges.push(TrackRect::new(
                        a.x0.max(b.x0),
                        a.y1.min(b.y1),
                        a.x1.min(b.x1),
                        a.y0.max(b.y0),
                    ));
                }
            }
        }
        out[pi].rects.extend(bridges);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_geom::TrackRect;

    fn sim() -> CutSimulator {
        CutSimulator::new(DesignRules::node_10nm())
    }

    fn wire(net: u32, color: Color, r: TrackRect) -> ColoredPattern {
        ColoredPattern::new(net, color, vec![r])
    }

    #[test]
    fn isolated_core_pattern_is_clean() {
        let d = sim().run(&[wire(0, Color::Core, TrackRect::new(2, 2, 8, 2))]);
        assert!(d.report.is_clean());
        assert_eq!(d.report.side_overlay_px, 0);
        assert_eq!(d.report.tip_overlay_px, 0);
        // The spacer fully wraps the core.
        assert!(d.spacer.count() > 0);
    }

    #[test]
    fn isolated_second_pattern_protected_by_assists() {
        let d = sim().run(&[wire(0, Color::Second, TrackRect::new(2, 2, 8, 2))]);
        assert!(d.report.is_clean(), "report: {:?}", d.report);
        assert_eq!(d.report.side_overlay_px, 0);
        // Assists exist on the core mask even though no pattern is core.
        assert!(d.core.count() > 0);
    }

    #[test]
    fn type_1a_same_color_is_hard() {
        // Side-by-side wires on adjacent tracks, both core: they merge and
        // the separating cut defines long side overlays on both.
        let d = sim().run(&[
            wire(0, Color::Core, TrackRect::new(0, 0, 6, 0)),
            wire(1, Color::Core, TrackRect::new(0, 1, 6, 1)),
        ]);
        assert!(d.report.hard_overlay_runs >= 2, "report: {:?}", d.report);
        assert!(d.report.side_overlay_px > 0);
    }

    #[test]
    fn type_1a_different_colors_is_clean() {
        let d = sim().run(&[
            wire(0, Color::Core, TrackRect::new(0, 0, 6, 0)),
            wire(1, Color::Second, TrackRect::new(0, 1, 6, 1)),
        ]);
        assert_eq!(d.report.side_overlay_px, 0, "report: {:?}", d.report);
        assert!(d.report.is_clean());
    }

    #[test]
    fn type_1b_same_color_merges_via_cut() {
        // Tip-to-tip, both core: merged core separated by one cut; only tip
        // overlays appear, no side overlay.
        let d = sim().run(&[
            wire(0, Color::Core, TrackRect::new(0, 0, 4, 0)),
            wire(1, Color::Core, TrackRect::new(5, 0, 9, 0)),
        ]);
        assert_eq!(d.report.side_overlay_px, 0, "report: {:?}", d.report);
        assert!(d.report.tip_overlay_px > 0);
        assert_eq!(d.report.cut_conflicts, 0);
        assert_eq!(d.report.hard_overlay_runs, 0);
    }

    #[test]
    fn type_2b_core_core_gives_one_unit() {
        // Tip-to-side, both core: the tip merges into the side pattern and
        // the separating cut leaves a w_line-long (friendly) side overlay.
        let d = sim().run(&[
            wire(0, Color::Core, TrackRect::new(0, 0, 6, 0)),
            wire(1, Color::Core, TrackRect::new(3, 1, 3, 5)),
        ]);
        assert_eq!(d.report.hard_overlay_runs, 0, "report: {:?}", d.report);
        assert_eq!(d.report.side_overlay_units(), 1);
    }

    #[test]
    fn spacer_never_overlaps_targets_in_legal_layouts() {
        let d = sim().run(&[
            wire(0, Color::Core, TrackRect::new(0, 0, 6, 0)),
            wire(1, Color::Second, TrackRect::new(0, 2, 6, 2)),
            wire(2, Color::Core, TrackRect::new(0, 4, 6, 4)),
        ]);
        assert_eq!(d.report.spacer_violations, 0);
    }

    #[test]
    fn cell_px_transform() {
        let d = sim().run(&[wire(0, Color::Core, TrackRect::new(2, 2, 8, 2))]);
        // Origin is bbox - 3 cells; cell x=2 maps 3 cells into the canvas.
        assert_eq!(d.px_of_cell_x(2), 3 * 4);
        assert_eq!(d.px_of_cell_y(2), 3 * 4);
    }

    #[test]
    #[should_panic(expected = "nothing to decompose")]
    fn empty_input_panics() {
        let _ = sim().run(&[]);
    }
}

#[cfg(test)]
mod bridge_tests {
    use super::*;
    use sadp_geom::TrackRect;

    #[test]
    fn same_net_islands_on_abutting_tracks_merge_cleanly() {
        // Two fragments of one net connected on another layer: one track
        // apart on this layer. Bridging makes them a single polygon; no
        // cut (and no type-B conflict) between them.
        let sim = CutSimulator::new(DesignRules::node_10nm());
        let pats = vec![ColoredPattern::new(
            0,
            Color::Core,
            vec![TrackRect::new(0, 0, 8, 0), TrackRect::new(4, 1, 4, 1)],
        )];
        let d = sim.run(&pats);
        assert_eq!(d.report.cut_conflicts, 0, "{:?}", d.report);
        assert_eq!(d.report.side_overlay_px, 0);
        assert_eq!(d.report.spacer_violations, 0);
    }

    #[test]
    fn core_pad_flanked_by_second_wires_conflicts() {
        // Fuzz-found (sparse-pairs seed 1, shrunk): a core via landing pad
        // with second wires two tracks away on BOTH sides. Each wire's
        // assist strip merges into the pad's spacer zone, leaving the pad
        // bounded by cut-defined edges within d_cut — a type-A conflict.
        // Either pairwise combination alone is clean, which is why the
        // point-tip 2-d table must carry the cut risk (see
        // sadp_scenario::classify).
        let sim = CutSimulator::new(DesignRules::node_10nm());
        let flanked = |pad: Color| {
            sim.run(&[
                ColoredPattern::new(0, Color::Second, vec![TrackRect::new(0, 0, 0, 8)]),
                ColoredPattern::new(1, pad, vec![TrackRect::cell(2, 4)]),
                ColoredPattern::new(2, Color::Second, vec![TrackRect::new(4, 0, 4, 8)]),
            ])
        };
        assert!(
            flanked(Color::Core).report.cut_conflicts >= 1,
            "core pad between two second wires must conflict"
        );
        assert_eq!(flanked(Color::Second).report.cut_conflicts, 0);
        // Pairwise (single flanking wire) is clean for every assignment.
        for pad in [Color::Core, Color::Second] {
            for w in [Color::Core, Color::Second] {
                let d = sim.run(&[
                    ColoredPattern::new(0, pad, vec![TrackRect::cell(2, 4)]),
                    ColoredPattern::new(1, w, vec![TrackRect::new(4, 0, 4, 8)]),
                ]);
                assert_eq!(d.report.cut_conflicts, 0, "pad={pad:?} wire={w:?}");
            }
        }
    }

    #[test]
    fn different_net_neighbours_are_untouched_by_bridging() {
        let sim = CutSimulator::new(DesignRules::node_10nm());
        let pats = vec![
            ColoredPattern::new(0, Color::Core, vec![TrackRect::new(0, 0, 8, 0)]),
            ColoredPattern::new(1, Color::Second, vec![TrackRect::new(0, 1, 8, 1)]),
        ];
        let d = sim.run(&pats);
        // The 1-a CS pair still decomposes by spacer protection; no bridge
        // crossed the net boundary.
        assert_eq!(d.report.side_overlay_px, 0);
    }
}
