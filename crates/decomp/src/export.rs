//! Mask export: rectangle decomposition of the synthesised mask bitmaps.
//!
//! Mask writers (and anything downstream of the simulator) want rectangle
//! lists, not pixel grids. [`bitmap_to_rects`] performs a deterministic
//! horizontal-run sweep that partitions any bitmap into disjoint maximal
//! row-merged rectangles; [`export_masks`] emits the three masks of a
//! [`Decomposition`] in a line-oriented text form (pixel coordinates, one
//! rectangle per line).

use crate::bitmap::Bitmap;
use crate::cutsim::Decomposition;
use std::fmt::Write as _;

/// A pixel rectangle `(x0, y0, x1, y1)`, inclusive.
pub type PxRect = (i64, i64, i64, i64);

/// Decomposes a bitmap into disjoint rectangles: horizontal runs merged
/// across adjacent rows while identical.
///
/// # Example
///
/// ```
/// use sadp_decomp::{bitmap_to_rects, Bitmap};
/// let mut b = Bitmap::new(8, 8);
/// b.fill_rect(1, 1, 4, 3);
/// b.fill_rect(6, 2, 7, 2);
/// let rects = bitmap_to_rects(&b);
/// assert!(rects.contains(&(1, 1, 4, 3)));
/// assert!(rects.contains(&(6, 2, 7, 2)));
/// ```
#[must_use]
pub fn bitmap_to_rects(bitmap: &Bitmap) -> Vec<PxRect> {
    let w = bitmap.width() as i64;
    let h = bitmap.height() as i64;
    // Open rectangles from the previous row: (x0, x1, y_start).
    let mut open: Vec<(i64, i64, i64)> = Vec::new();
    let mut out: Vec<PxRect> = Vec::new();
    for y in 0..h {
        // Runs of this row.
        let mut runs: Vec<(i64, i64)> = Vec::new();
        let mut x = 0;
        while x < w {
            if bitmap.get(x, y) {
                let x0 = x;
                while x < w && bitmap.get(x, y) {
                    x += 1;
                }
                runs.push((x0, x - 1));
            } else {
                x += 1;
            }
        }
        // Extend open rectangles whose run repeats exactly; close others.
        let mut next_open: Vec<(i64, i64, i64)> = Vec::new();
        for &(x0, x1, y0) in &open {
            if runs.contains(&(x0, x1)) {
                next_open.push((x0, x1, y0));
            } else {
                out.push((x0, y0, x1, y - 1));
            }
        }
        for &(x0, x1) in &runs {
            if !next_open.iter().any(|&(a, b, _)| (a, b) == (x0, x1)) {
                next_open.push((x0, x1, y));
            }
        }
        open = next_open;
    }
    for (x0, x1, y0) in open {
        out.push((x0, y0, x1, h - 1));
    }
    out.sort_unstable_by_key(|&(x0, y0, ..)| (y0, x0));
    out
}

/// Exports the core, spacer and cut masks of a decomposition as text:
/// `MASK x0 y0 x1 y1` lines in pixel coordinates (10 nm units).
#[must_use]
pub fn export_masks(decomp: &Decomposition) -> String {
    let mut out = String::new();
    for (name, bitmap) in [
        ("core", &decomp.core),
        ("spacer", &decomp.spacer),
        ("cut", &decomp.cut),
    ] {
        for (x0, y0, x1, y1) in bitmap_to_rects(bitmap) {
            let _ = writeln!(out, "{name} {x0} {y0} {x1} {y1}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutsim::CutSimulator;
    use crate::layout::ColoredPattern;
    use sadp_geom::{DesignRules, TrackRect};
    use sadp_scenario::Color;

    #[test]
    fn empty_bitmap_yields_nothing() {
        assert!(bitmap_to_rects(&Bitmap::new(4, 4)).is_empty());
    }

    #[test]
    fn rect_cover_is_exact_and_disjoint() {
        let mut b = Bitmap::new(16, 16);
        b.fill_rect(1, 1, 6, 3);
        b.fill_rect(4, 3, 9, 8); // overlapping L-shape
        b.set(12, 12, true);
        let rects = bitmap_to_rects(&b);
        // Reconstruct and compare.
        let mut rebuilt = Bitmap::new(16, 16);
        let mut area = 0;
        for (x0, y0, x1, y1) in rects {
            for y in y0..=y1 {
                for x in x0..=x1 {
                    assert!(!rebuilt.get(x, y), "rectangles overlap at {x},{y}");
                    rebuilt.set(x, y, true);
                    area += 1;
                }
            }
        }
        assert_eq!(rebuilt, b);
        assert_eq!(area, b.count());
    }

    #[test]
    fn full_rect_is_one_rectangle() {
        let mut b = Bitmap::new(5, 7);
        b.fill_rect(0, 0, 4, 6);
        assert_eq!(bitmap_to_rects(&b), vec![(0, 0, 4, 6)]);
    }

    #[test]
    fn export_contains_all_masks() {
        let sim = CutSimulator::new(DesignRules::node_10nm());
        let d = sim.run(&[
            ColoredPattern::new(0, Color::Core, vec![TrackRect::new(0, 0, 5, 0)]),
            ColoredPattern::new(1, Color::Second, vec![TrackRect::new(0, 2, 5, 2)]),
        ]);
        let text = export_masks(&d);
        assert!(text.lines().any(|l| l.starts_with("core ")));
        assert!(text.lines().any(|l| l.starts_with("spacer ")));
        assert!(text.lines().any(|l| l.starts_with("cut ")));
        // Line format is five tokens.
        for line in text.lines() {
            assert_eq!(line.split_whitespace().count(), 5, "{line}");
        }
    }
}
