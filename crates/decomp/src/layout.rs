//! Colored layout patterns fed to the decomposition simulators.

use sadp_geom::TrackRect;
use sadp_scenario::Color;

/// One target pattern of a single-layer layout: a rectilinear polygon
/// (given as its wire-fragment rectangles) with a mask color.
///
/// Fragments of the same pattern may overlap (turn cells belong to both
/// adjacent fragments), exactly as produced by
/// [`RoutePath::fragments`](sadp_grid::RoutePath::fragments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColoredPattern {
    /// Owning net id (used in reports and rendering).
    pub net: u32,
    /// Mask color: core or second.
    pub color: Color,
    /// Wire-fragment rectangles (track coordinates).
    pub rects: Vec<TrackRect>,
}

impl ColoredPattern {
    /// Creates a pattern.
    ///
    /// # Panics
    ///
    /// Panics if `rects` is empty.
    #[must_use]
    pub fn new(net: u32, color: Color, rects: Vec<TrackRect>) -> ColoredPattern {
        assert!(!rects.is_empty(), "a pattern needs at least one rectangle");
        ColoredPattern { net, color, rects }
    }

    /// The bounding box of the pattern.
    #[must_use]
    pub fn bbox(&self) -> TrackRect {
        self.rects
            .iter()
            .skip(1)
            .fold(self.rects[0], |acc, r| acc.union_bbox(r))
    }

    /// Total cell count (overlapping fragment cells counted once is not
    /// required here; this is an upper bound used for sizing only).
    #[must_use]
    pub fn cell_estimate(&self) -> i64 {
        self.rects.iter().map(TrackRect::len_cells).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bbox_unions_fragments() {
        let p = ColoredPattern::new(
            0,
            Color::Core,
            vec![TrackRect::new(0, 0, 4, 0), TrackRect::new(4, 0, 4, 3)],
        );
        assert_eq!(p.bbox(), TrackRect::new(0, 0, 4, 3));
        assert_eq!(p.cell_estimate(), 9);
    }

    #[test]
    #[should_panic(expected = "at least one rectangle")]
    fn empty_pattern_panics() {
        let _ = ColoredPattern::new(0, Color::Core, vec![]);
    }
}
