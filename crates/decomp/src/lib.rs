//! Pixel-level SADP decomposition simulator.
//!
//! This crate is the *independent oracle* of the workspace: given a colored
//! layout (every pattern assigned core or second), it synthesises the SADP
//! cut-process masks at 10 nm pixel resolution —
//!
//! 1. paint the core mask (core-colored patterns),
//! 2. generate **assist core patterns** around every second pattern where
//!    clearance allows,
//! 3. **merge** core patterns (including assists) closer than `d_core`
//!    (morphological closing — the merge-and-cut technique of Fig. 2),
//! 4. grow the conformal **spacer** of width `w_spacer` on all core
//!    sidewalls,
//! 5. derive the metal (`NOT spacer`) and the required **cut regions**
//!    (`metal − target`),
//!
//! — and then *measures* what the paper's metrics talk about: side/tip
//! overlay runs (target boundary not protected by a spacer), **hard
//! overlays** (side runs longer than `w_line`), spacer violations, and
//! **type-B cut conflicts** (two parallel cut-defined boundary sections of
//! one target within `d_cut`).
//!
//! The simulator is deliberately *stricter* than the paper's per-scenario
//! accounting for grossly violated colorings (a violated long side-by-side
//! pair measures its full facing length, where Table II counts scenario
//! units); on rule-respecting layouts the two agree. See DESIGN.md §3.2.
//!
//! # Example
//!
//! ```
//! use sadp_decomp::{ColoredPattern, CutSimulator};
//! use sadp_geom::{DesignRules, TrackRect};
//! use sadp_scenario::Color;
//!
//! // An isolated second pattern is fully protected by its assist cores.
//! let pattern = ColoredPattern::new(0, Color::Second, vec![TrackRect::new(2, 2, 8, 2)]);
//! let sim = CutSimulator::new(DesignRules::node_10nm());
//! let result = sim.run(&[pattern]);
//! assert_eq!(result.report.side_overlay_units(), 0);
//! assert_eq!(result.report.cut_conflicts, 0);
//! ```

pub mod bitmap;
pub mod cutmask;
pub mod cutsim;
pub mod export;
pub mod layout;
pub mod render;
pub mod trim;
pub mod trimsim;
pub mod verify;
pub mod window;

pub use bitmap::Bitmap;
pub use cutmask::{critical_cuts, CutPattern};
pub use cutsim::{CutSimulator, DecompReport, Decomposition, MaskStats};
pub use export::{bitmap_to_rects, export_masks, PxRect};
pub use layout::ColoredPattern;
pub use render::{render_ascii, render_svg};
pub use trim::trim_conflicts;
pub use trimsim::TrimSimulator;
pub use verify::{verify_layers, verify_layers_observed, LayerVerdict, Verdict};
pub use window::{replay_all_scenarios, replay_scenario, ScenarioReplay};
