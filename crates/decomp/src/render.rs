//! ASCII and SVG rendering of decompositions (the Fig. 21 / Fig. 22 style
//! partial-layout dumps).

use crate::cutsim::Decomposition;
use crate::layout::ColoredPattern;
use sadp_scenario::Color;
use std::fmt::Write as _;

/// Renders a decomposition as ASCII art, one character per pixel:
///
/// * `C` — core-colored target metal,
/// * `S` — second-colored target metal,
/// * `a` — non-target core (assist cores and merge fill),
/// * `.` — spacer,
/// * `!` — overlay (cut-defined target boundary pixel, drawn over the
///   target cell adjacent to it),
/// * ` ` — field / cut regions.
#[must_use]
pub fn render_ascii(decomp: &Decomposition, patterns: &[ColoredPattern]) -> String {
    let w = decomp.target.width();
    let h = decomp.target.height();
    let mut canvas = vec![vec![' '; w]; h];
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            let c = &mut canvas[y as usize][x as usize];
            if decomp.target.get(x, y) {
                let own = decomp.owner[y as usize * w + x as usize];
                let color = if own == 0 {
                    Color::Core
                } else {
                    patterns[own as usize - 1].color
                };
                *c = match color {
                    Color::Core => 'C',
                    Color::Second => 'S',
                };
            } else if decomp.core.get(x, y) {
                *c = 'a';
            } else if decomp.spacer.get(x, y) {
                *c = '.';
            }
        }
    }
    // Mark overlay boundaries: target pixels adjacent to cut.
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            if !decomp.target.get(x, y) {
                continue;
            }
            let exposed = [(1, 0), (-1, 0), (0, 1), (0, -1)].iter().any(|&(dx, dy)| {
                decomp.cut.get(x + dx, y + dy) && !decomp.target.get(x + dx, y + dy)
            });
            if exposed {
                canvas[y as usize][x as usize] = '!';
            }
        }
    }
    let mut out = String::with_capacity((w + 1) * h);
    for row in canvas.iter().rev() {
        for &c in row {
            out.push(c);
        }
        // Trim trailing blanks for compact dumps.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

/// Renders a decomposition as a standalone SVG document.
///
/// Layers (bottom to top): spacer (grey), non-target core (light orange),
/// core targets (blue), second targets (green), overlay boundary pixels
/// (red).
#[must_use]
pub fn render_svg(decomp: &Decomposition, patterns: &[ColoredPattern]) -> String {
    let w = decomp.target.width();
    let h = decomp.target.height();
    let scale = 4;
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}">"#,
        w * scale,
        h * scale,
        w,
        h
    );
    let _ = writeln!(svg, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
    let mut rect = |x: i64, y: i64, color: &str| {
        // Flip y so the origin is bottom-left, as in the track space.
        let _ = writeln!(
            svg,
            r#"<rect x="{x}" y="{}" width="1" height="1" fill="{color}"/>"#,
            h as i64 - 1 - y
        );
    };
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            if decomp.target.get(x, y) {
                let own = decomp.owner[y as usize * w + x as usize];
                let color = if own == 0 {
                    Color::Core
                } else {
                    patterns[own as usize - 1].color
                };
                let exposed = [(1, 0), (-1, 0), (0, 1), (0, -1)].iter().any(|&(dx, dy)| {
                    decomp.cut.get(x + dx, y + dy) && !decomp.target.get(x + dx, y + dy)
                });
                if exposed {
                    rect(x, y, "#d62728");
                } else {
                    match color {
                        Color::Core => rect(x, y, "#1f77b4"),
                        Color::Second => rect(x, y, "#2ca02c"),
                    }
                }
            } else if decomp.core.get(x, y) {
                rect(x, y, "#ffbb78");
            } else if decomp.spacer.get(x, y) {
                rect(x, y, "#d9d9d9");
            }
        }
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutsim::CutSimulator;
    use sadp_geom::{DesignRules, TrackRect};

    fn setup() -> (Decomposition, Vec<ColoredPattern>) {
        let patterns = vec![
            ColoredPattern::new(0, Color::Core, vec![TrackRect::new(0, 0, 5, 0)]),
            ColoredPattern::new(1, Color::Second, vec![TrackRect::new(0, 2, 5, 2)]),
        ];
        let sim = CutSimulator::new(DesignRules::node_10nm());
        let d = sim.run(&patterns);
        (d, patterns)
    }

    #[test]
    fn ascii_contains_all_roles() {
        let (d, p) = setup();
        let s = render_ascii(&d, &p);
        assert!(s.contains('C'), "core target");
        assert!(s.contains('S'), "second target");
        assert!(s.contains('a'), "assist core");
        assert!(s.contains('.'), "spacer");
    }

    #[test]
    fn ascii_marks_overlays() {
        // 1-a violated: both core -> overlay markers appear.
        let patterns = vec![
            ColoredPattern::new(0, Color::Core, vec![TrackRect::new(0, 0, 5, 0)]),
            ColoredPattern::new(1, Color::Core, vec![TrackRect::new(0, 1, 5, 1)]),
        ];
        let sim = CutSimulator::new(DesignRules::node_10nm());
        let d = sim.run(&patterns);
        let s = render_ascii(&d, &patterns);
        assert!(s.contains('!'), "overlay markers:\n{s}");
    }

    #[test]
    fn svg_is_wellformed() {
        let (d, p) = setup();
        let s = render_svg(&d, &p);
        assert!(s.starts_with("<svg"));
        assert!(s.ends_with("</svg>\n"));
        assert!(s.contains("#1f77b4"));
        assert!(s.contains("#2ca02c"));
    }
}
