//! SADP trim-process conflict checking, used by the trim-process baselines
//! (\[10\], \[11\]).
//!
//! In the trim process a pattern is generated either by a core pattern or
//! by a trim pattern; patterns closer than the minimum coloring distance
//! must be assigned different masks, and — crucially — tip-to-tip pattern
//! pairs at minimum spacing cannot be separated at all, because the trim
//! process has no merge-and-cut technique: the facing trim line ends
//! violate spacing ("trim conflicts induced by parallel line ends",
//! Section IV).

use crate::layout::ColoredPattern;
use sadp_geom::DesignRules;
use sadp_scenario::{classify, ScenarioKind};

/// Trim-process conflict counts for a colored single-layer layout.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TrimConflicts {
    /// Same-mask pattern pairs within the minimum coloring distance
    /// (side-by-side pairs that a correct trim decomposition must color
    /// differently).
    pub coloring: usize,
    /// Parallel-line-end conflicts: tip-to-tip pairs at minimum spacing,
    /// which the trim process cannot decompose for any coloring.
    pub line_end: usize,
}

impl TrimConflicts {
    /// Total conflict count (the `#C` column of Table III for the trim
    /// baselines).
    #[must_use]
    pub fn total(&self) -> usize {
        self.coloring + self.line_end
    }
}

/// Counts trim-process conflicts over all dependent pattern pairs.
///
/// Pairs are classified with the cut-process geometry classifier; the
/// trim-specific interpretation is:
///
/// * type 1-a geometry with equal colors → a coloring conflict,
/// * type 1-b geometry (tip-to-tip at minimum spacing) → a line-end
///   conflict regardless of colors.
///
/// # Example
///
/// ```
/// use sadp_decomp::{trim_conflicts, ColoredPattern};
/// use sadp_geom::{DesignRules, TrackRect};
/// use sadp_scenario::Color;
///
/// let pats = vec![
///     ColoredPattern::new(0, Color::Core, vec![TrackRect::new(0, 0, 4, 0)]),
///     ColoredPattern::new(1, Color::Core, vec![TrackRect::new(5, 0, 9, 0)]),
/// ];
/// let c = trim_conflicts(&pats, &DesignRules::node_10nm());
/// assert_eq!(c.line_end, 1);
/// ```
#[must_use]
pub fn trim_conflicts(patterns: &[ColoredPattern], rules: &DesignRules) -> TrimConflicts {
    let mut out = TrimConflicts::default();
    for (i, a) in patterns.iter().enumerate() {
        for b in patterns.iter().skip(i + 1) {
            if a.net == b.net {
                continue;
            }
            let mut saw_1a_conflict = false;
            let mut saw_1b = false;
            for ra in &a.rects {
                for rb in &b.rects {
                    let Some(s) = classify(ra, rb, rules) else {
                        continue;
                    };
                    match s.kind {
                        ScenarioKind::OneA if a.color == b.color => saw_1a_conflict = true,
                        ScenarioKind::OneB => saw_1b = true,
                        _ => {}
                    }
                }
            }
            if saw_1a_conflict {
                out.coloring += 1;
            }
            if saw_1b {
                out.line_end += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_geom::TrackRect;
    use sadp_scenario::Color;

    fn wire(net: u32, color: Color, r: TrackRect) -> ColoredPattern {
        ColoredPattern::new(net, color, vec![r])
    }

    #[test]
    fn same_color_adjacent_is_coloring_conflict() {
        let pats = vec![
            wire(0, Color::Core, TrackRect::new(0, 0, 5, 0)),
            wire(1, Color::Core, TrackRect::new(0, 1, 5, 1)),
        ];
        let c = trim_conflicts(&pats, &DesignRules::node_10nm());
        assert_eq!(c.coloring, 1);
        assert_eq!(c.line_end, 0);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn different_colors_resolve_coloring() {
        let pats = vec![
            wire(0, Color::Core, TrackRect::new(0, 0, 5, 0)),
            wire(1, Color::Second, TrackRect::new(0, 1, 5, 1)),
        ];
        assert_eq!(trim_conflicts(&pats, &DesignRules::node_10nm()).total(), 0);
    }

    #[test]
    fn tip_to_tip_conflicts_for_any_coloring() {
        for (ca, cb) in [
            (Color::Core, Color::Core),
            (Color::Core, Color::Second),
            (Color::Second, Color::Second),
        ] {
            let pats = vec![
                wire(0, ca, TrackRect::new(0, 0, 4, 0)),
                wire(1, cb, TrackRect::new(5, 0, 9, 0)),
            ];
            let c = trim_conflicts(&pats, &DesignRules::node_10nm());
            assert_eq!(c.line_end, 1, "{ca:?}/{cb:?}");
        }
    }

    #[test]
    fn same_net_pairs_and_distant_pairs_ignored() {
        let pats = vec![
            ColoredPattern::new(
                0,
                Color::Core,
                vec![TrackRect::new(0, 0, 4, 0), TrackRect::new(0, 1, 4, 1)],
            ),
            wire(1, Color::Core, TrackRect::new(0, 5, 4, 5)),
        ];
        assert_eq!(trim_conflicts(&pats, &DesignRules::node_10nm()).total(), 0);
    }

    #[test]
    fn pair_counted_once_even_with_many_fragments() {
        // Two L-shaped patterns with several 1-a fragment adjacencies still
        // count as one conflicting pair.
        let pats = vec![
            ColoredPattern::new(0, Color::Core, vec![TrackRect::new(0, 0, 6, 0)]),
            ColoredPattern::new(
                1,
                Color::Core,
                vec![TrackRect::new(0, 1, 3, 1), TrackRect::new(3, 1, 6, 1)],
            ),
        ];
        let c = trim_conflicts(&pats, &DesignRules::node_10nm());
        assert_eq!(c.coloring, 1);
    }
}
