//! The SADP trim-process decomposition simulator (Fig. 1(c)).
//!
//! In the trim process the final layout is the region **not covered by a
//! spacer but covered by the trim mask**. Core-colored patterns print from
//! the core mask and are spacer-wrapped; trim-colored (second) patterns
//! are defined by the trim mask, so every one of their boundary sections
//! not protected by a neighbouring core's spacer is trim-defined — an
//! overlay. The no-assist baselines (\[10\], \[11\]) operate exactly in this
//! regime, which is where their large overlay lengths come from.

use crate::cutsim::{CutSimulator, Decomposition};
use crate::layout::ColoredPattern;
use sadp_geom::DesignRules;

/// Trim-process mask synthesis and measurement.
///
/// Shares the pixel pipeline of [`CutSimulator`] with assist-core
/// generation disabled; the `cut` bitmap of the result is reinterpreted as
/// the *trim-defined boundary region* and the `cut_conflicts` counter as
/// **trim line-end conflicts** (two parallel trim-defined boundary
/// sections of one pattern within the trim spacing — the parallel-line-end
/// violations of \[2\] and \[10\]).
///
/// # Example
///
/// ```
/// use sadp_decomp::{ColoredPattern, TrimSimulator};
/// use sadp_geom::{DesignRules, TrackRect};
/// use sadp_scenario::Color;
///
/// // An isolated trim-colored wire has no spacer anywhere: both sides are
/// // trim-defined overlay.
/// let wire = ColoredPattern::new(0, Color::Second, vec![TrackRect::new(2, 2, 9, 2)]);
/// let sim = TrimSimulator::new(DesignRules::node_10nm());
/// let d = sim.run(&[wire]);
/// assert!(d.report.side_overlay_units() >= 16);
/// ```
#[derive(Debug, Clone)]
pub struct TrimSimulator {
    inner: CutSimulator,
}

impl TrimSimulator {
    /// Creates a trim-process simulator for the given rule set.
    ///
    /// # Panics
    ///
    /// Panics if any rule dimension is not a multiple of the 10 nm pixel
    /// size.
    #[must_use]
    pub fn new(rules: DesignRules) -> TrimSimulator {
        TrimSimulator {
            inner: CutSimulator::new(rules),
        }
    }

    /// Runs the trim-process pipeline (no assist cores).
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty.
    #[must_use]
    pub fn run(&self, patterns: &[ColoredPattern]) -> Decomposition {
        self.inner.run_with_options(patterns, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_geom::TrackRect;
    use sadp_scenario::Color;

    fn sim() -> TrimSimulator {
        TrimSimulator::new(DesignRules::node_10nm())
    }

    fn wire(net: u32, color: Color, r: TrackRect) -> ColoredPattern {
        ColoredPattern::new(net, color, vec![r])
    }

    #[test]
    fn core_pattern_is_fully_protected() {
        let d = sim().run(&[wire(0, Color::Core, TrackRect::new(2, 2, 9, 2))]);
        assert_eq!(d.report.side_overlay_px, 0);
        assert_eq!(d.report.spacer_violations, 0);
    }

    #[test]
    fn isolated_trim_pattern_is_exposed() {
        let d = sim().run(&[wire(0, Color::Second, TrackRect::new(2, 2, 9, 2))]);
        // Both long sides are trim-defined: an 8-cell wire spans
        // 7*pitch + w_line = 30 px, so 60 px of side overlay.
        assert_eq!(d.report.side_overlay_px, 60);
        assert!(d.report.hard_overlay_runs >= 2, "long runs are hard");
    }

    #[test]
    fn adjacent_core_spacer_protects_facing_side() {
        let d = sim().run(&[
            wire(0, Color::Second, TrackRect::new(0, 1, 9, 1)),
            wire(1, Color::Core, TrackRect::new(0, 0, 9, 0)),
        ]);
        // Only the far side of the trim wire stays exposed: one 38 px run
        // (10 cells span 9*pitch + w_line).
        assert_eq!(d.report.side_overlay_px, 38);
        assert_eq!(d.report.hard_overlay_runs, 1);
    }

    #[test]
    fn cut_process_beats_trim_on_the_same_layout() {
        // The motivating comparison: identical colored layout, the cut
        // process protects the second pattern with assist cores, the trim
        // process leaves it exposed.
        let pats = vec![
            wire(0, Color::Second, TrackRect::new(0, 3, 9, 3)),
            wire(1, Color::Core, TrackRect::new(0, 0, 9, 0)),
        ];
        let trim = sim().run(&pats);
        let cut = CutSimulator::new(DesignRules::node_10nm()).run(&pats);
        assert!(cut.report.side_overlay_px < trim.report.side_overlay_px);
        assert_eq!(cut.report.side_overlay_px, 0);
    }

    #[test]
    fn line_end_conflict_detected() {
        // Two trim-colored wires tip-to-tip at minimum spacing: the trim
        // mask must end twice within w_line+2*gap < d_cut over the gap —
        // the parallel-line-end violation. In pixel terms the separating
        // region is trim-defined on both flanks of each tip.
        let d = sim().run(&[
            wire(0, Color::Second, TrackRect::new(0, 0, 4, 0)),
            wire(1, Color::Second, TrackRect::new(5, 0, 9, 0)),
        ]);
        assert!(d.report.side_overlay_px > 0);
        // Both wires fully exposed -> hard runs on all sides.
        assert!(d.report.hard_overlay_runs >= 2);
    }
}
