//! Whole-layout decomposability verification: the independent oracle for
//! the router's conflict-free claim.

use crate::cutsim::CutSimulator;
use crate::layout::ColoredPattern;
use sadp_geom::{DesignRules, Layer, TrackRect};
use sadp_obs::{Recorder, SpanClock, Stage};
use sadp_scenario::Color;
use std::fmt;

/// Verification result for one routing layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerVerdict {
    /// The layer.
    pub layer: Layer,
    /// Patterns decomposed on this layer.
    pub patterns: usize,
    /// Measured side overlay, in `w_line` units.
    pub side_overlay_units: u64,
    /// Side-overlay runs longer than `w_line`.
    pub hard_overlay_runs: usize,
    /// Type-B cut conflicts.
    pub cut_conflicts: usize,
    /// Spacer pixels destroying target patterns (must be 0).
    pub spacer_violations: usize,
}

/// Aggregate verification verdict over all layers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Verdict {
    /// Per-layer results.
    pub layers: Vec<LayerVerdict>,
}

impl Verdict {
    /// Whether every layer decomposed without destroying targets and
    /// without cut conflicts.
    #[must_use]
    pub fn is_decomposable(&self) -> bool {
        self.layers
            .iter()
            .all(|l| l.spacer_violations == 0 && l.cut_conflicts == 0)
    }

    /// Total side overlay across layers, in `w_line` units.
    #[must_use]
    pub fn total_overlay_units(&self) -> u64 {
        self.layers.iter().map(|l| l.side_overlay_units).sum()
    }

    /// Total hard-overlay runs across layers.
    #[must_use]
    pub fn total_hard_runs(&self) -> usize {
        self.layers.iter().map(|l| l.hard_overlay_runs).sum()
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for l in &self.layers {
            writeln!(
                f,
                "{}: {} patterns, overlay {} units, {} hard runs, {} cut conflicts, {} spacer violations",
                l.layer,
                l.patterns,
                l.side_overlay_units,
                l.hard_overlay_runs,
                l.cut_conflicts,
                l.spacer_violations
            )?;
        }
        write!(
            f,
            "verdict: {}",
            if self.is_decomposable() {
                "decomposable"
            } else {
                "NOT decomposable"
            }
        )
    }
}

/// Verifies a multi-layer colored layout through the cut-process pixel
/// simulator. Input format matches
/// [`Router::patterns_on_layer`](../../sadp_core/struct.Router.html#method.patterns_on_layer):
/// one `(net, color, fragment rects)` list per layer.
///
/// # Example
///
/// ```
/// use sadp_decomp::verify_layers;
/// use sadp_geom::{DesignRules, TrackRect};
/// use sadp_scenario::Color;
///
/// let m1 = vec![
///     (0, Color::Core, vec![TrackRect::new(0, 0, 9, 0)]),
///     (1, Color::Second, vec![TrackRect::new(0, 1, 9, 1)]),
/// ];
/// let verdict = verify_layers(&[m1], &DesignRules::node_10nm());
/// assert!(verdict.is_decomposable());
/// assert_eq!(verdict.total_overlay_units(), 0);
/// ```
#[must_use]
pub fn verify_layers(layers: &[Vec<(u32, Color, Vec<TrackRect>)>], rules: &DesignRules) -> Verdict {
    let sim = CutSimulator::new(*rules);
    let mut verdict = Verdict::default();
    for (i, layer_patterns) in layers.iter().enumerate() {
        let layer = Layer(i as u8);
        if layer_patterns.is_empty() {
            verdict.layers.push(LayerVerdict {
                layer,
                patterns: 0,
                side_overlay_units: 0,
                hard_overlay_runs: 0,
                cut_conflicts: 0,
                spacer_violations: 0,
            });
            continue;
        }
        let patterns: Vec<ColoredPattern> = layer_patterns
            .iter()
            .map(|(net, color, rects)| ColoredPattern::new(*net, *color, rects.clone()))
            .collect();
        let d = sim.run(&patterns);
        verdict.layers.push(LayerVerdict {
            layer,
            patterns: patterns.len(),
            side_overlay_units: d.report.side_overlay_units(),
            hard_overlay_runs: d.report.hard_overlay_runs,
            cut_conflicts: d.report.cut_conflicts,
            spacer_violations: d.report.spacer_violations,
        });
    }
    verdict
}

/// [`verify_layers`], timed as one `decompose` span on `rec` (the
/// decomposition simulator is the verification step of the pipeline).
#[must_use]
pub fn verify_layers_observed(
    layers: &[Vec<(u32, Color, Vec<TrackRect>)>],
    rules: &DesignRules,
    rec: &mut dyn Recorder,
) -> Verdict {
    let clock = SpanClock::start(&*rec);
    let verdict = verify_layers(layers, rules);
    clock.stop(rec, Stage::Decompose);
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules() -> DesignRules {
        DesignRules::node_10nm()
    }

    #[test]
    fn clean_two_layer_layout() {
        let m1 = vec![
            (0, Color::Core, vec![TrackRect::new(0, 0, 9, 0)]),
            (1, Color::Second, vec![TrackRect::new(0, 1, 9, 1)]),
        ];
        let m2 = vec![(2, Color::Core, vec![TrackRect::new(3, 0, 3, 9)])];
        let v = verify_layers(&[m1, m2], &rules());
        assert!(v.is_decomposable());
        assert_eq!(v.layers.len(), 2);
        assert_eq!(v.total_overlay_units(), 0);
        assert_eq!(v.total_hard_runs(), 0);
        assert!(v.to_string().contains("decomposable"));
    }

    #[test]
    fn violated_layout_fails() {
        // Same-color 1-a pair: hard overlay runs appear.
        let m1 = vec![
            (0, Color::Core, vec![TrackRect::new(0, 0, 9, 0)]),
            (1, Color::Core, vec![TrackRect::new(0, 1, 9, 1)]),
        ];
        let v = verify_layers(&[m1], &rules());
        assert!(v.total_hard_runs() > 0);
    }

    #[test]
    fn empty_layers_are_fine() {
        let v = verify_layers(&[vec![], vec![]], &rules());
        assert!(v.is_decomposable());
        assert_eq!(v.layers.len(), 2);
        assert_eq!(v.layers[0].patterns, 0);
    }
}
