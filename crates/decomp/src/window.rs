//! Replay of the 11 canonical scenario windows through the pixel simulator
//! (regenerates the appendix Figs. 23–34 and cross-checks Table II).

use crate::cutsim::{CutSimulator, DecompReport};
use crate::layout::ColoredPattern;
use sadp_geom::{DesignRules, TrackRect};
use sadp_scenario::{classify, Assignment, ScenarioKind};

/// The canonical two-rectangle window of a scenario kind, with the
/// canonical "A" pattern first.
#[must_use]
pub fn canonical_window(kind: ScenarioKind) -> (TrackRect, TrackRect) {
    match kind {
        ScenarioKind::OneA => (TrackRect::new(0, 0, 5, 0), TrackRect::new(1, 1, 7, 1)),
        ScenarioKind::OneB => (TrackRect::new(0, 0, 4, 0), TrackRect::new(5, 0, 9, 0)),
        ScenarioKind::TwoA => (TrackRect::new(0, 0, 5, 0), TrackRect::new(0, 2, 5, 2)),
        // Canonical A of the tip-to-side types is the tip pattern.
        ScenarioKind::TwoB => (TrackRect::new(3, 1, 3, 5), TrackRect::new(0, 0, 6, 0)),
        ScenarioKind::TwoC => (TrackRect::new(0, 0, 4, 0), TrackRect::new(6, 0, 10, 0)),
        ScenarioKind::TwoD => (TrackRect::new(3, 2, 3, 6), TrackRect::new(0, 0, 6, 0)),
        ScenarioKind::ThreeA => (TrackRect::new(0, 0, 4, 0), TrackRect::new(5, 1, 9, 1)),
        ScenarioKind::ThreeB => (TrackRect::new(0, 0, 4, 0), TrackRect::new(5, 1, 5, 5)),
        ScenarioKind::ThreeC => (TrackRect::new(0, 0, 4, 0), TrackRect::new(5, 2, 5, 7)),
        ScenarioKind::ThreeD => (TrackRect::new(0, 0, 4, 0), TrackRect::new(6, 1, 10, 1)),
        ScenarioKind::ThreeE => (TrackRect::new(0, 0, 4, 0), TrackRect::new(5, 2, 9, 2)),
    }
}

/// The pixel-simulator measurement of one scenario window under all four
/// color assignments.
#[derive(Debug, Clone)]
pub struct ScenarioReplay {
    /// The scenario kind.
    pub kind: ScenarioKind,
    /// Measured reports in `[CC, CS, SC, SS]` order.
    pub reports: [DecompReport; 4],
}

impl ScenarioReplay {
    /// Side overlay in `w_line` units for one assignment.
    #[must_use]
    pub fn side_units(&self, asg: Assignment) -> u64 {
        self.reports[asg.index()].side_overlay_units()
    }

    /// Whether the assignment measured a hard overlay.
    #[must_use]
    pub fn is_hard(&self, asg: Assignment) -> bool {
        self.reports[asg.index()].hard_overlay_runs > 0
    }
}

/// Replays one scenario window through the cut-process simulator under all
/// four color assignments.
///
/// # Example
///
/// ```
/// use sadp_decomp::replay_scenario;
/// use sadp_geom::DesignRules;
/// use sadp_scenario::{Assignment, ScenarioKind};
///
/// let r = replay_scenario(ScenarioKind::OneA, &DesignRules::node_10nm());
/// assert!(r.is_hard(Assignment::CC));
/// assert_eq!(r.side_units(Assignment::CS), 0);
/// ```
#[must_use]
pub fn replay_scenario(kind: ScenarioKind, rules: &DesignRules) -> ScenarioReplay {
    let (a, b) = canonical_window(kind);
    // Sanity: the canonical window must classify as its own kind.
    let s = classify(&a, &b, rules).expect("canonical window is dependent");
    debug_assert_eq!(s.kind, kind);

    let sim = CutSimulator::new(*rules);
    let reports = Assignment::ALL.map(|asg| {
        let pa = ColoredPattern::new(0, asg.color_a(), vec![a]);
        let pb = ColoredPattern::new(1, asg.color_b(), vec![b]);
        sim.run(&[pa, pb]).report
    });
    ScenarioReplay { kind, reports }
}

/// Replays all 11 scenarios.
#[must_use]
pub fn replay_all_scenarios(rules: &DesignRules) -> Vec<ScenarioReplay> {
    ScenarioKind::ALL
        .iter()
        .map(|&k| replay_scenario(k, rules))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules() -> DesignRules {
        DesignRules::node_10nm()
    }

    #[test]
    fn canonical_windows_classify_as_themselves() {
        for kind in ScenarioKind::ALL {
            let (a, b) = canonical_window(kind);
            let s = classify(&a, &b, &rules()).expect("dependent");
            assert_eq!(s.kind, kind, "window for {kind}");
            // Canonical A first: never swapped.
            assert!(!s.swapped, "window for {kind} should be in canonical order");
        }
    }

    #[test]
    fn hard_scenarios_measure_hard_when_violated() {
        let r = replay_scenario(ScenarioKind::OneA, &rules());
        assert!(r.is_hard(Assignment::CC));
        assert!(r.is_hard(Assignment::SS));
        assert!(!r.is_hard(Assignment::CS));
        assert!(!r.is_hard(Assignment::SC));
    }

    #[test]
    fn optimal_assignments_measure_minimal_overlay() {
        // For every scenario, the table-optimal assignments must measure no
        // more side overlay than any other assignment.
        for kind in ScenarioKind::ALL {
            let r = replay_scenario(kind, &rules());
            let best = kind
                .optimal_assignments()
                .iter()
                .map(|&a| r.side_units(a))
                .max()
                .expect("non-empty");
            let worst = Assignment::ALL
                .iter()
                .map(|&a| r.side_units(a))
                .max()
                .expect("non-empty");
            assert!(best <= worst, "{kind}: optimal {best} vs worst {worst}");
        }
    }

    #[test]
    fn non_constraining_scenarios_measure_clean_everywhere() {
        for kind in [ScenarioKind::TwoC, ScenarioKind::TwoD, ScenarioKind::ThreeE] {
            let r = replay_scenario(kind, &rules());
            for asg in Assignment::ALL {
                assert_eq!(
                    r.side_units(asg),
                    0,
                    "{kind} {asg} should induce no side overlay"
                );
                assert!(!r.is_hard(asg), "{kind} {asg}");
            }
        }
    }

    #[test]
    fn one_b_same_color_is_clean() {
        let r = replay_scenario(ScenarioKind::OneB, &rules());
        assert_eq!(r.side_units(Assignment::CC), 0);
        assert!(!r.is_hard(Assignment::CC));
        assert_eq!(r.side_units(Assignment::SS), 0);
    }

    #[test]
    fn two_b_has_unavoidable_overlay() {
        let r = replay_scenario(ScenarioKind::TwoB, &rules());
        // CC merges tip into side: exactly one friendly unit.
        assert_eq!(r.side_units(Assignment::CC), 1);
        assert!(!r.is_hard(Assignment::CC));
    }

    #[test]
    fn replay_all_covers_eleven() {
        let all = replay_all_scenarios(&rules());
        assert_eq!(all.len(), 11);
    }
}

#[cfg(test)]
mod rule_parameterisation_tests {
    use super::*;

    /// The scenario semantics are a property of the rule *structure*, not
    /// of the 10 nm numbers: the 14 nm-class rule set has the same
    /// dependence table and must replay to the same qualitative verdicts.
    #[test]
    fn windows_replay_identically_under_node_14nm() {
        let a = DesignRules::node_10nm();
        let b = DesignRules::node_14nm();
        for kind in ScenarioKind::ALL {
            let ra = replay_scenario(kind, &a);
            let rb = replay_scenario(kind, &b);
            for asg in Assignment::ALL {
                assert_eq!(
                    ra.side_units(asg) == 0,
                    rb.side_units(asg) == 0,
                    "{kind} {asg}: zero/nonzero differs between rule sets"
                );
                assert_eq!(
                    ra.is_hard(asg),
                    rb.is_hard(asg),
                    "{kind} {asg}: hardness differs between rule sets"
                );
            }
        }
    }
}
