//! Deterministic workload generation across stratified regimes.
//!
//! Every instance is a pure function of `(Regime, u64 seed)`: the
//! generator draws from [`sadp_geom::Rng`] (SplitMix64) only, so the same
//! pair reproduces the same plane and netlist byte-for-byte on every
//! machine and toolchain. Each regime stresses a different part of the
//! router:
//!
//! * [`Regime::DenseClock`] — clock-tree-like multi-terminal nets over a
//!   dense field of short datapath pairs,
//! * [`Regime::SparsePairs`] — low-density random two-pin nets with long
//!   spans and scattered blockages,
//! * [`Regime::OddCycleRich`] — collinear tip-to-tip segments packed into
//!   narrow blockage channels (the Fig. 21 odd-cycle family),
//! * [`Regime::NarrowBand`] — a plane narrower than one shard band, so
//!   the serial single-band path is exercised,
//! * [`Regime::MultiBandWide`] — a plane wide enough for a multi-band
//!   partition, so the sharded parallel driver is exercised.

use sadp_geom::{DesignRules, GridPoint, Layer, Rng, TrackRect};
use sadp_grid::{Netlist, Pin, RoutingPlane};
use std::collections::HashMap;
use std::fmt;

/// One stratified workload family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Dense clock-tree-like instances: a few multi-terminal nets plus a
    /// dense field of short two-pin nets.
    DenseClock,
    /// Sparse random two-pin nets with unconstrained spans.
    SparsePairs,
    /// Pathological odd-cycle-rich channels of tip-to-tip segments.
    OddCycleRich,
    /// A narrow single-band plane (serial scheduling path).
    NarrowBand,
    /// A wide multi-band plane (sharded scheduling path).
    MultiBandWide,
}

impl Regime {
    /// Every regime, in the canonical fuzzing order.
    pub const ALL: [Regime; 5] = [
        Regime::DenseClock,
        Regime::SparsePairs,
        Regime::OddCycleRich,
        Regime::NarrowBand,
        Regime::MultiBandWide,
    ];

    /// The stable CLI name (`--regime` value, artifact file names).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Regime::DenseClock => "dense-clock",
            Regime::SparsePairs => "sparse-pairs",
            Regime::OddCycleRich => "odd-cycle",
            Regime::NarrowBand => "narrow-band",
            Regime::MultiBandWide => "multi-band",
        }
    }

    /// Parses a CLI name back into a regime.
    #[must_use]
    pub fn parse(name: &str) -> Option<Regime> {
        Regime::ALL.iter().copied().find(|r| r.name() == name)
    }

    /// A per-regime salt so the regimes draw independent streams from the
    /// same user-facing seed.
    fn salt(self) -> u64 {
        match self {
            Regime::DenseClock => 0xC10C_1000,
            Regime::SparsePairs => 0x5BA2_5E00,
            Regime::OddCycleRich => 0x0DDC_7C1E,
            Regime::NarrowBand => 0x0A22_08A9,
            Regime::MultiBandWide => 0x3B1D_3B1D,
        }
    }
}

impl fmt::Display for Regime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One generated fuzzing instance.
#[derive(Debug, Clone)]
pub struct FuzzInstance {
    /// The regime that produced it.
    pub regime: Regime,
    /// The user-facing seed (`sadp fuzz` counts these up from `--start`).
    pub seed: u64,
    /// The plane, with blockages applied.
    pub plane: RoutingPlane,
    /// The netlist.
    pub netlist: Netlist,
}

/// Generates the instance for `(regime, seed)`. Never panics: a seed that
/// fails to place all requested pins simply yields fewer nets.
#[must_use]
pub fn generate(regime: Regime, seed: u64) -> FuzzInstance {
    let mut rng = Rng::seed_from_u64(seed ^ regime.salt());
    let (plane, netlist) = match regime {
        Regime::DenseClock => gen_dense_clock(&mut rng),
        Regime::SparsePairs => gen_sparse_pairs(&mut rng),
        Regime::OddCycleRich => gen_odd_cycle(&mut rng),
        Regime::NarrowBand => gen_narrow_band(&mut rng),
        Regime::MultiBandWide => gen_multi_band(&mut rng),
    };
    FuzzInstance {
        regime,
        seed,
        plane,
        netlist,
    }
}

/// Pin-cell bookkeeping: a candidate must be free, unused, and one track
/// clear of every *other* net's pins (the same spacing rule as the
/// Test1–10 benchmark generator).
struct Placer {
    used: HashMap<(i32, i32), usize>,
}

impl Placer {
    fn new() -> Placer {
        Placer {
            used: HashMap::new(),
        }
    }

    fn ok(&self, plane: &RoutingPlane, x: i32, y: i32, net: usize) -> bool {
        plane.is_free(GridPoint::new(Layer(0), x, y))
            && !self.used.contains_key(&(x, y))
            && !(-1..=1).any(|dx| {
                (-1..=1).any(|dy| self.used.get(&(x + dx, y + dy)).is_some_and(|&n| n != net))
            })
    }

    fn take(&mut self, x: i32, y: i32, net: usize) -> Pin {
        self.used.insert((x, y), net);
        Pin::fixed(GridPoint::new(Layer(0), x, y))
    }
}

fn new_plane(layers: u8, w: i32, h: i32) -> RoutingPlane {
    RoutingPlane::new(layers, w, h, DesignRules::node_10nm()).expect("generator dims are valid")
}

/// Scatters `count` small rectangular blockages over random layers.
fn scatter_blockages(rng: &mut Rng, plane: &mut RoutingPlane, count: usize) {
    for _ in 0..count {
        let layer = Layer(rng.index(plane.layers() as usize) as u8);
        let w = rng.range_i32_inclusive(2..=6);
        let h = rng.range_i32_inclusive(2..=6);
        let x = rng.range_i32(0..(plane.width() - w).max(1));
        let y = rng.range_i32(0..(plane.height() - h).max(1));
        plane.add_blockage(layer, TrackRect::new(x, y, x + w - 1, y + h - 1));
    }
}

/// Places `count` two-pin nets with spans up to `max_span`, skipping
/// placements that collide (bounded attempts, never panics).
fn place_pairs(
    rng: &mut Rng,
    plane: &RoutingPlane,
    placer: &mut Placer,
    netlist: &mut Netlist,
    count: usize,
    max_span: i32,
) {
    let (w, h) = (plane.width(), plane.height());
    let mut attempts = 0usize;
    let budget = count * 60;
    while netlist.len() < count && attempts < budget {
        attempts += 1;
        let net = netlist.len();
        let sx = rng.range_i32(0..w);
        let sy = rng.range_i32(0..h);
        let dx = rng.range_i32_inclusive(-max_span..=max_span);
        let dy = rng.range_i32_inclusive(-max_span..=max_span);
        let (tx, ty) = (sx + dx, sy + dy);
        if (dx == 0 && dy == 0) || tx < 0 || tx >= w || ty < 0 || ty >= h {
            continue;
        }
        if !placer.ok(plane, sx, sy, net) || !placer.ok(plane, tx, ty, net) || (sx, sy) == (tx, ty)
        {
            continue;
        }
        let source = placer.take(sx, sy, net);
        let target = placer.take(tx, ty, net);
        netlist.add_net(format!("p{net}"), source, target);
    }
}

fn gen_dense_clock(rng: &mut Rng) -> (RoutingPlane, Netlist) {
    let w = rng.range_i32_inclusive(44..=72);
    let h = rng.range_i32_inclusive(44..=72);
    let mut plane = new_plane(3, w, h);
    let blockages = rng.index(4);
    scatter_blockages(rng, &mut plane, blockages);
    let mut placer = Placer::new();
    let mut netlist = Netlist::new();

    // A few clock-tree-like nets: a central hub plus 2–4 spread terminals.
    let trees = rng.range_i32_inclusive(1..=3) as usize;
    for t in 0..trees {
        let net = netlist.len();
        let hub = (
            rng.range_i32(w / 4..3 * w / 4),
            rng.range_i32(h / 4..3 * h / 4),
        );
        if !placer.ok(&plane, hub.0, hub.1, net) {
            continue;
        }
        let terminals = rng.range_i32_inclusive(2..=4) as usize;
        let mut pins = vec![placer.take(hub.0, hub.1, net)];
        for _ in 0..terminals * 8 {
            if pins.len() > terminals {
                break;
            }
            let x = rng.range_i32(0..w);
            let y = rng.range_i32(0..h);
            if placer.ok(&plane, x, y, net) {
                pins.push(placer.take(x, y, net));
            }
        }
        if pins.len() >= 2 {
            netlist.add_multi_pin(format!("clk{t}"), pins);
        }
    }

    // The dense datapath field: short spans, ~1 net per 30 cells.
    let pairs = (w as usize * h as usize) / 30;
    place_pairs(rng, &plane, &mut placer, &mut netlist, pairs, 9);
    (plane, netlist)
}

fn gen_sparse_pairs(rng: &mut Rng) -> (RoutingPlane, Netlist) {
    let w = rng.range_i32_inclusive(32..=96);
    let h = rng.range_i32_inclusive(32..=96);
    let mut plane = new_plane(3, w, h);
    let blockages = rng.index(7);
    scatter_blockages(rng, &mut plane, blockages);
    let mut placer = Placer::new();
    let mut netlist = Netlist::new();
    let pairs = (w as usize * h as usize) / 160;
    // Long spans allowed: up to half the die edge.
    place_pairs(rng, &plane, &mut placer, &mut netlist, pairs, w.max(h) / 2);
    (plane, netlist)
}

fn gen_odd_cycle(rng: &mut Rng) -> (RoutingPlane, Netlist) {
    // Horizontal channels of 2–3 free tracks separated by full-width
    // blockage walls; channels are filled with collinear tip-to-tip
    // segments and parallel neighbours — the 1-a / 1-b chain and
    // odd-cycle factory of Figs. 2 and 21.
    let w = rng.range_i32_inclusive(24..=48);
    let channels = rng.range_i32_inclusive(2..=4);
    let channel_h = rng.range_i32_inclusive(2..=3);
    let wall = 2;
    let h = channels * (channel_h + wall) + wall;
    let layers = if rng.chance(0.3) { 1 } else { 2 };
    let mut plane = new_plane(layers, w, h);
    for c in 0..=channels {
        let y0 = c * (channel_h + wall);
        // Walls block every layer so the channels are genuinely narrow.
        for l in 0..layers {
            plane.add_blockage(Layer(l), TrackRect::new(0, y0, w - 1, y0 + wall - 1));
        }
    }
    let mut placer = Placer::new();
    let mut netlist = Netlist::new();
    for c in 0..channels {
        let base = c * (channel_h + wall) + wall;
        for row in 0..channel_h {
            let y = base + row;
            // Chop the row into tip-to-tip segments with 1-cell gaps.
            let mut x = rng.range_i32_inclusive(1..=3);
            while x + 3 < w {
                let len = rng.range_i32_inclusive(3..=8).min(w - 1 - x);
                if len < 2 {
                    break;
                }
                let net = netlist.len();
                let (sx, tx) = (x, x + len - 1);
                if placer.ok(&plane, sx, y, net) && placer.ok(&plane, tx, y, net) {
                    let source = placer.take(sx, y, net);
                    let target = placer.take(tx, y, net);
                    netlist.add_net(format!("s{net}"), source, target);
                }
                // Tip-to-tip: the next segment starts one cell after this
                // one ends (the merge-and-cut distance), sometimes two.
                x += len + rng.range_i32_inclusive(1..=2);
            }
        }
    }
    (plane, netlist)
}

fn gen_narrow_band(rng: &mut Rng) -> (RoutingPlane, Netlist) {
    // Narrower than one shard band: the schedule must take the serial
    // single-band path for every thread count.
    let w = rng.range_i32_inclusive(16..=32);
    let h = rng.range_i32_inclusive(64..=128);
    let mut plane = new_plane(3, w, h);
    let blockages = rng.index(3);
    scatter_blockages(rng, &mut plane, blockages);
    let mut placer = Placer::new();
    let mut netlist = Netlist::new();
    let pairs = (w as usize * h as usize) / 90;
    // Mostly-vertical nets: the narrow dimension forces contention.
    let (ww, hh) = (plane.width(), plane.height());
    let mut attempts = 0usize;
    while netlist.len() < pairs && attempts < pairs * 60 {
        attempts += 1;
        let net = netlist.len();
        let sx = rng.range_i32(0..ww);
        let sy = rng.range_i32(0..hh);
        let tx = (sx + rng.range_i32_inclusive(-3..=3)).clamp(0, ww - 1);
        let ty = (sy + rng.range_i32_inclusive(-20..=20)).clamp(0, hh - 1);
        if (sx, sy) == (tx, ty)
            || !placer.ok(&plane, sx, sy, net)
            || !placer.ok(&plane, tx, ty, net)
        {
            continue;
        }
        let source = placer.take(sx, sy, net);
        let target = placer.take(tx, ty, net);
        netlist.add_net(format!("v{net}"), source, target);
    }
    (plane, netlist)
}

fn gen_multi_band(rng: &mut Rng) -> (RoutingPlane, Netlist) {
    // Wide enough for ≥ 2 column bands (TARGET_BAND_WIDTH is 192): the
    // sharded parallel driver and its band-merge fold are exercised.
    let w = rng.range_i32_inclusive(400..=520);
    let h = rng.range_i32_inclusive(40..=64);
    let mut plane = new_plane(3, w, h);
    let blockages = rng.index(6);
    scatter_blockages(rng, &mut plane, blockages);
    let mut placer = Placer::new();
    let mut netlist = Netlist::new();
    let pairs = (w as usize) / 6;
    place_pairs(rng, &plane, &mut placer, &mut netlist, pairs, 14);
    // A handful of long east-west nets that cross band boundaries.
    let crossers = rng.range_i32_inclusive(2..=5) as usize;
    let mut attempts = 0usize;
    let mut placed = 0usize;
    while placed < crossers && attempts < crossers * 60 {
        attempts += 1;
        let net = netlist.len();
        let sx = rng.range_i32(0..w / 4);
        let tx = rng.range_i32(3 * w / 4..w);
        let sy = rng.range_i32(0..h);
        let ty = rng.range_i32(0..h);
        if !placer.ok(&plane, sx, sy, net) || !placer.ok(&plane, tx, ty, net) {
            continue;
        }
        let source = placer.take(sx, sy, net);
        let target = placer.take(tx, ty, net);
        netlist.add_net(format!("x{net}"), source, target);
        placed += 1;
    }
    (plane, netlist)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for regime in Regime::ALL {
            let a = generate(regime, 7);
            let b = generate(regime, 7);
            assert_eq!(a.netlist, b.netlist, "{regime}");
            assert_eq!(a.plane.usage(), b.plane.usage(), "{regime}");
            let c = generate(regime, 8);
            assert!(
                a.netlist != c.netlist || a.plane.usage() != c.plane.usage(),
                "{regime}: different seeds should differ"
            );
        }
    }

    #[test]
    fn regimes_have_distinct_streams() {
        let a = generate(Regime::DenseClock, 1);
        let b = generate(Regime::SparsePairs, 1);
        assert_ne!(a.netlist, b.netlist);
    }

    #[test]
    fn every_regime_yields_nets() {
        for regime in Regime::ALL {
            for seed in 0..5 {
                let inst = generate(regime, seed);
                assert!(
                    inst.netlist.len() >= 2,
                    "{regime} seed {seed}: only {} nets",
                    inst.netlist.len()
                );
            }
        }
    }

    #[test]
    fn pins_are_free_cells() {
        for regime in Regime::ALL {
            let inst = generate(regime, 3);
            for net in &inst.netlist {
                for pin in net.pins() {
                    for &c in pin.candidates() {
                        assert!(inst.plane.is_free(c), "{regime}: pin on blocked cell {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn regime_names_round_trip() {
        for regime in Regime::ALL {
            assert_eq!(Regime::parse(regime.name()), Some(regime));
        }
        assert_eq!(Regime::parse("nope"), None);
    }

    #[test]
    fn band_regimes_have_the_advertised_widths() {
        use sadp_grid::BandPlan;
        let halo = sadp_scenario::interaction_radius_tracks(&DesignRules::node_10nm());
        for seed in 0..3 {
            let narrow = generate(Regime::NarrowBand, seed);
            assert_eq!(BandPlan::for_plane(narrow.plane.width(), halo).len(), 1);
            let wide = generate(Regime::MultiBandWide, seed);
            assert!(BandPlan::for_plane(wide.plane.width(), halo).len() >= 2);
        }
    }
}
