//! Deterministic fuzzing and differential verification for the SADP
//! router.
//!
//! The paper's headline claim — zero cut conflicts and zero unresolved
//! odd cycles after merge-and-cut — is exercised by five fixed benchmarks
//! in the evaluation harness; this crate turns the independent
//! decomposition oracle ([`sadp_decomp::verify_layers`]) into a
//! *generative* correctness gate. Three parts:
//!
//! * [`generator`] — synthesises random planes and netlists across five
//!   stratified regimes, each instance a pure function of
//!   `(Regime, u64 seed)` via the SplitMix64 [`sadp_geom::Rng`],
//! * [`oracle`] — routes each instance, checks the structural invariant
//!   set (no panics, net accounting, zero conflicts, wirelength bounds,
//!   plane-occupancy consistency), decomposes the result through the
//!   pixel simulator, and runs the differential checks (threads-1 vs
//!   threads-N byte identity, baseline sanity),
//! * [`shrink`] — delta-debugs a failing instance down to a replayable
//!   `.layout` fixture for the regression corpus.
//!
//! The whole campaign is deterministic: the same seed range produces the
//! same instances, the same failures, and the same minimised fixtures on
//! every machine.
//!
//! # Example
//!
//! ```
//! use sadp_fuzz::{check_instance, generate, OracleConfig, Regime};
//!
//! let inst = generate(Regime::SparsePairs, 42);
//! let stats = check_instance(&inst, &OracleConfig::default()).expect("seed 42 is clean");
//! assert_eq!(stats.nets, inst.netlist.len());
//! ```

pub mod generator;
pub mod oracle;
pub mod shrink;
pub mod wire;

pub use generator::{generate, FuzzInstance, Regime};
pub use oracle::{check_instance, check_layout, Invariant, OracleConfig, OracleStats, Violation};
pub use shrink::{minimize, ShrinkResult};
pub use wire::{
    check_wire_input, generate_wire_input, run_wire_campaign, WireCampaignConfig, WireClass,
    WireFailure, WireRegime, WireReport,
};

/// Configuration of one fuzzing campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seeds per regime (`--seeds`).
    pub seeds: u64,
    /// First seed (`--start`); the campaign covers `start..start + seeds`.
    pub start: u64,
    /// Regimes to run (`Regime::ALL` unless `--regime` narrows it).
    pub regimes: Vec<Regime>,
    /// Oracle settings (differential thread count, optional checks).
    pub oracle: OracleConfig,
    /// Whether to minimise failures into replayable fixtures.
    pub minimize: bool,
    /// Predicate-evaluation budget per shrink.
    pub shrink_budget: usize,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seeds: 100,
            start: 0,
            regimes: Regime::ALL.to_vec(),
            oracle: OracleConfig::default(),
            minimize: false,
            shrink_budget: 300,
        }
    }
}

/// One campaign failure, optionally minimised.
#[derive(Debug)]
pub struct Failure {
    /// The regime of the failing instance.
    pub regime: Regime,
    /// Its seed.
    pub seed: u64,
    /// The violated invariant.
    pub violation: Violation,
    /// The fault-injection seed the oracle ran with, if any. Recorded in
    /// the fixture as a `# fault-seed:` marker so `--replay` re-applies
    /// the same faults.
    pub fault_seed: Option<u64>,
    /// The minimised instance (when [`CampaignConfig::minimize`] is set).
    pub shrunk: Option<ShrinkResult>,
}

impl Failure {
    /// The replayable fixture text for the minimised instance, or the
    /// full original instance when shrinking was off.
    #[must_use]
    pub fn fixture_text(&self) -> String {
        let mut header = format!(
            "fuzz failure: regime={} seed={}\ninvariant: {}\ndetail: {}\nreplay: sadp fuzz --replay <this file>",
            self.regime,
            self.seed,
            self.violation.invariant.name(),
            self.violation.detail
        );
        if let Some(fs) = self.fault_seed {
            // Machine-readable (see `fault_seed_marker`): replay re-arms
            // the same fault plan without an explicit --faults flag.
            header.push_str(&format!("\nfault-seed: {fs}"));
        }
        match &self.shrunk {
            Some(s) => s.fixture_text(&header),
            None => {
                let inst = generate(self.regime, self.seed);
                let mut out = String::new();
                for line in header.lines() {
                    out.push_str("# ");
                    out.push_str(line);
                    out.push('\n');
                }
                out.push_str(&sadp_grid::io::write_layout(&inst.plane, &inst.netlist));
                out
            }
        }
    }
}

/// Aggregate result of a campaign.
#[derive(Debug, Default)]
pub struct CampaignReport {
    /// Instances checked.
    pub instances: usize,
    /// Total nets across all instances.
    pub total_nets: usize,
    /// Total nets routed by the serial oracle runs.
    pub total_routed: usize,
    /// Invariant violations found (empty for a clean campaign).
    pub failures: Vec<Failure>,
}

impl CampaignReport {
    /// Whether the campaign found no violations.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Scans fixture text for the `# fault-seed: N` marker written by
/// [`Failure::fixture_text`] for fault-mode failures. The marker rides in
/// a `.layout` comment line, so the layout parser ignores it and replay
/// tooling can still recover the fault plan.
#[must_use]
pub fn fault_seed_marker(text: &str) -> Option<u64> {
    text.lines().find_map(|l| {
        l.trim()
            .strip_prefix("# fault-seed:")
            .and_then(|v| v.trim().parse().ok())
    })
}

/// Runs a fuzzing campaign: for every `(regime, seed)` pair, generate the
/// instance and run the oracle; failures are (optionally) minimised. The
/// `progress` sink receives one deterministic line per regime — wire it
/// to `println!` in a CLI or drop the lines in a library caller.
///
/// When [`OracleConfig::fault_seed`] is set it is treated as a campaign
/// *base* seed: each instance gets its own derived fault seed (mixed with
/// the instance seed) so a campaign sweeps many fault patterns, and the
/// derived seed is recorded in each failure for replay.
pub fn run_campaign(cfg: &CampaignConfig, mut progress: impl FnMut(&str)) -> CampaignReport {
    let mut report = CampaignReport::default();
    for &regime in &cfg.regimes {
        let mut regime_failures = 0usize;
        for seed in cfg.start..cfg.start + cfg.seeds {
            let inst = generate(regime, seed);
            let mut oracle_cfg = cfg.oracle.clone();
            if let Some(base) = cfg.oracle.fault_seed {
                oracle_cfg.fault_seed = Some(base ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
            report.instances += 1;
            report.total_nets += inst.netlist.len();
            match check_instance(&inst, &oracle_cfg) {
                Ok(stats) => report.total_routed += stats.routed,
                Err(violation) => {
                    regime_failures += 1;
                    let shrunk = cfg.minimize.then(|| {
                        let want = violation.invariant;
                        minimize(
                            &inst.plane,
                            &inst.netlist,
                            |plane, nl| {
                                check_layout(plane, nl, &oracle_cfg)
                                    .err()
                                    .is_some_and(|v| v.invariant == want)
                            },
                            cfg.shrink_budget,
                        )
                    });
                    report.failures.push(Failure {
                        regime,
                        seed,
                        violation,
                        fault_seed: oracle_cfg.fault_seed,
                        shrunk,
                    });
                }
            }
        }
        progress(&format!(
            "{:<12} {} seeds, {} failures",
            regime.name(),
            cfg.seeds,
            regime_failures
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let cfg = CampaignConfig {
            seeds: 2,
            ..CampaignConfig::default()
        };
        let mut lines_a = Vec::new();
        let a = run_campaign(&cfg, |l| lines_a.push(l.to_string()));
        assert!(a.is_clean(), "violations: {:?}", a.failures);
        assert_eq!(a.instances, 2 * Regime::ALL.len());
        let mut lines_b = Vec::new();
        let b = run_campaign(&cfg, |l| lines_b.push(l.to_string()));
        assert_eq!(lines_a, lines_b);
        assert_eq!(a.total_nets, b.total_nets);
        assert_eq!(a.total_routed, b.total_routed);
    }
}
