//! The oracle harness: route → decompose → verify, with the full
//! invariant set and the differential checks.
//!
//! The router's headline claim (zero cut conflicts, zero unresolved odd
//! cycles after merge-and-cut) is checked here against the *independent*
//! pixel-simulator oracle [`sadp_decomp::verify_layers`] — the two sides
//! share no conflict-detection code — plus a set of structural invariants
//! that must hold for every input, routable or not.

use crate::generator::FuzzInstance;
use sadp_baselines::{BaselineKind, BaselineRouter};
use sadp_core::{FaultPlan, Router, RouterConfig, RoutingReport};
use sadp_decomp::verify_layers;
use sadp_geom::{Layer, TrackRect};
use sadp_grid::{Netlist, RoutingPlane};
use sadp_obs::{events_to_jsonl, BufferRecorder};
use sadp_scenario::Color;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Which invariant a [`Violation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// `try_route_all` (or anything under it) panicked.
    NoPanic,
    /// `try_route_all` returned a `RouterError` for an in-range plane.
    RouterAccepts,
    /// `routed + failed` must partition the netlist, without duplicates.
    NetAccounting,
    /// The report must claim zero hard overlay violations.
    NoHardOverlay,
    /// The report must claim zero cut conflicts (the paper's `#C`).
    NoCutConflicts,
    /// Every routed `(net, layer)` pair must have a color.
    NoColorFallbacks,
    /// Every routed fragment cell must be occupied by its net on the plane.
    OccupancyConsistent,
    /// Each trunk path must be at least as long as the best candidate-pair
    /// Manhattan distance (A* admissibility sanity).
    WirelengthBound,
    /// The decomposition oracle must find zero spacer violations.
    SpacerClean,
    /// The oracle verdict must agree with the report's conflict counters.
    VerdictAgrees,
    /// Threads-1 and threads-N runs must be byte-identical.
    ThreadDeterminism,
    /// The baseline router must accept the same instance without
    /// panicking and produce a self-consistent report.
    BaselineSane,
    /// Under an injected [`FaultPlan`] the run must recover: no abort, no
    /// net silently lost, budget failures counted exactly once each,
    /// band-panic recovery byte-invisible, and the whole faulted result
    /// byte-identical across thread counts.
    FaultRecovery,
}

impl Invariant {
    /// Stable display name (artifact files, CI logs).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Invariant::NoPanic => "no-panic",
            Invariant::RouterAccepts => "router-accepts",
            Invariant::NetAccounting => "net-accounting",
            Invariant::NoHardOverlay => "no-hard-overlay",
            Invariant::NoCutConflicts => "no-cut-conflicts",
            Invariant::NoColorFallbacks => "no-color-fallbacks",
            Invariant::OccupancyConsistent => "occupancy-consistent",
            Invariant::WirelengthBound => "wirelength-bound",
            Invariant::SpacerClean => "spacer-clean",
            Invariant::VerdictAgrees => "verdict-agrees",
            Invariant::ThreadDeterminism => "thread-determinism",
            Invariant::BaselineSane => "baseline-sane",
            Invariant::FaultRecovery => "fault-recovery",
        }
    }
}

/// One invariant violation, with human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The broken invariant.
    pub invariant: Invariant,
    /// What exactly went wrong.
    pub detail: String,
}

impl Violation {
    fn new(invariant: Invariant, detail: impl Into<String>) -> Violation {
        Violation {
            invariant,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant.name(), self.detail)
    }
}

/// Oracle configuration.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Worker-thread count for the differential run (compared against the
    /// serial run).
    pub threads: usize,
    /// Whether to run the threads-1 vs threads-N differential check.
    pub differential: bool,
    /// Whether to run the baseline cross-check.
    pub baseline: bool,
    /// When set, additionally route the instance under the
    /// [`FaultPlan`] for this seed (injected band-worker panics and
    /// budget exhaustion) and check the recovery invariants.
    pub fault_seed: Option<u64>,
}

impl Default for OracleConfig {
    fn default() -> OracleConfig {
        OracleConfig {
            threads: 4,
            differential: true,
            baseline: true,
            fault_seed: None,
        }
    }
}

/// Summary statistics of one clean oracle run (for throughput reporting;
/// all fields are deterministic for a given instance).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Nets in the instance.
    pub nets: usize,
    /// Nets the router committed.
    pub routed: usize,
    /// Total side overlay claimed by the report.
    pub overlay_units: u64,
    /// Total wirelength.
    pub wirelength: u64,
    /// Hard overlay runs measured by the pixel oracle (accepted yield
    /// risk, not an invariant — see `check_verdict`).
    pub hard_runs: usize,
}

/// Everything observable from one routing run, normalised for comparison
/// (wall-clock fields zeroed).
struct RunResult {
    report: RoutingReport,
    patterns: Vec<Vec<(u32, Color, Vec<TrackRect>)>>,
    failed: Vec<sadp_grid::NetId>,
    usage: (usize, usize, usize),
    routed_plane: RoutingPlane,
    trace: String,
    /// `(net, trunk wirelength, best candidate-pair Manhattan distance)`
    /// per routed net, for the wirelength lower-bound check.
    trunk_bounds: Vec<(u32, u64, u64)>,
}

fn route_once(
    plane: &RoutingPlane,
    netlist: &Netlist,
    threads: usize,
    faults: Option<u64>,
) -> Result<RunResult, Violation> {
    let run = catch_unwind(AssertUnwindSafe(|| {
        let mut plane = plane.clone();
        let mut config = RouterConfig::paper_defaults();
        config.threads = threads;
        config.faults = faults.map(FaultPlan::new);
        let mut router = Router::new(config);
        let mut rec = BufferRecorder::with_flags(true, false);
        let report = router.try_route_all(&mut plane, netlist, &mut rec);
        report.map(|mut report| {
            report.cpu = Duration::ZERO;
            report.profile = report.profile.counts_only();
            let patterns: Vec<_> = (0..plane.layers())
                .map(|l| router.patterns_on_layer(Layer(l)))
                .collect();
            let trunk_bounds = router
                .routed()
                .values()
                .map(|r| {
                    let net = netlist.net(r.id);
                    let best =
                        net.source
                            .candidates()
                            .iter()
                            .flat_map(|s| {
                                net.target.candidates().iter().map(move |t| {
                                    s.x.abs_diff(t.x) as u64 + s.y.abs_diff(t.y) as u64
                                })
                            })
                            .min()
                            .unwrap_or(0);
                    (r.id.0, r.path.wirelength(), best)
                })
                .collect();
            RunResult {
                report,
                patterns,
                failed: router.failed().to_vec(),
                usage: plane.usage(),
                routed_plane: plane,
                trace: events_to_jsonl(&rec.take_events()),
                trunk_bounds,
            }
        })
    }));
    match run {
        Err(payload) => Err(Violation::new(
            Invariant::NoPanic,
            format!(
                "router panicked at threads={threads}: {}",
                panic_message(&payload)
            ),
        )),
        Ok(Err(e)) => Err(Violation::new(
            Invariant::RouterAccepts,
            format!("router rejected the plane: {e}"),
        )),
        Ok(Ok(run)) => Ok(run),
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs the full oracle on one `(plane, netlist)` pair: route, check the
/// structural invariants, decompose through the pixel simulator, and run
/// the differential checks.
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn check_layout(
    plane: &RoutingPlane,
    netlist: &Netlist,
    cfg: &OracleConfig,
) -> Result<OracleStats, Violation> {
    let serial = route_once(plane, netlist, 1, None)?;
    check_structure(netlist, &serial)?;
    let hard_runs = check_verdict(plane, &serial)?;
    if cfg.differential && cfg.threads > 1 {
        let sharded = route_once(plane, netlist, cfg.threads, None)?;
        check_differential(&serial, &sharded, cfg.threads)?;
    }
    if cfg.baseline {
        check_baseline(plane, netlist)?;
    }
    if let Some(seed) = cfg.fault_seed {
        check_faults(plane, netlist, cfg, &serial, seed)?;
    }
    Ok(OracleStats {
        nets: netlist.len(),
        routed: serial.report.routed_nets,
        overlay_units: serial.report.overlay_units,
        wirelength: serial.report.wirelength,
        hard_runs,
    })
}

/// [`check_layout`] for a generated instance.
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn check_instance(inst: &FuzzInstance, cfg: &OracleConfig) -> Result<OracleStats, Violation> {
    check_layout(&inst.plane, &inst.netlist, cfg)
}

fn check_structure(netlist: &Netlist, run: &RunResult) -> Result<(), Violation> {
    let r = &run.report;
    if r.routed_nets + run.failed.len() != netlist.len() {
        return Err(Violation::new(
            Invariant::NetAccounting,
            format!(
                "{} routed + {} failed != {} total",
                r.routed_nets,
                run.failed.len(),
                netlist.len()
            ),
        ));
    }
    let mut failed = run.failed.clone();
    failed.sort_unstable();
    failed.dedup();
    if failed.len() != run.failed.len() {
        return Err(Violation::new(
            Invariant::NetAccounting,
            "failed list contains duplicates",
        ));
    }
    if r.hard_overlay_violations != 0 {
        return Err(Violation::new(
            Invariant::NoHardOverlay,
            format!(
                "{} hard overlay violations reported",
                r.hard_overlay_violations
            ),
        ));
    }
    if r.cut_conflicts != 0 {
        return Err(Violation::new(
            Invariant::NoCutConflicts,
            format!("{} cut conflicts reported", r.cut_conflicts),
        ));
    }
    if r.color_fallbacks != 0 {
        return Err(Violation::new(
            Invariant::NoColorFallbacks,
            format!("{} color fallbacks reported", r.color_fallbacks),
        ));
    }
    for (net, wl, bound) in &run.trunk_bounds {
        if wl < bound {
            return Err(Violation::new(
                Invariant::WirelengthBound,
                format!("net#{net}: trunk wirelength {wl} below Manhattan bound {bound}"),
            ));
        }
    }
    // Occupancy: every fragment cell of every routed net must be marked
    // as occupied *by that net* on the routed plane (catches both leaked
    // rip-ups and phantom fragments). Fragments may overlap at bends and
    // vias, so the check is per cell, not a cell-count comparison.
    for (layer, layer_patterns) in run.patterns.iter().enumerate() {
        for (net, _, rects) in layer_patterns {
            for rect in rects {
                for (x, y) in rect.cells() {
                    let p = sadp_geom::GridPoint::new(Layer(layer as u8), x, y);
                    let occupant = run.routed_plane.occupant(p);
                    if occupant != Some(sadp_grid::NetId(*net)) {
                        return Err(Violation::new(
                            Invariant::OccupancyConsistent,
                            format!("net#{net} fragment cell {p} is held by {occupant:?}"),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

fn check_verdict(plane: &RoutingPlane, run: &RunResult) -> Result<usize, Violation> {
    let verdict = verify_layers(&run.patterns, plane.rules());
    if verdict.layers.iter().any(|l| l.spacer_violations > 0) {
        return Err(Violation::new(
            Invariant::SpacerClean,
            format!("spacer violations in the decomposition: {verdict}"),
        ));
    }
    // The report claims a conflict-free result (checked above); the
    // independent pixel simulator must agree on decomposability. Hard
    // overlay *runs* are deliberately not an invariant: the cost model
    // scores 2-a CS/SC as two soft units (Fig. 26) while the simulator
    // honestly measures the cut-defined run the assist merge leaves —
    // that is accepted yield risk, returned as a statistic instead.
    let clean = run.report.cut_conflicts == 0 && run.report.hard_overlay_violations == 0;
    if clean && !verdict.is_decomposable() {
        return Err(Violation::new(
            Invariant::VerdictAgrees,
            format!("report claims clean but oracle disagrees: {verdict}"),
        ));
    }
    Ok(verdict.total_hard_runs())
}

fn check_differential(
    serial: &RunResult,
    sharded: &RunResult,
    threads: usize,
) -> Result<(), Violation> {
    let mismatch = |what: &str| {
        Err(Violation::new(
            Invariant::ThreadDeterminism,
            format!("threads-1 vs threads-{threads}: {what} diverged"),
        ))
    };
    if serial.report != sharded.report {
        return mismatch("report");
    }
    if serial.patterns != sharded.patterns {
        return mismatch("patterns/colors");
    }
    if serial.failed != sharded.failed {
        return mismatch("failed-net list");
    }
    if serial.usage != sharded.usage {
        return mismatch("plane occupancy");
    }
    if serial.trace != sharded.trace {
        return mismatch("trace JSONL");
    }
    Ok(())
}

fn check_baseline(plane: &RoutingPlane, netlist: &Netlist) -> Result<(), Violation> {
    let run = catch_unwind(AssertUnwindSafe(|| {
        let mut plane = plane.clone();
        let mut baseline = BaselineRouter::new(BaselineKind::CutNoMerge);
        baseline.route_all(&mut plane, netlist)
    }));
    match run {
        Err(payload) => Err(Violation::new(
            Invariant::BaselineSane,
            format!("baseline panicked: {}", panic_message(&payload)),
        )),
        Ok(report) => {
            if report.routed_nets > report.total_nets || report.total_nets != netlist.len() {
                return Err(Violation::new(
                    Invariant::BaselineSane,
                    format!(
                        "baseline accounting: routed {} of {} (netlist {})",
                        report.routed_nets,
                        report.total_nets,
                        netlist.len()
                    ),
                ));
            }
            Ok(())
        }
    }
}

/// Routes the instance under the [`FaultPlan`] for `seed` (injected
/// band-worker panics and per-net budget exhaustion) and checks the
/// recovery invariants against the clean serial run:
///
/// * the faulted run completes — a panic escaping the isolation boundary
///   is a `no-panic` violation from [`route_once`],
/// * no net is silently lost (`routed + failed` still partitions the
///   netlist),
/// * every injected budget fault is counted exactly once in
///   `failed_budget`,
/// * when only band panics were injected, the routed output is
///   byte-identical to the clean run (recovery is invisible apart from
///   the `bands_recovered` counter),
/// * the whole faulted result is byte-identical across thread counts.
fn check_faults(
    plane: &RoutingPlane,
    netlist: &Netlist,
    cfg: &OracleConfig,
    clean: &RunResult,
    seed: u64,
) -> Result<(), Violation> {
    let bad = |what: String| Err(Violation::new(Invariant::FaultRecovery, what));
    let faulted = route_once(plane, netlist, 1, Some(seed))?;
    let r = &faulted.report;
    if r.routed_nets + faulted.failed.len() != netlist.len() {
        return bad(format!(
            "faults seed {seed}: {} routed + {} failed != {} total",
            r.routed_nets,
            faulted.failed.len(),
            netlist.len()
        ));
    }
    let plan = FaultPlan::new(seed);
    let injected = netlist
        .iter()
        .filter(|n| plan.injects_net_budget(n.id.0))
        .count() as u64;
    if r.failed_budget != injected {
        return bad(format!(
            "faults seed {seed}: failed_budget {} but {injected} nets had budget faults injected",
            r.failed_budget
        ));
    }
    if injected == 0 {
        // Pure band-panic faults: recovery must be byte-invisible.
        let mut masked = faulted.report.clone();
        masked.bands_recovered = 0;
        if masked != clean.report
            || faulted.patterns != clean.patterns
            || faulted.failed != clean.failed
            || faulted.usage != clean.usage
        {
            return bad(format!(
                "faults seed {seed}: band-panic recovery changed the routed output"
            ));
        }
    }
    if cfg.differential && cfg.threads > 1 {
        let sharded = route_once(plane, netlist, cfg.threads, Some(seed))?;
        if faulted.report != sharded.report
            || faulted.patterns != sharded.patterns
            || faulted.failed != sharded.failed
            || faulted.usage != sharded.usage
            || faulted.trace != sharded.trace
        {
            return bad(format!(
                "faults seed {seed}: threads-1 vs threads-{} diverged under injected faults",
                cfg.threads
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, Regime};

    fn quick_cfg() -> OracleConfig {
        OracleConfig {
            threads: 2,
            differential: true,
            baseline: true,
            fault_seed: None,
        }
    }

    #[test]
    fn clean_instances_pass_every_regime() {
        for regime in Regime::ALL {
            let inst = generate(regime, 1);
            let stats = check_instance(&inst, &quick_cfg())
                .unwrap_or_else(|v| panic!("{regime} seed 1: {v}"));
            assert_eq!(stats.nets, inst.netlist.len());
        }
    }

    #[test]
    fn oracle_is_deterministic() {
        let inst = generate(Regime::OddCycleRich, 5);
        let a = check_instance(&inst, &quick_cfg());
        let b = check_instance(&inst, &quick_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn hand_built_bad_coloring_is_caught_by_the_oracle() {
        // Sanity that the pixel oracle used here actually rejects a bad
        // layout: the same-color 1-a pair of the verify.rs tests.
        use sadp_geom::DesignRules;
        let m1 = vec![
            (0, Color::Core, vec![TrackRect::new(0, 0, 9, 0)]),
            (1, Color::Core, vec![TrackRect::new(0, 1, 9, 1)]),
        ];
        let verdict = verify_layers(&[m1], &DesignRules::node_10nm());
        assert!(verdict.total_hard_runs() > 0);
    }

    #[test]
    fn violation_formats_with_invariant_name() {
        let v = Violation::new(Invariant::NoPanic, "boom");
        assert_eq!(v.to_string(), "[no-panic] boom");
        for inv in [
            Invariant::NoPanic,
            Invariant::RouterAccepts,
            Invariant::NetAccounting,
            Invariant::NoHardOverlay,
            Invariant::NoCutConflicts,
            Invariant::NoColorFallbacks,
            Invariant::OccupancyConsistent,
            Invariant::WirelengthBound,
            Invariant::SpacerClean,
            Invariant::VerdictAgrees,
            Invariant::ThreadDeterminism,
            Invariant::BaselineSane,
            Invariant::FaultRecovery,
        ] {
            assert!(!inv.name().is_empty());
        }
    }

    #[test]
    fn clean_instances_recover_from_injected_faults() {
        // A couple of (regime, fault seed) pairs; the recovery invariants
        // must hold for every seed, whether or not it triggers a fault.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence injected panics
        let result = catch_unwind(|| {
            for fault_seed in [0u64, 1, 7] {
                let cfg = OracleConfig {
                    fault_seed: Some(fault_seed),
                    ..quick_cfg()
                };
                let inst = generate(Regime::DenseClock, 3);
                check_instance(&inst, &cfg)
                    .unwrap_or_else(|v| panic!("fault seed {fault_seed}: {v}"));
            }
        });
        std::panic::set_hook(hook);
        result.expect("fault-recovery oracle run failed");
    }
}
