//! Automatic instance minimisation (delta debugging).
//!
//! Given a failing `(plane, netlist)` pair and a predicate that re-checks
//! the failure, the shrinker greedily drops net chunks (classic ddmin),
//! trims the plane to the bounding box of what remains, and drops unused
//! layers — re-validating the predicate after every candidate step. The
//! result is written as a replayable `.layout` fixture with a comment
//! header carrying the original seed, so a nightly failure reduces to a
//! few lines of checked-in text.

use sadp_geom::{GridPoint, Layer, TrackRect};
use sadp_grid::{io::write_layout, CellState, Net, Netlist, RoutingPlane};

/// Outcome of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimised plane.
    pub plane: RoutingPlane,
    /// The minimised netlist.
    pub netlist: Netlist,
    /// Predicate evaluations spent.
    pub checks: usize,
    /// Whether the budget ran out before a fixpoint was reached.
    pub budget_exhausted: bool,
}

impl ShrinkResult {
    /// The replayable `.layout` fixture text, prefixed with `header`
    /// comment lines (each line is `#`-prefixed automatically).
    #[must_use]
    pub fn fixture_text(&self, header: &str) -> String {
        let mut out = String::new();
        for line in header.lines() {
            out.push_str("# ");
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(&write_layout(&self.plane, &self.netlist));
        out
    }
}

/// Minimises a failing instance. `still_fails` must return `true` when
/// the candidate still exhibits the original failure; the returned
/// instance is the smallest found within `max_checks` predicate calls
/// (and always still fails).
pub fn minimize(
    plane: &RoutingPlane,
    netlist: &Netlist,
    mut still_fails: impl FnMut(&RoutingPlane, &Netlist) -> bool,
    max_checks: usize,
) -> ShrinkResult {
    let mut best_plane = plane.clone();
    let mut best_nets: Vec<Net> = netlist.iter().cloned().collect();
    let mut checks = 0usize;
    let mut budget_exhausted = false;

    loop {
        let mut changed = false;

        // Phase 1: ddmin over nets. Chunk sizes halve from n/2 to 1.
        let mut chunk = (best_nets.len() / 2).max(1);
        'outer: loop {
            let mut i = 0;
            while i < best_nets.len() && best_nets.len() > 1 {
                if checks >= max_checks {
                    budget_exhausted = true;
                    break 'outer;
                }
                let hi = (i + chunk).min(best_nets.len());
                let mut candidate = best_nets.clone();
                candidate.drain(i..hi);
                if candidate.is_empty() {
                    i = hi;
                    continue;
                }
                let cand_nl: Netlist = candidate.iter().cloned().collect();
                checks += 1;
                if still_fails(&best_plane, &cand_nl) {
                    best_nets = candidate;
                    changed = true;
                    // Retry the same index: the next chunk shifted into it.
                } else {
                    i = hi;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }

        // Phase 2: trim the plane to the content bounding box (pins and
        // nothing else need bound it: blockages outside are dropped).
        if !budget_exhausted && checks < max_checks {
            let nl: Netlist = best_nets.iter().cloned().collect();
            if let Some(trimmed) = trim_plane(&best_plane, &nl) {
                checks += 1;
                if still_fails(&trimmed, &nl) {
                    best_plane = trimmed;
                    changed = true;
                }
            }
        } else {
            budget_exhausted = true;
        }

        if !changed || budget_exhausted {
            break;
        }
    }

    ShrinkResult {
        plane: best_plane,
        netlist: best_nets.into_iter().collect(),
        checks,
        budget_exhausted,
    }
}

/// A copy of `plane` cut down to the pin bounding box (plus a small
/// routing margin) and the layers the pins actually use, with blockages
/// re-applied cell by cell. `None` when no trim is possible.
fn trim_plane(plane: &RoutingPlane, netlist: &Netlist) -> Option<RoutingPlane> {
    let mut max_x = 0;
    let mut max_y = 0;
    let mut max_layer = 0u8;
    for net in netlist {
        for pin in net.pins() {
            for c in pin.candidates() {
                max_x = max_x.max(c.x);
                max_y = max_y.max(c.y);
                max_layer = max_layer.max(c.layer.0);
            }
        }
    }
    // Keep a 3-track margin so detours stay possible, and at least two
    // layers so vias stay possible (the router may need the escape).
    let w = (max_x + 4).min(plane.width());
    let h = (max_y + 4).min(plane.height());
    let layers = (max_layer + 2).min(plane.layers());
    if w == plane.width() && h == plane.height() && layers == plane.layers() {
        return None;
    }
    let mut trimmed = RoutingPlane::new(layers, w, h, *plane.rules()).ok()?;
    for l in 0..layers {
        for y in 0..h {
            for x in 0..w {
                let p = GridPoint::new(Layer(l), x, y);
                if plane.cell(p) == CellState::Blocked {
                    trimmed.add_blockage(Layer(l), TrackRect::cell(x, y));
                }
            }
        }
    }
    Some(trimmed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, Regime};
    use sadp_grid::io::read_layout;

    #[test]
    fn shrinks_to_the_guilty_net() {
        // Failure = "a net named p3 exists": ddmin must isolate it.
        let inst = generate(Regime::SparsePairs, 2);
        assert!(inst.netlist.len() > 4);
        let result = minimize(
            &inst.plane,
            &inst.netlist,
            |_, nl| nl.iter().any(|n| n.name == "p3"),
            500,
        );
        assert_eq!(result.netlist.len(), 1);
        assert_eq!(result.netlist.iter().next().unwrap().name, "p3");
        assert!(!result.budget_exhausted);
        // The plane shrank to the remaining net's bounding box.
        assert!(
            result.plane.width() <= inst.plane.width()
                && result.plane.height() <= inst.plane.height()
        );
    }

    #[test]
    fn result_is_replayable_layout_text() {
        let inst = generate(Regime::OddCycleRich, 3);
        let result = minimize(&inst.plane, &inst.netlist, |_, nl| nl.len() >= 2, 300);
        assert_eq!(result.netlist.len(), 2);
        let text = result.fixture_text("fuzz: regime=odd-cycle seed=3\ninvariant=example");
        assert!(text.starts_with("# fuzz: regime=odd-cycle seed=3\n# invariant=example\n"));
        let (plane, nl) = read_layout(&text).expect("fixture round-trips");
        assert_eq!(nl, result.netlist);
        assert_eq!(plane.usage(), result.plane.usage());
    }

    #[test]
    fn budget_is_respected() {
        let inst = generate(Regime::DenseClock, 1);
        let mut calls = 0usize;
        let result = minimize(
            &inst.plane,
            &inst.netlist,
            |_, _| {
                calls += 1;
                true
            },
            3,
        );
        assert!(result.checks <= 3);
        assert!(calls <= 3);
        assert!(
            result.budget_exhausted,
            "a dense instance cannot converge in 3 checks"
        );
    }

    #[test]
    fn shrink_is_deterministic() {
        let inst = generate(Regime::NarrowBand, 4);
        let run = || {
            let r = minimize(&inst.plane, &inst.netlist, |_, nl| nl.len() >= 3, 400);
            r.fixture_text("h")
        };
        assert_eq!(run(), run());
    }
}
