//! Structure-aware fuzzing of the untrusted-bytes surface: the
//! `sadp serve` wire protocol and the DSN/DEF/LEF/layout ingest parsers.
//!
//! The router-core campaign ([`crate::run_campaign`]) generates *valid*
//! instances and checks semantic invariants; this module does the
//! opposite — it mutates *real* inputs (seed corpora drawn from the
//! repo's fixtures) into hostile ones and checks the total-function
//! contract of every parser that faces raw network bytes:
//!
//! * **no panics** — every mutated input is parsed under
//!   `catch_unwind`; a panic is a campaign failure,
//! * **classified errors** — a rejected input must carry a non-empty
//!   error message,
//! * **determinism** — parsing the same input twice must classify it
//!   identically (byte-equal error messages),
//! * **round-trip** — a wire request that parses must re-serialize and
//!   re-parse to the same request,
//! * **live daemon discipline** (protocol regime) — each input is also
//!   written to a real in-process daemon over TCP; the daemon must
//!   answer every probe with one parseable JSON line within the
//!   deadline — no hang, no crash, no garbage.
//!
//! Everything is a pure function of `(regime, seed)`: the same seed
//! range replays the same inputs and the same verdicts on every machine.

use crate::oracle::panic_message;
use sadp_geom::Rng;
use sadp_ingest::ingest_text;
use sadp_serve::protocol::Request;
use sadp_serve::server::{serve, ServeConfig, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Which untrusted-input surface a campaign seed targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireRegime {
    /// `sadp serve` request lines (newline-delimited JSON).
    Protocol,
    /// Specctra DSN boards (s-expression subset).
    Dsn,
    /// DEF placed designs.
    Def,
    /// LEF macro libraries (ingested standalone: always a classified
    /// error, never a crash).
    Lef,
    /// Native `.layout` text.
    Layout,
}

impl WireRegime {
    /// Every regime, in campaign order.
    pub const ALL: [WireRegime; 5] = [
        WireRegime::Protocol,
        WireRegime::Dsn,
        WireRegime::Def,
        WireRegime::Lef,
        WireRegime::Layout,
    ];

    /// The CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WireRegime::Protocol => "protocol",
            WireRegime::Dsn => "dsn",
            WireRegime::Def => "def",
            WireRegime::Lef => "lef",
            WireRegime::Layout => "layout",
        }
    }

    /// Parses a CLI name.
    #[must_use]
    pub fn parse(name: &str) -> Option<WireRegime> {
        WireRegime::ALL.iter().copied().find(|r| r.name() == name)
    }

    /// The seed corpus: small *valid* (or near-valid) inputs that the
    /// mutator grows hostile variants from. Real repo fixtures where
    /// they exist; the protocol corpus is the request vocabulary minus
    /// `shutdown` (a live daemon answers the probes, and a valid
    /// shutdown would kill it mid-campaign).
    #[must_use]
    pub fn corpus(self) -> &'static [&'static str] {
        const PROTOCOL: &[&str] = &[
            "{\"cmd\":\"ping\"}",
            "{\"cmd\":\"submit\",\"layout\":\"plane 3 8 8\\nnet a 0:1,1 0:6,6\\n\",\"priority\":100}",
            "{\"cmd\":\"submit\",\"layout\":\"plane\",\"priority\":7,\"threads\":2,\"node_budget\":100000,\"deadline_ms\":500}",
            "{\"cmd\":\"status\",\"job\":1}",
            "{\"cmd\":\"cancel\",\"job\":18446744073709551615}",
            "{\"cmd\":\"resume\",\"job\":2}",
            "{\"cmd\":\"subscribe\",\"job\":999}",
            "{\"cmd\":\"list\"}",
            "{\"cmd\":\"edit\",\"job\":3,\"script\":\"add x 0:2,2 0:9,2\\nundo\\nredo\\n\"}",
            "{\"cmd\":\"undo\",\"job\":3}",
            "{\"cmd\":\"redo\",\"job\":3}",
        ];
        const DSN: &[&str] = &[
            include_str!("../../../fixtures/imported/led-matrix.dsn"),
            "(pcb tiny (structure (layer F.Cu) (boundary (rect pcb 0 0 800 600)) (grid wire 100)))",
        ];
        const DEF: &[&str] = &[
            include_str!("../../../fixtures/imported/macro-block.def"),
            "VERSION 5.8 ;\nDESIGN t ;\nUNITS DISTANCE MICRONS 1000 ;\nDIEAREA ( 0 0 ) ( 8000 8000 ) ;\nEND DESIGN\n",
        ];
        const LEF: &[&str] = &[include_str!("../../../fixtures/imported/macro-block.lef")];
        const LAYOUT: &[&str] = &[
            include_str!("../../../fixtures/clock_tree.layout"),
            "plane 3 16 16\nblock 0 4,4 6,6\nnet a 0:1,1 0:14,14\nnet b 0:1,14 0:14,1\n",
        ];
        match self {
            WireRegime::Protocol => PROTOCOL,
            WireRegime::Dsn => DSN,
            WireRegime::Def => DEF,
            WireRegime::Lef => LEF,
            WireRegime::Layout => LAYOUT,
        }
    }

    fn salt(self) -> u64 {
        match self {
            WireRegime::Protocol => 0x9120,
            WireRegime::Dsn => 0xD5A1,
            WireRegime::Def => 0xDEF0,
            WireRegime::Lef => 0x1EF0,
            WireRegime::Layout => 0x1A02,
        }
    }
}

impl std::fmt::Display for WireRegime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generates the hostile input for `(regime, seed)` — a pure function:
/// one corpus entry pushed through 0–3 structure-aware mutations (0
/// keeps the valid entry, so the accept paths stay covered too).
///
/// Corpora are ASCII and mutations only insert ASCII bytes, so the
/// result is always a valid `String` (the live daemon's non-UTF-8
/// handling is covered by the hostile-client e2e tests instead).
#[must_use]
pub fn generate_wire_input(regime: WireRegime, seed: u64) -> String {
    let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ regime.salt());
    let corpus = regime.corpus();
    let mut bytes = corpus[rng.index(corpus.len())].as_bytes().to_vec();
    for _ in 0..rng.index(4) {
        mutate(&mut bytes, &mut rng, corpus);
    }
    String::from_utf8(bytes).unwrap_or_default()
}

/// One mutation step. Every arm is byte-oriented and ASCII-only.
fn mutate(bytes: &mut Vec<u8>, rng: &mut Rng, corpus: &[&str]) {
    // Structural bytes that steer parsers into their interesting states.
    const STRUCTURAL: &[u8] = b"{}[]()\"\\:,.-+eE0123456789 \t\r\n\0";
    if bytes.is_empty() {
        bytes.extend_from_slice(corpus[rng.index(corpus.len())].as_bytes());
        return;
    }
    match rng.index(9) {
        // Truncate: torn transmissions and half-written requests.
        0 => bytes.truncate(rng.index(bytes.len())),
        // Duplicate a slice: repeated keys, repeated sections.
        1 => {
            let a = rng.index(bytes.len());
            let b = (a + 1 + rng.index(64)).min(bytes.len());
            let slice = bytes[a..b].to_vec();
            let at = rng.index(bytes.len() + 1);
            bytes.splice(at..at, slice);
        }
        // Replace one byte with an arbitrary ASCII byte (controls and
        // NUL included).
        2 => {
            let at = rng.index(bytes.len());
            bytes[at] = (rng.bounded(128)) as u8;
        }
        // Sprinkle structural bytes.
        3 => {
            for _ in 0..1 + rng.index(8) {
                let at = rng.index(bytes.len() + 1);
                bytes.insert(at, STRUCTURAL[rng.index(STRUCTURAL.len())]);
            }
        }
        // Inflate a digit run: overlong/overflowing numeric literals
        // (the `json.rs` number-parsing hardening target).
        4 => {
            if let Some(at) = bytes.iter().position(u8::is_ascii_digit) {
                let digit = bytes[at];
                let run = vec![digit; 1 << (2 + rng.index(12))];
                bytes.splice(at..at, run);
            }
        }
        // Deep nesting: recursion-depth pressure on bracket parsers.
        5 => {
            let (open, close) = *[(b'(', b')'), (b'{', b'}'), (b'[', b']')]
                .get(rng.index(3))
                .unwrap_or(&(b'(', b')'));
            let depth = 1 << (2 + rng.index(9));
            let mut wrapped = vec![open; depth];
            wrapped.append(bytes);
            wrapped.extend(std::iter::repeat_n(close, depth));
            *bytes = wrapped;
        }
        // Huge token: a single identifier far past any sane length.
        6 => {
            let at = rng.index(bytes.len() + 1);
            let token = vec![b'a' + (rng.bounded(26)) as u8; 1 << (4 + rng.index(10))];
            bytes.splice(at..at, token);
        }
        // Splice: the head of this input onto the tail of another
        // corpus entry (format confusion).
        7 => {
            let other = corpus[rng.index(corpus.len())].as_bytes();
            let cut = rng.index(bytes.len());
            let other_cut = rng.index(other.len() + 1);
            bytes.truncate(cut);
            bytes.extend_from_slice(&other[other_cut..]);
        }
        // Delete a slice: missing sections, unbalanced brackets.
        _ => {
            let a = rng.index(bytes.len());
            let b = (a + 1 + rng.index(64)).min(bytes.len());
            bytes.drain(a..b);
        }
    }
}

/// How a (non-panicking, deterministic) parser classified an input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireClass {
    /// The input parsed.
    Accepted,
    /// The input was rejected with the carried message.
    Rejected(String),
}

/// Parses `input` once under `catch_unwind` and classifies the outcome.
/// `Err` carries the violation detail (panic payload, empty error
/// message, or a broken protocol round-trip).
fn classify_once(regime: WireRegime, input: &str) -> Result<WireClass, String> {
    let run = catch_unwind(AssertUnwindSafe(|| match regime {
        WireRegime::Protocol => match Request::parse(input) {
            Ok(req) => {
                // A request that parses must survive the client
                // serializer round-trip; `to_json_line` is what the CLI
                // actually sends.
                let line = req.to_json_line();
                match Request::parse(&line) {
                    Ok(back) if back == req => Ok(WireClass::Accepted),
                    Ok(_) => Err(format!("round-trip changed the request: {line}")),
                    Err(e) => Err(format!("serialized request does not re-parse: {e}")),
                }
            }
            Err(e) => Ok(WireClass::Rejected(e)),
        },
        _ => match ingest_text(input, None, None) {
            Ok(_) => Ok(WireClass::Accepted),
            Err(e) => Ok(WireClass::Rejected(e.to_string())),
        },
    }));
    match run {
        Err(payload) => Err(format!("parser panicked: {}", panic_message(&payload))),
        Ok(Err(detail)) => Err(detail),
        Ok(Ok(WireClass::Rejected(msg))) if msg.trim().is_empty() => {
            Err("rejection carried an empty error message".into())
        }
        Ok(Ok(class)) => Ok(class),
    }
}

/// Classifies `input` for `regime`, checking the full contract: no
/// panic, classified rejection, and identical classification on a
/// second run.
///
/// # Errors
///
/// The violation detail.
pub fn check_wire_input(regime: WireRegime, input: &str) -> Result<WireClass, String> {
    let first = classify_once(regime, input)?;
    let second = classify_once(regime, input)?;
    if first != second {
        return Err(format!(
            "nondeterministic classification: {first:?} then {second:?}"
        ));
    }
    Ok(first)
}

/// Configuration of a wire/ingest fuzz campaign.
#[derive(Debug, Clone)]
pub struct WireCampaignConfig {
    /// Seeds per regime.
    pub seeds: u64,
    /// First seed; the campaign covers `start..start + seeds`.
    pub start: u64,
    /// Regimes to run.
    pub regimes: Vec<WireRegime>,
    /// Whether the protocol regime also probes a live in-process daemon
    /// over real TCP (one response line per probe, bounded wait).
    pub live: bool,
}

impl Default for WireCampaignConfig {
    fn default() -> WireCampaignConfig {
        WireCampaignConfig {
            seeds: 100,
            start: 0,
            regimes: WireRegime::ALL.to_vec(),
            live: true,
        }
    }
}

/// One wire-campaign failure: replay with `generate_wire_input(regime,
/// seed)` or from the recorded input text.
#[derive(Debug)]
pub struct WireFailure {
    /// The regime of the failing input.
    pub regime: WireRegime,
    /// Its seed.
    pub seed: u64,
    /// What went wrong.
    pub detail: String,
    /// The input that triggered it.
    pub input: String,
}

impl WireFailure {
    /// A replayable failure artifact: commented header + raw input.
    #[must_use]
    pub fn artifact_text(&self) -> String {
        format!(
            "# wire fuzz failure: regime={} seed={}\n# detail: {}\n# replay: sadp fuzz --wire --regime {} --seeds 1 --start {}\n{}",
            self.regime, self.seed, self.detail, self.regime, self.seed, self.input
        )
    }
}

/// Aggregate result of a wire campaign.
#[derive(Debug, Default)]
pub struct WireReport {
    /// Inputs checked.
    pub instances: usize,
    /// Inputs the parser accepted.
    pub accepted: usize,
    /// Inputs rejected with a classified error.
    pub rejected: usize,
    /// Contract violations (empty for a clean campaign).
    pub failures: Vec<WireFailure>,
}

impl WireReport {
    /// Whether the campaign found no violations.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The in-process daemon the protocol regime probes: queue-only (no
/// workers), tight limits, short timeouts — a probe must never be able
/// to park a handler thread for long.
fn live_daemon() -> std::io::Result<(ServerHandle, SocketAddr)> {
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 0,
        state_dir: None,
        slice_steps: 1,
        default_threads: 1,
        max_request_bytes: 1 << 20,
        io_timeout_ms: 2_000,
        max_conns: 0,
        max_queue: 8,
        fault_seed: None,
    })?;
    let addr = handle.addr();
    Ok((handle, addr))
}

/// How long a live probe waits for the daemon's response line. Must
/// exceed the daemon's own 2 s read timeout: a newline-less probe is
/// only answered once the *server* side times it out.
const PROBE_DEADLINE: Duration = Duration::from_secs(10);

/// Sends `input` to the live daemon and requires one parseable JSON
/// line (or a clean close after it) within the deadline.
fn probe_live(addr: SocketAddr, input: &str) -> Result<(), String> {
    let mut stream = TcpStream::connect_timeout(&addr, PROBE_DEADLINE)
        .map_err(|e| format!("daemon refused the connection: {e}"))?;
    stream
        .set_read_timeout(Some(PROBE_DEADLINE))
        .and_then(|()| stream.set_write_timeout(Some(PROBE_DEADLINE)))
        .map_err(|e| format!("socket setup failed: {e}"))?;
    // A write error is legal: the daemon may have rejected the line and
    // closed (e.g. over the request cap) while we were still sending.
    let sent = stream
        .write_all(input.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush());
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => match sent {
            // Closed without a response line AND the request went
            // through: the daemon dropped a client silently.
            Ok(()) => Err("daemon closed the connection with no response line".into()),
            Err(_) => Ok(()),
        },
        Ok(_) => sadp_serve::json::parse(line.trim())
            .map(|_| ())
            .map_err(|e| format!("daemon response is not JSON ({e}): {line:?}")),
        Err(e) if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) =>
        {
            Err(format!(
                "daemon sent nothing for {}s (hang)",
                PROBE_DEADLINE.as_secs()
            ))
        }
        Err(e) => Err(format!("read failed: {e}")),
    }
}

/// Whether any line of `input` is a valid `shutdown` request — those
/// are checked at the parse level but never sent to the live daemon.
fn is_shutdown(input: &str) -> bool {
    input
        .lines()
        .any(|l| Request::parse(l) == Ok(Request::Shutdown))
}

/// Runs a wire/ingest fuzz campaign. The `progress` sink receives one
/// deterministic line per regime.
pub fn run_wire_campaign(
    cfg: &WireCampaignConfig,
    mut progress: impl FnMut(&str),
) -> WireReport {
    let mut report = WireReport::default();
    let live = (cfg.live && cfg.regimes.contains(&WireRegime::Protocol))
        .then(live_daemon)
        .transpose()
        .unwrap_or_else(|e| {
            progress(&format!("live daemon unavailable ({e}); parse-level only"));
            None
        });
    for &regime in &cfg.regimes {
        let mut regime_failures = 0usize;
        for seed in cfg.start..cfg.start + cfg.seeds {
            let input = generate_wire_input(regime, seed);
            report.instances += 1;
            let mut fail = |detail: String, failures: &mut Vec<WireFailure>| {
                regime_failures += 1;
                failures.push(WireFailure {
                    regime,
                    seed,
                    detail,
                    input: input.clone(),
                });
            };
            match check_wire_input(regime, &input) {
                Ok(WireClass::Accepted) => report.accepted += 1,
                Ok(WireClass::Rejected(_)) => report.rejected += 1,
                Err(detail) => {
                    fail(detail, &mut report.failures);
                    continue;
                }
            }
            if regime == WireRegime::Protocol && !is_shutdown(&input) {
                if let Some((_, addr)) = &live {
                    if let Err(detail) = probe_live(*addr, &input) {
                        fail(format!("live probe: {detail}"), &mut report.failures);
                    }
                }
            }
        }
        progress(&format!(
            "wire/{:<9} {} seeds, {} failures",
            regime.name(),
            cfg.seeds,
            regime_failures
        ));
    }
    if let Some((handle, _)) = live {
        handle.shutdown();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_ascii_and_nonempty() {
        for regime in WireRegime::ALL {
            let corpus = regime.corpus();
            assert!(!corpus.is_empty(), "{regime} corpus is empty");
            for entry in corpus {
                assert!(entry.is_ascii(), "{regime} corpus entry is not ASCII");
                assert!(!entry.is_empty(), "{regime} corpus entry is empty");
            }
        }
    }

    #[test]
    fn inputs_are_pure_functions_of_the_seed() {
        for regime in WireRegime::ALL {
            for seed in 0..50 {
                assert_eq!(
                    generate_wire_input(regime, seed),
                    generate_wire_input(regime, seed),
                    "{regime} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn mutations_actually_mutate() {
        // Across a modest seed range every regime must produce inputs
        // that differ from every corpus entry — otherwise the mutator
        // is vacuous and the campaign only ever sees valid inputs.
        for regime in WireRegime::ALL {
            let corpus = regime.corpus();
            let mutated = (0..50).any(|seed| {
                let input = generate_wire_input(regime, seed);
                corpus.iter().all(|entry| *entry != input)
            });
            assert!(mutated, "{regime}: no seed in 0..50 mutated its input");
        }
    }

    #[test]
    fn parse_level_campaign_is_clean_and_deterministic() {
        let cfg = WireCampaignConfig {
            seeds: 40,
            live: false,
            ..WireCampaignConfig::default()
        };
        let mut lines_a = Vec::new();
        let a = run_wire_campaign(&cfg, |l| lines_a.push(l.to_string()));
        assert!(
            a.is_clean(),
            "violations: {:?}",
            a.failures
                .iter()
                .map(|f| format!("{}/{}: {}", f.regime, f.seed, f.detail))
                .collect::<Vec<_>>()
        );
        assert_eq!(a.instances, 40 * WireRegime::ALL.len());
        // Both accept and reject paths are exercised.
        assert!(a.accepted > 0, "no input was accepted");
        assert!(a.rejected > 0, "no input was rejected");
        let mut lines_b = Vec::new();
        let b = run_wire_campaign(&cfg, |l| lines_b.push(l.to_string()));
        assert_eq!(lines_a, lines_b);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.rejected, b.rejected);
    }

    #[test]
    fn live_protocol_campaign_is_clean() {
        let cfg = WireCampaignConfig {
            seeds: 30,
            regimes: vec![WireRegime::Protocol],
            live: true,
            ..WireCampaignConfig::default()
        };
        let report = run_wire_campaign(&cfg, |_| {});
        assert!(
            report.is_clean(),
            "violations: {:?}",
            report
                .failures
                .iter()
                .map(|f| format!("{}/{}: {}", f.regime, f.seed, f.detail))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn shutdown_requests_are_detected_and_skipped() {
        assert!(is_shutdown("{\"cmd\":\"shutdown\"}"));
        assert!(is_shutdown("{\"cmd\":\"ping\"}\n{\"cmd\":\"shutdown\"}"));
        assert!(!is_shutdown("{\"cmd\":\"ping\"}"));
        // The corpus must not contain one: probes would assassinate the
        // live daemon.
        for entry in WireRegime::Protocol.corpus() {
            assert!(!is_shutdown(entry), "shutdown in protocol corpus: {entry}");
        }
    }

    #[test]
    fn failure_artifacts_carry_the_replay_command() {
        let f = WireFailure {
            regime: WireRegime::Dsn,
            seed: 17,
            detail: "parser panicked: boom".into(),
            input: "(pcb".into(),
        };
        let text = f.artifact_text();
        assert!(text.contains("--wire --regime dsn --seeds 1 --start 17"));
        assert!(text.ends_with("(pcb"));
    }
}
