//! Grid geometry primitives for SADP-aware detailed routing.
//!
//! This crate is the geometric substrate of the workspace. It defines:
//!
//! * track-space coordinates ([`GridPoint`], [`Layer`]) and physical
//!   nanometre quantities ([`Nm`]),
//! * axis-aligned track rectangles ([`TrackRect`]) with the gap/overlap
//!   arithmetic the potential-overlay-scenario analysis is built on,
//! * the SADP design-rule set ([`DesignRules`]) with the constraints of
//!   eq. (1)–(3) of the paper,
//! * a bucketed [`SpatialHash`] used by the router to find the dependent
//!   neighbours of a freshly routed wire fragment.
//!
//! # Example
//!
//! ```
//! use sadp_geom::{DesignRules, TrackRect};
//!
//! let rules = DesignRules::node_10nm();
//! // Two horizontal wires on adjacent tracks, overlapping in x.
//! let a = TrackRect::new(0, 0, 5, 0);
//! let b = TrackRect::new(2, 1, 8, 1);
//! assert_eq!(a.track_gap(&b), (0, 1));
//! assert!(rules.are_dependent(&a, &b));
//! ```

pub mod nm;
pub mod point;
pub mod rect;
pub mod rng;
pub mod rules;
pub mod spatial;

pub use nm::Nm;
pub use point::{Dir, GridPoint, Layer, Orientation, Step};
pub use rect::TrackRect;
pub use rng::Rng;
pub use rules::{DesignRules, RulesError};
pub use spatial::SpatialHash;
