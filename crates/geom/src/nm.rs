//! Physical length quantities in nanometres.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A physical length in nanometres.
///
/// Lengths are exact integers: every dimension in the 10 nm-node rule set
/// (20 nm lines, 20 nm spacers, 30 nm cut/core spacing) is an integer number
/// of nanometres, so all distance comparisons in the scenario analysis can
/// be carried out without floating point by comparing squared lengths.
///
/// # Example
///
/// ```
/// use sadp_geom::Nm;
/// let pitch = Nm(20) + Nm(20);
/// assert_eq!(pitch, Nm(40));
/// assert!(pitch.squared() < Nm(60).squared() * 2);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Nm(pub i64);

impl Nm {
    /// The zero length.
    pub const ZERO: Nm = Nm(0);

    /// Returns the squared length, for exact Euclidean comparisons.
    ///
    /// ```
    /// # use sadp_geom::Nm;
    /// assert_eq!(Nm(3).squared(), 9);
    /// ```
    #[must_use]
    pub fn squared(self) -> i64 {
        self.0 * self.0
    }

    /// Returns the absolute value of the length.
    #[must_use]
    pub fn abs(self) -> Nm {
        Nm(self.0.abs())
    }

    /// Returns the larger of two lengths.
    #[must_use]
    pub fn max(self, other: Nm) -> Nm {
        Nm(self.0.max(other.0))
    }

    /// Returns the smaller of two lengths.
    #[must_use]
    pub fn min(self, other: Nm) -> Nm {
        Nm(self.0.min(other.0))
    }

    /// Converts to micrometres as a float (for report printing only).
    #[must_use]
    pub fn as_um(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl fmt::Display for Nm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.0)
    }
}

impl Add for Nm {
    type Output = Nm;
    fn add(self, rhs: Nm) -> Nm {
        Nm(self.0 + rhs.0)
    }
}

impl AddAssign for Nm {
    fn add_assign(&mut self, rhs: Nm) {
        self.0 += rhs.0;
    }
}

impl Sub for Nm {
    type Output = Nm;
    fn sub(self, rhs: Nm) -> Nm {
        Nm(self.0 - rhs.0)
    }
}

impl SubAssign for Nm {
    fn sub_assign(&mut self, rhs: Nm) {
        self.0 -= rhs.0;
    }
}

impl Neg for Nm {
    type Output = Nm;
    fn neg(self) -> Nm {
        Nm(-self.0)
    }
}

impl Mul<i64> for Nm {
    type Output = Nm;
    fn mul(self, rhs: i64) -> Nm {
        Nm(self.0 * rhs)
    }
}

impl Div<i64> for Nm {
    type Output = Nm;
    fn div(self, rhs: i64) -> Nm {
        Nm(self.0 / rhs)
    }
}

impl Sum for Nm {
    fn sum<I: Iterator<Item = Nm>>(iter: I) -> Nm {
        Nm(iter.map(|n| n.0).sum())
    }
}

impl From<i64> for Nm {
    fn from(v: i64) -> Nm {
        Nm(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_exact() {
        assert_eq!(Nm(40) - Nm(20), Nm(20));
        assert_eq!(Nm(20) * 3, Nm(60));
        assert_eq!(Nm(60) / 2, Nm(30));
        assert_eq!(-Nm(5), Nm(-5));
        assert_eq!(Nm(-5).abs(), Nm(5));
    }

    #[test]
    fn squared_comparison_matches_euclid() {
        // sqrt(20^2 + 60^2) < sqrt(2)*60  <=>  4000 < 7200
        let d2 = Nm(20).squared() + Nm(60).squared();
        assert!(d2 < Nm(60).squared() * 2);
        // sqrt(20^2 + 100^2) > sqrt(2)*60  <=>  10400 > 7200
        let d2 = Nm(20).squared() + Nm(100).squared();
        assert!(d2 > Nm(60).squared() * 2);
    }

    #[test]
    fn sum_and_minmax() {
        let total: Nm = [Nm(1), Nm(2), Nm(3)].into_iter().sum();
        assert_eq!(total, Nm(6));
        assert_eq!(Nm(1).max(Nm(2)), Nm(2));
        assert_eq!(Nm(1).min(Nm(2)), Nm(1));
    }

    #[test]
    fn display_and_um() {
        assert_eq!(Nm(1500).to_string(), "1500nm");
        assert!((Nm(1500).as_um() - 1.5).abs() < 1e-12);
    }
}
