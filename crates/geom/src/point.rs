//! Track-space coordinates, layers, directions and orientations.

use std::fmt;

/// A routing layer index (metal layer), starting at 0.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Layer(pub u8);

impl Layer {
    /// Returns the layer index as a `usize`, convenient for indexing.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0 + 1)
    }
}

/// A point on the 3-D routing grid: a layer plus `(x, y)` track indices.
///
/// Track indices address grid *cells* (one cell is `w_line` wide with a
/// `w_spacer` gap to the next cell, i.e. one routing track).
///
/// # Example
///
/// ```
/// use sadp_geom::{GridPoint, Layer};
/// let p = GridPoint::new(Layer(0), 3, 4);
/// assert_eq!(p.manhattan(&GridPoint::new(Layer(0), 0, 0)), 7);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GridPoint {
    /// Routing layer.
    pub layer: Layer,
    /// Track index in the x direction (column).
    pub x: i32,
    /// Track index in the y direction (row).
    pub y: i32,
}

impl GridPoint {
    /// Creates a grid point.
    #[must_use]
    pub fn new(layer: Layer, x: i32, y: i32) -> GridPoint {
        GridPoint { layer, x, y }
    }

    /// In-plane Manhattan distance to `other`, ignoring the layer.
    #[must_use]
    pub fn manhattan(&self, other: &GridPoint) -> i32 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Total step distance: Manhattan distance plus layer difference.
    #[must_use]
    pub fn step_distance(&self, other: &GridPoint) -> i32 {
        self.manhattan(other) + (self.layer.0 as i32 - other.layer.0 as i32).abs()
    }

    /// Returns the point moved one step in direction `step`.
    #[must_use]
    pub fn offset(&self, step: Step) -> GridPoint {
        match step {
            Step::East => GridPoint::new(self.layer, self.x + 1, self.y),
            Step::West => GridPoint::new(self.layer, self.x - 1, self.y),
            Step::North => GridPoint::new(self.layer, self.x, self.y + 1),
            Step::South => GridPoint::new(self.layer, self.x, self.y - 1),
            Step::Up => GridPoint::new(Layer(self.layer.0 + 1), self.x, self.y),
            Step::Down => GridPoint::new(Layer(self.layer.0.wrapping_sub(1)), self.x, self.y),
        }
    }
}

impl fmt::Display for GridPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({},{})", self.layer, self.x, self.y)
    }
}

/// One unit move on the routing grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Step {
    /// +x.
    East,
    /// -x.
    West,
    /// +y.
    North,
    /// -y.
    South,
    /// +layer (via up).
    Up,
    /// -layer (via down).
    Down,
}

impl Step {
    /// All six steps, planar moves first.
    pub const ALL: [Step; 6] = [
        Step::East,
        Step::West,
        Step::North,
        Step::South,
        Step::Up,
        Step::Down,
    ];

    /// Whether this step stays in the plane (not a via).
    #[must_use]
    pub fn is_planar(self) -> bool {
        !matches!(self, Step::Up | Step::Down)
    }

    /// The in-plane axis of a planar step, or `None` for a via step.
    ///
    /// Mirrors [`Orientation::axis`]: callers match on the result instead
    /// of guarding with [`Step::is_planar`] first (a via step used to
    /// panic here, which turned a forgotten guard into a crash deep in
    /// the search loop).
    #[must_use]
    pub fn axis(self) -> Option<Dir> {
        match self {
            Step::East | Step::West => Some(Dir::Horizontal),
            Step::North | Step::South => Some(Dir::Vertical),
            Step::Up | Step::Down => None,
        }
    }
}

/// An in-plane axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Along x.
    Horizontal,
    /// Along y.
    Vertical,
}

impl Dir {
    /// The perpendicular axis.
    #[must_use]
    pub fn perpendicular(self) -> Dir {
        match self {
            Dir::Horizontal => Dir::Vertical,
            Dir::Vertical => Dir::Horizontal,
        }
    }
}

/// The orientation of a wire fragment rectangle.
///
/// A `1×1` fragment (an isolated via landing or a jog cell) has no intrinsic
/// long axis and is reported as [`Orientation::Point`]; the scenario
/// classifier resolves it against its partner (see `sadp-scenario`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// Wider than tall: runs along x.
    Horizontal,
    /// Taller than wide: runs along y.
    Vertical,
    /// A single grid cell.
    Point,
}

impl Orientation {
    /// The wire axis, if the fragment has one.
    #[must_use]
    pub fn axis(self) -> Option<Dir> {
        match self {
            Orientation::Horizontal => Some(Dir::Horizontal),
            Orientation::Vertical => Some(Dir::Vertical),
            Orientation::Point => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_move_one_step() {
        let p = GridPoint::new(Layer(1), 5, 5);
        assert_eq!(p.offset(Step::East), GridPoint::new(Layer(1), 6, 5));
        assert_eq!(p.offset(Step::West), GridPoint::new(Layer(1), 4, 5));
        assert_eq!(p.offset(Step::North), GridPoint::new(Layer(1), 5, 6));
        assert_eq!(p.offset(Step::South), GridPoint::new(Layer(1), 5, 4));
        assert_eq!(p.offset(Step::Up).layer, Layer(2));
        assert_eq!(p.offset(Step::Down).layer, Layer(0));
    }

    #[test]
    fn distances() {
        let a = GridPoint::new(Layer(0), 0, 0);
        let b = GridPoint::new(Layer(2), 3, -4);
        assert_eq!(a.manhattan(&b), 7);
        assert_eq!(a.step_distance(&b), 9);
    }

    #[test]
    fn step_properties() {
        assert!(Step::East.is_planar());
        assert!(!Step::Up.is_planar());
        assert_eq!(Step::North.axis(), Some(Dir::Vertical));
        assert_eq!(Step::Up.axis(), None);
        assert_eq!(Step::Down.axis(), None);
        assert_eq!(Dir::Horizontal.perpendicular(), Dir::Vertical);
    }

    #[test]
    fn orientation_axis() {
        assert_eq!(Orientation::Horizontal.axis(), Some(Dir::Horizontal));
        assert_eq!(Orientation::Point.axis(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Layer(0).to_string(), "M1");
        assert_eq!(GridPoint::new(Layer(1), 2, 3).to_string(), "M2(2,3)");
    }
}
