//! Axis-aligned rectangles in track coordinates.

use crate::point::Orientation;
use std::fmt;

/// An axis-aligned rectangle of grid cells, with *inclusive* bounds.
///
/// `TrackRect::new(x0, y0, x1, y1)` covers every cell `(x, y)` with
/// `x0 <= x <= x1` and `y0 <= y <= y1`. Wire fragments produced by the
/// router are always one track wide (`1×k` or `k×1`), but the type supports
/// arbitrary extents for obstacles and window queries.
///
/// # Example
///
/// ```
/// use sadp_geom::TrackRect;
/// let wire = TrackRect::new(2, 5, 9, 5);
/// assert_eq!(wire.len_cells(), 8);
/// assert_eq!(wire.width_tracks(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrackRect {
    /// Leftmost column (inclusive).
    pub x0: i32,
    /// Bottom row (inclusive).
    pub y0: i32,
    /// Rightmost column (inclusive).
    pub x1: i32,
    /// Top row (inclusive).
    pub y1: i32,
}

impl TrackRect {
    /// Creates a rectangle; coordinates are normalised so `x0 <= x1`,
    /// `y0 <= y1`.
    #[must_use]
    pub fn new(x0: i32, y0: i32, x1: i32, y1: i32) -> TrackRect {
        TrackRect {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// A single-cell rectangle.
    #[must_use]
    pub fn cell(x: i32, y: i32) -> TrackRect {
        TrackRect::new(x, y, x, y)
    }

    /// Number of cells covered.
    #[must_use]
    pub fn len_cells(&self) -> i64 {
        (self.x1 - self.x0 + 1) as i64 * (self.y1 - self.y0 + 1) as i64
    }

    /// Extent along x, in tracks.
    #[must_use]
    pub fn width_x(&self) -> i32 {
        self.x1 - self.x0 + 1
    }

    /// Extent along y, in tracks.
    #[must_use]
    pub fn width_y(&self) -> i32 {
        self.y1 - self.y0 + 1
    }

    /// The narrow dimension (for a wire fragment this is 1).
    #[must_use]
    pub fn width_tracks(&self) -> i32 {
        self.width_x().min(self.width_y())
    }

    /// The long dimension.
    #[must_use]
    pub fn length_tracks(&self) -> i32 {
        self.width_x().max(self.width_y())
    }

    /// Orientation of the fragment: horizontal, vertical, or a point.
    #[must_use]
    pub fn orientation(&self) -> Orientation {
        use std::cmp::Ordering;
        match self.width_x().cmp(&self.width_y()) {
            Ordering::Greater => Orientation::Horizontal,
            Ordering::Less => Orientation::Vertical,
            Ordering::Equal => {
                if self.width_x() == 1 {
                    Orientation::Point
                } else {
                    // A square larger than one cell has no wire axis either;
                    // treat it like a point for classification purposes.
                    Orientation::Point
                }
            }
        }
    }

    /// Whether the cell `(x, y)` lies inside the rectangle.
    #[must_use]
    pub fn contains_cell(&self, x: i32, y: i32) -> bool {
        x >= self.x0 && x <= self.x1 && y >= self.y0 && y <= self.y1
    }

    /// Whether the two rectangles share at least one cell.
    #[must_use]
    pub fn intersects(&self, other: &TrackRect) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }

    /// The intersection of two rectangles, if non-empty.
    #[must_use]
    pub fn intersection(&self, other: &TrackRect) -> Option<TrackRect> {
        if self.intersects(other) {
            Some(TrackRect {
                x0: self.x0.max(other.x0),
                y0: self.y0.max(other.y0),
                x1: self.x1.min(other.x1),
                y1: self.y1.min(other.y1),
            })
        } else {
            None
        }
    }

    /// The smallest rectangle containing both.
    #[must_use]
    pub fn union_bbox(&self, other: &TrackRect) -> TrackRect {
        TrackRect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// The rectangle grown by `d` tracks on every side.
    #[must_use]
    pub fn expanded(&self, d: i32) -> TrackRect {
        TrackRect::new(self.x0 - d, self.y0 - d, self.x1 + d, self.y1 + d)
    }

    /// Minimum *track difference* between the two rectangles along each axis.
    ///
    /// This is the `(X_min, Y_min)` pair of the paper: 0 if the projections
    /// onto the axis overlap (or abut by sharing a track index), otherwise
    /// the number of track pitches separating the facing boundaries. Two
    /// rectangles on adjacent tracks have a difference of 1 (physical gap
    /// `w_spacer`).
    #[must_use]
    pub fn track_gap(&self, other: &TrackRect) -> (i32, i32) {
        let dx = (self.x0.max(other.x0) - self.x1.min(other.x1)).max(0);
        let dy = (self.y0.max(other.y0) - self.y1.min(other.y1)).max(0);
        (dx, dy)
    }

    /// Length (in cells) of the overlap of the projections onto the x axis.
    #[must_use]
    pub fn overlap_x(&self, other: &TrackRect) -> i32 {
        (self.x1.min(other.x1) - self.x0.max(other.x0) + 1).max(0)
    }

    /// Length (in cells) of the overlap of the projections onto the y axis.
    #[must_use]
    pub fn overlap_y(&self, other: &TrackRect) -> i32 {
        (self.y1.min(other.y1) - self.y0.max(other.y0) + 1).max(0)
    }

    /// Iterates over all cells of the rectangle, row-major.
    pub fn cells(&self) -> impl Iterator<Item = (i32, i32)> + '_ {
        let r = *self;
        (r.y0..=r.y1).flat_map(move |y| (r.x0..=r.x1).map(move |x| (x, y)))
    }
}

impl fmt::Display for TrackRect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}..{},{}]", self.x0, self.y0, self.x1, self.y1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        let r = TrackRect::new(5, 7, 2, 3);
        assert_eq!(r, TrackRect::new(2, 3, 5, 7));
    }

    #[test]
    fn sizes_and_orientation() {
        let h = TrackRect::new(0, 0, 4, 0);
        assert_eq!(h.orientation(), Orientation::Horizontal);
        assert_eq!(h.len_cells(), 5);
        assert_eq!(h.width_tracks(), 1);
        assert_eq!(h.length_tracks(), 5);

        let v = TrackRect::new(3, 1, 3, 9);
        assert_eq!(v.orientation(), Orientation::Vertical);

        assert_eq!(TrackRect::cell(0, 0).orientation(), Orientation::Point);
    }

    #[test]
    fn track_gap_side_by_side() {
        // Horizontal wires on adjacent tracks, overlapping in x.
        let a = TrackRect::new(0, 0, 5, 0);
        let b = TrackRect::new(2, 1, 8, 1);
        assert_eq!(a.track_gap(&b), (0, 1));
        assert_eq!(a.overlap_x(&b), 4);
    }

    #[test]
    fn track_gap_tip_to_tip() {
        // Collinear horizontal wires one pitch apart.
        let a = TrackRect::new(0, 0, 4, 0);
        let b = TrackRect::new(6, 0, 9, 0);
        assert_eq!(a.track_gap(&b), (2, 0));
        let b = TrackRect::new(5, 0, 9, 0);
        // Abutting cells: x-projections touch at indices 4 and 5 -> gap 1.
        assert_eq!(a.track_gap(&b), (1, 0));
    }

    #[test]
    fn track_gap_diagonal() {
        let a = TrackRect::new(0, 0, 4, 0);
        let b = TrackRect::new(5, 1, 5, 6);
        assert_eq!(a.track_gap(&b), (1, 1));
    }

    #[test]
    fn intersection_and_union() {
        let a = TrackRect::new(0, 0, 5, 5);
        let b = TrackRect::new(3, 3, 8, 8);
        assert_eq!(a.intersection(&b), Some(TrackRect::new(3, 3, 5, 5)));
        assert_eq!(a.union_bbox(&b), TrackRect::new(0, 0, 8, 8));
        let c = TrackRect::new(7, 0, 9, 2);
        assert_eq!(a.intersection(&c), None);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn expand_and_contains() {
        let r = TrackRect::cell(3, 3).expanded(2);
        assert_eq!(r, TrackRect::new(1, 1, 5, 5));
        assert!(r.contains_cell(1, 5));
        assert!(!r.contains_cell(0, 3));
    }

    #[test]
    fn cells_iterator_covers_all() {
        let r = TrackRect::new(1, 1, 2, 3);
        let cells: Vec<_> = r.cells().collect();
        assert_eq!(cells.len(), 6);
        assert!(cells.contains(&(2, 3)));
        assert!(cells.contains(&(1, 1)));
    }
}
