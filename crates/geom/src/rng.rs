//! A small deterministic PRNG (SplitMix64) for benchmark generation and
//! randomized tests.
//!
//! The repository builds in hermetic environments with no crate registry,
//! so the benchmark generator and the randomized test suites cannot depend
//! on external RNG crates. SplitMix64 passes BigCrush, needs only a `u64`
//! of state, and — unlike `rand`'s `SmallRng` — is guaranteed stable across
//! toolchain upgrades, which keeps the generated benchmark instances
//! byte-identical forever.

/// A deterministic SplitMix64 pseudo-random generator.
///
/// # Example
///
/// ```
/// use sadp_geom::Rng;
/// let mut a = Rng::seed_from_u64(7);
/// let mut b = Rng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.range_i32(3..10) >= 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)` (Lemire-style rejection-free
    /// widening multiply; bias is negligible for the bounds used here).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform `i32` in the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_i32(&mut self, range: std::ops::Range<i32>) -> i32 {
        assert!(range.start < range.end, "empty range");
        let span = (range.end as i64 - range.start as i64) as u64;
        range.start + self.bounded(span) as i32
    }

    /// A uniform `i32` in the closed range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_i32_inclusive(&mut self, range: std::ops::RangeInclusive<i32>) -> i32 {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "empty range");
        let span = (hi as i64 - lo as i64 + 1) as u64;
        lo + self.bounded(span) as i32
    }

    /// A uniform `usize` in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn index(&mut self, bound: usize) -> usize {
        self.bounded(bound as u64) as usize
    }

    /// A biased coin: `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// A fair coin.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values of SplitMix64 with seed 1234567 (from the
        // published reference implementation).
        let mut r = Rng::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.range_i32(-5..7);
            assert!((-5..7).contains(&v));
            let w = r.range_i32_inclusive(2..=4);
            assert!((2..=4).contains(&w));
            assert!(r.index(3) < 3);
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut r = Rng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(r.range_i32_inclusive(0..=3));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::seed_from_u64(2);
        assert!((0..50).all(|_| !r.chance(0.0)));
        assert!((0..50).all(|_| r.chance(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Rng::seed_from_u64(0);
        let _ = r.range_i32(5..5);
    }
}
