//! The SADP cut-process design-rule set.

use crate::nm::Nm;
use crate::rect::TrackRect;
use std::error::Error;
use std::fmt;

/// The design rules of Section II-B of the paper.
///
/// The constructor enforces the practical constraints of eq. (1)–(3):
///
/// 1. `w_line == w_spacer`,
/// 2. `w_cut == w_core  <  d_cut == d_core`,
/// 3. `d_core < w_line + 2·w_spacer − 2·d_overlap`.
///
/// # Example
///
/// ```
/// use sadp_geom::DesignRules;
/// let rules = DesignRules::node_10nm();
/// assert_eq!(rules.pitch().0, 40);
/// // d_indep^2 = 2 * (w_line + 2 w_spacer)^2 = 7200 nm^2
/// assert_eq!(rules.d_indep_squared(), 7200);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignRules {
    w_line: Nm,
    w_spacer: Nm,
    w_cut: Nm,
    w_core: Nm,
    d_cut: Nm,
    d_core: Nm,
    d_overlap: Nm,
}

/// Error returned when a rule set violates the constraints of eq. (1)–(3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RulesError {
    message: String,
}

impl fmt::Display for RulesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid design rules: {}", self.message)
    }
}

impl Error for RulesError {}

impl DesignRules {
    /// Builds a rule set, validating the constraints of eq. (1)–(3).
    ///
    /// # Errors
    ///
    /// Returns [`RulesError`] if any of the three constraints is violated or
    /// a dimension is non-positive.
    pub fn new(
        w_line: Nm,
        w_spacer: Nm,
        w_cut: Nm,
        w_core: Nm,
        d_cut: Nm,
        d_core: Nm,
        d_overlap: Nm,
    ) -> Result<DesignRules, RulesError> {
        let err = |m: &str| {
            Err(RulesError {
                message: m.to_owned(),
            })
        };
        if w_line <= Nm::ZERO || w_spacer <= Nm::ZERO || w_cut <= Nm::ZERO || w_core <= Nm::ZERO {
            return err("all widths must be positive");
        }
        if d_overlap < Nm::ZERO {
            return err("d_overlap must be non-negative");
        }
        if w_line != w_spacer {
            return err("eq. (1) requires w_line == w_spacer");
        }
        if w_cut != w_core || w_cut >= d_cut || d_cut != d_core {
            return err("eq. (2) requires w_cut == w_core < d_cut == d_core");
        }
        if d_core >= w_line + w_spacer * 2 - d_overlap * 2 {
            return err("eq. (3) requires d_core < w_line + 2*w_spacer - 2*d_overlap");
        }
        Ok(DesignRules {
            w_line,
            w_spacer,
            w_cut,
            w_core,
            d_cut,
            d_core,
            d_overlap,
        })
    }

    /// The rule set used throughout the paper's experiments (10 nm node):
    /// `w_line = w_spacer = w_cut = w_core = 20 nm`,
    /// `d_cut = d_core = 30 nm`, `d_overlap = 5 nm`.
    #[must_use]
    pub fn node_10nm() -> DesignRules {
        DesignRules::new(Nm(20), Nm(20), Nm(20), Nm(20), Nm(30), Nm(30), Nm(5))
            .expect("the 10nm node rule set satisfies eq. (1)-(3)")
    }

    /// A coarser rule set at a 14 nm-class pitch (30 nm lines/spacers,
    /// 40 nm cut/core spacing), useful for testing rule parameterisation.
    /// The dependence structure (Theorem 1) is identical to the 10 nm
    /// node: the same seven track-difference tuples are dependent.
    #[must_use]
    pub fn node_14nm() -> DesignRules {
        DesignRules::new(Nm(30), Nm(30), Nm(30), Nm(30), Nm(40), Nm(40), Nm(10))
            .expect("the 14nm-class rule set satisfies eq. (1)-(3)")
    }

    /// Minimum metal line width.
    #[must_use]
    pub fn w_line(&self) -> Nm {
        self.w_line
    }

    /// Spacer width (equals minimum metal spacing on the grid).
    #[must_use]
    pub fn w_spacer(&self) -> Nm {
        self.w_spacer
    }

    /// Minimum cut-pattern width.
    #[must_use]
    pub fn w_cut(&self) -> Nm {
        self.w_cut
    }

    /// Minimum core-pattern width.
    #[must_use]
    pub fn w_core(&self) -> Nm {
        self.w_core
    }

    /// Minimum distance between two cut patterns.
    #[must_use]
    pub fn d_cut(&self) -> Nm {
        self.d_cut
    }

    /// Minimum distance between two core patterns.
    #[must_use]
    pub fn d_core(&self) -> Nm {
        self.d_core
    }

    /// Length by which a cut pattern may overlap a spacer.
    #[must_use]
    pub fn d_overlap(&self) -> Nm {
        self.d_overlap
    }

    /// Routing-track pitch: `w_line + w_spacer`.
    #[must_use]
    pub fn pitch(&self) -> Nm {
        self.w_line + self.w_spacer
    }

    /// Physical edge-to-edge gap of two patterns `d` tracks apart
    /// (`d·pitch − w_line` for `d > 0`, zero otherwise).
    #[must_use]
    pub fn gap_nm(&self, tracks: i32) -> Nm {
        if tracks <= 0 {
            Nm::ZERO
        } else {
            self.pitch() * i64::from(tracks) - self.w_line
        }
    }

    /// The squared independence distance of Theorem 1:
    /// `d_indep² = 2·(w_line + 2·w_spacer)²`.
    #[must_use]
    pub fn d_indep_squared(&self) -> i64 {
        let s = self.w_line + self.w_spacer * 2;
        s.squared() * 2
    }

    /// Theorem 1 dependence test for a pair of track-difference values.
    ///
    /// Two patterns are *dependent* (they can induce an overlay for some
    /// color assignment) iff their Euclidean edge-to-edge distance is
    /// strictly smaller than `d_indep`. Patterns whose projections overlap
    /// on both axes (`(0, 0)`) touch or cross and are handled by the caller
    /// (same net or a short violation), so they are reported dependent.
    #[must_use]
    pub fn gap_is_dependent(&self, dx_tracks: i32, dy_tracks: i32) -> bool {
        let gx = self.gap_nm(dx_tracks);
        let gy = self.gap_nm(dy_tracks);
        gx.squared() + gy.squared() < self.d_indep_squared()
    }

    /// Theorem 1 dependence test for two rectangles.
    #[must_use]
    pub fn are_dependent(&self, a: &TrackRect, b: &TrackRect) -> bool {
        let (dx, dy) = a.track_gap(b);
        self.gap_is_dependent(dx, dy)
    }

    /// The window radius, in tracks, within which dependent neighbours can
    /// lie: the largest track difference that is still dependent along a
    /// single axis (2 for the 10 nm rules).
    #[must_use]
    pub fn dependence_radius_tracks(&self) -> i32 {
        let mut r = 0;
        while self.gap_is_dependent(r + 1, 0) {
            r += 1;
        }
        r
    }
}

impl Default for DesignRules {
    fn default() -> DesignRules {
        DesignRules::node_10nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_10nm_values() {
        let r = DesignRules::node_10nm();
        assert_eq!(r.w_line(), Nm(20));
        assert_eq!(r.d_core(), Nm(30));
        assert_eq!(r.pitch(), Nm(40));
        assert_eq!(r.gap_nm(1), Nm(20));
        assert_eq!(r.gap_nm(2), Nm(60));
        assert_eq!(r.gap_nm(3), Nm(100));
        assert_eq!(r.gap_nm(0), Nm(0));
    }

    #[test]
    fn eq1_violation_rejected() {
        let e = DesignRules::new(Nm(20), Nm(25), Nm(20), Nm(20), Nm(30), Nm(30), Nm(5));
        assert!(e.is_err());
        assert!(e.unwrap_err().to_string().contains("eq. (1)"));
    }

    #[test]
    fn eq2_violation_rejected() {
        assert!(DesignRules::new(Nm(20), Nm(20), Nm(20), Nm(25), Nm(30), Nm(30), Nm(5)).is_err());
        assert!(DesignRules::new(Nm(20), Nm(20), Nm(30), Nm(30), Nm(30), Nm(30), Nm(5)).is_err());
        assert!(DesignRules::new(Nm(20), Nm(20), Nm(20), Nm(20), Nm(30), Nm(35), Nm(5)).is_err());
    }

    #[test]
    fn eq3_violation_rejected() {
        // d_core = 50 >= 20 + 40 - 10 = 50 -> rejected.
        assert!(DesignRules::new(Nm(20), Nm(20), Nm(20), Nm(20), Nm(50), Nm(50), Nm(5)).is_err());
    }

    #[test]
    fn non_positive_rejected() {
        assert!(DesignRules::new(Nm(0), Nm(0), Nm(20), Nm(20), Nm(30), Nm(30), Nm(5)).is_err());
        assert!(DesignRules::new(Nm(20), Nm(20), Nm(20), Nm(20), Nm(30), Nm(30), Nm(-1)).is_err());
    }

    #[test]
    fn theorem1_dependence_table() {
        // Matches the enumeration in the proof of Theorem 2.
        let r = DesignRules::node_10nm();
        let dependent = [(0, 1), (0, 2), (1, 0), (2, 0), (1, 1), (1, 2), (2, 1)];
        let independent = [(0, 3), (3, 0), (2, 2), (1, 3), (3, 1), (2, 3)];
        for (dx, dy) in dependent {
            assert!(
                r.gap_is_dependent(dx, dy),
                "({dx},{dy}) should be dependent"
            );
        }
        for (dx, dy) in independent {
            assert!(
                !r.gap_is_dependent(dx, dy),
                "({dx},{dy}) should be independent"
            );
        }
    }

    #[test]
    fn dependence_radius() {
        assert_eq!(DesignRules::node_10nm().dependence_radius_tracks(), 2);
        assert_eq!(DesignRules::node_14nm().dependence_radius_tracks(), 2);
    }

    #[test]
    fn node_14nm_has_same_dependence_structure() {
        let a = DesignRules::node_10nm();
        let b = DesignRules::node_14nm();
        for dx in 0..4 {
            for dy in 0..4 {
                assert_eq!(
                    a.gap_is_dependent(dx, dy),
                    b.gap_is_dependent(dx, dy),
                    "({dx},{dy})"
                );
            }
        }
        assert_eq!(b.pitch(), Nm(60));
    }

    #[test]
    fn are_dependent_on_rects() {
        let r = DesignRules::node_10nm();
        let a = TrackRect::new(0, 0, 5, 0);
        assert!(r.are_dependent(&a, &TrackRect::new(0, 2, 5, 2)));
        assert!(!r.are_dependent(&a, &TrackRect::new(0, 3, 5, 3)));
    }
}
