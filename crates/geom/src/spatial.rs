//! A bucketed spatial hash over track rectangles.

use crate::rect::TrackRect;
use std::collections::HashMap;

/// A spatial hash that buckets [`TrackRect`]s into fixed-size tiles for
/// fast neighbourhood queries.
///
/// The router stores every routed wire fragment here, keyed by an arbitrary
/// `id` (fragment index), and queries the expanded bounding box of a new
/// fragment to find candidate dependent neighbours.
///
/// # Example
///
/// ```
/// use sadp_geom::{SpatialHash, TrackRect};
/// let mut hash = SpatialHash::new(8);
/// hash.insert(0, TrackRect::new(0, 0, 5, 0));
/// hash.insert(1, TrackRect::new(40, 40, 45, 40));
/// let near: Vec<_> = hash.query(&TrackRect::new(0, 0, 2, 2)).collect();
/// assert_eq!(near, vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct SpatialHash {
    tile: i32,
    buckets: HashMap<(i32, i32), Vec<(u64, TrackRect)>>,
    len: usize,
}

impl SpatialHash {
    /// Creates an empty hash with the given tile size (tracks per bucket).
    ///
    /// # Panics
    ///
    /// Panics if `tile_size` is not positive.
    #[must_use]
    pub fn new(tile_size: i32) -> SpatialHash {
        assert!(tile_size > 0, "tile size must be positive");
        SpatialHash {
            tile: tile_size,
            buckets: HashMap::new(),
            len: 0,
        }
    }

    /// Creates an empty hash with a tile size chosen from the expected
    /// item density: roughly two items per tile on average, clamped to
    /// `4..=16` tracks. A fixed tile of 16 made every bucket hold `O(n)`
    /// fragments on dense circuits, turning neighbourhood queries —
    /// nominally `O(items in window)` — into linear scans.
    #[must_use]
    pub fn with_density(width: i32, height: i32, expected_items: usize) -> SpatialHash {
        let area = (width.max(1) as f64) * (height.max(1) as f64);
        let per_tile_area = area / (2.0 * expected_items.max(1) as f64);
        SpatialHash::new((per_tile_area.sqrt() as i32).clamp(4, 16))
    }

    /// The tile size in tracks.
    #[must_use]
    pub fn tile(&self) -> i32 {
        self.tile
    }

    /// Number of stored rectangles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the hash is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn tile_range(&self, rect: &TrackRect) -> (i32, i32, i32, i32) {
        (
            rect.x0.div_euclid(self.tile),
            rect.y0.div_euclid(self.tile),
            rect.x1.div_euclid(self.tile),
            rect.y1.div_euclid(self.tile),
        )
    }

    /// Inserts a rectangle under `id`. Ids need not be unique; a fragment
    /// replaced under the same id must be [`SpatialHash::remove`]d first.
    pub fn insert(&mut self, id: u64, rect: TrackRect) {
        let (tx0, ty0, tx1, ty1) = self.tile_range(&rect);
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                self.buckets.entry((tx, ty)).or_default().push((id, rect));
            }
        }
        self.len += 1;
    }

    /// Removes the rectangle stored under `id` with exactly the bounds
    /// `rect`. Returns whether anything was removed.
    pub fn remove(&mut self, id: u64, rect: &TrackRect) -> bool {
        let (tx0, ty0, tx1, ty1) = self.tile_range(rect);
        let mut removed = false;
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                if let Some(v) = self.buckets.get_mut(&(tx, ty)) {
                    let before = v.len();
                    v.retain(|(i, r)| !(*i == id && r == rect));
                    removed |= v.len() != before;
                    if v.is_empty() {
                        self.buckets.remove(&(tx, ty));
                    }
                }
            }
        }
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Iterates over the ids of all rectangles intersecting `window`.
    ///
    /// A rectangle spanning several tiles is reported once per query even
    /// though it is stored in each tile it covers.
    pub fn query<'a>(&'a self, window: &TrackRect) -> impl Iterator<Item = u64> + 'a {
        self.query_entries(window).map(|(id, _)| id)
    }

    /// Iterates over `(id, rect)` pairs intersecting `window`.
    pub fn query_entries<'a>(
        &'a self,
        window: &TrackRect,
    ) -> impl Iterator<Item = (u64, TrackRect)> + 'a {
        let (tx0, ty0, tx1, ty1) = self.tile_range(window);
        let w = *window;
        let mut out: Vec<(u64, TrackRect)> = Vec::new();
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                if let Some(v) = self.buckets.get(&(tx, ty)) {
                    for &(id, r) in v {
                        if !r.intersects(&w) {
                            continue;
                        }
                        // Deduplicate without a seen-set: of the tiles an
                        // entry shares with the query window, exactly one
                        // is the per-axis maximum of the two range starts;
                        // report the entry only from that anchor tile.
                        let ax = r.x0.div_euclid(self.tile).max(tx0);
                        let ay = r.y0.div_euclid(self.tile).max(ty0);
                        if (ax, ay) == (tx, ty) {
                            out.push((id, r));
                        }
                    }
                }
            }
        }
        out.into_iter()
    }
}

// The sharded routing driver moves per-band hashes across worker threads
// and shares read-only references; keep that capability from silently
// regressing if interior mutability is ever added.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SpatialHash>()
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_query_remove() {
        let mut h = SpatialHash::new(4);
        let a = TrackRect::new(0, 0, 10, 0); // spans several tiles
        let b = TrackRect::new(0, 5, 0, 5);
        h.insert(1, a);
        h.insert(2, b);
        assert_eq!(h.len(), 2);

        let hits: Vec<_> = h.query(&TrackRect::new(8, 0, 9, 1)).collect();
        assert_eq!(hits, vec![1]);

        // Query window covering several tiles reports each id once.
        let hits: Vec<_> = h.query(&TrackRect::new(0, 0, 12, 12)).collect();
        assert_eq!(hits.len(), 2);

        assert!(h.remove(1, &a));
        assert!(!h.remove(1, &a));
        assert_eq!(h.len(), 1);
        assert!(h.query(&TrackRect::new(8, 0, 9, 1)).next().is_none());
    }

    #[test]
    fn negative_coordinates() {
        let mut h = SpatialHash::new(8);
        h.insert(7, TrackRect::new(-10, -10, -5, -10));
        let hits: Vec<_> = h.query(&TrackRect::new(-6, -11, -4, -9)).collect();
        assert_eq!(hits, vec![7]);
    }

    #[test]
    fn empty_query() {
        let h = SpatialHash::new(8);
        assert!(h.is_empty());
        assert_eq!(h.query(&TrackRect::cell(0, 0)).count(), 0);
    }

    #[test]
    #[should_panic(expected = "tile size")]
    fn zero_tile_panics() {
        let _ = SpatialHash::new(0);
    }

    #[test]
    fn density_tile_shrinks_with_item_count() {
        // Few items on a big plane: coarse tiles (clamped high).
        assert_eq!(SpatialHash::with_density(512, 512, 10).tile(), 16);
        // Dense plane: fine tiles (clamped low).
        assert_eq!(SpatialHash::with_density(64, 64, 10_000).tile(), 4);
        // Mid density lands between the clamps.
        let t = SpatialHash::with_density(256, 256, 500).tile();
        assert!((4..=16).contains(&t), "tile {t}");
        // Degenerate inputs must not panic.
        assert!(SpatialHash::with_density(0, 0, 0).tile() >= 4);
    }

    #[test]
    fn multi_tile_entries_dedup_in_partial_windows() {
        let mut h = SpatialHash::new(4);
        // Spans tiles x = 0..=3 on row 0.
        let long = TrackRect::new(1, 1, 14, 1);
        h.insert(9, long);
        // Window starting mid-rectangle: anchor is clamped to the window.
        for window in [
            TrackRect::new(0, 0, 15, 3),
            TrackRect::new(5, 0, 15, 3),
            TrackRect::new(5, 0, 9, 3),
            TrackRect::new(13, 1, 14, 1),
        ] {
            let hits: Vec<_> = h.query(&window).collect();
            assert_eq!(hits, vec![9], "window {window:?}");
        }
    }
}
