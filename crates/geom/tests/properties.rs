//! Randomized property tests for the geometry substrate, driven by the
//! crate's own deterministic [`Rng`] (the workspace builds hermetically,
//! with no external property-testing framework).

use sadp_geom::{DesignRules, Rng, SpatialHash, TrackRect};

const CASES: usize = 512;

fn random_rect(rng: &mut Rng) -> TrackRect {
    let x = rng.range_i32(-20..20);
    let y = rng.range_i32(-20..20);
    let w = rng.range_i32(0..10);
    let h = rng.range_i32(0..10);
    TrackRect::new(x, y, x + w, y + h)
}

/// Gap and overlap arithmetic is symmetric.
#[test]
fn gap_and_overlap_are_symmetric() {
    let mut rng = Rng::seed_from_u64(0xA11CE);
    for _ in 0..CASES {
        let a = random_rect(&mut rng);
        let b = random_rect(&mut rng);
        assert_eq!(a.track_gap(&b), b.track_gap(&a));
        assert_eq!(a.overlap_x(&b), b.overlap_x(&a));
        assert_eq!(a.overlap_y(&b), b.overlap_y(&a));
        assert_eq!(a.intersects(&b), b.intersects(&a));
    }
}

/// The gap is zero on an axis iff the projections overlap there.
#[test]
fn gap_zero_iff_projection_overlap() {
    let mut rng = Rng::seed_from_u64(0xB0B);
    for _ in 0..CASES {
        let a = random_rect(&mut rng);
        let b = random_rect(&mut rng);
        let (dx, dy) = a.track_gap(&b);
        assert_eq!(dx == 0, a.overlap_x(&b) > 0);
        assert_eq!(dy == 0, a.overlap_y(&b) > 0);
    }
}

/// Intersection is contained in both rectangles; the union bbox contains
/// both.
#[test]
fn intersection_and_union_bounds() {
    let mut rng = Rng::seed_from_u64(0xC0FFEE);
    for _ in 0..CASES {
        let a = random_rect(&mut rng);
        let b = random_rect(&mut rng);
        if let Some(i) = a.intersection(&b) {
            for (x, y) in i.cells() {
                assert!(a.contains_cell(x, y) && b.contains_cell(x, y));
            }
        }
        let u = a.union_bbox(&b);
        assert!(u.contains_cell(a.x0, a.y0) && u.contains_cell(b.x1, b.y1));
    }
}

/// Expansion keeps containment and grows cell count monotonically.
#[test]
fn expansion_is_monotone() {
    let mut rng = Rng::seed_from_u64(0xDEED);
    for _ in 0..CASES {
        let a = random_rect(&mut rng);
        let d = rng.range_i32(0..5);
        let e = a.expanded(d);
        assert!(e.len_cells() >= a.len_cells());
        for (x, y) in a.cells().take(64) {
            assert!(e.contains_cell(x, y));
        }
    }
}

/// Dependence is symmetric and monotone in the track gaps.
#[test]
fn dependence_is_symmetric() {
    let r = DesignRules::node_10nm();
    for dx in 0..5 {
        for dy in 0..5 {
            assert_eq!(r.gap_is_dependent(dx, dy), r.gap_is_dependent(dy, dx));
            if !r.gap_is_dependent(dx, dy) {
                // Growing any gap keeps the pair independent.
                assert!(!r.gap_is_dependent(dx + 1, dy));
                assert!(!r.gap_is_dependent(dx, dy + 1));
            }
        }
    }
}

/// The spatial hash agrees with brute-force filtering.
#[test]
fn spatial_hash_matches_brute_force() {
    let mut rng = Rng::seed_from_u64(0x5EED);
    for _ in 0..CASES {
        let rects: Vec<TrackRect> = (0..rng.index(24)).map(|_| random_rect(&mut rng)).collect();
        let window = random_rect(&mut rng);
        let mut hash = SpatialHash::new(6);
        for (i, r) in rects.iter().enumerate() {
            hash.insert(i as u64, *r);
        }
        let mut got: Vec<u64> = hash.query(&window).collect();
        got.sort_unstable();
        got.dedup();
        let mut want: Vec<u64> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&window))
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}

/// Insert followed by remove restores the query results.
#[test]
fn spatial_hash_remove_undoes_insert() {
    let mut rng = Rng::seed_from_u64(0xFACADE);
    for _ in 0..CASES {
        let base: Vec<TrackRect> = (0..rng.index(12)).map(|_| random_rect(&mut rng)).collect();
        let extra = random_rect(&mut rng);
        let window = random_rect(&mut rng);
        let mut hash = SpatialHash::new(6);
        for (i, r) in base.iter().enumerate() {
            hash.insert(i as u64, *r);
        }
        let before: Vec<u64> = hash.query(&window).collect();
        hash.insert(999, extra);
        assert!(hash.remove(999, &extra));
        let after: Vec<u64> = hash.query(&window).collect();
        assert_eq!(before, after);
    }
}
