//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use sadp_geom::{DesignRules, SpatialHash, TrackRect};

fn rect_strategy() -> impl Strategy<Value = TrackRect> {
    (-20i32..20, -20i32..20, 0i32..10, 0i32..10)
        .prop_map(|(x, y, w, h)| TrackRect::new(x, y, x + w, y + h))
}

proptest! {
    /// Gap and overlap arithmetic is symmetric.
    #[test]
    fn gap_and_overlap_are_symmetric(a in rect_strategy(), b in rect_strategy()) {
        prop_assert_eq!(a.track_gap(&b), b.track_gap(&a));
        prop_assert_eq!(a.overlap_x(&b), b.overlap_x(&a));
        prop_assert_eq!(a.overlap_y(&b), b.overlap_y(&a));
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    /// The gap is zero on an axis iff the projections overlap there.
    #[test]
    fn gap_zero_iff_projection_overlap(a in rect_strategy(), b in rect_strategy()) {
        let (dx, dy) = a.track_gap(&b);
        prop_assert_eq!(dx == 0, a.overlap_x(&b) > 0);
        prop_assert_eq!(dy == 0, a.overlap_y(&b) > 0);
    }

    /// Intersection is contained in both rectangles; the union bbox
    /// contains both.
    #[test]
    fn intersection_and_union_bounds(a in rect_strategy(), b in rect_strategy()) {
        if let Some(i) = a.intersection(&b) {
            for (x, y) in i.cells() {
                prop_assert!(a.contains_cell(x, y) && b.contains_cell(x, y));
            }
        }
        let u = a.union_bbox(&b);
        prop_assert!(u.contains_cell(a.x0, a.y0) && u.contains_cell(b.x1, b.y1));
    }

    /// Expansion keeps containment and grows cell count monotonically.
    #[test]
    fn expansion_is_monotone(a in rect_strategy(), d in 0i32..5) {
        let e = a.expanded(d);
        prop_assert!(e.len_cells() >= a.len_cells());
        for (x, y) in a.cells().take(64) {
            prop_assert!(e.contains_cell(x, y));
        }
    }

    /// Dependence is symmetric and monotone in the track gaps.
    #[test]
    fn dependence_is_symmetric(dx in 0i32..5, dy in 0i32..5) {
        let r = DesignRules::node_10nm();
        prop_assert_eq!(r.gap_is_dependent(dx, dy), r.gap_is_dependent(dy, dx));
        if !r.gap_is_dependent(dx, dy) {
            // Growing any gap keeps the pair independent.
            prop_assert!(!r.gap_is_dependent(dx + 1, dy));
            prop_assert!(!r.gap_is_dependent(dx, dy + 1));
        }
    }

    /// The spatial hash agrees with brute-force filtering.
    #[test]
    fn spatial_hash_matches_brute_force(
        rects in prop::collection::vec(rect_strategy(), 0..24),
        window in rect_strategy(),
    ) {
        let mut hash = SpatialHash::new(6);
        for (i, r) in rects.iter().enumerate() {
            hash.insert(i as u64, *r);
        }
        let mut got: Vec<u64> = hash.query(&window).collect();
        got.sort_unstable();
        got.dedup();
        let mut want: Vec<u64> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&window))
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Insert followed by remove restores the query results.
    #[test]
    fn spatial_hash_remove_undoes_insert(
        base in prop::collection::vec(rect_strategy(), 0..12),
        extra in rect_strategy(),
        window in rect_strategy(),
    ) {
        let mut hash = SpatialHash::new(6);
        for (i, r) in base.iter().enumerate() {
            hash.insert(i as u64, *r);
        }
        let before: Vec<u64> = hash.query(&window).collect();
        hash.insert(999, extra);
        prop_assert!(hash.remove(999, &extra));
        let after: Vec<u64> = hash.query(&window).collect();
        prop_assert_eq!(before, after);
    }
}
