//! Union–find with parities: constant-time hard-constraint odd-cycle
//! detection.
//!
//! Each element carries a parity relative to its component root. A hard
//! *different-color* edge (type 1-a) relates two elements with parity 1; a
//! hard *same-color* edge (type 1-b, the paper's dummy-vertex edge) relates
//! them with parity 0. A new hard edge whose endpoints are already in the
//! same component with an inconsistent parity closes an odd cycle of hard
//! constraint edges — exactly the infeasibility of Fig. 11(g).

/// A disjoint-set forest whose elements carry a color parity relative to
/// their root.
///
/// # Example
///
/// ```
/// use sadp_graph::ParityDsu;
/// let mut dsu = ParityDsu::new(4);
/// dsu.union(0, 1, true).unwrap();   // different colors
/// dsu.union(1, 2, true).unwrap();   // different colors
/// assert_eq!(dsu.relation(0, 2), Some(false)); // same color forced
/// // Closing the triangle with another "different" edge is an odd cycle.
/// assert!(dsu.union(0, 2, true).is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParityDsu {
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Parity of the element relative to its parent.
    parity: Vec<bool>,
    /// Undo log of committed unions: `(absorbed root, rank bump on the
    /// surviving root)`. `find` never mutates (union by rank without path
    /// compression), so rolling back the unions restores the forest
    /// exactly.
    log: Vec<(u32, bool)>,
}

/// Error returned when a union would close an odd cycle of hard edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OddCycle {
    /// One endpoint of the offending edge.
    pub a: u32,
    /// The other endpoint.
    pub b: u32,
}

impl std::fmt::Display for OddCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hard-constraint odd cycle closed by edge ({}, {})",
            self.a, self.b
        )
    }
}

impl std::error::Error for OddCycle {}

impl ParityDsu {
    /// Creates a forest of `n` singleton elements.
    #[must_use]
    pub fn new(n: usize) -> ParityDsu {
        ParityDsu {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            parity: vec![false; n],
            log: Vec::new(),
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the forest has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Grows the forest to hold at least `n` elements.
    pub fn grow(&mut self, n: usize) {
        let old = self.parent.len();
        if n > old {
            self.parent.extend(old as u32..n as u32);
            self.rank.resize(n, 0);
            self.parity.resize(n, false);
        }
    }

    /// Finds the root of `x` and the parity of `x` relative to it.
    ///
    /// Union-by-rank keeps trees `O(log n)` deep; `find` does not compress
    /// paths so that [`ParityDsu::rollback`] can undo unions exactly.
    pub fn find(&mut self, x: u32) -> (u32, bool) {
        self.find_ref(x)
    }

    /// Non-mutating find (see [`ParityDsu::find`]).
    pub fn find_ref(&self, x: u32) -> (u32, bool) {
        let mut cur = x;
        let mut par = false;
        loop {
            let p = self.parent[cur as usize];
            if p == cur {
                return (cur, par);
            }
            par ^= self.parity[cur as usize];
            cur = p;
        }
    }

    /// A checkpoint for [`ParityDsu::rollback`]: the number of committed
    /// unions so far.
    #[must_use]
    pub fn mark(&self) -> usize {
        self.log.len()
    }

    /// Rolls the forest back to a previous [`ParityDsu::mark`], undoing
    /// every union committed since.
    ///
    /// # Panics
    ///
    /// Panics if `mark` is newer than the current log.
    pub fn rollback(&mut self, mark: usize) {
        assert!(mark <= self.log.len(), "rollback into the future");
        while self.log.len() > mark {
            let (lo, rank_bumped) = self.log.pop().expect("len checked");
            let hi = self.parent[lo as usize];
            debug_assert_ne!(hi, lo, "log entry must be an absorbed root");
            self.parent[lo as usize] = lo;
            self.parity[lo as usize] = false;
            if rank_bumped {
                self.rank[hi as usize] -= 1;
            }
        }
    }

    /// The forced color relation between `a` and `b`, if they are hard
    /// connected: `Some(true)` = must differ, `Some(false)` = must match,
    /// `None` = unconstrained.
    pub fn relation(&mut self, a: u32, b: u32) -> Option<bool> {
        self.relation_ref(a, b)
    }

    /// Non-mutating relation query (see [`ParityDsu::relation`]).
    #[must_use]
    pub fn relation_ref(&self, a: u32, b: u32) -> Option<bool> {
        let (ra, pa) = self.find_ref(a);
        let (rb, pb) = self.find_ref(b);
        (ra == rb).then_some(pa ^ pb)
    }

    /// Detaches every element of `nodes` back into a singleton (parent =
    /// self, parity false, rank 0), so a caller can re-union the surviving
    /// edges of just one component instead of rebuilding the whole forest.
    ///
    /// The caller must pass a union-closed set: every element whose root
    /// path runs through a reset element must itself be reset (resetting a
    /// full component, as [`OverlayGraph::remove_net`] does, satisfies
    /// this). Marks taken before the call are invalidated — only roll back
    /// to marks taken afterwards.
    ///
    /// [`OverlayGraph::remove_net`]: crate::OverlayGraph::remove_net
    pub fn reset_nodes(&mut self, nodes: &[u32]) {
        for &x in nodes {
            self.parent[x as usize] = x;
            self.parity[x as usize] = false;
            self.rank[x as usize] = 0;
        }
        debug_assert!(
            (0..self.parent.len() as u32).all(|x| {
                let p = self.parent[x as usize];
                p == x || !nodes.contains(&p) || nodes.contains(&x)
            }),
            "reset set must be union-closed (a whole component)"
        );
    }

    /// Adds a hard edge between `a` and `b` with the given parity
    /// (`true` = different colors, `false` = same color).
    ///
    /// Returns `Ok(true)` if two components were merged, `Ok(false)` if the
    /// edge was already implied.
    ///
    /// # Errors
    ///
    /// Returns [`OddCycle`] if the edge contradicts the existing relation,
    /// i.e. closes an odd cycle of hard constraint edges. The forest is
    /// left unchanged in that case.
    pub fn union(&mut self, a: u32, b: u32, parity: bool) -> Result<bool, OddCycle> {
        let (ra, pa) = self.find(a);
        let (rb, pb) = self.find(b);
        if ra == rb {
            return if pa ^ pb == parity {
                Ok(false)
            } else {
                Err(OddCycle { a, b })
            };
        }
        // Union by rank; fix up the parity of the absorbed root so that
        // parity(a) ^ parity(b) == parity holds afterwards.
        let (hi, lo, plo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb, pa ^ pb ^ parity)
        } else {
            (rb, ra, pa ^ pb ^ parity)
        };
        self.parent[lo as usize] = hi;
        self.parity[lo as usize] = plo;
        let bump = self.rank[hi as usize] == self.rank[lo as usize];
        if bump {
            self.rank[hi as usize] += 1;
        }
        self.log.push((lo, bump));
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_relations() {
        let mut d = ParityDsu::new(3);
        assert_eq!(d.relation(0, 1), None);
        assert_eq!(d.relation(0, 0), Some(false));
    }

    #[test]
    fn chain_parity_propagates() {
        let mut d = ParityDsu::new(5);
        d.union(0, 1, true).unwrap();
        d.union(1, 2, false).unwrap();
        d.union(2, 3, true).unwrap();
        assert_eq!(d.relation(0, 2), Some(true));
        assert_eq!(d.relation(0, 3), Some(false));
        assert_eq!(d.relation(1, 3), Some(true));
        assert_eq!(d.relation(0, 4), None);
    }

    #[test]
    fn redundant_edge_is_ok() {
        let mut d = ParityDsu::new(3);
        d.union(0, 1, true).unwrap();
        assert_eq!(d.union(0, 1, true), Ok(false));
        assert!(d.union(0, 1, false).is_err());
    }

    #[test]
    fn odd_cycle_detected_and_state_preserved() {
        let mut d = ParityDsu::new(4);
        d.union(0, 1, true).unwrap();
        d.union(1, 2, true).unwrap();
        d.union(2, 3, true).unwrap();
        // 0-3 parity is true (3 diff edges); adding same-color edge is fine,
        // adding nothing contradictory first:
        assert_eq!(d.relation(0, 3), Some(true));
        let err = d.union(0, 3, false).unwrap_err();
        assert_eq!((err.a, err.b), (0, 3));
        // Forest unchanged: relation still intact.
        assert_eq!(d.relation(0, 3), Some(true));
    }

    #[test]
    fn even_cycle_accepted() {
        let mut d = ParityDsu::new(4);
        d.union(0, 1, true).unwrap();
        d.union(1, 2, true).unwrap();
        d.union(2, 3, true).unwrap();
        assert_eq!(d.union(3, 0, true), Ok(false));
    }

    #[test]
    fn grow_preserves_state() {
        let mut d = ParityDsu::new(2);
        d.union(0, 1, true).unwrap();
        d.grow(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d.relation(0, 1), Some(true));
        assert_eq!(d.relation(0, 9), None);
        d.union(9, 0, false).unwrap();
        assert_eq!(d.relation(9, 1), Some(true));
    }

    #[test]
    fn display_error() {
        let e = OddCycle { a: 1, b: 2 };
        assert!(e.to_string().contains("odd cycle"));
    }

    #[test]
    fn rollback_restores_the_forest() {
        let mut d = ParityDsu::new(6);
        d.union(0, 1, true).unwrap();
        d.union(2, 3, false).unwrap();
        let mark = d.mark();
        d.union(1, 2, true).unwrap();
        d.union(4, 5, true).unwrap();
        assert_eq!(d.relation(0, 3), Some(false));
        d.rollback(mark);
        assert_eq!(d.relation(0, 3), None);
        assert_eq!(d.relation(4, 5), None);
        assert_eq!(d.relation(0, 1), Some(true));
        assert_eq!(d.relation(2, 3), Some(false));
        // The forest behaves exactly like a fresh one with the same edges.
        d.union(1, 2, false).unwrap();
        assert_eq!(d.relation(0, 3), Some(true));
    }

    #[test]
    fn rollback_to_zero_is_full_reset() {
        let mut d = ParityDsu::new(4);
        d.union(0, 1, true).unwrap();
        d.union(2, 3, true).unwrap();
        d.rollback(0);
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    assert_eq!(d.relation(a, b), None);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "future")]
    fn rollback_into_future_panics() {
        let mut d = ParityDsu::new(2);
        d.rollback(1);
    }

    #[test]
    fn reset_nodes_detaches_a_component() {
        let mut d = ParityDsu::new(6);
        d.union(0, 1, true).unwrap();
        d.union(1, 2, false).unwrap();
        d.union(4, 5, true).unwrap();
        // Reset the {0,1,2} component and re-union a subset of its edges.
        d.reset_nodes(&[0, 1, 2]);
        assert_eq!(d.relation(0, 1), None);
        assert_eq!(d.relation(1, 2), None);
        assert_eq!(d.relation(4, 5), Some(true), "other components untouched");
        d.union(1, 2, false).unwrap();
        assert_eq!(d.relation(1, 2), Some(false));
        assert_eq!(d.relation(0, 2), None);
    }

    #[test]
    fn redundant_unions_do_not_log() {
        let mut d = ParityDsu::new(3);
        d.union(0, 1, true).unwrap();
        let mark = d.mark();
        assert_eq!(d.union(0, 1, true), Ok(false));
        assert_eq!(d.mark(), mark, "implied edges leave no log entry");
    }
}
