//! The linear-time color flipping algorithm (Section III-C, Theorem 4).
//!
//! For each connected component of the overlay constraint graph:
//!
//! 1. quotient the component by its hard constraints into *super vertices*
//!    (each member net has a parity relative to the super-vertex root),
//! 2. extract a **maximum spanning tree** over the super vertices, with the
//!    cost of each nonhard edge set to the side-overlay stake of the
//!    potential overlay scenarios it aggregates,
//! 3. build the *flipping graph* — each super vertex split into a C-state
//!    and an S-state — and run the dynamic program of eq. (4) from the
//!    leaves to the root,
//! 4. backtrace the minimum-cost root state and assign colors.
//!
//! The result is optimal whenever the (reduced) constraint graph is a tree;
//! edges outside the spanning tree are ignored during the DP, exactly as in
//! Fig. 14. As an engineering safeguard the new coloring is kept only if it
//! does not evaluate worse than the old one on the *full* component
//! (including non-tree edges).

use crate::graph::OverlayGraph;
use sadp_scenario::{Assignment, Color};
use std::collections::{HashMap, HashSet, VecDeque};

/// Result of a color flipping pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FlipOutcome {
    /// Number of connected components processed.
    pub components: usize,
    /// Total edge weight (overlay units + penalties) before flipping.
    pub weight_before: u64,
    /// Total edge weight after flipping.
    pub weight_after: u64,
}

impl FlipOutcome {
    /// Weight saved by the pass.
    #[must_use]
    pub fn improvement(&self) -> u64 {
        self.weight_before.saturating_sub(self.weight_after)
    }
}

/// A 2×2 weight table between two super vertices, indexed by root colors.
type SuperTable = [[u64; 2]; 2];

fn table_stake(t: &SuperTable) -> u64 {
    let flat = [t[0][0], t[0][1], t[1][0], t[1][1]];
    flat.iter().max().unwrap() - flat.iter().min().unwrap()
}

/// Runs color flipping on the component containing `seed`
/// (`ColorFlipping(G, n_i, M)`, Fig. 19 line 13).
pub fn flip_component(graph: &mut OverlayGraph, seed: u32) -> FlipOutcome {
    let members = graph.component_of(seed);
    if members.is_empty() {
        return FlipOutcome::default();
    }
    flip_members(graph, &members);
    FlipOutcome {
        components: 1,
        weight_before: 0,
        weight_after: 0,
    }
}

/// Up to ≈ `max_members` vertices around `seed`, breadth-first, always
/// closed under hard constraints: a hard edge is followed even past the
/// cap, so hard-constraint groups are never split. Returns a sorted list
/// (empty if `seed` is not in the graph).
///
/// The per-net trial flipping and the conflict cleanup optimize these
/// bounded neighbourhoods instead of whole connected components: on dense
/// circuits the soft scenarios fuse nearly all nets into one giant
/// component, and an `O(component)` flip per routed net is exactly the
/// quadratic blow-up the Fig. 20 series used to show.
#[must_use]
pub fn neighborhood_of(graph: &OverlayGraph, seed: u32, max_members: usize) -> Vec<u32> {
    if !graph.contains(seed) {
        return Vec::new();
    }
    let mut set: HashSet<u32> = HashSet::new();
    let mut queue: VecDeque<u32> = VecDeque::new();
    set.insert(seed);
    queue.push_back(seed);
    let mut out = Vec::new();
    while let Some(v) = queue.pop_front() {
        out.push(v);
        for &n in graph.neighbors(v) {
            if set.contains(&n) {
                continue;
            }
            let hard = graph
                .edge(v, n)
                .is_some_and(|d| d.table.hard_parity().is_some());
            if hard || set.len() < max_members {
                set.insert(n);
                queue.push_back(n);
            }
        }
    }
    out.sort_unstable();
    out
}

/// [`flip_component`] restricted to the bounded neighbourhood of `seed`:
/// the DP optimizes the neighbourhood's colors with every boundary
/// neighbour's color held fixed (boundary hard edges carry the usual
/// prohibitive weight, so they are respected).
pub fn flip_neighborhood(graph: &mut OverlayGraph, seed: u32, max_members: usize) -> Vec<u32> {
    let members = neighborhood_of(graph, seed, max_members);
    if !members.is_empty() {
        flip_members(graph, &members);
    }
    members
}

/// [`greedy_refine`] restricted to a member list produced by
/// [`neighborhood_of`] (must be closed under hard constraints — groups
/// flip whole).
pub fn refine_members(graph: &mut OverlayGraph, members: &[u32], max_passes: usize) {
    refine_verts(graph, members, max_passes);
}

/// Runs color flipping on every component of the graph (Fig. 19 line 16).
pub fn flip_all(graph: &mut OverlayGraph) -> FlipOutcome {
    let mut outcome = FlipOutcome {
        weight_before: total_weight(graph),
        ..FlipOutcome::default()
    };
    let mut visited: HashMap<u32, bool> = HashMap::new();
    let mut verts: Vec<u32> = graph.vertices().collect();
    verts.sort_unstable();
    for v in verts {
        if visited.contains_key(&v) {
            continue;
        }
        let members = graph.component_of(v);
        for &m in &members {
            visited.insert(m, true);
        }
        flip_members(graph, &members);
        outcome.components += 1;
    }
    outcome.weight_after = total_weight(graph);
    outcome
}

fn total_weight(graph: &OverlayGraph) -> u64 {
    graph
        .edges()
        .map(|(a, b, d)| {
            let asg = Assignment::from_colors(graph.color(a), graph.color(b));
            d.table.entry(asg).weight()
        })
        .sum()
}

/// Total weight of the edges incident to `members`, boundary edges (one
/// endpoint outside `set`) included once.
fn member_weight(graph: &OverlayGraph, members: &[u32], set: &HashSet<u32>) -> u64 {
    let mut w = 0;
    for &a in members {
        for &b in graph.neighbors(a) {
            if set.contains(&b) && a >= b {
                continue; // internal edge, counted from its low endpoint
            }
            if let Some(d) = graph.edge(a, b) {
                let (x, y) = if a < b { (a, b) } else { (b, a) };
                let asg = Assignment::from_colors(graph.color(x), graph.color(y));
                w += d.table.entry(asg).weight();
            }
        }
    }
    w
}

fn component_weight(graph: &OverlayGraph, members: &[u32]) -> u64 {
    let mut w = 0;
    for &a in members {
        for &b in graph.neighbors(a) {
            if a < b {
                if let Some(d) = graph.edge(a, b) {
                    let asg = Assignment::from_colors(graph.color(a), graph.color(b));
                    w += d.table.entry(asg).weight();
                }
            }
        }
    }
    w
}

/// Runs the flipping DP on `members`, which must be closed under hard
/// constraints (a whole connected component, or a [`neighborhood_of`]
/// set). Edges to vertices outside the set contribute with the outside
/// color held fixed.
fn flip_members(graph: &mut OverlayGraph, members: &[u32]) {
    let member_set: HashSet<u32> = members.iter().copied().collect();
    // 1. Quotient by hard constraints.
    let mut parity_of: HashMap<u32, (u32, bool)> = HashMap::new();
    for &m in members {
        let (root, parity) = graph.hard_root(m);
        parity_of.insert(m, (root, parity));
    }
    let mut roots: Vec<u32> = parity_of.values().map(|&(r, _)| r).collect();
    roots.sort_unstable();
    roots.dedup();
    let root_index: HashMap<u32, usize> = roots.iter().enumerate().map(|(i, &r)| (r, i)).collect();
    let n = roots.len();

    // 2. Aggregate edge tables onto super vertices: self weights for
    //    intra-super and boundary edges, 2x2 tables for inter-super edges.
    let mut self_weight = vec![[0u64; 2]; n];
    let mut super_edges: HashMap<(usize, usize), SuperTable> = HashMap::new();
    for &a in members {
        for &b in graph.neighbors(a) {
            let inside = member_set.contains(&b);
            if inside && a >= b {
                continue;
            }
            let Some(data) = graph.edge(a, b) else {
                continue;
            };
            let (ra, pa) = parity_of[&a];
            if !inside {
                // Boundary edge: b keeps its current color; the edge cost
                // folds into a's super-vertex self weight. Tables are
                // oriented low-id first.
                let cb = graph.color(b);
                let ia = root_index[&ra];
                for (ci, root_color) in Color::ALL.iter().enumerate() {
                    let ca = apply_parity(*root_color, pa);
                    let asg = if a < b {
                        Assignment::from_colors(ca, cb)
                    } else {
                        Assignment::from_colors(cb, ca)
                    };
                    self_weight[ia][ci] += data.table.entry(asg).weight();
                }
                continue;
            }
            let (rb, pb) = parity_of[&b];
            let (ia, ib) = (root_index[&ra], root_index[&rb]);
            if ia == ib {
                // Colors of a and b are both determined by the root color.
                for (ci, root_color) in Color::ALL.iter().enumerate() {
                    let ca = apply_parity(*root_color, pa);
                    let cb = apply_parity(*root_color, pb);
                    self_weight[ia][ci] +=
                        data.table.entry(Assignment::from_colors(ca, cb)).weight();
                }
            } else {
                let key = (ia.min(ib), ia.max(ib));
                let entry = super_edges.entry(key).or_insert([[0; 2]; 2]);
                for (ci, cu) in Color::ALL.iter().enumerate() {
                    for (cj, cv) in Color::ALL.iter().enumerate() {
                        // entry[x][y]: x = color of key.0's root, y = key.1's.
                        let (ca, cb) = if key.0 == ia {
                            (apply_parity(*cu, pa), apply_parity(*cv, pb))
                        } else {
                            (apply_parity(*cv, pa), apply_parity(*cu, pb))
                        };
                        let w = data.table.entry(Assignment::from_colors(ca, cb)).weight();
                        let (x, y) = if key.0 == ia { (ci, cj) } else { (cj, ci) };
                        entry[x][y] += w;
                    }
                }
            }
        }
    }

    // 3. Maximum spanning tree over the super vertices (Kruskal).
    let mut edge_list: Vec<((usize, usize), SuperTable)> = super_edges.into_iter().collect();
    edge_list.sort_by(|a, b| {
        table_stake(&b.1)
            .cmp(&table_stake(&a.1))
            .then(a.0.cmp(&b.0))
    });
    let mut tree_adj: Vec<Vec<(usize, SuperTable)>> = vec![Vec::new(); n];
    let mut dsu: Vec<usize> = (0..n).collect();
    fn find(dsu: &mut Vec<usize>, x: usize) -> usize {
        if dsu[x] != x {
            let r = find(dsu, dsu[x]);
            dsu[x] = r;
            r
        } else {
            x
        }
    }
    for ((u, v), table) in edge_list {
        let (ru, rv) = (find(&mut dsu, u), find(&mut dsu, v));
        if ru != rv {
            dsu[ru] = rv;
            tree_adj[u].push((v, table));
            let mut swapped = table;
            swapped[0][1] = table[1][0];
            swapped[1][0] = table[0][1];
            tree_adj[v].push((u, swapped));
        }
    }

    // Snapshot for the keep-if-better safeguard.
    let before: Vec<(u32, Color)> = members.iter().map(|&m| (m, graph.color(m))).collect();
    let weight_before = member_weight(graph, members, &member_set);

    // 4. DP of eq. (4) over each tree of the super-vertex forest.
    let mut super_color = vec![Color::Core; n];
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        dp_tree(start, &tree_adj, &self_weight, &mut super_color, &mut seen);
    }

    // 5. Push colors down to the nets (color = root color ^ parity).
    for &m in members {
        let (root, parity) = parity_of[&m];
        let c = apply_parity(super_color[root_index[&root]], parity);
        graph.set_color(m, c);
    }

    // Keep-if-better on all incident edges (non-tree and boundary edges
    // included).
    if member_weight(graph, members, &member_set) > weight_before {
        for (m, c) in before {
            graph.set_color(m, c);
        }
    }
}

fn apply_parity(color: Color, parity: bool) -> Color {
    if parity {
        color.flipped()
    } else {
        color
    }
}

/// Iterative post-order DP over one tree of the super-vertex forest:
/// `Cost(v, q) = Σ_children min_p { Cost(child, p) + w(v=q, child=p) }`.
fn dp_tree(
    root: usize,
    adj: &[Vec<(usize, SuperTable)>],
    self_weight: &[[u64; 2]],
    colors: &mut [Color],
    seen: &mut [bool],
) {
    // Build a parent-order traversal.
    let mut order = vec![root];
    let mut parent: HashMap<usize, usize> = HashMap::new();
    seen[root] = true;
    let mut i = 0;
    while i < order.len() {
        let v = order[i];
        i += 1;
        for &(u, _) in &adj[v] {
            if !seen[u] {
                seen[u] = true;
                parent.insert(u, v);
                order.push(u);
            }
        }
    }

    // cost[v][q], choice[v][q][child-slot] -> best child color index.
    let mut cost: HashMap<usize, [u64; 2]> = HashMap::new();
    let mut choice: HashMap<(usize, usize, usize), usize> = HashMap::new();
    for &v in order.iter().rev() {
        let mut c = self_weight[v];
        for (slot, &(u, table)) in adj[v].iter().enumerate() {
            if parent.get(&u) != Some(&v) {
                continue; // u is v's parent
            }
            let cu = cost[&u];
            for (q, cq) in c.iter_mut().enumerate() {
                // table[q][p]: v has color index q, child u has p.
                let (p_best, w_best) = (0..2)
                    .map(|p| (p, cu[p] + table[q][p]))
                    .min_by_key(|&(_, w)| w)
                    .expect("two states");
                *cq += w_best;
                choice.insert((v, q, slot), p_best);
            }
        }
        cost.insert(v, c);
    }

    // Backtrace from the cheaper root state.
    let root_cost = cost[&root];
    let mut state: HashMap<usize, usize> = HashMap::new();
    state.insert(root, usize::from(root_cost[1] < root_cost[0]));
    for &v in &order {
        let q = state[&v];
        colors[v] = Color::ALL[q];
        for (slot, &(u, _)) in adj[v].iter().enumerate() {
            if parent.get(&u) == Some(&v) {
                state.insert(u, choice[&(v, q, slot)]);
            }
        }
    }
}

/// Hill-climbing refinement: repeatedly flips whole hard-constraint
/// super-vertices whose flip strictly lowers the total edge weight, until
/// a fixpoint (or `max_passes`). Complements the tree DP by cleaning up
/// the non-tree edges the DP cannot see; hard constraints are preserved
/// because members of a super vertex flip together.
///
/// Returns the total weight improvement.
pub fn greedy_refine(graph: &mut OverlayGraph, max_passes: usize) -> u64 {
    let before = total_weight(graph);
    let mut verts: Vec<u32> = graph.vertices().collect();
    verts.sort_unstable();
    refine_verts(graph, &verts, max_passes);
    before.saturating_sub(total_weight(graph))
}

/// [`greedy_refine`] scoped to the connected component containing `seed`.
/// Components share no edges, so refining each touched component
/// separately reaches the same fixpoint as a global pass — without
/// re-walking the untouched rest of the graph.
pub fn greedy_refine_component(graph: &mut OverlayGraph, seed: u32, max_passes: usize) -> u64 {
    let mut members = graph.component_of(seed);
    if members.is_empty() {
        return 0;
    }
    members.sort_unstable();
    let before = component_weight(graph, &members);
    refine_verts(graph, &members, max_passes);
    before.saturating_sub(component_weight(graph, &members))
}

fn refine_verts(graph: &mut OverlayGraph, verts: &[u32], max_passes: usize) {
    for _ in 0..max_passes {
        let mut improved = false;
        // Group members by hard-component root (sorted for determinism).
        let mut groups: std::collections::BTreeMap<u32, Vec<u32>> =
            std::collections::BTreeMap::new();
        for &v in verts {
            if graph.contains(v) {
                let (root, _) = graph.hard_root(v);
                groups.entry(root).or_default().push(v);
            }
        }
        for members in groups.values() {
            // Weight of edges incident to the group, before and after a
            // group flip. Edges inside the group keep their relative
            // parity, so only boundary edges change.
            let member_set: std::collections::HashSet<u32> = members.iter().copied().collect();
            let delta = group_flip_delta(graph, members, &member_set);
            if delta < 0 {
                for &m in members {
                    let c = graph.color(m);
                    graph.set_color(m, c.flipped());
                }
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
}

fn group_flip_delta(
    graph: &OverlayGraph,
    members: &[u32],
    member_set: &std::collections::HashSet<u32>,
) -> i128 {
    let mut delta: i128 = 0;
    for &m in members {
        for &n in graph.neighbors(m) {
            if member_set.contains(&n) {
                if m < n {
                    // Internal edge: both endpoints flip, and every edge
                    // table of a hard component is parity-symmetric only
                    // for its hard part; nonhard costs can change.
                    let d = graph.edge(m, n).expect("edge exists");
                    let old = d
                        .table
                        .entry(Assignment::from_colors(graph.color(m), graph.color(n)));
                    let new = d.table.entry(Assignment::from_colors(
                        graph.color(m).flipped(),
                        graph.color(n).flipped(),
                    ));
                    delta += new.weight() as i128 - old.weight() as i128;
                }
            } else {
                let d = graph.edge(m, n).expect("edge exists");
                let (a, b) = if m < n { (m, n) } else { (n, m) };
                let color = |v: u32| {
                    if v == m {
                        graph.color(v).flipped()
                    } else {
                        graph.color(v)
                    }
                };
                let old = d
                    .table
                    .entry(Assignment::from_colors(graph.color(a), graph.color(b)));
                let new = d.table.entry(Assignment::from_colors(color(a), color(b)));
                delta += new.weight() as i128 - old.weight() as i128;
            }
        }
    }
    delta
}

/// Exhaustively finds an optimal coloring of the given nets by enumerating
/// all `2^n` assignments. Intended for tests and small components only.
///
/// Returns the best coloring and its total edge weight (only edges with
/// both endpoints in `nets` are counted).
///
/// # Panics
///
/// Panics if more than 24 nets are given.
#[must_use]
pub fn brute_force_color(graph: &OverlayGraph, nets: &[u32]) -> (HashMap<u32, Color>, u64) {
    assert!(nets.len() <= 24, "brute force limited to 24 nets");
    let mut best: Option<(u64, u32)> = None;
    for mask in 0..(1u32 << nets.len()) {
        let color = |net: u32| -> Color {
            let i = nets.iter().position(|&n| n == net).expect("net in set");
            if mask >> i & 1 == 1 {
                Color::Second
            } else {
                Color::Core
            }
        };
        let mut w = 0u64;
        for &a in nets {
            for &b in graph.neighbors(a) {
                if a < b && nets.contains(&b) {
                    if let Some(d) = graph.edge(a, b) {
                        let asg = Assignment::from_colors(color(a), color(b));
                        w = w.saturating_add(d.table.entry(asg).weight());
                    }
                }
            }
        }
        if best.is_none_or(|(bw, _)| w < bw) {
            best = Some((w, mask));
        }
    }
    let (w, mask) = best.expect("at least one assignment");
    let mut out = HashMap::new();
    for (i, &n) in nets.iter().enumerate() {
        out.insert(
            n,
            if mask >> i & 1 == 1 {
                Color::Second
            } else {
                Color::Core
            },
        );
    }
    (out, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_scenario::ScenarioKind;

    #[test]
    fn flip_resolves_paper_fig13() {
        // Fig. 13: nets A (second) and B (core) routed; C between them must
        // differ from both adjacent wires (1-a). Flipping B allows C.
        let mut g = OverlayGraph::new();
        g.add_scenario(0, 2, ScenarioKind::OneA.table()).unwrap(); // A-C
        g.add_scenario(1, 2, ScenarioKind::OneA.table()).unwrap(); // B-C
        g.set_color(0, Color::Second);
        g.set_color(1, Color::Core);
        g.set_color(2, Color::Core); // violates both
        let out = flip_all(&mut g);
        let e = g.evaluate();
        assert_eq!(e.hard_violations, 0);
        assert_ne!(g.color(2), g.color(0));
        assert_ne!(g.color(2), g.color(1));
        assert!(out.improvement() > 0);
    }

    #[test]
    fn flip_tree_matches_brute_force() {
        // A path of nonhard scenarios: DP must be optimal (Theorem 4).
        let mut g = OverlayGraph::new();
        let kinds = [
            ScenarioKind::ThreeA,
            ScenarioKind::TwoA,
            ScenarioKind::ThreeB,
            ScenarioKind::TwoB,
            ScenarioKind::ThreeC,
        ];
        for (i, k) in kinds.iter().enumerate() {
            g.add_scenario(i as u32, i as u32 + 1, k.table()).unwrap();
        }
        flip_all(&mut g);
        let nets: Vec<u32> = (0..=kinds.len() as u32).collect();
        let (_, best_w) = brute_force_color(&g, &nets);
        let got: u64 = total_weight(&g);
        assert_eq!(got, best_w);
    }

    #[test]
    fn flip_handles_super_vertices() {
        // 0 =1-b= 1 (same color), 1 =1-a= 2 (diff), and a nonhard 3-a
        // between 0 and 3.
        let mut g = OverlayGraph::new();
        g.add_scenario(0, 1, ScenarioKind::OneB.table()).unwrap();
        g.add_scenario(1, 2, ScenarioKind::OneA.table()).unwrap();
        g.add_scenario(0, 3, ScenarioKind::ThreeA.table()).unwrap();
        flip_all(&mut g);
        assert_eq!(g.color(0), g.color(1));
        assert_ne!(g.color(1), g.color(2));
        let e = g.evaluate();
        assert_eq!(e.hard_violations, 0);
        assert_eq!(e.overlay_units, 0);
    }

    #[test]
    fn flip_cycle_like_fig14() {
        // Fig. 14: a cycle of nonhard edges; the weakest edge is dropped by
        // the maximum spanning tree and the DP still reaches the optimum of
        // the full graph here.
        let mut g = OverlayGraph::new();
        g.add_scenario(0, 1, ScenarioKind::TwoA.table()).unwrap(); // B-C prefer same
        g.add_scenario(1, 2, ScenarioKind::ThreeA.table()).unwrap(); // C-E prefer diff
        g.add_scenario(0, 2, ScenarioKind::ThreeA.table()).unwrap(); // B-E prefer diff
        flip_all(&mut g);
        let e = g.evaluate();
        // Optimum: B=C same, E different from both -> 0 units.
        assert_eq!(e.overlay_units, 0);
    }

    #[test]
    fn flip_component_only_touches_component() {
        let mut g = OverlayGraph::new();
        g.add_scenario(0, 1, ScenarioKind::OneA.table()).unwrap();
        g.ensure_vertex(9);
        g.set_color(9, Color::Second);
        g.set_color(0, Color::Core);
        g.set_color(1, Color::Core);
        flip_component(&mut g, 0);
        assert_ne!(g.color(0), g.color(1));
        assert_eq!(g.color(9), Color::Second);
    }

    #[test]
    fn keep_if_better_never_regresses() {
        // Dense cycle where the MST heuristic could regress; the safeguard
        // must keep the evaluation from getting worse.
        let mut g = OverlayGraph::new();
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)] {
            g.add_scenario(a, b, ScenarioKind::ThreeB.table()).unwrap();
        }
        // Start from the global optimum: everything second.
        for v in 0..4 {
            g.set_color(v, Color::Second);
        }
        let before = g.evaluate();
        flip_all(&mut g);
        let after = g.evaluate();
        assert!(after.overlay_units <= before.overlay_units);
        assert_eq!(after.overlay_units, 0);
    }

    #[test]
    fn brute_force_small() {
        let mut g = OverlayGraph::new();
        g.add_scenario(0, 1, ScenarioKind::ThreeB.table()).unwrap();
        let (colors, w) = brute_force_color(&g, &[0, 1]);
        assert_eq!(w, 0);
        assert_eq!(colors[&0], Color::Second);
        assert_eq!(colors[&1], Color::Second);
    }

    #[test]
    fn neighborhood_caps_but_closes_hard_groups() {
        // A soft chain 0-1-2-3-4 with a hard 1-b pair hanging off vertex 1.
        let mut g = OverlayGraph::new();
        for i in 0..4 {
            g.add_scenario(i, i + 1, ScenarioKind::ThreeA.table())
                .unwrap();
        }
        g.add_scenario(1, 10, ScenarioKind::OneB.table()).unwrap();
        let n = neighborhood_of(&g, 0, 2);
        // Cap 2 stops the soft BFS quickly, but once 1 is in, its hard
        // partner 10 must come along.
        assert!(n.contains(&0) && n.contains(&1) && n.contains(&10), "{n:?}");
        assert!(n.len() < 6, "cap ignored: {n:?}");
        assert!(neighborhood_of(&g, 99, 8).is_empty());
    }

    #[test]
    fn neighborhood_flip_respects_fixed_boundary() {
        // Chain of hard 1-a edges: 0-1-2. Flip only {0}'s neighbourhood
        // with cap 1: hard closure pulls the whole chain in anyway, so
        // colors stay legal. Then a soft case: 0 =3-a= 1 =3-a= 2 with 2
        // outside the flipped set; 1 must pick a color compatible with
        // the *fixed* color of 2.
        let mut g = OverlayGraph::new();
        g.add_scenario(0, 1, ScenarioKind::ThreeA.table()).unwrap(); // prefer diff
        g.add_scenario(1, 2, ScenarioKind::ThreeA.table()).unwrap(); // prefer diff
        g.set_color(0, Color::Core);
        g.set_color(1, Color::Core);
        g.set_color(2, Color::Second);
        // Neighbourhood of 0 with cap 2 = {0, 1}; 2 stays fixed Second.
        let members = flip_neighborhood(&mut g, 0, 2);
        assert_eq!(members, vec![0, 1]);
        assert_eq!(g.color(2), Color::Second, "boundary vertex must not move");
        let e = g.evaluate();
        assert_eq!(
            e.overlay_units, 0,
            "both 3-a edges satisfiable: 0=S,1=C,2=S or equiv"
        );
    }

    #[test]
    fn flip_empty_and_singleton() {
        let mut g = OverlayGraph::new();
        let out = flip_all(&mut g);
        assert_eq!(out.components, 0);
        g.ensure_vertex(5);
        let out = flip_all(&mut g);
        assert_eq!(out.components, 1);
        assert_eq!(flip_component(&mut g, 77).components, 0);
    }
}
