//! The per-layer overlay constraint graph.

use crate::dsu::ParityDsu;
use sadp_scenario::{Assignment, Color, CostTable, ScenarioKind};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// Aggregated constraint data of one vertex pair.
///
/// A pattern pair may induce several potential overlay scenarios
/// (Fig. 10(b)); their cost tables are merged entry-wise, which also makes
/// a nonhard edge redundant next to a hard one (Fig. 10(c)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeData {
    /// Merged cost table, oriented for the ordered key `(lo, hi)`.
    pub table: CostTable,
    /// The scenario kinds that contributed (for reporting).
    pub kinds: Vec<ScenarioKind>,
}

/// Errors reported while updating the constraint graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// The new scenario closes an odd cycle of hard constraint edges
    /// (Fig. 11(g)): no legal color assignment exists.
    HardOddCycle {
        /// One endpoint net of the offending relation.
        a: u32,
        /// The other endpoint net.
        b: u32,
    },
    /// Every color assignment of the pair is forbidden (the pair induces
    /// contradictory hard scenarios).
    Infeasible {
        /// One endpoint net.
        a: u32,
        /// The other endpoint net.
        b: u32,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::HardOddCycle { a, b } => {
                write!(
                    f,
                    "hard-constraint odd cycle closed between nets {a} and {b}"
                )
            }
            GraphError::Infeasible { a, b } => {
                write!(f, "no legal color assignment for nets {a} and {b}")
            }
        }
    }
}

impl Error for GraphError {}

/// Evaluation of the current coloring of the graph.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EvalStats {
    /// Total nonhard side overlay, in `w_line` units.
    pub overlay_units: u64,
    /// Number of realized hard-overlay assignments (must be 0 for a legal
    /// routing result).
    pub hard_violations: u64,
    /// Number of realized assignments that risk a type-A cut conflict.
    pub cut_risks: u64,
}

impl EvalStats {
    /// Adds another evaluation, component-wise.
    #[must_use]
    pub fn merged(self, other: EvalStats) -> EvalStats {
        EvalStats {
            overlay_units: self.overlay_units + other.overlay_units,
            hard_violations: self.hard_violations + other.hard_violations,
            cut_risks: self.cut_risks + other.cut_risks,
        }
    }
}

/// The overlay constraint graph of one routing layer (Section III-B).
///
/// Vertices are routed nets (identified by `u32` ids), each carrying its
/// current mask [`Color`]. Edges carry merged scenario [`CostTable`]s.
/// Hard constraints are tracked incrementally in a [`ParityDsu`], which
/// both detects hard-constraint odd cycles in near-constant time and plays
/// the role of the paper's even-cycle super-vertex reduction.
#[derive(Debug, Clone, Default)]
pub struct OverlayGraph {
    colors: HashMap<u32, Color>,
    adj: HashMap<u32, Vec<u32>>,
    edges: HashMap<(u32, u32), EdgeData>,
    slot: HashMap<u32, u32>,
    next_slot: u32,
    dsu: ParityDsu,
    /// Vertices whose constraint edges changed since the last
    /// [`OverlayGraph::take_dirty`] (used to scope the final recoloring to
    /// the components actually touched).
    dirty: HashSet<u32>,
}

impl OverlayGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> OverlayGraph {
        OverlayGraph {
            colors: HashMap::new(),
            adj: HashMap::new(),
            edges: HashMap::new(),
            slot: HashMap::new(),
            next_slot: 0,
            dsu: ParityDsu::new(0),
            dirty: HashSet::new(),
        }
    }

    /// Number of vertices (routed nets) in the graph.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.colors.len()
    }

    /// Number of pair edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Inserts a vertex for `net` if absent (initial color: core).
    pub fn ensure_vertex(&mut self, net: u32) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.colors.entry(net) {
            e.insert(Color::Core);
            self.adj.entry(net).or_default();
            let s = self.next_slot;
            self.next_slot += 1;
            self.slot.insert(net, s);
            self.dsu.grow(self.next_slot as usize);
            self.dirty.insert(net);
        }
    }

    /// Whether the graph has a vertex for `net`.
    #[must_use]
    pub fn contains(&self, net: u32) -> bool {
        self.colors.contains_key(&net)
    }

    /// The current color of `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not in the graph.
    #[must_use]
    pub fn color(&self, net: u32) -> Color {
        self.colors[&net]
    }

    /// Sets the color of `net` (inserting the vertex if needed).
    pub fn set_color(&mut self, net: u32, color: Color) {
        self.ensure_vertex(net);
        self.colors.insert(net, color);
    }

    /// The neighbours of `net`.
    #[must_use]
    pub fn neighbors(&self, net: u32) -> &[u32] {
        self.adj.get(&net).map_or(&[], Vec::as_slice)
    }

    /// The merged edge data between two nets, if dependent.
    #[must_use]
    pub fn edge(&self, a: u32, b: u32) -> Option<&EdgeData> {
        self.edges.get(&ordered(a, b))
    }

    /// All vertices, in unspecified order.
    pub fn vertices(&self) -> impl Iterator<Item = u32> + '_ {
        self.colors.keys().copied()
    }

    /// All edges as `(a, b, data)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, &EdgeData)> + '_ {
        self.edges.iter().map(|(&(a, b), d)| (a, b, d))
    }

    /// The forced hard color relation between two nets, if any
    /// (`Some(true)` = must differ, `Some(false)` = must match).
    #[must_use]
    pub fn hard_relation(&self, a: u32, b: u32) -> Option<bool> {
        let sa = *self.slot.get(&a)?;
        let sb = *self.slot.get(&b)?;
        self.dsu.relation_ref(sa, sb)
    }

    /// The hard-component root and parity of `net`, used by the flipping
    /// algorithm to form super vertices.
    pub(crate) fn hard_root(&self, net: u32) -> (u32, bool) {
        self.dsu.find_ref(self.slot[&net])
    }

    /// Adds one potential overlay scenario between `a` and `b`, with
    /// `table` oriented for the order `(a, b)`, and records its kind.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::HardOddCycle`] if a hard constraint of the
    /// scenario closes an odd cycle of hard edges, or
    /// [`GraphError::Infeasible`] if the merged pair table forbids all four
    /// assignments. In both cases the graph is rolled back to its previous
    /// state; the caller is expected to rip up the offending net.
    pub fn add_scenario_with_kind(
        &mut self,
        a: u32,
        b: u32,
        kind: Option<ScenarioKind>,
        table: CostTable,
    ) -> Result<(), GraphError> {
        assert_ne!(a, b, "a net cannot constrain itself");
        self.ensure_vertex(a);
        self.ensure_vertex(b);
        let key = ordered(a, b);
        let oriented = if key.0 == a { table } else { table.swapped() };

        let prev = self.edges.get(&key).cloned();
        let merged = match &prev {
            Some(e) => e.table.merged(&oriented),
            None => oriented,
        };
        if merged.min_so().is_none() {
            return Err(GraphError::Infeasible { a, b });
        }

        let prev_parity = prev.as_ref().and_then(|e| e.table.hard_parity());
        if let Some(parity) = merged.table_parity_delta(prev_parity) {
            let sa = self.slot[&key.0];
            let sb = self.slot[&key.1];
            if self.dsu.union(sa, sb, parity).is_err() {
                return Err(GraphError::HardOddCycle { a, b });
            }
        }

        let entry = self.edges.entry(key).or_insert_with(|| {
            let (x, y) = key;
            self.adj.get_mut(&x).expect("vertex exists").push(y);
            self.adj.get_mut(&y).expect("vertex exists").push(x);
            EdgeData {
                table: CostTable::zero(),
                kinds: Vec::new(),
            }
        });
        entry.table = merged;
        if let Some(k) = kind {
            entry.kinds.push(k);
        }
        self.dirty.insert(a);
        self.dirty.insert(b);
        Ok(())
    }

    /// Adds one scenario without recording its kind.
    ///
    /// # Errors
    ///
    /// Same as [`OverlayGraph::add_scenario_with_kind`].
    pub fn add_scenario(&mut self, a: u32, b: u32, table: CostTable) -> Result<(), GraphError> {
        self.add_scenario_with_kind(a, b, None, table)
    }

    /// A checkpoint for [`OverlayGraph::rollback_net`]: call before
    /// inserting a net's scenarios, roll back with it if the net must be
    /// ripped up. Avoids even the component-scoped union–find repair of
    /// [`OverlayGraph::remove_net`] on the hot rip-up path.
    #[must_use]
    pub fn mark(&self) -> usize {
        self.dsu.mark()
    }

    /// Removes `net` and its edges like [`OverlayGraph::remove_net`], but
    /// restores the union–find by rolling back to `mark` instead of
    /// marking it dirty. Only valid when no *other* net inserted hard
    /// edges after `mark` — exactly the rip-up situation of Fig. 19.
    pub fn rollback_net(&mut self, net: u32, mark: usize) {
        if self.colors.remove(&net).is_none() {
            return;
        }
        if let Some(nbrs) = self.adj.remove(&net) {
            for n in nbrs {
                self.edges.remove(&ordered(net, n));
                if let Some(v) = self.adj.get_mut(&n) {
                    v.retain(|&x| x != net);
                }
                self.dirty.insert(n);
            }
        }
        self.slot.remove(&net);
        self.dirty.remove(&net);
        self.dsu.rollback(mark);
    }

    /// Removes `net` and every incident edge (rip-up). The hard-constraint
    /// union–find is repaired eagerly, scoped to the hard-connected
    /// component of `net`: its members are detached and the surviving hard
    /// edges among them re-unioned, so a removal costs `O(component)`
    /// instead of the `O(E)` full rebuild it used to schedule.
    pub fn remove_net(&mut self, net: u32) {
        if !self.colors.contains_key(&net) {
            return;
        }
        // The hard-connected component of `net` (over graph hard edges) is
        // a superset of its union–find component: every committed union
        // corresponds to an edge whose merged table is hard, and merging
        // never un-hardens a table. Resetting the whole component is
        // therefore union-closed, as `ParityDsu::reset_nodes` requires.
        let members = self.hard_members(net);
        let member_slots: Vec<u32> = members.iter().map(|m| self.slot[m]).collect();

        self.colors.remove(&net);
        if let Some(nbrs) = self.adj.remove(&net) {
            for n in nbrs {
                self.edges.remove(&ordered(net, n));
                if let Some(v) = self.adj.get_mut(&n) {
                    v.retain(|&x| x != net);
                }
                self.dirty.insert(n);
            }
        }
        // The slot is dropped with the vertex; a re-inserted net gets a
        // fresh slot.
        self.slot.remove(&net);
        self.dirty.remove(&net);

        self.dsu.reset_nodes(&member_slots);
        // Deterministic union order, as in a from-scratch rebuild: the
        // root identities feed tie-breaking in the flipping algorithm.
        let mut hard: Vec<(u32, u32, bool)> = Vec::new();
        for &m in &members {
            if m == net {
                continue;
            }
            for &n in self.adj.get(&m).map_or(&[][..], Vec::as_slice) {
                if n <= m {
                    continue;
                }
                if let Some(p) = self.edges[&ordered(m, n)].table.hard_parity() {
                    hard.push((m, n, p));
                }
            }
        }
        hard.sort_unstable();
        for (a, b, parity) in hard {
            self.dsu
                .union(self.slot[&a], self.slot[&b], parity)
                .expect("surviving graph is hard-consistent");
        }
    }

    /// The hard-connected component of `net`: every vertex reachable from
    /// it over edges whose merged table carries a hard constraint
    /// (including `net` itself).
    fn hard_members(&self, net: u32) -> Vec<u32> {
        let mut seen: HashSet<u32> = HashSet::new();
        seen.insert(net);
        let mut out = vec![net];
        let mut stack = vec![net];
        while let Some(v) = stack.pop() {
            for &n in self.adj.get(&v).map_or(&[][..], Vec::as_slice) {
                if seen.contains(&n) {
                    continue;
                }
                if self.edges[&ordered(v, n)].table.hard_parity().is_some() {
                    seen.insert(n);
                    out.push(n);
                    stack.push(n);
                }
            }
        }
        out
    }

    /// Drains the set of vertices whose constraint edges changed since the
    /// last call (insertions, new or merged scenarios, and neighbours of
    /// removed nets; plain recoloring does not count). Used to scope the
    /// final flipping passes to the components actually touched.
    pub fn take_dirty(&mut self) -> Vec<u32> {
        self.dirty.drain().collect()
    }

    /// Evaluates the current coloring (Table III/IV "overlay length" in
    /// `w_line` units, plus violation counters).
    #[must_use]
    pub fn evaluate(&self) -> EvalStats {
        let mut stats = EvalStats::default();
        for (&(a, b), data) in &self.edges {
            let asg = Assignment::from_colors(self.colors[&a], self.colors[&b]);
            let cost = data.table.entry(asg);
            match cost.overlay_units() {
                Some(u) => {
                    stats.overlay_units += u64::from(u);
                    if cost.has_cut_risk() {
                        stats.cut_risks += 1;
                    }
                }
                None => stats.hard_violations += 1,
            }
        }
        stats
    }

    /// The side overlay (in units) currently induced by the edges incident
    /// to `net`, used for the `SideOverlay(n_i) > f_threshold` test of the
    /// routing flow (Fig. 19 line 12).
    #[must_use]
    pub fn net_overlay_units(&self, net: u32) -> u64 {
        let Some(nbrs) = self.adj.get(&net) else {
            return 0;
        };
        let mut total = 0;
        for &n in nbrs {
            let key = ordered(net, n);
            let data = &self.edges[&key];
            let asg = Assignment::from_colors(self.colors[&key.0], self.colors[&key.1]);
            total += u64::from(data.table.entry(asg).overlay_units().unwrap_or(0));
        }
        total
    }

    /// Whether any edge incident to `net` currently realizes a forbidden
    /// (hard-overlay) assignment.
    #[must_use]
    pub fn net_has_forbidden(&self, net: u32) -> bool {
        let Some(nbrs) = self.adj.get(&net) else {
            return false;
        };
        nbrs.iter().any(|&n| {
            let key = ordered(net, n);
            let asg = Assignment::from_colors(self.colors[&key.0], self.colors[&key.1]);
            self.edges[&key].table.entry(asg).is_forbidden()
        })
    }

    /// Whether any edge incident to `net` currently realizes a forbidden
    /// assignment or a type-A cut risk.
    #[must_use]
    pub fn net_has_risk(&self, net: u32) -> bool {
        let Some(nbrs) = self.adj.get(&net) else {
            return false;
        };
        nbrs.iter().any(|&n| {
            let key = ordered(net, n);
            let asg = Assignment::from_colors(self.colors[&key.0], self.colors[&key.1]);
            let cost = self.edges[&key].table.entry(asg);
            cost.is_forbidden() || cost.has_cut_risk()
        })
    }

    /// Nets with at least one incident edge currently realizing a
    /// forbidden assignment or a type-A cut risk.
    #[must_use]
    pub fn nets_with_realized_risk(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for (&(a, b), data) in &self.edges {
            let asg = Assignment::from_colors(self.colors[&a], self.colors[&b]);
            let cost = data.table.entry(asg);
            if cost.is_forbidden() || cost.has_cut_risk() {
                out.push(a);
                out.push(b);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Greedily colors `net` with the choice minimising the weight of its
    /// incident edges given the neighbours' current colors
    /// (`Pseudocoloring(n_i)`, Fig. 19 line 11). Returns the chosen color.
    pub fn pseudo_color(&mut self, net: u32) -> Color {
        self.ensure_vertex(net);
        let mut best = (Color::Core, u64::MAX);
        for color in Color::ALL {
            let mut w = 0u64;
            for &n in self.adj.get(&net).map_or(&[][..], Vec::as_slice) {
                let key = ordered(net, n);
                let data = &self.edges[&key];
                let (ca, cb) = if key.0 == net {
                    (color, self.colors[&n])
                } else {
                    (self.colors[&n], color)
                };
                w = w.saturating_add(data.table.entry(Assignment::from_colors(ca, cb)).weight());
            }
            if w < best.1 {
                best = (color, w);
            }
        }
        self.colors.insert(net, best.0);
        best.0
    }

    /// Merges a vertex-disjoint graph into this one (the sharded driver
    /// folding a band's graph into the global one).
    ///
    /// Vertices and edges are inserted in ascending net-id order so slot
    /// assignment — and with it the union–find root identities that feed
    /// tie-breaking in the flipping algorithm — is deterministic and
    /// independent of `other`'s internal hash-map order.
    ///
    /// # Panics
    ///
    /// May panic (in debug builds) if the vertex sets overlap; the caller
    /// guarantees disjointness (each net is committed in exactly one band).
    pub fn absorb(&mut self, other: &OverlayGraph) {
        debug_assert!(
            other.colors.keys().all(|k| !self.colors.contains_key(k)),
            "absorb requires vertex-disjoint graphs"
        );
        let mut verts: Vec<u32> = other.colors.keys().copied().collect();
        verts.sort_unstable();
        for &v in &verts {
            self.ensure_vertex(v);
            self.colors.insert(v, other.colors[&v]);
        }
        let mut keys: Vec<(u32, u32)> = other.edges.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let data = &other.edges[&key];
            if let Some(parity) = data.table.hard_parity() {
                self.dsu
                    .union(self.slot[&key.0], self.slot[&key.1], parity)
                    .expect("absorbed graph is hard-consistent");
            }
            self.adj.get_mut(&key.0).expect("vertex exists").push(key.1);
            self.adj.get_mut(&key.1).expect("vertex exists").push(key.0);
            self.edges.insert(key, data.clone());
        }
    }

    /// Net ids of the connected component containing `seed` (over all
    /// edges, hard and nonhard).
    #[must_use]
    pub fn component_of(&self, seed: u32) -> Vec<u32> {
        if !self.colors.contains_key(&seed) {
            return Vec::new();
        }
        let mut order = vec![seed];
        let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
        seen.insert(seed);
        let mut stack = vec![seed];
        while let Some(v) = stack.pop() {
            for &n in self.adj.get(&v).map_or(&[][..], Vec::as_slice) {
                if seen.insert(n) {
                    order.push(n);
                    stack.push(n);
                }
            }
        }
        order
    }

    /// The hard-constraint components in canonical form: one entry per
    /// component, keyed by its minimum member net id, with members listed
    /// ascending alongside their parity *relative to that minimum member*
    /// (`false` = same color forced, `true` = opposite forced).
    ///
    /// Unlike the raw union–find internals (tree shape, root choice,
    /// slot numbering) this representation depends only on which hard
    /// relations hold, so two graphs built along different edit histories
    /// compare equal exactly when they force the same colorings. Used by
    /// the ECO engine's state digest.
    #[must_use]
    pub fn hard_components(&self) -> Vec<(u32, Vec<(u32, bool)>)> {
        let mut groups: std::collections::HashMap<u32, Vec<(u32, bool)>> =
            std::collections::HashMap::new();
        let mut nets: Vec<u32> = self.colors.keys().copied().collect();
        nets.sort_unstable();
        for v in nets {
            let (root, parity) = self.hard_root(v);
            groups.entry(root).or_default().push((v, parity));
        }
        let mut out: Vec<(u32, Vec<(u32, bool)>)> = groups
            .into_values()
            .map(|members| {
                // Members were inserted ascending, so the first one is the
                // minimum; re-express parities relative to it.
                let (min, min_parity) = members[0];
                let rel = members
                    .into_iter()
                    .map(|(v, p)| (v, p != min_parity))
                    .collect();
                (min, rel)
            })
            .collect();
        out.sort_unstable_by_key(|(min, _)| *min);
        out
    }
}

trait ParityDelta {
    /// The parity to feed the union–find, given the parity the edge already
    /// contributed (`prev`). Returns `None` if no *new* hard relation
    /// appears.
    fn table_parity_delta(&self, prev: Option<bool>) -> Option<bool>;
}

impl ParityDelta for CostTable {
    fn table_parity_delta(&self, prev: Option<bool>) -> Option<bool> {
        match (self.hard_parity(), prev) {
            (Some(p), None) => Some(p),
            // Same parity as already registered: nothing new.
            (Some(p), Some(q)) if p == q => None,
            // Parity flip would require contradictory hard scenarios, which
            // merge into an all-forbidden table and is caught earlier.
            (Some(_), Some(_)) => unreachable!("contradictory hard tables merge to infeasible"),
            (None, _) => None,
        }
    }
}

fn ordered(a: u32, b: u32) -> (u32, u32) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_scenario::ScenarioKind;

    #[test]
    fn vertices_and_colors() {
        let mut g = OverlayGraph::new();
        g.ensure_vertex(3);
        assert!(g.contains(3));
        assert_eq!(g.color(3), Color::Core);
        g.set_color(3, Color::Second);
        assert_eq!(g.color(3), Color::Second);
        assert_eq!(g.vertex_count(), 1);
    }

    #[test]
    fn hard_edges_feed_dsu() {
        let mut g = OverlayGraph::new();
        g.add_scenario(0, 1, ScenarioKind::OneA.table()).unwrap();
        g.add_scenario(1, 2, ScenarioKind::OneB.table()).unwrap();
        assert_eq!(g.hard_relation(0, 2), Some(true));
        assert_eq!(g.hard_relation(0, 3), None);
    }

    #[test]
    fn hard_components_are_order_canonical() {
        // Same hard relations built along two different edge orders (and
        // with different union sequences) yield identical canonical
        // components.
        let mut a = OverlayGraph::new();
        a.add_scenario(0, 1, ScenarioKind::OneA.table()).unwrap();
        a.add_scenario(1, 2, ScenarioKind::OneB.table()).unwrap();
        a.ensure_vertex(7);
        let mut b = OverlayGraph::new();
        b.ensure_vertex(7);
        b.add_scenario(1, 2, ScenarioKind::OneB.table()).unwrap();
        b.add_scenario(0, 1, ScenarioKind::OneA.table()).unwrap();
        let ca = a.hard_components();
        assert_eq!(ca, b.hard_components());
        // 0≠1, 0≠2 (via 1=2), 7 isolated.
        assert_eq!(
            ca,
            vec![
                (0, vec![(0, false), (1, true), (2, true)]),
                (7, vec![(7, false)]),
            ]
        );
    }

    #[test]
    fn odd_cycle_rejected_and_rolled_back() {
        let mut g = OverlayGraph::new();
        g.add_scenario(0, 1, ScenarioKind::OneA.table()).unwrap();
        g.add_scenario(1, 2, ScenarioKind::OneA.table()).unwrap();
        let err = g
            .add_scenario(0, 2, ScenarioKind::OneA.table())
            .unwrap_err();
        assert!(matches!(err, GraphError::HardOddCycle { .. }));
        // The offending edge was not committed.
        assert!(g.edge(0, 2).is_none());
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn contradictory_hard_pair_is_infeasible() {
        let mut g = OverlayGraph::new();
        g.add_scenario(0, 1, ScenarioKind::OneA.table()).unwrap();
        let err = g
            .add_scenario(0, 1, ScenarioKind::OneB.table())
            .unwrap_err();
        assert!(matches!(err, GraphError::Infeasible { .. }));
        // Edge still holds only the 1-a table.
        assert_eq!(g.edge(0, 1).unwrap().table.hard_parity(), Some(true));
    }

    #[test]
    fn parallel_edges_merge() {
        let mut g = OverlayGraph::new();
        g.add_scenario_with_kind(
            0,
            1,
            Some(ScenarioKind::ThreeA),
            ScenarioKind::ThreeA.table(),
        )
        .unwrap();
        g.add_scenario_with_kind(0, 1, Some(ScenarioKind::TwoB), ScenarioKind::TwoB.table())
            .unwrap();
        let e = g.edge(0, 1).unwrap();
        assert_eq!(e.kinds, vec![ScenarioKind::ThreeA, ScenarioKind::TwoB]);
        // CC: 1 (3-a) + 1 (2-b) = 2.
        assert_eq!(e.table.entry(Assignment::CC).overlay_units(), Some(2));
        // CS: 0 + 2 = 2 with the 2-b cut risk.
        assert_eq!(e.table.entry(Assignment::CS).overlay_units(), Some(2));
        assert!(e.table.entry(Assignment::CS).has_cut_risk());
    }

    #[test]
    fn edge_orientation_respects_argument_order() {
        let mut g = OverlayGraph::new();
        // Add with arguments reversed relative to the stored (lo, hi) key:
        // 3-c penalises CS of the caller's order (5, 2).
        g.add_scenario(5, 2, ScenarioKind::ThreeC.table()).unwrap();
        g.set_color(5, Color::Core);
        g.set_color(2, Color::Second);
        assert_eq!(g.evaluate().overlay_units, 1);
        g.set_color(5, Color::Second);
        g.set_color(2, Color::Core);
        assert_eq!(g.evaluate().overlay_units, 0);
    }

    #[test]
    fn evaluate_counts_all_categories() {
        let mut g = OverlayGraph::new();
        g.add_scenario(0, 1, ScenarioKind::OneA.table()).unwrap();
        g.add_scenario(2, 3, ScenarioKind::TwoB.table()).unwrap();
        // 1-a with CC: hard violation.
        g.set_color(0, Color::Core);
        g.set_color(1, Color::Core);
        // 2-b with CS: 2 units + cut risk.
        g.set_color(2, Color::Core);
        g.set_color(3, Color::Second);
        let e = g.evaluate();
        assert_eq!(e.hard_violations, 1);
        assert_eq!(e.overlay_units, 2);
        assert_eq!(e.cut_risks, 1);
    }

    #[test]
    fn pseudo_color_avoids_penalty() {
        let mut g = OverlayGraph::new();
        g.add_scenario(0, 1, ScenarioKind::OneA.table()).unwrap();
        g.set_color(0, Color::Core);
        assert_eq!(g.pseudo_color(1), Color::Second);
        g.set_color(0, Color::Second);
        assert_eq!(g.pseudo_color(1), Color::Core);
    }

    #[test]
    fn remove_net_clears_edges_and_dsu() {
        let mut g = OverlayGraph::new();
        g.add_scenario(0, 1, ScenarioKind::OneA.table()).unwrap();
        g.add_scenario(1, 2, ScenarioKind::OneA.table()).unwrap();
        g.remove_net(1);
        assert!(!g.contains(1));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.hard_relation(0, 2), None);
        // After rip-up the closing edge becomes legal again.
        g.add_scenario(0, 2, ScenarioKind::OneA.table()).unwrap();
    }

    #[test]
    fn ripup_then_reroute_resolves_odd_cycle() {
        let mut g = OverlayGraph::new();
        g.add_scenario(0, 1, ScenarioKind::OneA.table()).unwrap();
        g.add_scenario(1, 2, ScenarioKind::OneA.table()).unwrap();
        assert!(g.add_scenario(0, 2, ScenarioKind::OneA.table()).is_err());
        // Rip up net 2 and re-add with a merge-friendly (1-b) relation to 0:
        g.remove_net(2);
        g.add_scenario(1, 2, ScenarioKind::OneA.table()).unwrap();
        g.add_scenario(0, 2, ScenarioKind::OneB.table()).unwrap();
        assert_eq!(g.hard_relation(0, 2), Some(false));
    }

    #[test]
    fn absorb_merges_disjoint_graphs() {
        let mut a = OverlayGraph::new();
        a.add_scenario(0, 1, ScenarioKind::OneA.table()).unwrap();
        a.set_color(0, Color::Second);
        let mut b = OverlayGraph::new();
        b.add_scenario(10, 11, ScenarioKind::OneA.table()).unwrap();
        b.add_scenario(11, 12, ScenarioKind::OneB.table()).unwrap();
        b.add_scenario(12, 13, ScenarioKind::ThreeA.table())
            .unwrap();
        b.set_color(10, Color::Second);
        b.set_color(11, Color::Core);

        a.absorb(&b);
        assert_eq!(a.vertex_count(), 6);
        assert_eq!(a.edge_count(), 4);
        // Colors carried over.
        assert_eq!(a.color(10), Color::Second);
        assert_eq!(a.color(11), Color::Core);
        // Hard relations carried over, including transitive ones.
        assert_eq!(a.hard_relation(0, 1), Some(true));
        assert_eq!(a.hard_relation(10, 12), Some(true));
        assert_eq!(a.hard_relation(10, 13), None);
        // No cross relations between the two sides.
        assert_eq!(a.hard_relation(1, 10), None);
        // Nonhard edge data carried over.
        assert!(a.edge(12, 13).unwrap().table.hard_parity().is_none());
        // The merged graph evaluates like the two parts did.
        let expected = {
            let mut fresh_b = OverlayGraph::new();
            fresh_b
                .add_scenario(10, 11, ScenarioKind::OneA.table())
                .unwrap();
            fresh_b
                .add_scenario(11, 12, ScenarioKind::OneB.table())
                .unwrap();
            fresh_b
                .add_scenario(12, 13, ScenarioKind::ThreeA.table())
                .unwrap();
            fresh_b.set_color(10, Color::Second);
            fresh_b.set_color(11, Color::Core);
            fresh_b.evaluate()
        };
        let mut only_a = OverlayGraph::new();
        only_a
            .add_scenario(0, 1, ScenarioKind::OneA.table())
            .unwrap();
        only_a.set_color(0, Color::Second);
        assert_eq!(a.evaluate(), only_a.evaluate().merged(expected));
        // The absorbed component stays mutable: 10 and 12 are transitively
        // forced to differ, so a same-color (1-b) edge between them is the
        // odd cycle and must still be detected after the merge.
        assert!(a.add_scenario(10, 12, ScenarioKind::OneB.table()).is_err());
        // …while the consistent different-color edge is accepted.
        assert!(a.add_scenario(10, 12, ScenarioKind::OneA.table()).is_ok());
    }

    #[test]
    fn component_and_net_overlay() {
        let mut g = OverlayGraph::new();
        g.add_scenario(0, 1, ScenarioKind::ThreeA.table()).unwrap();
        g.add_scenario(1, 2, ScenarioKind::ThreeA.table()).unwrap();
        g.ensure_vertex(9);
        let mut comp = g.component_of(0);
        comp.sort_unstable();
        assert_eq!(comp, vec![0, 1, 2]);
        assert_eq!(g.component_of(9), vec![9]);
        // All core: each 3-a edge costs 1 on net 1.
        assert_eq!(g.net_overlay_units(1), 2);
        g.set_color(1, Color::Second);
        assert_eq!(g.net_overlay_units(1), 0);
    }
}
