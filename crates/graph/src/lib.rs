//! The overlay constraint graph and the linear-time color flipping
//! algorithm (Sections III-B and III-C of the paper).
//!
//! * [`ParityDsu`] — a union–find with parities implementing the
//!   constant-time hard-constraint odd-cycle detection (the LELE conflict
//!   cycle test of \[18\], extended to the dummy-vertex/same-color edges of
//!   the overlay constraint graph). Merging the vertices of hard
//!   same/different chains also subsumes the paper's even-cycle
//!   super-vertex reduction.
//! * [`OverlayGraph`] — one constraint graph per routing layer: vertices
//!   are routed nets, edges carry the merged [`CostTable`]s of every
//!   potential overlay scenario the pair induces.
//! * [`flip`] — the maximum-spanning-tree extraction and the
//!   flipping-graph dynamic program of eq. (4), optimal on trees
//!   (Theorem 4) and `O(V + E)`.
//!
//! # Example
//!
//! ```
//! use sadp_graph::{OverlayGraph, flip};
//! use sadp_scenario::{Color, ScenarioKind};
//!
//! let mut g = OverlayGraph::new();
//! // Nets 0-1 side-by-side (type 1-a, hard different), nets 1-2 diagonal
//! // (type 3-a, prefer different).
//! g.add_scenario(0, 1, ScenarioKind::OneA.table()).unwrap();
//! g.add_scenario(1, 2, ScenarioKind::ThreeA.table()).unwrap();
//! flip::flip_all(&mut g);
//! assert_ne!(g.color(0), g.color(1));
//! assert_eq!(g.evaluate().overlay_units, 0);
//! ```

pub mod dsu;
pub mod flip;
pub mod graph;

pub use dsu::ParityDsu;
pub use flip::{
    brute_force_color, flip_all, flip_component, flip_neighborhood, greedy_refine,
    greedy_refine_component, neighborhood_of, refine_members, FlipOutcome,
};
pub use graph::{EdgeData, EvalStats, GraphError, OverlayGraph};

pub use sadp_scenario::{Assignment, Color, Cost, CostTable, ScenarioKind};
