//! Randomized property tests for the constraint graph and coloring
//! algorithms, driven by the deterministic [`Rng`] from `sadp-geom`.

use sadp_geom::Rng;
use sadp_graph::{
    brute_force_color, flip_all, greedy_refine, OverlayGraph, ParityDsu, ScenarioKind,
};
use sadp_scenario::{Assignment, Color};

const NONHARD: [ScenarioKind; 6] = [
    ScenarioKind::TwoA,
    ScenarioKind::TwoB,
    ScenarioKind::ThreeA,
    ScenarioKind::ThreeB,
    ScenarioKind::ThreeC,
    ScenarioKind::ThreeD,
];

fn total_weight(g: &OverlayGraph) -> u64 {
    g.edges()
        .map(|(a, b, d)| {
            d.table
                .entry(Assignment::from_colors(g.color(a), g.color(b)))
                .weight()
        })
        .sum()
}

/// Random nonhard edge list `(a, b, kind-index)` over `verts` vertices.
fn random_edges(rng: &mut Rng, verts: u32, max_edges: usize) -> Vec<(u32, u32, usize)> {
    (0..rng.index(max_edges))
        .map(|_| {
            (
                rng.bounded(u64::from(verts)) as u32,
                rng.bounded(u64::from(verts)) as u32,
                rng.index(NONHARD.len()),
            )
        })
        .collect()
}

/// flip_all never worsens the coloring (keep-if-better safeguard) and
/// greedy refinement on top never worsens it either — on arbitrary
/// graphs, not just trees.
#[test]
fn flipping_never_regresses() {
    let mut rng = Rng::seed_from_u64(0xF11);
    for _ in 0..256 {
        let edges = random_edges(&mut rng, 10, 31);
        let mut g = OverlayGraph::new();
        for &(a, b, k) in &edges {
            if a != b {
                // Nonhard edges always insert successfully.
                g.add_scenario(a, b, NONHARD[k].table()).expect("nonhard");
            }
        }
        for i in 0..10u32 {
            let second = rng.flip();
            if g.contains(i) {
                g.set_color(i, if second { Color::Second } else { Color::Core });
            }
        }
        let before = total_weight(&g);
        flip_all(&mut g);
        let mid = total_weight(&g);
        assert!(mid <= before, "flip_all regressed {before} -> {mid}");
        greedy_refine(&mut g, 3);
        let after = total_weight(&g);
        assert!(after <= mid, "greedy_refine regressed {mid} -> {after}");
    }
}

/// With hard edges mixed in, flipping always produces a coloring that
/// satisfies every hard constraint (when one exists, which is
/// guaranteed because rejected edges are never inserted).
#[test]
fn flipping_respects_hard_constraints() {
    let mut rng = Rng::seed_from_u64(0xF22);
    for _ in 0..256 {
        let mut g = OverlayGraph::new();
        for _ in 0..rng.index(13) {
            let a = rng.bounded(10) as u32;
            let b = rng.bounded(10) as u32;
            if a != b {
                let kind = if rng.flip() {
                    ScenarioKind::OneA
                } else {
                    ScenarioKind::OneB
                };
                let _ = g.add_scenario(a, b, kind.table()); // odd cycles rejected
            }
        }
        for (a, b, k) in random_edges(&mut rng, 10, 13) {
            if a != b {
                let _ = g.add_scenario(a, b, NONHARD[k].table());
            }
        }
        flip_all(&mut g);
        for (a, b, d) in g.edges() {
            let asg = Assignment::from_colors(g.color(a), g.color(b));
            assert!(
                !d.table.entry(asg).is_forbidden(),
                "hard constraint between {a} and {b} violated"
            );
        }
    }
}

/// On small graphs, flip_all + refinement lands within the brute-force
/// optimum plus the documented heuristic slack on cycles (never below
/// the optimum, trivially).
#[test]
fn flipping_bounded_by_brute_force() {
    let mut rng = Rng::seed_from_u64(0xF33);
    for _ in 0..200 {
        let count = 1 + rng.index(15);
        let mut g = OverlayGraph::new();
        for _ in 0..count {
            let a = rng.bounded(7) as u32;
            let b = rng.bounded(7) as u32;
            if a != b {
                g.add_scenario(a, b, NONHARD[rng.index(NONHARD.len())].table())
                    .expect("nonhard");
            }
        }
        let nets: Vec<u32> = {
            let mut v: Vec<u32> = g.vertices().collect();
            v.sort_unstable();
            v
        };
        if nets.is_empty() {
            continue;
        }
        flip_all(&mut g);
        greedy_refine(&mut g, 4);
        let got = total_weight(&g);
        let (_, best) = brute_force_color(&g, &nets);
        assert!(got >= best, "better than the optimum is impossible");
        // Heuristic quality bound: within 3x + small constant of optimal
        // on these tiny instances.
        assert!(
            got <= best * 3 + 6,
            "flip quality too poor: {got} vs optimum {best}"
        );
    }
}

/// `ParityDsu::rollback` under randomized union/rollback interleavings:
/// after any rollback the live relations must match a fresh forest
/// rebuilt from the unions still committed — this exercises the
/// rank-bump undo on arbitrary merge shapes, not just the hand-written
/// case in the unit tests.
#[test]
fn dsu_randomized_union_rollback_interleaving() {
    const N: u64 = 24;
    let mut rng = Rng::seed_from_u64(0xD50);
    for _case in 0..64 {
        let mut dsu = ParityDsu::new(N as usize);
        // Unions still committed, and (mark, committed-length) checkpoints.
        let mut committed: Vec<(u32, u32, bool)> = Vec::new();
        let mut marks: Vec<(usize, usize)> = Vec::new();
        for _op in 0..200 {
            match rng.index(8) {
                0 => marks.push((dsu.mark(), committed.len())),
                1 => {
                    if let Some((mark, len)) = marks.pop() {
                        dsu.rollback(mark);
                        committed.truncate(len);
                        let mut reference = ParityDsu::new(N as usize);
                        for &(a, b, p) in &committed {
                            assert_eq!(reference.union(a, b, p), Ok(true), "replay diverged");
                        }
                        for a in 0..N as u32 {
                            for b in a + 1..N as u32 {
                                assert_eq!(
                                    dsu.relation_ref(a, b),
                                    reference.relation_ref(a, b),
                                    "relation {a}-{b} after rollback"
                                );
                            }
                        }
                    }
                }
                _ => {
                    let a = rng.bounded(N) as u32;
                    let b = rng.bounded(N) as u32;
                    if a == b {
                        continue;
                    }
                    let parity = rng.flip();
                    if dsu.union(a, b, parity) == Ok(true) {
                        committed.push((a, b, parity));
                    }
                }
            }
        }
    }
}

/// remove_net really removes everything it touched.
#[test]
fn remove_net_is_complete() {
    let mut rng = Rng::seed_from_u64(0xF44);
    for _ in 0..256 {
        let edges = random_edges(&mut rng, 8, 21);
        let victim = rng.bounded(8) as u32;
        let mut g = OverlayGraph::new();
        for &(a, b, k) in &edges {
            if a != b {
                g.add_scenario(a, b, NONHARD[k].table()).expect("nonhard");
            }
        }
        g.remove_net(victim);
        assert!(!g.contains(victim));
        for (a, b, _) in g.edges() {
            assert!(a != victim && b != victim);
        }
        for v in g.vertices() {
            assert!(!g.neighbors(v).contains(&victim));
        }
    }
}
