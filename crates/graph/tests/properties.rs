//! Property-based tests for the constraint graph and coloring algorithms.

use proptest::prelude::*;
use sadp_graph::{brute_force_color, flip_all, greedy_refine, OverlayGraph, ScenarioKind};
use sadp_scenario::{Assignment, Color};

const NONHARD: [ScenarioKind; 6] = [
    ScenarioKind::TwoA,
    ScenarioKind::TwoB,
    ScenarioKind::ThreeA,
    ScenarioKind::ThreeB,
    ScenarioKind::ThreeC,
    ScenarioKind::ThreeD,
];

fn total_weight(g: &OverlayGraph) -> u64 {
    g.edges()
        .map(|(a, b, d)| {
            d.table
                .entry(Assignment::from_colors(g.color(a), g.color(b)))
                .weight()
        })
        .sum()
}

proptest! {
    /// flip_all never worsens the coloring (keep-if-better safeguard) and
    /// greedy refinement on top never worsens it either — on arbitrary
    /// graphs, not just trees.
    #[test]
    fn flipping_never_regresses(
        edges in prop::collection::vec((0u32..10, 0u32..10, 0usize..6), 0..30),
        seeds in prop::collection::vec(prop::bool::ANY, 10),
    ) {
        let mut g = OverlayGraph::new();
        for &(a, b, k) in &edges {
            if a != b {
                // Nonhard edges always insert successfully.
                g.add_scenario(a, b, NONHARD[k].table()).expect("nonhard");
            }
        }
        for (i, &second) in seeds.iter().enumerate() {
            if g.contains(i as u32) {
                g.set_color(i as u32, if second { Color::Second } else { Color::Core });
            }
        }
        let before = total_weight(&g);
        flip_all(&mut g);
        let mid = total_weight(&g);
        prop_assert!(mid <= before, "flip_all regressed {before} -> {mid}");
        greedy_refine(&mut g, 3);
        let after = total_weight(&g);
        prop_assert!(after <= mid, "greedy_refine regressed {mid} -> {after}");
    }

    /// With hard edges mixed in, flipping always produces a coloring that
    /// satisfies every hard constraint (when one exists, which is
    /// guaranteed because rejected edges are never inserted).
    #[test]
    fn flipping_respects_hard_constraints(
        hard in prop::collection::vec((0u32..10, 0u32..10, prop::bool::ANY), 0..12),
        soft in prop::collection::vec((0u32..10, 0u32..10, 0usize..6), 0..12),
    ) {
        let mut g = OverlayGraph::new();
        for &(a, b, diff) in &hard {
            if a != b {
                let kind = if diff { ScenarioKind::OneA } else { ScenarioKind::OneB };
                let _ = g.add_scenario(a, b, kind.table()); // odd cycles rejected
            }
        }
        for &(a, b, k) in &soft {
            if a != b {
                let _ = g.add_scenario(a, b, NONHARD[k].table());
            }
        }
        flip_all(&mut g);
        for (a, b, d) in g.edges() {
            let asg = Assignment::from_colors(g.color(a), g.color(b));
            prop_assert!(
                !d.table.entry(asg).is_forbidden(),
                "hard constraint between {} and {} violated", a, b
            );
        }
    }

    /// On small graphs, flip_all + refinement lands within the brute-force
    /// optimum plus the documented heuristic slack on cycles (never below
    /// the optimum, trivially).
    #[test]
    fn flipping_bounded_by_brute_force(
        edges in prop::collection::vec((0u32..7, 0u32..7, 0usize..6), 1..16),
    ) {
        let mut g = OverlayGraph::new();
        for &(a, b, k) in &edges {
            if a != b {
                g.add_scenario(a, b, NONHARD[k].table()).expect("nonhard");
            }
        }
        let nets: Vec<u32> = {
            let mut v: Vec<u32> = g.vertices().collect();
            v.sort_unstable();
            v
        };
        if nets.is_empty() {
            return Ok(());
        }
        flip_all(&mut g);
        greedy_refine(&mut g, 4);
        let got = total_weight(&g);
        let (_, best) = brute_force_color(&g, &nets);
        prop_assert!(got >= best, "better than the optimum is impossible");
        // Heuristic quality bound: within 3x + small constant of optimal
        // on these tiny instances.
        prop_assert!(
            got <= best * 3 + 6,
            "flip quality too poor: {got} vs optimum {best}"
        );
    }

    /// remove_net really removes everything it touched.
    #[test]
    fn remove_net_is_complete(
        edges in prop::collection::vec((0u32..8, 0u32..8, 0usize..6), 0..20),
        victim in 0u32..8,
    ) {
        let mut g = OverlayGraph::new();
        for &(a, b, k) in &edges {
            if a != b {
                g.add_scenario(a, b, NONHARD[k].table()).expect("nonhard");
            }
        }
        g.remove_net(victim);
        prop_assert!(!g.contains(victim));
        for (a, b, _) in g.edges() {
            prop_assert!(a != victim && b != victim);
        }
        for v in g.vertices() {
            prop_assert!(!g.neighbors(v).contains(&victim));
        }
    }
}
