//! Column-band partitioning of the routing plane for the sharded driver.
//!
//! The sharded routing driver splits the plane into `K` vertical bands of
//! contiguous columns. A net whose entire *influence region* — the bounding
//! box of its pin candidates grown by the search margin, further grown by
//! the scenario interaction halo — fits inside a single band can be routed
//! without observing (or affecting) any state owned by another band, so the
//! bands can run concurrently. Nets that straddle a band boundary are
//! routed serially after the bands merge.
//!
//! The partition depends only on the plane geometry, never on the worker
//! count, so the schedule (and therefore the routing result) is identical
//! for any `--threads` value.

/// Target band width in tracks. Chosen to be much wider than twice the
/// typical influence radius of a net (search margin 24 + halo 2 on each
/// side), so that most nets are strictly interior to one band; planes
/// narrower than twice this stay in a single band and take the plain
/// serial path.
pub const TARGET_BAND_WIDTH: i32 = 192;

/// One vertical band: the inclusive column range `x0..=x1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Band {
    /// First column of the band.
    pub x0: i32,
    /// Last column of the band (inclusive).
    pub x1: i32,
}

impl Band {
    /// Number of columns in the band.
    #[must_use]
    pub fn width(&self) -> i32 {
        self.x1 - self.x0 + 1
    }
}

/// The band decomposition of a plane of a given width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BandPlan {
    width: i32,
    halo: i32,
    bands: Vec<Band>,
}

impl BandPlan {
    /// Partitions a plane of `width` columns into `max(1, width / 192)`
    /// equal bands with the given interaction `halo` (in tracks).
    ///
    /// # Panics
    ///
    /// Panics if `width <= 0` or `halo < 0`.
    #[must_use]
    pub fn for_plane(width: i32, halo: i32) -> BandPlan {
        let count = (width / TARGET_BAND_WIDTH).max(1) as usize;
        BandPlan::with_bands(width, count, halo)
    }

    /// Partitions a plane of `width` columns into exactly `count` bands
    /// (clamped to `1..=width`) of near-equal widths.
    ///
    /// # Panics
    ///
    /// Panics if `width <= 0` or `halo < 0`.
    #[must_use]
    pub fn with_bands(width: i32, count: usize, halo: i32) -> BandPlan {
        assert!(width > 0, "empty plane");
        assert!(halo >= 0, "negative halo");
        let count = count.clamp(1, width as usize);
        let bands = (0..count)
            .map(|j| {
                let x0 = (j as i64 * i64::from(width) / count as i64) as i32;
                let x1 = ((j as i64 + 1) * i64::from(width) / count as i64) as i32 - 1;
                Band { x0, x1 }
            })
            .collect();
        BandPlan { width, halo, bands }
    }

    /// Number of bands.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bands.len()
    }

    /// Always false: a plan holds at least one band.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bands.is_empty()
    }

    /// The interaction halo in tracks.
    #[must_use]
    pub fn halo(&self) -> i32 {
        self.halo
    }

    /// The bands, in ascending column order.
    #[must_use]
    pub fn bands(&self) -> &[Band] {
        &self.bands
    }

    /// The band that contains the column span `x0..=x1` *including* its
    /// halo (both clipped to the plane), or `None` if the grown span
    /// straddles a band boundary and must be handled serially.
    #[must_use]
    pub fn band_of_span(&self, x0: i32, x1: i32) -> Option<usize> {
        let lo = (x0 - self.halo).max(0);
        let hi = (x1 + self.halo).min(self.width - 1);
        if lo > hi {
            return None;
        }
        self.bands.iter().position(|b| b.x0 <= lo && hi <= b.x1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_planes_get_one_band() {
        for width in [1, 16, 64, TARGET_BAND_WIDTH, 2 * TARGET_BAND_WIDTH - 1] {
            let plan = BandPlan::for_plane(width, 2);
            assert_eq!(plan.len(), 1, "width {width}");
            assert_eq!(
                plan.bands()[0],
                Band {
                    x0: 0,
                    x1: width - 1
                }
            );
        }
    }

    #[test]
    fn wide_planes_split() {
        assert_eq!(BandPlan::for_plane(2 * TARGET_BAND_WIDTH, 2).len(), 2);
        assert_eq!(BandPlan::for_plane(900, 2).len(), 4);
    }

    #[test]
    fn bands_partition_the_plane_exactly() {
        for (width, count) in [(7, 3), (400, 2), (900, 4), (10, 10), (5, 9)] {
            let plan = BandPlan::with_bands(width, count, 2);
            let bands = plan.bands();
            assert_eq!(bands[0].x0, 0);
            assert_eq!(bands[bands.len() - 1].x1, width - 1);
            for w in bands.windows(2) {
                assert_eq!(w[1].x0, w[0].x1 + 1, "gap or overlap in {plan:?}");
            }
            assert!(!plan.is_empty());
            // Near-equal widths: all within one track of each other.
            let min = bands.iter().map(Band::width).min().unwrap();
            let max = bands.iter().map(Band::width).max().unwrap();
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn span_membership_respects_halo() {
        let plan = BandPlan::with_bands(400, 2, 2);
        // Bands are [0,199] and [200,399].
        assert_eq!(plan.band_of_span(10, 100), Some(0));
        assert_eq!(plan.band_of_span(10, 197), Some(0));
        // Halo pushes the span over the boundary.
        assert_eq!(plan.band_of_span(10, 198), None);
        assert_eq!(plan.band_of_span(202, 350), Some(1));
        assert_eq!(plan.band_of_span(150, 250), None);
        // Clipping at the plane edges keeps edge nets interior.
        assert_eq!(plan.band_of_span(-30, 100), Some(0));
        assert_eq!(plan.band_of_span(350, 430), Some(1));
    }

    #[test]
    fn degenerate_span_outside_plane_is_boundary() {
        let plan = BandPlan::with_bands(100, 1, 2);
        assert_eq!(plan.band_of_span(200, 150), None);
    }
}
