//! Deterministic benchmark generation at the scale of the paper's
//! Test1–Test10 circuits.
//!
//! The paper's benchmarks are proprietary; this generator synthesises
//! instances with the same net counts, die sizes and layer count, a
//! short-range net-span distribution, and optional multiple pin candidate
//! locations (the Table IV family). See DESIGN.md §5 for the substitution
//! rationale.

use crate::net::Pin;
use crate::netlist::Netlist;
use crate::plane::RoutingPlane;
use sadp_geom::{DesignRules, GridPoint, Layer, Rng, TrackRect};

/// Parameters of one synthetic benchmark.
///
/// # Example
///
/// ```
/// use sadp_grid::BenchmarkSpec;
/// let spec = BenchmarkSpec::new("tiny", 40, 64, 64).with_seed(7);
/// let (plane, netlist) = spec.generate();
/// assert_eq!(netlist.len(), 40);
/// assert_eq!(plane.width(), 64);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name (e.g. `"Test1"`).
    pub name: String,
    /// Number of two-pin nets.
    pub net_count: usize,
    /// Plane width in tracks.
    pub width_tracks: i32,
    /// Plane height in tracks.
    pub height_tracks: i32,
    /// Number of routing layers (3 in all paper experiments).
    pub layers: u8,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
    /// Candidate locations per pin (1 = fixed pins, 4 in the Table IV
    /// family).
    pub candidates_per_pin: usize,
    /// Mean net span in tracks.
    pub span_mean: i32,
    /// Number of rectangular blockages scattered over the layers.
    pub blockage_count: usize,
    /// Pin placement pitch in tracks: pin cells snap to a subgrid of this
    /// pitch, modelling the regular pin rows of industrial designs and
    /// guaranteeing a minimum spacing between pins of different nets.
    pub pin_pitch: i32,
}

impl BenchmarkSpec {
    /// Creates a spec with fixed pins and defaults derived from the size.
    #[must_use]
    pub fn new(name: impl Into<String>, net_count: usize, width: i32, height: i32) -> Self {
        BenchmarkSpec {
            name: name.into(),
            net_count,
            width_tracks: width,
            height_tracks: height,
            layers: 3,
            seed: 0xDAC_2014,
            candidates_per_pin: 1,
            span_mean: 8,
            blockage_count: (width as usize * height as usize) / 8000,
            pin_pitch: 2,
        }
    }

    /// Replaces the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the candidate count per pin.
    #[must_use]
    pub fn with_candidates(mut self, k: usize) -> Self {
        self.candidates_per_pin = k.max(1);
        self
    }

    /// Scales net count and die edge by `factor` (≥ 0.01), preserving the
    /// density regime. Useful for quick benches of the Test1–5 family.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        let f = factor.max(0.01);
        self.net_count = ((self.net_count as f64 * f).round() as usize).max(1);
        // Area scales with net count, so the edge scales with sqrt(f).
        let edge = f.sqrt();
        self.width_tracks = ((self.width_tracks as f64 * edge).round() as i32).max(16);
        self.height_tracks = ((self.height_tracks as f64 * edge).round() as i32).max(16);
        self.blockage_count = (self.blockage_count as f64 * f).round() as usize;
        self
    }

    /// The fixed-pin suite of Table III: Test1–Test5 at the paper's net
    /// counts and die sizes (6.8² – 36² µm², 40 nm pitch).
    #[must_use]
    pub fn paper_fixed_suite() -> Vec<BenchmarkSpec> {
        vec![
            BenchmarkSpec::new("Test1", 1500, 170, 170).with_seed(101),
            BenchmarkSpec::new("Test2", 2700, 240, 240).with_seed(102),
            BenchmarkSpec::new("Test3", 5500, 400, 400).with_seed(103),
            BenchmarkSpec::new("Test4", 12000, 600, 600).with_seed(104),
            BenchmarkSpec::new("Test5", 28000, 900, 900).with_seed(105),
        ]
    }

    /// The multiple-pin-candidate suite of Table IV: Test6–Test10. Each pin
    /// is a two-cell pin shape, either tap being a legal connection (the
    /// benchmark style of \[10\]); larger shapes do not fit the paper's pin
    /// density.
    #[must_use]
    pub fn paper_multi_suite() -> Vec<BenchmarkSpec> {
        vec![
            BenchmarkSpec::new("Test6", 1500, 170, 170)
                .with_seed(106)
                .with_candidates(2),
            BenchmarkSpec::new("Test7", 2700, 240, 240)
                .with_seed(107)
                .with_candidates(2),
            BenchmarkSpec::new("Test8", 5500, 400, 400)
                .with_seed(108)
                .with_candidates(2),
            BenchmarkSpec::new("Test9", 12000, 600, 600)
                .with_seed(109)
                .with_candidates(2),
            BenchmarkSpec::new("Test10", 28000, 900, 900)
                .with_seed(110)
                .with_candidates(2),
        ]
    }

    /// The physical die edge in µm (40 nm pitch).
    #[must_use]
    pub fn die_um(&self) -> (f64, f64) {
        (
            self.width_tracks as f64 * 0.04,
            self.height_tracks as f64 * 0.04,
        )
    }

    /// Generates the routing plane (with blockages) and netlist.
    ///
    /// # Panics
    ///
    /// Panics if the spec dimensions are invalid or the plane is too dense
    /// to place the requested pins.
    #[must_use]
    pub fn generate(&self) -> (RoutingPlane, Netlist) {
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut plane = RoutingPlane::new(
            self.layers,
            self.width_tracks,
            self.height_tracks,
            DesignRules::node_10nm(),
        )
        .expect("benchmark spec dimensions are valid");

        // Blockages first, so pins land on free cells.
        for _ in 0..self.blockage_count {
            let layer = Layer(rng.index(self.layers as usize) as u8);
            let w = rng.range_i32_inclusive(2..=8);
            let h = rng.range_i32_inclusive(2..=8);
            let x = rng.range_i32(0..(self.width_tracks - w).max(1));
            let y = rng.range_i32(0..(self.height_tracks - h).max(1));
            plane.add_blockage(layer, TrackRect::new(x, y, x + w - 1, y + h - 1));
        }

        // Pin cells used so far, keyed by owning net index: a candidate
        // must keep one track of clearance from every *other* net's pins.
        let mut used: std::collections::HashMap<(i32, i32), usize> =
            std::collections::HashMap::new();
        let mut netlist = Netlist::new();
        let mut placed = 0usize;
        let mut attempts = 0usize;
        let max_attempts = self.net_count * 400;
        while placed < self.net_count {
            attempts += 1;
            assert!(
                attempts < max_attempts,
                "benchmark too dense: cannot place pins for {}",
                self.name
            );
            let pitch = self.pin_pitch.max(1);
            let sx = rng.range_i32(0..self.width_tracks / pitch) * pitch;
            let sy = rng.range_i32(0..self.height_tracks / pitch) * pitch;
            let (dx, dy) = self.sample_span(&mut rng);
            // Spans stay in tracks; the target snaps back to the pin grid.
            let snap = |v: i32| v / pitch * pitch;
            let (tx, ty) = (snap(sx + dx), snap(sy + dy));
            if tx < 0 || tx >= self.width_tracks || ty < 0 || ty >= self.height_tracks {
                continue;
            }
            if (sx, sy) == (tx, ty) {
                continue;
            }
            let source = self.make_pin(&mut rng, &plane, &mut used, sx, sy, placed);
            let Some(source) = source else { continue };
            let target = self.make_pin(&mut rng, &plane, &mut used, tx, ty, placed);
            let Some(target) = target else {
                // Roll back the source cells so density stays consistent.
                for c in source.candidates() {
                    used.remove(&(c.x, c.y));
                }
                continue;
            };
            netlist.add_net(format!("n{placed}"), source, target);
            placed += 1;
        }
        (plane, netlist)
    }

    fn sample_span(&self, rng: &mut Rng) -> (i32, i32) {
        let m = self.span_mean.max(2);
        let mag = |rng: &mut Rng| -> i32 {
            // Sum of two uniforms: triangular around the mean.
            let a = rng.range_i32_inclusive(1..=m);
            let b = rng.range_i32_inclusive(0..=m);
            a + b
        };
        let sign = |rng: &mut Rng| if rng.flip() { 1 } else { -1 };
        let mut dx = mag(rng) * sign(rng);
        let mut dy = mag(rng) * sign(rng);
        // A share of mostly-straight nets keeps the instance realistic.
        match rng.index(10) {
            0 | 1 => dx = rng.range_i32_inclusive(-2..=2),
            2 | 3 => dy = rng.range_i32_inclusive(-2..=2),
            _ => {}
        }
        (dx, dy)
    }

    fn make_pin(
        &self,
        rng: &mut Rng,
        plane: &RoutingPlane,
        used: &mut std::collections::HashMap<(i32, i32), usize>,
        x: i32,
        y: i32,
        net_index: usize,
    ) -> Option<Pin> {
        // A pin cell must be free, unused, and at least one track away
        // from every other net's pin cells (own candidates may cluster:
        // only one of them ends up used).
        let free = |used: &std::collections::HashMap<(i32, i32), usize>, x: i32, y: i32| {
            plane.is_free(GridPoint::new(Layer(0), x, y))
                && !used.contains_key(&(x, y))
                && !(-1..=1).any(|dx| {
                    (-1..=1).any(|dy| used.get(&(x + dx, y + dy)).is_some_and(|&n| n != net_index))
                })
        };
        if !free(used, x, y) {
            return None;
        }
        if self.candidates_per_pin <= 1 {
            used.insert((x, y), net_index);
            return Some(Pin::with_candidates(vec![GridPoint::new(Layer(0), x, y)]));
        }
        // Multi-candidate pins model a contiguous pin *shape*: a strip of
        // cells the router may tap anywhere (the benchmark style of \[10\]).
        // Strips only need exact-cell clearance — the unused taps are
        // released once the net is routed.
        let horizontal = rng.flip();
        let k = self.candidates_per_pin as i32;
        let cell_ok = |used: &std::collections::HashMap<(i32, i32), usize>, cx: i32, cy: i32| {
            cx >= 0
                && cx < self.width_tracks
                && cy >= 0
                && cy < self.height_tracks
                && plane.is_free(GridPoint::new(Layer(0), cx, cy))
                && !used.contains_key(&(cx, cy))
        };
        let strip: Vec<(i32, i32)> = (0..k)
            .map(|i| if horizontal { (x + i, y) } else { (x, y + i) })
            .collect();
        if !strip.iter().all(|&(cx, cy)| cell_ok(used, cx, cy)) {
            return None;
        }
        let mut cands = Vec::with_capacity(strip.len());
        for (cx, cy) in strip {
            used.insert((cx, cy), net_index);
            cands.push(GridPoint::new(Layer(0), cx, cy));
        }
        Some(Pin::with_candidates(cands))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = BenchmarkSpec::new("t", 30, 48, 48).with_seed(42);
        let (_, a) = spec.generate();
        let (_, b) = spec.generate();
        assert_eq!(a, b);
        let (_, c) = spec.clone().with_seed(43).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn pins_are_distinct_and_free() {
        let spec = BenchmarkSpec::new("t", 50, 64, 64).with_seed(1);
        let (plane, nl) = spec.generate();
        let mut seen = std::collections::HashSet::new();
        for net in &nl {
            for pin in [&net.source, &net.target] {
                for c in pin.candidates() {
                    assert!(plane.is_free(*c), "pin cell blocked: {c}");
                    assert!(seen.insert((c.x, c.y)), "pin cell reused: {c}");
                }
            }
        }
    }

    #[test]
    fn multi_candidate_generation() {
        let spec = BenchmarkSpec::new("t", 25, 64, 64)
            .with_seed(5)
            .with_candidates(2);
        let (_, nl) = spec.generate();
        let multi = nl.iter().filter(|n| n.source.is_multi()).count();
        assert!(multi > 20, "most pins should get multiple candidates");
    }

    #[test]
    fn paper_suites_match_table_sizes() {
        let fixed = BenchmarkSpec::paper_fixed_suite();
        assert_eq!(fixed.len(), 5);
        assert_eq!(fixed[0].net_count, 1500);
        assert_eq!(fixed[4].net_count, 28000);
        let (w, _) = fixed[0].die_um();
        assert!((w - 6.8).abs() < 1e-9);
        let (w, _) = fixed[4].die_um();
        assert!((w - 36.0).abs() < 1e-9);
        let multi = BenchmarkSpec::paper_multi_suite();
        assert!(multi.iter().all(|s| s.candidates_per_pin == 2));
        assert_eq!(multi[2].net_count, 5500);
    }

    #[test]
    fn scaled_preserves_density_regime() {
        let spec = BenchmarkSpec::paper_fixed_suite().remove(2); // Test3
        let small = spec.clone().scaled(0.04);
        assert_eq!(small.net_count, 220);
        // Density (nets per cell) within 2x of the original.
        let d0 = spec.net_count as f64 / (spec.width_tracks * spec.height_tracks) as f64;
        let d1 = small.net_count as f64 / (small.width_tracks * small.height_tracks) as f64;
        assert!(d1 / d0 < 2.0 && d0 / d1 < 2.0);
        let (_, nl) = small.generate();
        assert_eq!(nl.len(), 220);
    }

    #[test]
    fn blockages_present() {
        let mut spec = BenchmarkSpec::new("t", 10, 100, 100).with_seed(9);
        spec.blockage_count = 5;
        let (plane, _) = spec.generate();
        let (_, blocked, _) = plane.usage();
        assert!(blocked > 0);
    }
}
