//! Plain-text serialization of netlists and routed results.
//!
//! A tiny line-oriented format, convenient for checking benchmarks into a
//! repository, diffing routing results, and writing regression fixtures by
//! hand:
//!
//! ```text
//! # comment
//! plane 3 64 64
//! blockage 0 10 10 14 12
//! net clk 0:2,3 0:40,9
//! net data 0:4,5|0:4,6 0:50,8
//! ```
//!
//! * `plane L W H` — layer count and track dimensions,
//! * `blockage L x0 y0 x1 y1` — blocked rectangle on layer `L`,
//! * `net NAME PIN PIN [PIN...]` — two or more pins as `layer:x,y` with
//!   `|`-separated candidate locations; pins beyond the first two are the
//!   branch terminals of a multi-terminal net.

use crate::net::Pin;
use crate::netlist::Netlist;
use crate::plane::RoutingPlane;
use sadp_geom::{DesignRules, GridPoint, Layer, TrackRect};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Error produced while parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLayoutError {
    line: usize,
    message: String,
}

impl fmt::Display for ParseLayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseLayoutError {}

fn err(line: usize, message: impl Into<String>) -> ParseLayoutError {
    ParseLayoutError {
        line,
        message: message.into(),
    }
}

/// Serializes a plane (dimensions and blockages) and netlist into the text
/// format.
#[must_use]
pub fn write_layout(plane: &RoutingPlane, netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "plane {} {} {}",
        plane.layers(),
        plane.width(),
        plane.height()
    );
    // Blockages are recovered row-run by row-run (exact cell coverage,
    // not necessarily the original rectangles).
    for l in 0..plane.layers() {
        let layer = Layer(l);
        for y in 0..plane.height() {
            let mut x = 0;
            while x < plane.width() {
                let p = GridPoint::new(layer, x, y);
                if plane.cell(p) == crate::plane::CellState::Blocked {
                    let x0 = x;
                    while x < plane.width()
                        && plane.cell(GridPoint::new(layer, x, y))
                            == crate::plane::CellState::Blocked
                    {
                        x += 1;
                    }
                    let _ = writeln!(out, "blockage {} {} {} {} {}", l, x0, y, x - 1, y);
                } else {
                    x += 1;
                }
            }
        }
    }
    for net in netlist {
        let pins: Vec<String> = net.pins().map(format_pin).collect();
        let _ = writeln!(out, "net {} {}", net.name, pins.join(" "));
    }
    out
}

fn format_pin(pin: &Pin) -> String {
    pin.candidates()
        .iter()
        .map(|c| format!("{}:{},{}", c.layer.0, c.x, c.y))
        .collect::<Vec<_>>()
        .join("|")
}

/// Parses the text format back into a plane and netlist.
///
/// # Errors
///
/// Returns [`ParseLayoutError`] with the offending line on any syntax or
/// range problem, including a missing or repeated `plane` header.
pub fn read_layout(text: &str) -> Result<(RoutingPlane, Netlist), ParseLayoutError> {
    let mut plane: Option<RoutingPlane> = None;
    let mut netlist = Netlist::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("plane") => {
                if plane.is_some() {
                    return Err(err(lineno, "duplicate plane header"));
                }
                let dims: Vec<i32> = parts
                    .map(|p| p.parse().map_err(|_| err(lineno, "bad plane dimension")))
                    .collect::<Result<_, _>>()?;
                let [l, w, h] = dims[..] else {
                    return Err(err(lineno, "plane needs `plane L W H`"));
                };
                let l = u8::try_from(l).map_err(|_| err(lineno, "bad layer count"))?;
                plane = Some(
                    RoutingPlane::new(l, w, h, DesignRules::node_10nm())
                        .map_err(|e| err(lineno, e.to_string()))?,
                );
            }
            Some("blockage") => {
                let plane = plane
                    .as_mut()
                    .ok_or_else(|| err(lineno, "blockage before plane header"))?;
                let vals: Vec<i32> = parts
                    .map(|p| p.parse().map_err(|_| err(lineno, "bad blockage value")))
                    .collect::<Result<_, _>>()?;
                let [l, x0, y0, x1, y1] = vals[..] else {
                    return Err(err(lineno, "blockage needs `blockage L x0 y0 x1 y1`"));
                };
                let l = u8::try_from(l).map_err(|_| err(lineno, "bad layer"))?;
                if l >= plane.layers() {
                    return Err(err(
                        lineno,
                        format!(
                            "blockage layer {l} out of range (plane has {})",
                            plane.layers()
                        ),
                    ));
                }
                // Validate the corners before materialising the rectangle:
                // `add_blockage` walks every cell, so an absurd rect would
                // hang the parser instead of failing.
                for (what, v, limit) in [
                    ("x0", x0, plane.width()),
                    ("x1", x1, plane.width()),
                    ("y0", y0, plane.height()),
                    ("y1", y1, plane.height()),
                ] {
                    if !(0..limit).contains(&v) {
                        return Err(err(
                            lineno,
                            format!("blockage {what}={v} out of range 0..{limit}"),
                        ));
                    }
                }
                plane.add_blockage(Layer(l), TrackRect::new(x0, y0, x1, y1));
            }
            Some("net") => {
                let plane = plane
                    .as_ref()
                    .ok_or_else(|| err(lineno, "net before plane header"))?;
                let name = parts
                    .next()
                    .ok_or_else(|| err(lineno, "net needs a name"))?;
                let pins: Vec<Pin> = parts
                    .map(|tok| parse_pin(tok, lineno, plane))
                    .collect::<Result<_, _>>()?;
                if pins.len() < 2 {
                    return Err(err(lineno, "net needs at least two pins"));
                }
                netlist.add_multi_pin(name, pins);
            }
            Some(other) => return Err(err(lineno, format!("unknown directive `{other}`"))),
            None => unreachable!("empty lines are skipped"),
        }
    }
    let plane = plane.ok_or_else(|| err(0, "missing plane header"))?;
    Ok((plane, netlist))
}

fn parse_pin(text: &str, lineno: usize, plane: &RoutingPlane) -> Result<Pin, ParseLayoutError> {
    let mut candidates = Vec::new();
    for cand in text.split('|') {
        let (layer, rest) = cand
            .split_once(':')
            .ok_or_else(|| err(lineno, format!("bad pin `{cand}` (want layer:x,y)")))?;
        let (x, y) = rest
            .split_once(',')
            .ok_or_else(|| err(lineno, format!("bad pin `{cand}` (want layer:x,y)")))?;
        let layer: u8 = layer.parse().map_err(|_| err(lineno, "bad pin layer"))?;
        let x: i32 = x.parse().map_err(|_| err(lineno, "bad pin x"))?;
        let y: i32 = y.parse().map_err(|_| err(lineno, "bad pin y"))?;
        let p = GridPoint::new(Layer(layer), x, y);
        // Out-of-bounds pins would only surface later as a panic when the
        // router reserves them; reject them here with the line number.
        if !plane.in_bounds(p) {
            return Err(err(lineno, format!("pin `{cand}` outside the plane")));
        }
        candidates.push(p);
    }
    if candidates.is_empty() {
        return Err(err(lineno, "pin without candidates"));
    }
    Ok(Pin::with_candidates(candidates))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a sample layout
plane 3 32 32
blockage 1 4 4 7 4
net clk 0:2,3 0:20,9
net data 0:4,5|0:4,6 2:28,8
";

    #[test]
    fn parse_sample() {
        let (plane, nl) = read_layout(SAMPLE).expect("parses");
        assert_eq!(plane.layers(), 3);
        assert_eq!(plane.width(), 32);
        assert!(!plane.is_free(GridPoint::new(Layer(1), 5, 4)));
        assert_eq!(nl.len(), 2);
        assert_eq!(nl.net(crate::NetId(1)).source.candidates().len(), 2);
        assert_eq!(
            nl.net(crate::NetId(1)).target.primary(),
            GridPoint::new(Layer(2), 28, 8)
        );
    }

    #[test]
    fn round_trip() {
        let (plane, nl) = read_layout(SAMPLE).expect("parses");
        let text = write_layout(&plane, &nl);
        let (plane2, nl2) = read_layout(&text).expect("round trips");
        assert_eq!(nl, nl2);
        assert_eq!(plane.usage(), plane2.usage());
        assert_eq!(plane.layers(), plane2.layers());
    }

    #[test]
    fn generated_benchmark_round_trips() {
        let spec = crate::BenchmarkSpec::new("t", 30, 48, 48).with_seed(11);
        let (plane, nl) = spec.generate();
        let text = write_layout(&plane, &nl);
        let (plane2, nl2) = read_layout(&text).expect("round trips");
        assert_eq!(nl, nl2);
        assert_eq!(plane.usage(), plane2.usage());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = read_layout("plane 3 32 32\nnet broken 0:2 0:3,4\n").unwrap_err();
        assert_eq!(e.to_string(), "line 2: bad pin `0:2` (want layer:x,y)");
        assert!(read_layout("").is_err());
        assert!(
            read_layout("net a 0:1,1 0:2,2\n").is_err(),
            "net before plane"
        );
        assert!(read_layout("plane 3 32 32\nplane 3 32 32\n").is_err());
        assert!(read_layout("plane 3 32 32\nfrobnicate\n").is_err());
        assert!(read_layout("plane 3 32\n").is_err());
        assert!(read_layout("plane 3 32 32\nblockage 0 1 2\n").is_err());
        assert!(
            read_layout("plane 3 32 32\nnet a 0:1,1\n").is_err(),
            "one pin"
        );
    }

    #[test]
    fn rejects_out_of_range_geometry() {
        // A huge blockage must fail fast, not walk 4e18 cells.
        let e = read_layout("plane 3 32 32\nblockage 0 0 0 2000000000 2000000000\n").unwrap_err();
        assert_eq!(
            e.to_string(),
            "line 2: blockage x1=2000000000 out of range 0..32"
        );
        let e = read_layout("plane 3 32 32\nblockage 0 -1 0 4 4\n").unwrap_err();
        assert!(e.to_string().contains("x0=-1 out of range"));
        let e = read_layout("plane 3 32 32\nblockage 7 0 0 4 4\n").unwrap_err();
        assert_eq!(
            e.to_string(),
            "line 2: blockage layer 7 out of range (plane has 3)"
        );
        // Out-of-bounds pins are parse errors, not later router panics.
        let e = read_layout("plane 3 32 32\nnet a 0:2,3 0:99,3\n").unwrap_err();
        assert_eq!(e.to_string(), "line 2: pin `0:99,3` outside the plane");
        let e = read_layout("plane 3 32 32\nnet a 0:2,3 5:4,3\n").unwrap_err();
        assert!(e.to_string().contains("outside the plane"));
        let e = read_layout("plane 3 32 32\nnet a 0:2,-1 0:4,3\n").unwrap_err();
        assert!(e.to_string().contains("outside the plane"));
    }

    #[test]
    fn rejects_malformed_numbers_without_panicking() {
        for bad in [
            "plane x 32 32\n",
            "plane 3 32 32 32\n",
            "plane 999 32 32\n",
            "plane 3 -5 32\n",
            "plane 3 32 32\nblockage 0 a 0 4 4\n",
            "plane 3 32 32\nblockage 0 0 0 4 4 4\n",
            "plane 3 32 32\nnet a 0:2,3 0:4,\n",
            "plane 3 32 32\nnet a 0:2,3 :4,5\n",
            "plane 3 32 32\nnet a 0:2,3 0:4,99999999999999999999\n",
            "plane 3 32 32\nnet\n",
            "plane 3 32 32\nnet a\n",
        ] {
            let e = read_layout(bad).unwrap_err();
            assert!(e.to_string().starts_with("line "), "{bad:?} -> {e}");
        }
    }

    #[test]
    fn multi_pin_round_trip() {
        let text = "plane 2 32 32\nnet tree 0:2,2 0:20,2 0:10,12 0:10,20\n";
        let (plane, nl) = read_layout(text).expect("parses");
        let net = nl.net(crate::NetId(0));
        assert_eq!(net.pin_count(), 4);
        assert_eq!(net.extra.len(), 2);
        let rt = write_layout(&plane, &nl);
        let (_, nl2) = read_layout(&rt).expect("round trips");
        assert_eq!(nl, nl2);
    }
}
