//! Routing plane, netlist and benchmark generation for the SADP
//! detailed-routing workspace.
//!
//! * [`RoutingPlane`] — a multi-layer grid of routing cells with obstacle
//!   and occupancy tracking (the "routing map M" of the paper's Fig. 19),
//! * [`Net`] / [`Netlist`] — two-pin nets, optionally with multiple pin
//!   candidate locations (the benchmark style of baseline \[10\]),
//! * [`RoutePath`] — a validated grid path with fragmentation into maximal
//!   wire rectangles (the inputs of the scenario classifier),
//! * [`benchmark`] — a deterministic generator reproducing the scale of the
//!   paper's Test1–Test10 benchmarks (see DESIGN.md §5 on substitutions).
//!
//! # Example
//!
//! ```
//! use sadp_grid::{benchmark::BenchmarkSpec, RoutingPlane};
//!
//! let spec = BenchmarkSpec::paper_fixed_suite().remove(0).scaled(0.1);
//! let (plane, netlist) = spec.generate();
//! assert!(netlist.len() > 0);
//! assert_eq!(plane.layers(), 3);
//! ```

pub mod band;
pub mod benchmark;
pub mod io;
pub mod net;
pub mod netlist;
pub mod path;
pub mod plane;

pub use band::{Band, BandPlan, TARGET_BAND_WIDTH};
pub use benchmark::BenchmarkSpec;
pub use io::{read_layout, write_layout, ParseLayoutError};
pub use net::{Net, NetId, Pin};
pub use netlist::Netlist;
pub use path::RoutePath;
pub use plane::{CellState, PlaneError, RoutingPlane};
