//! Two-pin nets with optional multiple pin candidate locations.

use sadp_geom::GridPoint;
use std::fmt;

/// A net identifier (index into the [`crate::Netlist`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub u32);

impl NetId {
    /// The id as a `usize` for indexing.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net#{}", self.0)
    }
}

/// A pin with one or more candidate locations.
///
/// The paper's second benchmark family (Table IV, following baseline \[10\])
/// gives every pin multiple candidate locations; the router may connect any
/// one candidate of the source to any one candidate of the target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pin {
    candidates: Vec<GridPoint>,
}

impl Pin {
    /// A pin with a single fixed location.
    #[must_use]
    pub fn fixed(at: GridPoint) -> Pin {
        Pin {
            candidates: vec![at],
        }
    }

    /// A pin with multiple candidate locations.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    #[must_use]
    pub fn with_candidates(candidates: Vec<GridPoint>) -> Pin {
        assert!(!candidates.is_empty(), "a pin needs at least one candidate");
        Pin { candidates }
    }

    /// The candidate locations.
    #[must_use]
    pub fn candidates(&self) -> &[GridPoint] {
        &self.candidates
    }

    /// The primary (first) candidate.
    #[must_use]
    pub fn primary(&self) -> GridPoint {
        self.candidates[0]
    }

    /// Whether the pin has more than one candidate.
    #[must_use]
    pub fn is_multi(&self) -> bool {
        self.candidates.len() > 1
    }
}

/// A signal net: two pins (the paper's formulation), plus optional extra
/// pins routed as branches off the existing wire (a practical extension
/// for multi-terminal signals).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// The net id.
    pub id: NetId,
    /// Human-readable name.
    pub name: String,
    /// Source pin.
    pub source: Pin,
    /// Target pin.
    pub target: Pin,
    /// Additional terminals beyond the source/target pair, each connected
    /// to the already-routed trunk of the net.
    pub extra: Vec<Pin>,
}

impl Net {
    /// Creates a two-pin net.
    #[must_use]
    pub fn new(id: NetId, name: impl Into<String>, source: Pin, target: Pin) -> Net {
        Net {
            id,
            name: name.into(),
            source,
            target,
            extra: Vec::new(),
        }
    }

    /// Creates a multi-terminal net from at least two pins; the first two
    /// become the trunk, the rest are branch terminals.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two pins are given.
    #[must_use]
    pub fn multi(id: NetId, name: impl Into<String>, mut pins: Vec<Pin>) -> Net {
        assert!(pins.len() >= 2, "a net needs at least two pins");
        let rest = pins.split_off(2);
        let target = pins.pop().expect("two pins");
        let source = pins.pop().expect("two pins");
        Net {
            id,
            name: name.into(),
            source,
            target,
            extra: rest,
        }
    }

    /// All pins of the net: source, target, then the extra terminals.
    pub fn pins(&self) -> impl Iterator<Item = &Pin> {
        std::iter::once(&self.source)
            .chain(std::iter::once(&self.target))
            .chain(self.extra.iter())
    }

    /// Number of terminals.
    #[must_use]
    pub fn pin_count(&self) -> usize {
        2 + self.extra.len()
    }

    /// Half-perimeter wirelength of the primary pin locations, a
    /// routing-order heuristic.
    #[must_use]
    pub fn hpwl(&self) -> i32 {
        let pts: Vec<_> = self.pins().map(|p| p.primary()).collect();
        let xs = pts.iter().map(|p| p.x);
        let ys = pts.iter().map(|p| p.y);
        let w = xs.clone().max().unwrap_or(0) - xs.min().unwrap_or(0);
        let h = ys.clone().max().unwrap_or(0) - ys.min().unwrap_or(0);
        w + h
    }
}

impl fmt::Display for Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}): {} -> {}",
            self.name,
            self.id,
            self.source.primary(),
            self.target.primary()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_geom::Layer;

    #[test]
    fn fixed_pin() {
        let p = Pin::fixed(GridPoint::new(Layer(0), 1, 2));
        assert_eq!(p.candidates().len(), 1);
        assert!(!p.is_multi());
        assert_eq!(p.primary(), GridPoint::new(Layer(0), 1, 2));
    }

    #[test]
    fn multi_pin() {
        let p = Pin::with_candidates(vec![
            GridPoint::new(Layer(0), 1, 2),
            GridPoint::new(Layer(0), 3, 2),
        ]);
        assert!(p.is_multi());
        assert_eq!(p.primary(), GridPoint::new(Layer(0), 1, 2));
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_pin_panics() {
        let _ = Pin::with_candidates(vec![]);
    }

    #[test]
    fn multi_pin_nets() {
        let pins = vec![
            Pin::fixed(GridPoint::new(Layer(0), 0, 0)),
            Pin::fixed(GridPoint::new(Layer(0), 10, 0)),
            Pin::fixed(GridPoint::new(Layer(0), 5, 8)),
        ];
        let n = Net::multi(NetId(1), "m", pins);
        assert_eq!(n.pin_count(), 3);
        assert_eq!(n.extra.len(), 1);
        assert_eq!(n.pins().count(), 3);
        // HPWL covers all three pins: width 10 + height 8.
        assert_eq!(n.hpwl(), 18);
    }

    #[test]
    #[should_panic(expected = "two pins")]
    fn multi_needs_two_pins() {
        let _ = Net::multi(
            NetId(0),
            "x",
            vec![Pin::fixed(GridPoint::new(Layer(0), 0, 0))],
        );
    }

    #[test]
    fn net_hpwl_and_display() {
        let n = Net::new(
            NetId(7),
            "clk",
            Pin::fixed(GridPoint::new(Layer(0), 0, 0)),
            Pin::fixed(GridPoint::new(Layer(1), 3, 4)),
        );
        // HPWL is the half-perimeter of the pin bounding box (layers are
        // not part of the estimate).
        assert_eq!(n.hpwl(), 7);
        let s = n.to_string();
        assert!(s.contains("clk") && s.contains("net#7"));
    }
}
