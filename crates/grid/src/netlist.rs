//! A collection of two-pin nets.

use crate::net::{Net, NetId, Pin};
use sadp_geom::GridPoint;

/// An ordered collection of [`Net`]s.
///
/// # Example
///
/// ```
/// use sadp_grid::Netlist;
/// use sadp_geom::{GridPoint, Layer};
///
/// let mut nl = Netlist::new();
/// let id = nl.add_two_pin(
///     "a",
///     GridPoint::new(Layer(0), 0, 0),
///     GridPoint::new(Layer(0), 5, 5),
/// );
/// assert_eq!(nl.net(id).name, "a");
/// assert_eq!(nl.len(), 1);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Netlist {
    nets: Vec<Net>,
}

impl Netlist {
    /// Creates an empty netlist.
    #[must_use]
    pub fn new() -> Netlist {
        Netlist { nets: Vec::new() }
    }

    /// Number of nets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nets.len()
    }

    /// Whether the netlist is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nets.is_empty()
    }

    /// Adds a two-pin net with fixed pin locations, returning its id.
    pub fn add_two_pin(
        &mut self,
        name: impl Into<String>,
        source: GridPoint,
        target: GridPoint,
    ) -> NetId {
        self.add_net(name, Pin::fixed(source), Pin::fixed(target))
    }

    /// Adds a two-pin net with arbitrary pins, returning its id.
    pub fn add_net(&mut self, name: impl Into<String>, source: Pin, target: Pin) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net::new(id, name, source, target));
        id
    }

    /// Adds a multi-terminal net (two trunk pins plus branch terminals),
    /// returning its id.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two pins are given.
    pub fn add_multi_pin(&mut self, name: impl Into<String>, pins: Vec<Pin>) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net::multi(id, name, pins));
        id
    }

    /// The net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Mutable access to the net with the given id (the ECO engine edits
    /// pins in place; the id and name are expected to stay put).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn net_mut(&mut self, id: NetId) -> &mut Net {
        &mut self.nets[id.index()]
    }

    /// Iterates over all nets in id order.
    pub fn iter(&self) -> std::slice::Iter<'_, Net> {
        self.nets.iter()
    }

    /// Net ids sorted by ascending half-perimeter wirelength, the routing
    /// order used by the sequential router (short nets first).
    #[must_use]
    pub fn ids_by_hpwl(&self) -> Vec<NetId> {
        let mut ids: Vec<NetId> = self.nets.iter().map(|n| n.id).collect();
        ids.sort_by_key(|id| (self.net(*id).hpwl(), id.0));
        ids
    }
}

impl<'a> IntoIterator for &'a Netlist {
    type Item = &'a Net;
    type IntoIter = std::slice::Iter<'a, Net>;
    fn into_iter(self) -> Self::IntoIter {
        self.nets.iter()
    }
}

impl FromIterator<Net> for Netlist {
    fn from_iter<T: IntoIterator<Item = Net>>(iter: T) -> Netlist {
        let mut nl = Netlist::new();
        for (i, mut net) in iter.into_iter().enumerate() {
            net.id = NetId(i as u32);
            nl.nets.push(net);
        }
        nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_geom::Layer;

    fn p(x: i32, y: i32) -> GridPoint {
        GridPoint::new(Layer(0), x, y)
    }

    #[test]
    fn add_and_lookup() {
        let mut nl = Netlist::new();
        let a = nl.add_two_pin("a", p(0, 0), p(9, 0));
        let b = nl.add_two_pin("b", p(0, 1), p(2, 1));
        assert_eq!(nl.len(), 2);
        assert_eq!(nl.net(a).name, "a");
        assert_eq!(nl.net(b).id, NetId(1));
        assert!(!nl.is_empty());
    }

    #[test]
    fn net_mut_edits_pins_in_place() {
        let mut nl = Netlist::new();
        let a = nl.add_two_pin("a", p(0, 0), p(9, 0));
        nl.net_mut(a).target = Pin::fixed(p(4, 4));
        assert_eq!(nl.net(a).target.candidates(), &[p(4, 4)]);
        assert_eq!(nl.net(a).id, a);
    }

    #[test]
    fn hpwl_order_short_first() {
        let mut nl = Netlist::new();
        nl.add_two_pin("long", p(0, 0), p(20, 0));
        nl.add_two_pin("short", p(0, 1), p(2, 1));
        let order = nl.ids_by_hpwl();
        assert_eq!(order, vec![NetId(1), NetId(0)]);
    }

    #[test]
    fn from_iterator_reassigns_ids() {
        let nets = vec![
            Net::new(NetId(99), "x", Pin::fixed(p(0, 0)), Pin::fixed(p(1, 0))),
            Net::new(NetId(42), "y", Pin::fixed(p(0, 2)), Pin::fixed(p(1, 2))),
        ];
        let nl: Netlist = nets.into_iter().collect();
        assert_eq!(nl.net(NetId(0)).name, "x");
        assert_eq!(nl.net(NetId(1)).name, "y");
    }

    #[test]
    fn iteration() {
        let mut nl = Netlist::new();
        nl.add_two_pin("a", p(0, 0), p(1, 0));
        let names: Vec<_> = (&nl).into_iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["a"]);
        assert_eq!(nl.iter().count(), 1);
    }
}
