//! Routed paths and their fragmentation into wire rectangles.

use sadp_geom::{GridPoint, Layer, TrackRect};
use std::error::Error;
use std::fmt;

/// A validated, contiguous routed path on the grid.
///
/// Consecutive points differ by exactly one planar step or one via step.
/// The path fragments into maximal straight wire rectangles per layer —
/// the rectangle decomposition of Theorem 3 that feeds the scenario
/// classifier.
///
/// # Example
///
/// ```
/// use sadp_grid::RoutePath;
/// use sadp_geom::{GridPoint, Layer, TrackRect};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pts = vec![
///     GridPoint::new(Layer(0), 0, 0),
///     GridPoint::new(Layer(0), 1, 0),
///     GridPoint::new(Layer(0), 2, 0),
///     GridPoint::new(Layer(0), 2, 1),
/// ];
/// let path = RoutePath::new(pts)?;
/// assert_eq!(path.wirelength(), 3);
/// assert_eq!(path.via_count(), 0);
/// let frags = path.fragments();
/// assert_eq!(frags, vec![
///     (Layer(0), TrackRect::new(0, 0, 2, 0)),
///     (Layer(0), TrackRect::new(2, 0, 2, 1)),
/// ]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutePath {
    points: Vec<GridPoint>,
}

/// Error returned for a non-contiguous or empty point sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidPath {
    reason: String,
}

impl fmt::Display for InvalidPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid route path: {}", self.reason)
    }
}

impl Error for InvalidPath {}

impl RoutePath {
    /// Builds a path from an ordered point sequence.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidPath`] if the sequence is empty, repeats a point
    /// consecutively, or jumps more than one step.
    pub fn new(points: Vec<GridPoint>) -> Result<RoutePath, InvalidPath> {
        if points.is_empty() {
            return Err(InvalidPath {
                reason: "empty point sequence".into(),
            });
        }
        for w in points.windows(2) {
            if w[0].step_distance(&w[1]) != 1 {
                return Err(InvalidPath {
                    reason: format!("{} -> {} is not a unit step", w[0], w[1]),
                });
            }
        }
        Ok(RoutePath { points })
    }

    /// The points of the path, in order.
    #[must_use]
    pub fn points(&self) -> &[GridPoint] {
        &self.points
    }

    /// Number of planar (in-layer) unit steps.
    #[must_use]
    pub fn wirelength(&self) -> u64 {
        self.points
            .windows(2)
            .filter(|w| w[0].layer == w[1].layer)
            .count() as u64
    }

    /// Number of via transitions.
    #[must_use]
    pub fn via_count(&self) -> u64 {
        self.points
            .windows(2)
            .filter(|w| w[0].layer != w[1].layer)
            .count() as u64
    }

    /// Source point.
    #[must_use]
    pub fn source(&self) -> GridPoint {
        self.points[0]
    }

    /// Target point.
    #[must_use]
    pub fn target(&self) -> GridPoint {
        *self.points.last().expect("non-empty")
    }

    /// Fragments the path into maximal straight wire rectangles per layer.
    ///
    /// Turn cells belong to both adjacent fragments (they overlap by one
    /// cell), matching the rectilinear-polygon fragmentation of Theorem 3;
    /// via landings that carry no planar run on a layer become `1×1`
    /// fragments.
    #[must_use]
    pub fn fragments(&self) -> Vec<(Layer, TrackRect)> {
        let mut out = Vec::new();
        self.fragments_into(|layer, rect| out.push((layer, rect)));
        out
    }

    /// Visits the maximal straight wire rectangles of the path without
    /// allocating ([`RoutePath::fragments`] collects them into a `Vec`;
    /// callers with their own storage — e.g. an inline fragment list —
    /// can push directly).
    pub fn fragments_into<F: FnMut(Layer, TrackRect)>(&self, mut emit: F) {
        let pts = &self.points;
        let mut run_start = 0usize;
        let mut i = 0usize;
        while i < pts.len() {
            // Find the end of the same-layer run starting at run_start.
            if i + 1 < pts.len() && pts[i + 1].layer == pts[run_start].layer {
                i += 1;
                continue;
            }
            // Run is pts[run_start..=i] on a single layer.
            emit_layer_run(&pts[run_start..=i], &mut emit);
            i += 1;
            run_start = i;
        }
    }
}

fn emit_layer_run<F: FnMut(Layer, TrackRect)>(run: &[GridPoint], emit: &mut F) {
    let layer = run[0].layer;
    if run.len() == 1 {
        emit(layer, TrackRect::cell(run[0].x, run[0].y));
        return;
    }
    let mut seg_start = 0usize;
    for i in 1..run.len() {
        let prev_dir = direction(run[i - 1], run[i]);
        let next_same = i + 1 < run.len() && direction(run[i], run[i + 1]) == prev_dir;
        if !next_same {
            // Maximal straight segment run[seg_start..=i].
            let a = run[seg_start];
            let b = run[i];
            emit(layer, TrackRect::new(a.x, a.y, b.x, b.y));
            seg_start = i;
        }
    }
}

fn direction(a: GridPoint, b: GridPoint) -> (i32, i32) {
    ((b.x - a.x).signum(), (b.y - a.y).signum())
}

impl fmt::Display for RoutePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "path {} -> {} ({} segs, {} vias)",
            self.source(),
            self.target(),
            self.wirelength(),
            self.via_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(l: u8, x: i32, y: i32) -> GridPoint {
        GridPoint::new(Layer(l), x, y)
    }

    #[test]
    fn rejects_bad_sequences() {
        assert!(RoutePath::new(vec![]).is_err());
        assert!(RoutePath::new(vec![p(0, 0, 0), p(0, 2, 0)]).is_err());
        assert!(RoutePath::new(vec![p(0, 0, 0), p(0, 0, 0)]).is_err());
        assert!(RoutePath::new(vec![p(0, 0, 0), p(2, 0, 0)]).is_err());
    }

    #[test]
    fn single_point_path() {
        let path = RoutePath::new(vec![p(0, 3, 3)]).unwrap();
        assert_eq!(path.wirelength(), 0);
        assert_eq!(path.fragments(), vec![(Layer(0), TrackRect::cell(3, 3))]);
    }

    #[test]
    fn l_shape_fragments_share_corner() {
        let path = RoutePath::new(vec![
            p(0, 0, 0),
            p(0, 1, 0),
            p(0, 2, 0),
            p(0, 2, 1),
            p(0, 2, 2),
        ])
        .unwrap();
        assert_eq!(
            path.fragments(),
            vec![
                (Layer(0), TrackRect::new(0, 0, 2, 0)),
                (Layer(0), TrackRect::new(2, 0, 2, 2)),
            ]
        );
        assert_eq!(path.wirelength(), 4);
    }

    #[test]
    fn via_splits_runs() {
        let path = RoutePath::new(vec![
            p(0, 0, 0),
            p(0, 1, 0),
            p(1, 1, 0), // via up
            p(1, 1, 1),
            p(1, 1, 2),
        ])
        .unwrap();
        assert_eq!(path.via_count(), 1);
        assert_eq!(path.wirelength(), 3);
        assert_eq!(
            path.fragments(),
            vec![
                (Layer(0), TrackRect::new(0, 0, 1, 0)),
                (Layer(1), TrackRect::new(1, 0, 1, 2)),
            ]
        );
    }

    #[test]
    fn via_landing_without_run_is_point_fragment() {
        // Up and immediately onwards on layer 2: layer 1 sees nothing;
        // a stacked via path 0 -> 1 -> 2 leaves 1x1 fragments on layer 1.
        let path = RoutePath::new(vec![p(0, 5, 5), p(1, 5, 5), p(2, 5, 5), p(2, 6, 5)]).unwrap();
        let frags = path.fragments();
        assert_eq!(
            frags,
            vec![
                (Layer(0), TrackRect::cell(5, 5)),
                (Layer(1), TrackRect::cell(5, 5)),
                (Layer(2), TrackRect::new(5, 5, 6, 5)),
            ]
        );
    }

    #[test]
    fn zigzag_fragments() {
        let path = RoutePath::new(vec![
            p(0, 0, 0),
            p(0, 1, 0),
            p(0, 1, 1),
            p(0, 2, 1),
            p(0, 2, 2),
        ])
        .unwrap();
        assert_eq!(
            path.fragments(),
            vec![
                (Layer(0), TrackRect::new(0, 0, 1, 0)),
                (Layer(0), TrackRect::new(1, 0, 1, 1)),
                (Layer(0), TrackRect::new(1, 1, 2, 1)),
                (Layer(0), TrackRect::new(2, 1, 2, 2)),
            ]
        );
    }

    #[test]
    fn display() {
        let path = RoutePath::new(vec![p(0, 0, 0), p(0, 1, 0)]).unwrap();
        assert!(path.to_string().contains("->"));
    }
}
