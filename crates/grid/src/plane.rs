//! The multi-layer grid routing plane.

use crate::net::NetId;
use sadp_geom::{DesignRules, GridPoint, Layer, Nm, TrackRect};
use std::error::Error;
use std::fmt;

const FREE: u32 = u32::MAX;
const BLOCKED: u32 = u32::MAX - 1;

/// The state of one routing-grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellState {
    /// Unoccupied and routable.
    Free,
    /// Covered by a blockage.
    Blocked,
    /// Occupied by a routed net.
    Occupied(NetId),
}

/// Errors produced when constructing or mutating a routing plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaneError {
    /// The requested dimensions are empty or too large.
    BadDimensions {
        /// Requested layers.
        layers: u8,
        /// Requested width in tracks.
        width: i32,
        /// Requested height in tracks.
        height: i32,
    },
    /// A point lies outside the plane.
    OutOfBounds(GridPoint),
    /// The cell is not in the expected state for the mutation.
    CellBusy(GridPoint),
}

impl fmt::Display for PlaneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaneError::BadDimensions {
                layers,
                width,
                height,
            } => write!(f, "bad plane dimensions {layers}x{width}x{height}"),
            PlaneError::OutOfBounds(p) => write!(f, "point {p} out of bounds"),
            PlaneError::CellBusy(p) => write!(f, "cell {p} is not free"),
        }
    }
}

impl Error for PlaneError {}

/// A grid-based routing plane with a fixed number of metal layers
/// (the routing map *M* of the paper).
///
/// Every cell is one routing-track segment of length and width `w_line`
/// with `w_spacer` gaps to its neighbours; cells are free, blocked by an
/// obstacle, or occupied by a routed net.
///
/// # Example
///
/// ```
/// use sadp_grid::{RoutingPlane, CellState, NetId};
/// use sadp_geom::{DesignRules, GridPoint, Layer};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut plane = RoutingPlane::new(3, 64, 64, DesignRules::node_10nm())?;
/// let p = GridPoint::new(Layer(0), 3, 4);
/// plane.occupy(p, NetId(0))?;
/// assert_eq!(plane.cell(p), CellState::Occupied(NetId(0)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RoutingPlane {
    layers: u8,
    width: i32,
    height: i32,
    rules: DesignRules,
    cells: Vec<u32>,
    /// One bit per cell, set when the cell is *not* free (blocked or
    /// occupied). Mirrors `cells` exactly; kept in sync by the three
    /// mutation paths. The A\*-search neighbour test probes free-ness 64
    /// cells per word, so the passability working set is 1/32 the size
    /// of `cells` and stays cache-resident on large planes.
    busy: Vec<u64>,
}

impl RoutingPlane {
    /// Creates a free plane of `layers × width × height` cells.
    ///
    /// # Errors
    ///
    /// Returns [`PlaneError::BadDimensions`] for empty or absurdly large
    /// planes.
    pub fn new(
        layers: u8,
        width: i32,
        height: i32,
        rules: DesignRules,
    ) -> Result<RoutingPlane, PlaneError> {
        let cell_count = (layers as i64) * (width as i64) * (height as i64);
        if layers == 0 || width <= 0 || height <= 0 || cell_count > 1 << 33 {
            return Err(PlaneError::BadDimensions {
                layers,
                width,
                height,
            });
        }
        Ok(RoutingPlane {
            layers,
            width,
            height,
            rules,
            cells: vec![FREE; cell_count as usize],
            busy: vec![0; (cell_count as usize).div_ceil(64)],
        })
    }

    #[inline]
    fn busy_bit(&self, i: usize) -> bool {
        self.busy[i >> 6] & (1u64 << (i & 63)) != 0
    }

    #[inline]
    fn set_busy(&mut self, i: usize, v: bool) {
        if v {
            self.busy[i >> 6] |= 1u64 << (i & 63);
        } else {
            self.busy[i >> 6] &= !(1u64 << (i & 63));
        }
    }

    /// Number of metal layers.
    #[must_use]
    pub fn layers(&self) -> u8 {
        self.layers
    }

    /// Width in tracks.
    #[must_use]
    pub fn width(&self) -> i32 {
        self.width
    }

    /// Height in tracks.
    #[must_use]
    pub fn height(&self) -> i32 {
        self.height
    }

    /// The design rules of the plane.
    #[must_use]
    pub fn rules(&self) -> &DesignRules {
        &self.rules
    }

    /// Physical die width.
    #[must_use]
    pub fn physical_width(&self) -> Nm {
        self.rules.pitch() * i64::from(self.width)
    }

    /// Physical die height.
    #[must_use]
    pub fn physical_height(&self) -> Nm {
        self.rules.pitch() * i64::from(self.height)
    }

    /// Whether `p` lies inside the plane.
    #[must_use]
    pub fn in_bounds(&self, p: GridPoint) -> bool {
        p.layer.0 < self.layers && p.x >= 0 && p.x < self.width && p.y >= 0 && p.y < self.height
    }

    fn index(&self, p: GridPoint) -> usize {
        debug_assert!(self.in_bounds(p));
        (p.layer.index() * self.height as usize + p.y as usize) * self.width as usize + p.x as usize
    }

    /// The state of the cell at `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of bounds.
    #[must_use]
    pub fn cell(&self, p: GridPoint) -> CellState {
        assert!(self.in_bounds(p), "point {p} out of bounds");
        match self.cells[self.index(p)] {
            FREE => CellState::Free,
            BLOCKED => CellState::Blocked,
            id => CellState::Occupied(NetId(id)),
        }
    }

    /// Whether the cell at `p` is in bounds and free. This is the A\*
    /// hot-path probe: it reads the packed busy bitplane, not `cells`.
    #[inline]
    #[must_use]
    pub fn is_free(&self, p: GridPoint) -> bool {
        self.in_bounds(p) && !self.busy_bit(self.index(p))
    }

    /// The net occupying `p`, if any.
    #[must_use]
    pub fn occupant(&self, p: GridPoint) -> Option<NetId> {
        if !self.in_bounds(p) {
            return None;
        }
        match self.cells[self.index(p)] {
            FREE | BLOCKED => None,
            id => Some(NetId(id)),
        }
    }

    /// Marks the cell at `p` as occupied by `net`.
    ///
    /// A cell already occupied by the *same* net is accepted (paths may
    /// revisit their via cells on both layers).
    ///
    /// # Errors
    ///
    /// Returns [`PlaneError::OutOfBounds`] or [`PlaneError::CellBusy`].
    pub fn occupy(&mut self, p: GridPoint, net: NetId) -> Result<(), PlaneError> {
        if !self.in_bounds(p) {
            return Err(PlaneError::OutOfBounds(p));
        }
        let i = self.index(p);
        match self.cells[i] {
            FREE => {
                self.cells[i] = net.0;
                self.set_busy(i, true);
                Ok(())
            }
            id if id == net.0 => Ok(()),
            _ => Err(PlaneError::CellBusy(p)),
        }
    }

    /// Frees every cell occupied by `net` along `path` (rip-up).
    pub fn clear_path(&mut self, path: &[GridPoint], net: NetId) {
        for &p in path {
            if self.in_bounds(p) {
                let i = self.index(p);
                if self.cells[i] == net.0 {
                    self.cells[i] = FREE;
                    self.set_busy(i, false);
                }
            }
        }
    }

    /// Blocks every cell of `rect` on `layer` (clipped to the plane).
    pub fn add_blockage(&mut self, layer: Layer, rect: TrackRect) {
        for (x, y) in rect.cells() {
            let p = GridPoint::new(layer, x, y);
            if self.in_bounds(p) {
                let i = self.index(p);
                if self.cells[i] == FREE {
                    self.cells[i] = BLOCKED;
                    self.set_busy(i, true);
                }
            }
        }
    }

    /// Frees every *blocked* cell of `rect` on `layer` (clipped to the
    /// plane). Occupied cells are untouched, mirroring how
    /// [`RoutingPlane::add_blockage`] only blocks free ones; a caller
    /// removing one of several overlapping blockages must re-apply the
    /// survivors afterwards.
    pub fn clear_blockage(&mut self, layer: Layer, rect: TrackRect) {
        for (x, y) in rect.cells() {
            let p = GridPoint::new(layer, x, y);
            if self.in_bounds(p) {
                let i = self.index(p);
                if self.cells[i] == BLOCKED {
                    self.cells[i] = FREE;
                    self.set_busy(i, false);
                }
            }
        }
    }

    /// Counts cells in each state: `(free, blocked, occupied)`.
    #[must_use]
    pub fn usage(&self) -> (usize, usize, usize) {
        let mut free = 0;
        let mut blocked = 0;
        let mut occupied = 0;
        for &c in &self.cells {
            match c {
                FREE => free += 1,
                BLOCKED => blocked += 1,
                _ => occupied += 1,
            }
        }
        (free, blocked, occupied)
    }

    /// Iterates over the occupied cells of one layer as
    /// `(x, y, net)` triples, row-major.
    pub fn occupied_cells(&self, layer: Layer) -> impl Iterator<Item = (i32, i32, NetId)> + '_ {
        let base = layer.index() * self.height as usize * self.width as usize;
        let w = self.width as usize;
        self.cells[base..base + self.height as usize * w]
            .iter()
            .enumerate()
            .filter_map(move |(i, &c)| match c {
                FREE | BLOCKED => None,
                id => Some(((i % w) as i32, (i / w) as i32, NetId(id))),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane() -> RoutingPlane {
        RoutingPlane::new(3, 16, 16, DesignRules::node_10nm()).expect("valid dims")
    }

    #[test]
    fn construction_and_bounds() {
        let p = plane();
        assert_eq!(p.layers(), 3);
        assert!(p.in_bounds(GridPoint::new(Layer(2), 15, 15)));
        assert!(!p.in_bounds(GridPoint::new(Layer(3), 0, 0)));
        assert!(!p.in_bounds(GridPoint::new(Layer(0), -1, 0)));
        assert!(!p.in_bounds(GridPoint::new(Layer(0), 16, 0)));
        assert_eq!(p.physical_width(), Nm(640));
    }

    #[test]
    fn bad_dimensions() {
        assert!(RoutingPlane::new(0, 4, 4, DesignRules::node_10nm()).is_err());
        assert!(RoutingPlane::new(1, 0, 4, DesignRules::node_10nm()).is_err());
    }

    #[test]
    fn occupy_and_clear() {
        let mut p = plane();
        let a = GridPoint::new(Layer(0), 1, 1);
        p.occupy(a, NetId(3)).unwrap();
        assert_eq!(p.cell(a), CellState::Occupied(NetId(3)));
        assert_eq!(p.occupant(a), Some(NetId(3)));
        // Same net may re-occupy.
        p.occupy(a, NetId(3)).unwrap();
        // Other nets may not.
        assert_eq!(p.occupy(a, NetId(4)), Err(PlaneError::CellBusy(a)));
        p.clear_path(&[a], NetId(3));
        assert!(p.is_free(a));
    }

    #[test]
    fn clear_blockage_frees_blocked_cells_only() {
        let mut p = plane();
        let occupied = GridPoint::new(Layer(1), 3, 3);
        p.occupy(occupied, NetId(7)).unwrap();
        p.add_blockage(Layer(1), TrackRect::new(2, 2, 5, 5));
        let (_, blocked, _) = p.usage();
        assert_eq!(blocked, 15); // 4x4 minus the occupied cell
                                 // Clearing a sub-rect (clipped past the plane edge) frees only
                                 // blocked cells; the occupied one keeps its owner.
        p.clear_blockage(Layer(1), TrackRect::new(2, 2, 20, 3));
        assert!(p.is_free(GridPoint::new(Layer(1), 2, 2)));
        assert!(p.is_free(GridPoint::new(Layer(1), 5, 3)));
        assert_eq!(p.occupant(occupied), Some(NetId(7)));
        assert_eq!(p.cell(GridPoint::new(Layer(1), 2, 4)), CellState::Blocked);
        // Freed cells are routable again (busy bit back in sync).
        p.occupy(GridPoint::new(Layer(1), 2, 2), NetId(9)).unwrap();
    }

    #[test]
    fn clear_path_only_touches_own_cells() {
        let mut p = plane();
        let a = GridPoint::new(Layer(0), 1, 1);
        let b = GridPoint::new(Layer(0), 2, 1);
        p.occupy(a, NetId(1)).unwrap();
        p.occupy(b, NetId(2)).unwrap();
        p.clear_path(&[a, b], NetId(1));
        assert!(p.is_free(a));
        assert_eq!(p.occupant(b), Some(NetId(2)));
    }

    #[test]
    fn blockages() {
        let mut p = plane();
        p.add_blockage(Layer(1), TrackRect::new(0, 0, 3, 3));
        let q = GridPoint::new(Layer(1), 2, 2);
        assert_eq!(p.cell(q), CellState::Blocked);
        assert!(!p.is_free(q));
        assert_eq!(p.occupant(q), None);
        assert!(p.occupy(q, NetId(0)).is_err());
        let (_, blocked, _) = p.usage();
        assert_eq!(blocked, 16);
    }

    #[test]
    fn blockage_clipped_and_skips_occupied() {
        let mut p = plane();
        let a = GridPoint::new(Layer(0), 0, 0);
        p.occupy(a, NetId(9)).unwrap();
        p.add_blockage(Layer(0), TrackRect::new(-5, -5, 0, 0));
        // The occupied cell is preserved.
        assert_eq!(p.occupant(a), Some(NetId(9)));
    }

    #[test]
    fn occupied_cells_iteration() {
        let mut p = plane();
        p.occupy(GridPoint::new(Layer(1), 3, 4), NetId(7)).unwrap();
        p.occupy(GridPoint::new(Layer(1), 4, 4), NetId(7)).unwrap();
        p.occupy(GridPoint::new(Layer(0), 0, 0), NetId(1)).unwrap();
        let cells: Vec<_> = p.occupied_cells(Layer(1)).collect();
        assert_eq!(cells, vec![(3, 4, NetId(7)), (4, 4, NetId(7))]);
    }

    #[test]
    fn busy_bitplane_mirrors_cells_through_every_mutation() {
        let mut p = plane();
        let a = GridPoint::new(Layer(0), 1, 1);
        let b = GridPoint::new(Layer(2), 15, 15);
        p.occupy(a, NetId(3)).unwrap();
        p.occupy(b, NetId(4)).unwrap();
        p.add_blockage(Layer(1), TrackRect::new(0, 0, 3, 3));
        p.clear_path(&[a], NetId(3));
        // Failed occupy of a busy cell must not flip any bit either.
        let blocked = GridPoint::new(Layer(1), 2, 2);
        assert!(p.occupy(blocked, NetId(9)).is_err());
        for l in 0..p.layers() {
            for y in 0..p.height() {
                for x in 0..p.width() {
                    let q = GridPoint::new(Layer(l), x, y);
                    assert_eq!(
                        p.is_free(q),
                        p.cell(q) == CellState::Free,
                        "bitplane out of sync at {q}"
                    );
                }
            }
        }
    }

    #[test]
    fn out_of_bounds_errors() {
        let mut p = plane();
        let q = GridPoint::new(Layer(0), 99, 0);
        assert_eq!(p.occupy(q, NetId(0)), Err(PlaneError::OutOfBounds(q)));
        assert!(PlaneError::OutOfBounds(q)
            .to_string()
            .contains("out of bounds"));
    }
}
