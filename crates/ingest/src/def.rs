//! DEF subset reader: placed IC blocks onto the routing grid.
//!
//! Maps the classic DEF skeleton into a routing problem:
//!
//! * `UNITS DISTANCE MICRONS dbu` — database units (default 100/micron),
//! * `DIEAREA` — the die bounding box,
//! * `TRACKS ... STEP s` — explicit snapping pitch (smallest step wins),
//! * `COMPONENTS` — placed macro instances, resolved through a LEF
//!   library: macro `OBS` become obstacles, macro pins become pads,
//! * `PINS` — die-edge I/O pads (`+ LAYER` rect relative to `+ PLACED`),
//! * `NETS` — terminals `( comp pin )` and `( PIN ioname )`,
//! * `BLOCKAGES` — routing blockage rectangles.
//!
//! Subset rejections (explicit errors): orientations other than `N`,
//! `POLYGON` geometry, components without a LEF library. Pre-routed
//! wiring (`+ ROUTED`), special nets, vias and rows are skipped — the
//! router starts from an unrouted design. Layer names map to grid
//! layers by their trailing integer (`metal1` → layer 0).

use crate::error::{err, ParseError, Pos};
use crate::lef::LefLibrary;
use crate::map::pad_pin;
use crate::snap::Snapper;
use crate::tok::Cursor;
use crate::{Format, Imported};
use sadp_geom::{DesignRules, Layer, TrackRect};
use sadp_grid::{Netlist, Pin, RoutingPlane};
use std::collections::BTreeMap;

struct Comp {
    macro_name: String,
    x: f64,
    y: f64,
    pos: Pos,
}

struct IoPin {
    /// `(layer name, world rect in dbu)`.
    rects: Vec<(String, [f64; 4], Pos)>,
}

enum Terminal {
    Comp { comp: String, pin: String, pos: Pos },
    Io { name: String, pos: Pos },
}

#[derive(Default)]
struct Design {
    dbu: f64,
    diearea: Option<(f64, f64, f64, f64)>,
    pitch: Option<f64>,
    components: BTreeMap<String, Comp>,
    io_pins: BTreeMap<String, IoPin>,
    nets: Vec<(String, Vec<Terminal>)>,
    blockages: Vec<(String, [f64; 4], Pos)>,
}

/// Reads a DEF design into a routing plane and netlist.
///
/// `lef` supplies macro footprints for `COMPONENTS`; a DEF whose
/// components are referenced by any net (or which places macros with
/// obstructions) cannot be imported without one.
///
/// # Errors
///
/// Returns [`ParseError`] with line/column context on syntax problems
/// or subset violations.
pub fn read_def(text: &str, lef: Option<&LefLibrary>) -> Result<Imported, ParseError> {
    let mut c = Cursor::new(text)?;
    let mut d = Design {
        dbu: 100.0,
        ..Design::default()
    };
    parse_design(&mut c, &mut d)?;
    build(d, lef)
}

fn parse_design(c: &mut Cursor, d: &mut Design) -> Result<(), ParseError> {
    while let Some(t) = c.peek().cloned() {
        if t.text.eq_ignore_ascii_case("END") {
            c.next();
            let what = c.expect("a section name after END")?;
            if what.text.eq_ignore_ascii_case("DESIGN") {
                return Ok(());
            }
        } else if t.text.eq_ignore_ascii_case("UNITS") {
            c.next();
            c.expect_text("DISTANCE")?;
            c.expect_text("MICRONS")?;
            let dbu = c.num("database units per micron")?;
            if dbu <= 0.0 {
                return Err(err(
                    t.pos,
                    format!("database units must be positive, got {dbu}"),
                ));
            }
            d.dbu = dbu;
            c.expect_text(";")?;
        } else if t.text.eq_ignore_ascii_case("DIEAREA") {
            c.next();
            let (mut x0, mut y0) = (f64::INFINITY, f64::INFINITY);
            let (mut x1, mut y1) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
            let mut points = 0;
            while !c.eat(";") {
                let (x, y) = c.point("diearea corner")?;
                (x0, y0) = (x0.min(x), y0.min(y));
                (x1, y1) = (x1.max(x), y1.max(y));
                points += 1;
            }
            if points < 2 {
                return Err(err(t.pos, "DIEAREA needs at least two corners"));
            }
            d.diearea = Some((x0, y0, x1, y1));
        } else if t.text.eq_ignore_ascii_case("TRACKS") {
            c.next();
            c.expect("tracks direction")?;
            c.num("tracks start")?;
            c.expect_text("DO")?;
            c.num("tracks count")?;
            c.expect_text("STEP")?;
            let step = c.num("tracks step")?;
            if step > 0.0 {
                d.pitch = Some(d.pitch.map_or(step, |p: f64| p.min(step)));
            }
            c.skip_statement();
        } else if t.text.eq_ignore_ascii_case("COMPONENTS") {
            c.next();
            c.skip_statement(); // the count; entries are self-describing
            parse_components(c, d)?;
        } else if t.text.eq_ignore_ascii_case("PINS") {
            c.next();
            c.skip_statement();
            parse_pins(c, d)?;
        } else if t.text.eq_ignore_ascii_case("NETS") {
            c.next();
            c.skip_statement();
            parse_nets(c, d)?;
        } else if t.text.eq_ignore_ascii_case("BLOCKAGES") {
            c.next();
            c.skip_statement();
            parse_blockages(c, d)?;
        } else {
            c.next();
            c.skip_statement();
        }
    }
    Err(err(c.pos(), "missing END DESIGN"))
}

/// Consumes an orientation token, rejecting everything but `N`.
fn orient_n(c: &mut Cursor) -> Result<(), ParseError> {
    let o = c.expect("an orientation")?;
    if o.text.eq_ignore_ascii_case("N") {
        Ok(())
    } else {
        Err(err(
            o.pos,
            format!("unsupported orientation `{}` (subset: N)", o.text),
        ))
    }
}

fn parse_components(c: &mut Cursor, d: &mut Design) -> Result<(), ParseError> {
    loop {
        if c.eat("END") {
            c.expect_text("COMPONENTS")?;
            return Ok(());
        }
        let dash = c.expect_text("-")?;
        let id = c.expect("component id")?;
        let macro_name = c.expect("component macro name")?;
        let mut place: Option<(f64, f64)> = None;
        loop {
            let t = c.expect("`;` ending the component")?;
            if t.text == ";" {
                break;
            }
            if t.text == "+" {
                let kw = c.expect("a component property")?;
                if kw.text.eq_ignore_ascii_case("PLACED") || kw.text.eq_ignore_ascii_case("FIXED") {
                    let p = c.point("placement")?;
                    orient_n(c)?;
                    place = Some(p);
                }
            }
        }
        let Some((x, y)) = place else {
            return Err(err(
                dash.pos,
                format!("component `{}` has no PLACED location", id.text),
            ));
        };
        d.components.insert(
            id.text,
            Comp {
                macro_name: macro_name.text,
                x,
                y,
                pos: dash.pos,
            },
        );
    }
}

fn parse_pins(c: &mut Cursor, d: &mut Design) -> Result<(), ParseError> {
    loop {
        if c.eat("END") {
            c.expect_text("PINS")?;
            return Ok(());
        }
        let dash = c.expect_text("-")?;
        let name = c.expect("pin name")?;
        let mut place: Option<(f64, f64)> = None;
        let mut rects: Vec<(String, [f64; 4], Pos)> = Vec::new();
        loop {
            let t = c.expect("`;` ending the pin")?;
            if t.text == ";" {
                break;
            }
            if t.text == "+" {
                let kw = c.expect("a pin property")?;
                if kw.text.eq_ignore_ascii_case("LAYER") {
                    let layer = c.expect("pin layer name")?;
                    let (x0, y0) = c.point("pin rect corner")?;
                    let (x1, y1) = c.point("pin rect corner")?;
                    rects.push((layer.text, [x0, y0, x1, y1], kw.pos));
                } else if kw.text.eq_ignore_ascii_case("PLACED")
                    || kw.text.eq_ignore_ascii_case("FIXED")
                {
                    let p = c.point("pin placement")?;
                    orient_n(c)?;
                    place = Some(p);
                } else if kw.text.eq_ignore_ascii_case("POLYGON") {
                    return Err(err(kw.pos, "unsupported POLYGON pin (subset: LAYER rect)"));
                }
            }
        }
        let Some((px, py)) = place else {
            return Err(err(
                dash.pos,
                format!("pin `{}` has no PLACED location", name.text),
            ));
        };
        if rects.is_empty() {
            return Err(err(
                dash.pos,
                format!("pin `{}` has no LAYER geometry", name.text),
            ));
        }
        let rects = rects
            .into_iter()
            .map(|(l, [x0, y0, x1, y1], pos)| (l, [px + x0, py + y0, px + x1, py + y1], pos))
            .collect();
        d.io_pins.insert(name.text, IoPin { rects });
    }
}

fn parse_nets(c: &mut Cursor, d: &mut Design) -> Result<(), ParseError> {
    loop {
        if c.eat("END") {
            c.expect_text("NETS")?;
            return Ok(());
        }
        c.expect_text("-")?;
        let name = c.expect("net name")?;
        let mut terminals = Vec::new();
        loop {
            let t = c.expect("`;` ending the net")?;
            if t.text == ";" {
                break;
            }
            if t.text == "(" {
                let a = c.expect("net terminal")?;
                let b = c.expect("net terminal pin")?;
                c.expect_text(")")?;
                if a.text.eq_ignore_ascii_case("PIN") {
                    terminals.push(Terminal::Io {
                        name: b.text,
                        pos: a.pos,
                    });
                } else {
                    terminals.push(Terminal::Comp {
                        comp: a.text,
                        pin: b.text,
                        pos: a.pos,
                    });
                }
            } else if t.text == "+" {
                // Net properties (+ USE SIGNAL, + ROUTED ...) follow the
                // terminals; skip the rest of the statement.
                c.skip_statement();
                break;
            }
        }
        d.nets.push((name.text, terminals));
    }
}

fn parse_blockages(c: &mut Cursor, d: &mut Design) -> Result<(), ParseError> {
    loop {
        if c.eat("END") {
            c.expect_text("BLOCKAGES")?;
            return Ok(());
        }
        c.expect_text("-")?;
        let kind = c.expect("a blockage kind")?;
        if kind.text.eq_ignore_ascii_case("LAYER") {
            let layer = c.expect("blockage layer name")?;
            loop {
                let t = c.expect("`;` ending the blockage")?;
                if t.text == ";" {
                    break;
                }
                if t.text.eq_ignore_ascii_case("RECT") {
                    let (x0, y0) = c.point("blockage rect corner")?;
                    let (x1, y1) = c.point("blockage rect corner")?;
                    d.blockages
                        .push((layer.text.clone(), [x0, y0, x1, y1], t.pos));
                } else if t.text.eq_ignore_ascii_case("POLYGON") {
                    return Err(err(t.pos, "unsupported POLYGON blockage (subset: RECT)"));
                }
            }
        } else {
            // PLACEMENT blockages constrain cells, not routing; skip.
            c.skip_statement();
        }
    }
}

/// Maps a layer name to its grid layer via the trailing integer:
/// `metal1`/`M1` → layer 0.
fn layer_index(name: &str, pos: Pos) -> Result<Layer, ParseError> {
    let digits: String = name
        .chars()
        .rev()
        .take_while(char::is_ascii_digit)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    let n: u32 = digits.parse().map_err(|_| {
        err(
            pos,
            format!("cannot infer a layer index from `{name}` (expected a trailing integer, like metal1)"),
        )
    })?;
    let idx = n.max(1) - 1;
    if idx >= 16 {
        return Err(err(
            pos,
            format!("layer `{name}` exceeds the 16-layer import cap"),
        ));
    }
    Ok(Layer(idx as u8))
}

fn build(d: Design, lef: Option<&LefLibrary>) -> Result<Imported, ParseError> {
    let diearea = d
        .diearea
        .ok_or_else(|| err(Pos::new(1, 1), "missing DIEAREA"))?;
    let snap = Snapper::new(diearea, d.pitch).map_err(|m| err(Pos::new(1, 1), m))?;

    // Resolve every component's macro up front so layer discovery and
    // the no-LEF error both happen before any plane mutation.
    let mut comp_macros: BTreeMap<&str, &crate::lef::LefMacro> = BTreeMap::new();
    if !d.components.is_empty() {
        let Some(lib) = lef else {
            let first = d.components.values().next().expect("non-empty");
            return Err(err(
                first.pos,
                "DEF components need a LEF library (pass --lef FILE or place FILE.lef next to the DEF)",
            ));
        };
        for (id, comp) in &d.components {
            let m = lib.macros.get(&comp.macro_name).ok_or_else(|| {
                err(
                    comp.pos,
                    format!(
                        "component `{id}` uses macro `{}` not in the LEF library",
                        comp.macro_name
                    ),
                )
            })?;
            comp_macros.insert(id.as_str(), m);
        }
    }

    // Discover the layer count across every geometry source.
    let mut max_layer = 1u8; // at least 2 routing layers
    let mut bump = |l: Layer| max_layer = max_layer.max(l.0);
    for (name, _, pos) in &d.blockages {
        bump(layer_index(name, *pos)?);
    }
    for pin in d.io_pins.values() {
        for (name, _, pos) in &pin.rects {
            bump(layer_index(name, *pos)?);
        }
    }
    for (id, m) in &comp_macros {
        let pos = d.components[*id].pos;
        for (name, _) in &m.obs {
            bump(layer_index(name, pos)?);
        }
        for p in &m.pins {
            for (name, _) in &p.rects {
                bump(layer_index(name, pos)?);
            }
        }
    }

    let mut plane = RoutingPlane::new(
        max_layer + 1,
        snap.width(),
        snap.height(),
        DesignRules::node_10nm(),
    )
    .map_err(|e| err(Pos::new(1, 1), e.to_string()))?;

    // Obstacles: explicit blockages, then macro OBS at placed positions.
    let mut obstacle_rects = 0usize;
    for (name, [x0, y0, x1, y1], pos) in &d.blockages {
        let layer = layer_index(name, *pos)?;
        let (x0, y0, x1, y1) = snap.rect(*x0, *y0, *x1, *y1);
        plane.add_blockage(layer, TrackRect::new(x0, y0, x1, y1));
        obstacle_rects += 1;
    }
    for (id, m) in &comp_macros {
        let comp = &d.components[*id];
        for (name, [x0, y0, x1, y1]) in &m.obs {
            let layer = layer_index(name, comp.pos)?;
            let (x0, y0, x1, y1) = snap.rect(
                comp.x + x0 * d.dbu,
                comp.y + y0 * d.dbu,
                comp.x + x1 * d.dbu,
                comp.y + y1 * d.dbu,
            );
            plane.add_blockage(layer, TrackRect::new(x0, y0, x1, y1));
            obstacle_rects += 1;
        }
    }

    // Nets: resolve terminals to multi-candidate pins.
    let mut netlist = Netlist::new();
    let mut skipped_nets = 0usize;
    for (name, terminals) in &d.nets {
        let mut pins: Vec<Pin> = Vec::new();
        for t in terminals {
            let (rects, pos, what) = match t {
                Terminal::Io { name, pos } => {
                    let io = d
                        .io_pins
                        .get(name)
                        .ok_or_else(|| err(*pos, format!("net references unknown PIN `{name}`")))?;
                    let rects = io
                        .rects
                        .iter()
                        .map(|(l, r, p)| {
                            Ok((layer_index(l, *p)?, snap.rect(r[0], r[1], r[2], r[3])))
                        })
                        .collect::<Result<Vec<_>, ParseError>>()?;
                    (rects, *pos, format!("PIN {name}"))
                }
                Terminal::Comp { comp, pin, pos } => {
                    let place = d.components.get(comp).ok_or_else(|| {
                        err(*pos, format!("net references unknown component `{comp}`"))
                    })?;
                    let m = comp_macros.get(comp.as_str()).expect("resolved above");
                    let lp = m.pin(pin).ok_or_else(|| {
                        err(
                            *pos,
                            format!("macro `{}` has no pin `{pin}`", place.macro_name),
                        )
                    })?;
                    let rects = lp
                        .rects
                        .iter()
                        .map(|(l, r)| {
                            Ok((
                                layer_index(l, *pos)?,
                                snap.rect(
                                    place.x + r[0] * d.dbu,
                                    place.y + r[1] * d.dbu,
                                    place.x + r[2] * d.dbu,
                                    place.y + r[3] * d.dbu,
                                ),
                            ))
                        })
                        .collect::<Result<Vec<_>, ParseError>>()?;
                    (rects, *pos, format!("{comp} {pin}"))
                }
            };
            let pin = pad_pin(&plane, &rects).ok_or_else(|| {
                err(
                    pos,
                    format!("pad `{what}` snaps onto fully blocked or off-die cells"),
                )
            })?;
            pins.push(pin);
        }
        if pins.len() < 2 {
            skipped_nets += 1;
            continue;
        }
        netlist.add_multi_pin(name.clone(), pins);
    }

    let mut notes = vec![format!(
        "{}x{} tracks, {} layers, pitch {} ({})",
        snap.width(),
        snap.height(),
        max_layer + 1,
        snap.pitch(),
        if d.pitch.is_some() {
            "TRACKS step"
        } else {
            "derived"
        },
    )];
    if obstacle_rects > 0 {
        notes.push(format!("{obstacle_rects} obstacle rects"));
    }
    if skipped_nets > 0 {
        notes.push(format!("skipped {skipped_nets} nets with <2 pins"));
    }
    Ok(Imported {
        plane,
        netlist,
        format: Format::Def,
        skipped_nets,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lef::read_lef;

    const LEF: &str = "\
MACRO RAM1
  SIZE 20 BY 16 ;
  PIN A
    PORT
      LAYER metal1 ;
      RECT 0.0 7.0 1.0 9.0 ;
    END
  END A
  OBS
    LAYER metal1 ;
    RECT 2.0 0.0 18.0 16.0 ;
  END
END RAM1
";

    const DEF: &str = "\
VERSION 5.8 ;
DESIGN demo ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 64000 48000 ) ;
TRACKS X 500 DO 64 STEP 1000 LAYER metal1 ;
COMPONENTS 1 ;
- u1 RAM1 + PLACED ( 4000 4000 ) N ;
END COMPONENTS
PINS 1 ;
- io_a + NET n1 + LAYER metal2 ( -500 -500 ) ( 500 500 ) + PLACED ( 32000 47500 ) N ;
END PINS
NETS 1 ;
- n1 ( PIN io_a ) ( u1 A ) + USE SIGNAL ;
END NETS
BLOCKAGES 1 ;
- LAYER metal1 RECT ( 40000 0 ) ( 48000 8000 ) ;
END BLOCKAGES
END DESIGN
";

    #[test]
    fn reads_a_placed_design_with_lef_macros() {
        let lib = read_lef(LEF).expect("lef parses");
        let imp = read_def(DEF, Some(&lib)).expect("def parses");
        assert_eq!((imp.plane.width(), imp.plane.height()), (64, 48));
        assert_eq!(imp.plane.layers(), 2);
        assert_eq!(imp.netlist.len(), 1);
        // The macro OBS covers [6000, 22000] x [4000, 20000]: cell (10, 10)
        // has center (10500, 10500), inside it.
        assert!(!imp
            .plane
            .is_free(sadp_geom::GridPoint::new(Layer(0), 10, 10)));
        // Pin A of u1 sits left of the OBS: rect [4000,11000]x[4000,13000].
        let net = imp.netlist.net(sadp_grid::NetId(0));
        assert!(net.pins().all(|p| !p.candidates().is_empty()));
    }

    #[test]
    fn components_without_lef_are_an_actionable_error() {
        let e = read_def(DEF, None).unwrap_err();
        assert!(e.to_string().contains("need a LEF library"), "{e}");
        assert_eq!(e.pos().line, 7);
    }

    #[test]
    fn rejects_rotated_placements() {
        let text = DEF.replace("( 4000 4000 ) N", "( 4000 4000 ) S");
        let lib = read_lef(LEF).expect("lef parses");
        let e = read_def(&text, Some(&lib)).unwrap_err();
        assert!(e.to_string().contains("unsupported orientation `S`"), "{e}");
    }

    #[test]
    fn missing_diearea_is_an_error() {
        let e = read_def("VERSION 5.8 ;\nEND DESIGN\n", None).unwrap_err();
        assert!(e.to_string().contains("missing DIEAREA"), "{e}");
    }

    #[test]
    fn layer_names_map_by_trailing_integer() {
        assert_eq!(layer_index("metal3", Pos::new(1, 1)).unwrap(), Layer(2));
        assert_eq!(layer_index("M1", Pos::new(1, 1)).unwrap(), Layer(0));
        let e = layer_index("poly", Pos::new(2, 5)).unwrap_err();
        assert!(e.to_string().contains("trailing integer"), "{e}");
    }
}
